// Ablations beyond the paper's tables, probing the design choices of
// Universal Conjunction Encoding called out in DESIGN.md:
//   1. partitioning: the paper's equi-width scheme vs an equi-depth
//      (quantile) partitioner (Section 3.2 mentions histogram-style
//      partitioning as an extension);
//   2. the 1/2 value for partially qualifying partitions vs rounding up to 1;
//   3. the exact small-domain 0/1 mode on vs off.
// Model: GB; workload: forest conjunctive.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle(/*need_conj=*/true,
                                         /*need_mixed=*/false);
  eval::TablePrinter table({"variant", "mean", "median", "99%", "max"});

  const auto run = [&](const std::string& label,
                       const featurize::ConjunctionOptions& opts) {
    const featurize::ConjunctionEncoding featurizer(bundle.schema, opts);
    const auto model = MakeModel("GB");
    const auto result_or = eval::RunQftModel(featurizer, *model,
                                             bundle.conj_train,
                                             bundle.conj_test);
    QFCARD_CHECK_OK(result_or.status());
    std::vector<std::string> row{label};
    AddSummaryCells(row, result_or.value().summary);
    table.AddRow(std::move(row));
  };

  run("baseline (equi-width, 1/2 values, exact small domains)",
      DefaultConjOptions());

  {
    featurize::ConjunctionOptions opts = DefaultConjOptions();
    static featurize::EquiDepthPartitioner equi_depth =
        featurize::EquiDepthPartitioner::FromTable(*bundle.forest,
                                                   opts.max_partitions);
    opts.partitioner = &equi_depth;
    run("equi-depth partitioner", opts);
  }
  {
    featurize::ConjunctionOptions opts = DefaultConjOptions();
    static featurize::VOptimalPartitioner v_optimal =
        featurize::VOptimalPartitioner::FromTable(*bundle.forest,
                                                  opts.max_partitions);
    opts.partitioner = &v_optimal;
    run("v-optimal partitioner", opts);
  }
  {
    featurize::ConjunctionOptions opts = DefaultConjOptions();
    opts.per_attribute_partitions = featurize::SkewAwarePartitions(
        *bundle.forest, opts.max_partitions, /*boost=*/2);
    run("skew-aware per-attribute budgets", opts);
  }
  {
    featurize::ConjunctionOptions opts = DefaultConjOptions();
    opts.use_half_values = false;
    run("no 1/2 values (round partial partitions up)", opts);
  }
  {
    featurize::ConjunctionOptions opts = DefaultConjOptions();
    opts.exact_small_domains = false;
    run("no exact small-domain mode", opts);
  }
  {
    featurize::ConjunctionOptions opts = DefaultConjOptions();
    opts.append_attr_selectivity = false;
    run("no selectivity appendix", opts);
  }

  std::printf("Ablation: Universal Conjunction Encoding design choices "
              "(GB, forest conjunctive)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
