// Batch-API scaling: wall-clock of the pipeline stages (labeling,
// featurization, batched estimation) at 1 thread vs N threads, asserting on
// the way that every parallel result is byte-identical to the serial one.
// N defaults to the hardware concurrency; override with QFCARD_THREADS.
// Speedup is ~1x on a single-core machine by construction.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

struct StageTimes {
  double label_s = 0.0;
  double featurize_s = 0.0;
  double gb_batch_s = 0.0;
  double sampling_batch_s = 0.0;
};

// Runs the three pipeline stages at the current global pool size.
StageTimes RunPipeline(const ForestBundle& bundle,
                       const std::vector<query::Query>& queries,
                       const est::CardinalityEstimator& gb,
                       std::vector<workload::LabeledQuery>* labeled,
                       ml::Matrix* features, std::vector<double>* gb_ests,
                       std::vector<double>* sampling_ests) {
  StageTimes times;
  {
    obs::ScopedTimer timer;
    *labeled = workload::LabelOnTable(*bundle.forest, queries, false).value();
    times.label_s = timer.Seconds();
  }
  {
    const auto featurizer = MakeQft("conjunctive", bundle.schema);
    *features = ml::Matrix(static_cast<int>(queries.size()), featurizer->dim());
    obs::ScopedTimer timer;
    QFCARD_CHECK_OK(featurizer->FeaturizeBatch(
        {queries.data(), queries.size()}, features->data().data()));
    times.featurize_s = timer.Seconds();
  }
  {
    obs::ScopedTimer timer;
    *gb_ests = gb.EstimateBatch(queries).value();
    times.gb_batch_s = timer.Seconds();
  }
  {
    // Fresh same-seed instance per run so both thread counts consume the
    // same draw tickets.
    const std::unique_ptr<est::CardinalityEstimator> sampling =
        est::MakeEstimator("sampling", bundle.catalog).value();
    obs::ScopedTimer timer;
    *sampling_ests = sampling->EstimateBatch(queries).value();
    times.sampling_batch_s = timer.Seconds();
  }
  return times;
}

template <typename T>
void CheckIdentical(const std::vector<T>& serial, const std::vector<T>& parallel,
                    const char* stage) {
  if (serial != parallel) {
    std::fprintf(stderr, "FATAL: %s differs between 1 and N threads\n", stage);
    std::abort();
  }
}

struct TraceOverhead {
  double off_s = 0.0;  ///< GB EstimateBatch, QFCARD_TRACE=0 path
  double on_s = 0.0;   ///< same work with span recording enabled
  double overhead_pct = 0.0;  ///< (on - off) / off * 100, floored at 0
};

// Observability-cost leg (docs/observability.md): the same GB micro-batch
// workload with tracing disabled vs enabled, best-of-3 each to de-noise.
// The off leg is the QFCARD_TRACE=0 hot path every production run pays (one
// relaxed atomic load per would-be span); the delta to the on leg is the
// full recording cost. Emitted into BENCH_batch_scaling.json so the perf
// trajectory tracks tracing overhead commit over commit.
TraceOverhead MeasureTraceOverhead(const est::CardinalityEstimator& gb,
                                   const std::vector<query::Query>& queries) {
  constexpr int kReps = 3;
  const bool was_enabled = obs::TraceEnabled();
  TraceOverhead result;
  result.off_s = -1.0;
  result.on_s = -1.0;
  obs::SetTraceEnabled(false);
  for (int rep = 0; rep < kReps; ++rep) {
    obs::ScopedTimer timer;
    const std::vector<double> ests = gb.EstimateBatch(queries).value();
    const double s = timer.Seconds();
    if (result.off_s < 0.0 || s < result.off_s) result.off_s = s;
    if (ests.empty()) std::abort();  // keep the work observable
  }
  obs::SetTraceEnabled(true);
  for (int rep = 0; rep < kReps; ++rep) {
    obs::TraceBuffer::Global().Reset();
    obs::ScopedTimer timer;
    const std::vector<double> ests = gb.EstimateBatch(queries).value();
    const double s = timer.Seconds();
    if (result.on_s < 0.0 || s < result.on_s) result.on_s = s;
    if (ests.empty()) std::abort();
  }
  obs::TraceBuffer::Global().Reset();
  obs::SetTraceEnabled(was_enabled);
  result.overhead_pct =
      result.off_s > 0.0
          ? std::max(0.0, (result.on_s - result.off_s) / result.off_s * 100.0)
          : 0.0;
  return result;
}

// Writes the kind="batch_scaling" trajectory report (tools/bench_schema.json)
// CI archives as BENCH_batch_scaling.json: per-stage serial/parallel seconds
// plus the query count, as flat {name, unit, value} metric rows.
bool WriteBenchmarkOut(const std::string& path, size_t queries, int threads,
                       const StageTimes& serial, const StageTimes& parallel,
                       const TraceOverhead& trace) {
  std::ofstream out(path);
  if (!out) return false;
  std::string json = "{\"version\":1,\"kind\":\"batch_scaling\"";
  json += ",\"name\":\"batch_scaling\"";
  json += common::StrFormat(
      ",\"context\":{\"scale\":\"%s\",\"threads\":%d}",
      common::ScaleName(common::GetScale()), threads);
  json += ",\"metrics\":[";
  json += common::StrFormat(
      "{\"name\":\"queries\",\"unit\":\"count\",\"value\":%zu}", queries);
  const auto stage = [&json](const char* name, double s1, double sn) {
    json += common::StrFormat(
        ",{\"name\":\"%s_seconds_serial\",\"unit\":\"seconds\","
        "\"value\":%.6g}", name, s1);
    json += common::StrFormat(
        ",{\"name\":\"%s_seconds_parallel\",\"unit\":\"seconds\","
        "\"value\":%.6g}", name, sn);
    json += common::StrFormat(
        ",{\"name\":\"%s_speedup\",\"unit\":\"x\",\"value\":%.6g}", name,
        sn > 0 ? s1 / sn : 0.0);
  };
  stage("label", serial.label_s, parallel.label_s);
  stage("featurize", serial.featurize_s, parallel.featurize_s);
  stage("gb_batch", serial.gb_batch_s, parallel.gb_batch_s);
  stage("sampling_batch", serial.sampling_batch_s, parallel.sampling_batch_s);
  json += common::StrFormat(
      ",{\"name\":\"gb_batch_seconds_trace_off\",\"unit\":\"seconds\","
      "\"value\":%.6g}", trace.off_s);
  json += common::StrFormat(
      ",{\"name\":\"gb_batch_seconds_trace_on\",\"unit\":\"seconds\","
      "\"value\":%.6g}", trace.on_s);
  json += common::StrFormat(
      ",{\"name\":\"trace_overhead_pct\",\"unit\":\"percent\","
      "\"value\":%.6g}", trace.overhead_pct);
  json += "]}\n";
  out << json;
  return static_cast<bool>(out);
}

void Run(const std::string& benchmark_out) {
  int threads = common::ThreadPoolSizeFromEnv();
  if (threads <= 1) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }

  ForestBundle bundle = MakeForestBundle(/*need_conj=*/true,
                                         /*need_mixed=*/false);
  std::vector<query::Query> queries;
  for (const workload::LabeledQuery& lq : bundle.conj_train) {
    queries.push_back(lq.query);
  }
  for (const workload::LabeledQuery& lq : bundle.conj_test) {
    queries.push_back(lq.query);
  }

  // Train one GB estimator serially; both timing runs share it.
  common::SetGlobalThreads(1);
  const std::unique_ptr<est::CardinalityEstimator> gb =
      est::MakeEstimator("gb+conj", bundle.catalog, DefaultEstimatorOptions())
          .value();
  {
    std::vector<double> cards;
    for (const workload::LabeledQuery& lq : bundle.conj_train) {
      cards.push_back(lq.card);
    }
    std::vector<query::Query> train_queries(
        queries.begin(), queries.begin() + bundle.conj_train.size());
    QFCARD_CHECK_OK(gb->Train(train_queries, cards, 0.1, 7));
  }

  std::vector<workload::LabeledQuery> labeled1, labeledN;
  ml::Matrix feat1, featN;
  std::vector<double> gb1, gbN, samp1, sampN;

  common::SetGlobalThreads(1);
  const StageTimes serial =
      RunPipeline(bundle, queries, *gb, &labeled1, &feat1, &gb1, &samp1);
  common::SetGlobalThreads(threads);
  const StageTimes parallel =
      RunPipeline(bundle, queries, *gb, &labeledN, &featN, &gbN, &sampN);
  common::SetGlobalThreads(1);

  std::vector<double> cards1, cardsN;
  for (const auto& lq : labeled1) cards1.push_back(lq.card);
  for (const auto& lq : labeledN) cardsN.push_back(lq.card);
  CheckIdentical(cards1, cardsN, "labeling");
  CheckIdentical(feat1.data(), featN.data(), "featurization");
  CheckIdentical(gb1, gbN, "GB EstimateBatch");
  CheckIdentical(samp1, sampN, "Sampling EstimateBatch");

  eval::TablePrinter table({"stage", "1 thread (s)",
                            common::StrFormat("%d threads (s)", threads),
                            "speedup"});
  const auto add = [&](const char* stage, double s1, double sn) {
    table.AddRow({stage, common::StrFormat("%.3f", s1),
                  common::StrFormat("%.3f", sn),
                  common::StrFormat("%.2fx", sn > 0 ? s1 / sn : 0.0)});
  };
  add("labeling (LabelOnTable)", serial.label_s, parallel.label_s);
  add("featurization (FeaturizeBatch)", serial.featurize_s,
      parallel.featurize_s);
  add("GB EstimateBatch", serial.gb_batch_s, parallel.gb_batch_s);
  add("Sampling EstimateBatch", serial.sampling_batch_s,
      parallel.sampling_batch_s);

  // Tracing-cost leg, serial pool (the request path's configuration).
  const TraceOverhead trace = MeasureTraceOverhead(*gb, queries);

  std::printf("Batch pipeline scaling, %zu queries (results byte-identical "
              "across thread counts)\n",
              queries.size());
  table.Print(std::cout);
  std::printf("tracing overhead (GB EstimateBatch, best of 3): "
              "off %.3fs, on %.3fs, overhead %.2f%%\n",
              trace.off_s, trace.on_s, trace.overhead_pct);
  eval::PrintTelemetrySnapshot(std::cout);

  if (!benchmark_out.empty()) {
    if (!WriteBenchmarkOut(benchmark_out, queries.size(), threads, serial,
                           parallel, trace)) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", benchmark_out.c_str());
      std::exit(1);
    }
    std::printf("Wrote %s\n", benchmark_out.c_str());
  }
}

}  // namespace
}  // namespace qfcard::bench

int main(int argc, char** argv) {
  std::string benchmark_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark_out=", 0) == 0) {
      benchmark_out = arg.substr(std::string("--benchmark_out=").size());
    } else if (arg == "--help") {
      std::printf("usage: bench_batch_scaling [--benchmark_out=PATH]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  qfcard::bench::Run(benchmark_out);
  return 0;
}
