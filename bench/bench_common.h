#ifndef QFCARD_BENCH_BENCH_COMMON_H_
#define QFCARD_BENCH_BENCH_COMMON_H_

// Shared setup for the paper-reproduction bench binaries. All sizes honor
// QFCARD_SCALE (smoke / default / full): the paper's counts (580k rows, 100k
// training queries, ...) are the "full" setting; "default" is sized for a
// single CPU core.
//
// All wall-clock timing in benches goes through obs::ScopedTimer so the
// whole repo shares one clock path (src/obs/clock.h) and bench timings can
// flow into the telemetry registry when QFCARD_METRICS is on.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qfcard.h"

namespace qfcard::bench {

inline int ForestRows() {
  return static_cast<int>(common::ScalePick(5000, 25000, 580000));
}
inline int ForestAttrs() {
  return static_cast<int>(common::ScalePick(8, 12, 55));
}
inline int TrainQueries() {
  return static_cast<int>(common::ScalePick(800, 5000, 100000));
}
inline int TestQueries() {
  return static_cast<int>(common::ScalePick(300, 1500, 25000));
}
inline int MaxQueryAttrs() {
  return static_cast<int>(common::ScalePick(5, 8, 55));
}
/// Per-attribute entries n for conjunctive/complex (paper default 64; the
/// reduced default keeps GB training tractable on one core).
inline int DefaultPartitions() {
  return static_cast<int>(common::ScalePick(16, 32, 64));
}

inline ml::GbmParams DefaultGbm() {
  ml::GbmParams params;
  params.num_trees = static_cast<int>(common::ScalePick(60, 150, 300));
  params.max_depth = 6;
  params.learning_rate = 0.1;
  params.early_stopping_rounds = 15;
  return params;
}

inline ml::NnParams DefaultNn() {
  ml::NnParams params;
  params.hidden = {64, 32};
  params.max_steps = static_cast<int>(common::ScalePick(600, 2500, 12000));
  params.max_epochs = 200;
  params.early_stopping_rounds = 8;
  return params;
}

inline ml::MscnParams DefaultMscn() {
  ml::MscnParams params;
  params.hidden = 32;
  params.max_steps = static_cast<int>(common::ScalePick(400, 1800, 8000));
  params.max_epochs = 200;
  params.early_stopping_rounds = 8;
  return params;
}

inline featurize::ConjunctionOptions DefaultConjOptions(
    bool attr_sel = true, int partitions = 0) {
  featurize::ConjunctionOptions opts;
  opts.max_partitions = partitions > 0 ? partitions : DefaultPartitions();
  opts.append_attr_selectivity = attr_sel;
  return opts;
}

/// Registry options carrying the bench-scaled model/featurizer defaults, so
/// benches construct estimators with est::MakeEstimator(name, catalog,
/// DefaultEstimatorOptions()) instead of hand-wiring each combination.
inline est::EstimatorOptions DefaultEstimatorOptions(
    bool attr_sel = true, int partitions = 0) {
  est::EstimatorOptions opts;
  opts.conj = DefaultConjOptions(attr_sel, partitions);
  opts.gbm = DefaultGbm();
  opts.nn = DefaultNn();
  opts.mscn = DefaultMscn();
  return opts;
}

inline std::unique_ptr<ml::Model> MakeModel(const std::string& kind) {
  if (kind == "GB") return std::make_unique<ml::GradientBoosting>(DefaultGbm());
  if (kind == "NN") return std::make_unique<ml::FeedForwardNet>(DefaultNn());
  if (kind == "Linear") return std::make_unique<ml::LinearRegression>();
  return nullptr;
}

/// The forest table plus labeled conjunctive and mixed workloads, built once
/// per bench process.
struct ForestBundle {
  storage::Catalog catalog;
  const storage::Table* forest = nullptr;
  featurize::FeatureSchema schema;
  std::vector<workload::LabeledQuery> conj_train;
  std::vector<workload::LabeledQuery> conj_test;
  std::vector<workload::LabeledQuery> mixed_train;
  std::vector<workload::LabeledQuery> mixed_test;
};

inline ForestBundle MakeForestBundle(bool need_conj = true,
                                     bool need_mixed = true) {
  ForestBundle bundle;
  workload::ForestOptions fopts;
  fopts.num_rows = ForestRows();
  fopts.num_attributes = ForestAttrs();
  QFCARD_CHECK_OK(bundle.catalog.AddTable(workload::MakeForestTable(fopts)));
  bundle.forest = bundle.catalog.GetTable("forest").value();
  bundle.schema = featurize::FeatureSchema::FromTable(*bundle.forest);

  const int n_train = TrainQueries();
  const int n_test = TestQueries();
  obs::ScopedTimer timer("bench.setup_seconds");
  if (need_conj) {
    common::Rng rng(1001);
    const std::vector<query::Query> queries =
        workload::GeneratePredicateWorkload(
            *bundle.forest, 2 * (n_train + n_test),
            workload::ConjunctiveWorkloadOptions(MaxQueryAttrs()), rng);
    std::vector<workload::LabeledQuery> labeled =
        workload::LabelOnTable(*bundle.forest, queries, true).value();
    const size_t test_size =
        std::min<size_t>(static_cast<size_t>(n_test), labeled.size() / 4);
    bundle.conj_test.assign(labeled.end() - static_cast<long>(test_size),
                            labeled.end());
    labeled.resize(labeled.size() - test_size);
    if (labeled.size() > static_cast<size_t>(n_train)) {
      labeled.resize(static_cast<size_t>(n_train));
    }
    bundle.conj_train = std::move(labeled);
  }
  if (need_mixed) {
    common::Rng rng(2002);
    const std::vector<query::Query> queries =
        workload::GeneratePredicateWorkload(
            *bundle.forest, 2 * (n_train + n_test),
            workload::MixedWorkloadOptions(MaxQueryAttrs()), rng);
    std::vector<workload::LabeledQuery> labeled =
        workload::LabelOnTable(*bundle.forest, queries, true).value();
    const size_t test_size =
        std::min<size_t>(static_cast<size_t>(n_test), labeled.size() / 4);
    bundle.mixed_test.assign(labeled.end() - static_cast<long>(test_size),
                             labeled.end());
    labeled.resize(labeled.size() - test_size);
    if (labeled.size() > static_cast<size_t>(n_train)) {
      labeled.resize(static_cast<size_t>(n_train));
    }
    bundle.mixed_train = std::move(labeled);
  }
  std::printf(
      "[setup] forest %d rows x %d attrs; conj %zu/%zu mixed %zu/%zu "
      "(train/test), %.1fs\n\n",
      ForestRows(), ForestAttrs(), bundle.conj_train.size(),
      bundle.conj_test.size(), bundle.mixed_train.size(),
      bundle.mixed_test.size(), timer.Seconds());
  return bundle;
}

/// Builds the four paper QFTs over `schema` keyed by label.
inline std::unique_ptr<featurize::Featurizer> MakeQft(
    const std::string& label, const featurize::FeatureSchema& schema,
    bool attr_sel = true, int partitions = 0) {
  const featurize::ConjunctionOptions opts =
      DefaultConjOptions(attr_sel, partitions);
  if (label == "simple") {
    return featurize::MakeFeaturizer(featurize::QftKind::kSimple, schema);
  }
  if (label == "range") {
    return featurize::MakeFeaturizer(featurize::QftKind::kRange, schema);
  }
  if (label == "conjunctive" || label == "conj") {
    return featurize::MakeFeaturizer(featurize::QftKind::kConjunctive, schema,
                                     opts);
  }
  if (label == "complex" || label == "comp") {
    return featurize::MakeFeaturizer(featurize::QftKind::kComplex, schema,
                                     opts);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// IMDb / JOB-light helpers
// ---------------------------------------------------------------------------

inline int ImdbTitles() {
  return static_cast<int>(common::ScalePick(4000, 15000, 150000));
}
inline int LocalTrainQueries() {
  return static_cast<int>(common::ScalePick(400, 1500, 20000));
}
/// Bound on distinct sub-schemas kept for local-model experiments.
inline int MaxSubSchemas() {
  return static_cast<int>(common::ScalePick(3, 6, 32));
}

struct ImdbBundle {
  workload::ImdbDatabase db;
  std::vector<query::Query> test_queries;  // JOB-light-like
  std::vector<double> test_cards;
  // Distinct sub-schemas of the test queries (most frequent first).
  std::vector<std::vector<std::string>> subschemas;
};

inline std::vector<std::string> TablesOf(const query::Query& q) {
  std::vector<std::string> tables;
  for (const query::TableRef& ref : q.tables) tables.push_back(ref.name);
  return tables;
}

inline ImdbBundle MakeImdbBundle(int max_tables = 4) {
  ImdbBundle bundle;
  workload::ImdbOptions iopts;
  iopts.num_titles = ImdbTitles();
  bundle.db = workload::MakeImdbDatabase(iopts);

  obs::ScopedTimer timer("bench.setup_seconds");
  common::Rng rng(3003);
  workload::JobLightOptions jopts;
  jopts.count = 70;
  jopts.max_tables = max_tables;
  std::vector<query::Query> raw =
      workload::MakeJobLightWorkload(bundle.db, jopts, rng);

  // Keep queries from the most frequent sub-schemas only (bounds the number
  // of local models trained at reduced scale).
  std::map<std::string, int> freq;
  for (const query::Query& q : raw) ++freq[query::SubSchemaKey(TablesOf(q))];
  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [key, count] : freq) ranked.push_back({count, key});
  std::sort(ranked.rbegin(), ranked.rend());
  std::map<std::string, bool> keep;
  for (size_t i = 0;
       i < ranked.size() && static_cast<int>(i) < MaxSubSchemas(); ++i) {
    keep[ranked[i].second] = true;
  }
  std::map<std::string, std::vector<std::string>> kept_tables;
  for (query::Query& q : raw) {
    const std::string key = query::SubSchemaKey(TablesOf(q));
    if (!keep.count(key)) continue;
    kept_tables[key] = TablesOf(q);
    bundle.test_queries.push_back(std::move(q));
  }
  for (const auto& [key, tables] : kept_tables) {
    bundle.subschemas.push_back(tables);
  }
  for (const query::Query& q : bundle.test_queries) {
    bundle.test_cards.push_back(static_cast<double>(
        query::JoinExecutor::Count(bundle.db.catalog, q).value()));
  }
  std::printf(
      "[setup] imdb %d titles; %zu JOB-light-like test queries over %zu "
      "sub-schemas, %.1fs\n\n",
      ImdbTitles(), bundle.test_queries.size(), bundle.subschemas.size(),
      timer.Seconds());
  return bundle;
}

/// Local single-table training workload over a materialized sub-schema join
/// (key columns excluded from predicates), labeled by scanning the
/// materialization.
inline std::pair<std::vector<query::Query>, std::vector<double>>
MakeLocalTraining(const storage::Table& mat, int count, uint64_t seed,
                  int max_attrs = 4) {
  workload::PredicateGenOptions gen;
  gen.max_attrs = max_attrs;
  gen.max_not_equals = 1;
  for (int c = 0; c < mat.num_columns(); ++c) {
    const std::string& name = mat.column(c).name();
    if (name.size() >= 3 && name.substr(name.size() - 3) == ".id") continue;
    if (name.find("movie_id") != std::string::npos) continue;
    gen.allowed_attrs.push_back(c);
  }
  common::Rng rng(seed);
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(mat, count, gen, rng);
  const std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(mat, queries, true).value();
  std::pair<std::vector<query::Query>, std::vector<double>> out;
  for (const workload::LabeledQuery& lq : labeled) {
    out.first.push_back(lq.query);
    out.second.push_back(lq.card);
  }
  return out;
}

/// Lifts a single-table query over a materialized sub-schema join (columns
/// named "<table>.<col>") back to a catalog-level join query over `tables`.
inline common::StatusOr<query::Query> LiftLocalQuery(
    const workload::ImdbDatabase& db, const std::vector<std::string>& tables,
    const storage::Table& mat, const query::Query& local) {
  query::Query out;
  for (const std::string& t : tables) {
    out.tables.push_back(query::TableRef{t, t});
  }
  QFCARD_RETURN_IF_ERROR(db.graph.PopulateJoins(db.catalog, out));
  for (const query::CompoundPredicate& cp : local.predicates) {
    const std::string& name = mat.column(cp.col.column).name();
    const size_t dot = name.find('.');
    if (dot == std::string::npos) {
      return common::Status::Internal("materialized column without prefix");
    }
    const std::string table_name = name.substr(0, dot);
    const std::string col_name = name.substr(dot + 1);
    int slot = -1;
    for (size_t t = 0; t < tables.size(); ++t) {
      if (tables[t] == table_name) slot = static_cast<int>(t);
    }
    if (slot < 0) return common::Status::Internal("unknown table prefix");
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* base,
                            db.catalog.GetTable(table_name));
    QFCARD_ASSIGN_OR_RETURN(const int col, base->ColumnIndex(col_name));
    query::CompoundPredicate rebased = cp;
    rebased.col = query::ColumnRef{slot, col};
    for (query::ConjunctiveClause& clause : rebased.disjuncts) {
      for (query::SimplePredicate& p : clause.preds) p.col = rebased.col;
    }
    out.predicates.push_back(std::move(rebased));
  }
  return out;
}

/// Formats a QErrorSummary as mean/median/p99/max cells.
inline void AddSummaryCells(std::vector<std::string>& row,
                            const ml::QErrorSummary& s) {
  row.push_back(eval::FormatQ(s.mean));
  row.push_back(eval::FormatQ(s.median));
  row.push_back(eval::FormatQ(s.p99));
  row.push_back(eval::FormatQ(s.max));
}

}  // namespace qfcard::bench

#endif  // QFCARD_BENCH_BENCH_COMMON_H_
