// Section 5.5.2 (data drift): when data changes, the paper recommends simply
// reconstructing the estimator, because the expensive step is obtaining
// labeled queries, not featurization or training. This bench measures the
// full reconstruction pipeline stage by stage — query generation + labeling
// (the paper spent 3.5 days on 125k queries), featurization (1.5 minutes),
// and training (GB 6s / NN 21min / MSCN 41min at paper scale) — so the
// *ratios* can be compared to the paper's.
//
// The second half exercises the serve/ recovery loop the paper's
// recommendation implies: a ServingEstimator holds the stale model while a
// Retrainer rebuilds from drifted feedback, promotes only because the
// holdout p95 improves, and hot-swaps — then a deliberately weak candidate
// demonstrates the other side of the promotion gate (rejected, no swap).

#include <filesystem>
#include <iostream>
#include <memory>
#include <utility>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  workload::ForestOptions fopts;
  fopts.num_rows = ForestRows();
  fopts.num_attributes = ForestAttrs();
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& forest = *catalog.GetTable("forest").value();
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(forest);

  const int n_queries = TrainQueries();
  eval::TablePrinter table({"stage", "time", "notes"});

  // Stage 1: generate + label (the dominant cost in the paper).
  obs::ScopedTimer label_timer;
  common::Rng rng(9090);
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(
          forest, n_queries, workload::MixedWorkloadOptions(MaxQueryAttrs()),
          rng);
  const std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(forest, queries, true).value();
  table.AddRow({"generate + label queries",
                common::StrFormat("%.2fs", label_timer.Seconds()),
                common::StrFormat("%zu labeled queries", labeled.size())});

  // Stage 2: featurization (Limited Disjunction Encoding).
  const auto featurizer = MakeQft("complex", schema);
  obs::ScopedTimer feat_timer;
  std::vector<std::vector<float>> features;
  std::vector<float> labels;
  features.reserve(labeled.size());
  for (const workload::LabeledQuery& lq : labeled) {
    features.push_back(featurizer->Featurize(lq.query).value());
    labels.push_back(ml::CardToLabel(lq.card));
  }
  table.AddRow({"featurize (complex)",
                common::StrFormat("%.2fs", feat_timer.Seconds()),
                common::StrFormat("%.1f us/query",
                                  feat_timer.Seconds() * 1e6 /
                                      static_cast<double>(labeled.size()))});
  const ml::Dataset data = ml::Dataset::FromVectors(features, labels).value();

  // Stage 3: training, per model type.
  {
    obs::ScopedTimer timer;
    ml::GradientBoosting gb(DefaultGbm());
    QFCARD_CHECK_OK(gb.Fit(data, nullptr));
    table.AddRow({"train GB", common::StrFormat("%.2fs", timer.Seconds()),
                  common::StrFormat("%d trees", gb.num_trees())});
  }
  {
    obs::ScopedTimer timer;
    ml::FeedForwardNet nn(DefaultNn());
    QFCARD_CHECK_OK(nn.Fit(data, nullptr));
    table.AddRow({"train NN", common::StrFormat("%.2fs", timer.Seconds()),
                  common::StrFormat("%zu params",
                                    nn.SizeBytes() / sizeof(float))});
  }
  {
    obs::ScopedTimer timer;
    query::SchemaGraph empty_graph;
    featurize::MscnFeaturizer mscn_feat(
        &catalog, &empty_graph,
        featurize::MscnFeaturizer::PredMode::kPerAttributeQft,
        DefaultConjOptions());
    est::MscnEstimator mscn(std::move(mscn_feat), DefaultMscn());
    std::vector<query::Query> qs;
    std::vector<double> cards;
    for (const workload::LabeledQuery& lq : labeled) {
      qs.push_back(lq.query);
      cards.push_back(lq.card);
    }
    QFCARD_CHECK_OK(mscn.Train(qs, cards, 0.1));
    table.AddRow({"train MSCN", common::StrFormat("%.2fs", timer.Seconds()),
                  "includes set featurization"});
  }

  std::printf(
      "Section 5.5.2: cost of reconstructing an estimator after data drift\n");
  table.Print(std::cout);
  std::printf(
      "\nPaper-scale reference: 3.5 days generating 125k queries, 1.5 min "
      "featurization, 6 s GB / 21 min NN / 41 min MSCN training. The shape "
      "to reproduce: labeling dominates; GB retrains orders of magnitude "
      "faster than the neural models.\n\n");

  // -------------------------------------------------------------------------
  // Recovery via serve/: stale model keeps serving while the retrainer
  // rebuilds from post-drift feedback and hot-swaps on improvement only.
  // -------------------------------------------------------------------------
  eval::TablePrinter recovery({"step", "time", "p95 q-error", "notes"});

  // v1: the pre-drift model, trained on the labeled workload from stage 1.
  est::EstimatorOptions eopts;
  eopts.gbm = DefaultGbm();
  eopts.conj = DefaultConjOptions();
  std::vector<query::Query> train_qs;
  std::vector<double> train_cards;
  for (const workload::LabeledQuery& lq : labeled) {
    train_qs.push_back(lq.query);
    train_cards.push_back(lq.card);
  }
  auto v1 = est::MakeEstimator("gb+complex", catalog, eopts).value();
  QFCARD_CHECK_OK(v1->Train(train_qs, train_cards, 0.1, 1));
  const std::filesystem::path store_root =
      std::filesystem::temp_directory_path() / "qfcard_bench_drift_store";
  std::filesystem::remove_all(store_root);
  serve::ModelStore store(store_root.string());
  const uint64_t v1_version =
      store.Publish(serve::BundleFromEstimator(*v1, "gb+complex").value())
          .value();
  serve::ServingEstimator serving(
      std::shared_ptr<const est::CardinalityEstimator>(std::move(v1)),
      v1_version);

  // The drifted world: same schema, new latent correlations, 4x fewer rows.
  workload::ForestOptions drift_opts = fopts;
  drift_opts.seed = 977;
  drift_opts.num_rows = ForestRows() / 4;
  const storage::Table drifted = workload::MakeForestTable(drift_opts);
  common::Rng drift_rng(4711);
  const int n_feedback = TestQueries();
  const std::vector<workload::LabeledQuery> feedback =
      workload::LabelOnTable(
          drifted,
          workload::GeneratePredicateWorkload(
              drifted, n_feedback,
              workload::MixedWorkloadOptions(MaxQueryAttrs()), drift_rng),
          true)
          .value();
  const std::vector<workload::LabeledQuery> drift_eval =
      workload::LabelOnTable(
          drifted,
          workload::GeneratePredicateWorkload(
              drifted, n_feedback / 2,
              workload::MixedWorkloadOptions(MaxQueryAttrs()), drift_rng),
          true)
          .value();

  const auto p95_on = [&](const std::vector<workload::LabeledQuery>& set) {
    std::vector<query::Query> qs;
    std::vector<double> truths;
    for (const workload::LabeledQuery& lq : set) {
      qs.push_back(lq.query);
      truths.push_back(lq.card);
    }
    const std::vector<double> est = serving.EstimateBatch(qs).value();
    return ml::QErrorSummary::FromErrors(ml::QErrors(truths, est)).p95;
  };

  const double stale_p95 = p95_on(drift_eval);
  recovery.AddRow({"serve stale v1 on drifted data", "-",
                   eval::FormatQ(stale_p95), "pre-recovery baseline"});

  serve::RetrainerOptions ropts;
  ropts.estimator_name = "gb+complex";
  ropts.estimator_opts = eopts;
  ropts.store = &store;
  serve::Retrainer retrainer(&serving, &catalog, ropts);
  for (const workload::LabeledQuery& lq : feedback) {
    retrainer.AddFeedback(lq.query, lq.card);
  }
  obs::ScopedTimer retrain_timer;
  const serve::RetrainResult promoted = retrainer.RetrainNow().value();
  recovery.AddRow(
      {"retrain + promote (gb+complex)",
       common::StrFormat("%.2fs", retrain_timer.Seconds()),
       common::StrFormat("%.2f -> %.2f", promoted.stale_p95,
                         promoted.candidate_p95),
       promoted.promoted ? common::StrFormat(
                               "promoted v%llu on %zu feedback queries",
                               static_cast<unsigned long long>(
                                   promoted.version),
                               promoted.feedback_used)
                         : promoted.detail});
  const double recovered_p95 = p95_on(drift_eval);
  recovery.AddRow({"serve promoted model on drifted data", "-",
                   eval::FormatQ(recovered_p95),
                   recovered_p95 < stale_p95 ? "recovered" : "NOT recovered"});

  // The gate's other half: a linear model cannot beat the fresh GB on the
  // same feedback, so the retrainer must refuse to swap it in.
  serve::RetrainerOptions weak = ropts;
  weak.estimator_name = "linear+complex";
  serve::Retrainer weak_retrainer(&serving, &catalog, weak);
  for (const workload::LabeledQuery& lq : feedback) {
    weak_retrainer.AddFeedback(lq.query, lq.card);
  }
  const uint64_t swaps_before = serving.SwapCount();
  obs::ScopedTimer weak_timer;
  const serve::RetrainResult rejected = weak_retrainer.RetrainNow().value();
  recovery.AddRow(
      {"weak candidate (linear+complex)",
       common::StrFormat("%.2fs", weak_timer.Seconds()),
       common::StrFormat("%.2f vs %.2f", rejected.candidate_p95,
                         rejected.stale_p95),
       !rejected.promoted && serving.SwapCount() == swaps_before
           ? "rejected, no swap"
           : "UNEXPECTED promotion"});

  std::printf("serve/ drift recovery (store: %s)\n", store.root().c_str());
  recovery.Print(std::cout);
  std::printf(
      "\nThe stale model served every query during the %.1fs retrain; the "
      "swap is one atomic pointer publication (docs/serving.md).\n",
      retrain_timer.Seconds());
  std::filesystem::remove_all(store_root);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
