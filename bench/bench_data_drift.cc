// Section 5.5.2 (data drift): when data changes, the paper recommends simply
// reconstructing the estimator, because the expensive step is obtaining
// labeled queries, not featurization or training. This bench measures the
// full reconstruction pipeline stage by stage — query generation + labeling
// (the paper spent 3.5 days on 125k queries), featurization (1.5 minutes),
// and training (GB 6s / NN 21min / MSCN 41min at paper scale) — so the
// *ratios* can be compared to the paper's.
//
// The second half exercises the serve/ recovery loop the paper's
// recommendation implies: a ServingEstimator holds the stale model while a
// Retrainer rebuilds from drifted feedback, promotes only because the
// holdout p95 improves, and hot-swaps — then a deliberately weak candidate
// demonstrates the other side of the promotion gate (rejected, no swap).
//
// --stream replaces the one-shot recovery with a continuous drift stream
// (docs/adaptive.md): after an instantaneous data drift, every tick
// estimates one live query, executes it (the execution-feedback hook
// publishes the truth into an adapt::FeedbackBus), and the bus fans out to
// both recovery paths — the Retrainer (retrain-only baseline) and the
// adapt::AdaptiveEstimator (kNN + residual tiers in front of the SAME
// shared ServingEstimator). A route-aligned holdout is scored every few
// ticks; the report (kind "drift_stream", tools/bench_schema.json) records
// how many ticks each path needed to recover. With --deterministic the
// report zeroes timings and records threads=0, so the bytes are identical
// at every QFCARD_THREADS (feedback order is the serial tick loop).

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <utility>

#include "bench_common.h"
#include "obs/snapshot.h"

namespace qfcard::bench {
namespace {

void Run() {
  workload::ForestOptions fopts;
  fopts.num_rows = ForestRows();
  fopts.num_attributes = ForestAttrs();
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& forest = *catalog.GetTable("forest").value();
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(forest);

  const int n_queries = TrainQueries();
  eval::TablePrinter table({"stage", "time", "notes"});

  // Stage 1: generate + label (the dominant cost in the paper).
  obs::ScopedTimer label_timer;
  common::Rng rng(9090);
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(
          forest, n_queries, workload::MixedWorkloadOptions(MaxQueryAttrs()),
          rng);
  const std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(forest, queries, true).value();
  table.AddRow({"generate + label queries",
                common::StrFormat("%.2fs", label_timer.Seconds()),
                common::StrFormat("%zu labeled queries", labeled.size())});

  // Stage 2: featurization (Limited Disjunction Encoding).
  const auto featurizer = MakeQft("complex", schema);
  obs::ScopedTimer feat_timer;
  std::vector<std::vector<float>> features;
  std::vector<float> labels;
  features.reserve(labeled.size());
  for (const workload::LabeledQuery& lq : labeled) {
    features.push_back(featurizer->Featurize(lq.query).value());
    labels.push_back(ml::CardToLabel(lq.card));
  }
  table.AddRow({"featurize (complex)",
                common::StrFormat("%.2fs", feat_timer.Seconds()),
                common::StrFormat("%.1f us/query",
                                  feat_timer.Seconds() * 1e6 /
                                      static_cast<double>(labeled.size()))});
  const ml::Dataset data = ml::Dataset::FromVectors(features, labels).value();

  // Stage 3: training, per model type.
  {
    obs::ScopedTimer timer;
    ml::GradientBoosting gb(DefaultGbm());
    QFCARD_CHECK_OK(gb.Fit(data, nullptr));
    table.AddRow({"train GB", common::StrFormat("%.2fs", timer.Seconds()),
                  common::StrFormat("%d trees", gb.num_trees())});
  }
  {
    obs::ScopedTimer timer;
    ml::FeedForwardNet nn(DefaultNn());
    QFCARD_CHECK_OK(nn.Fit(data, nullptr));
    table.AddRow({"train NN", common::StrFormat("%.2fs", timer.Seconds()),
                  common::StrFormat("%zu params",
                                    nn.SizeBytes() / sizeof(float))});
  }
  {
    obs::ScopedTimer timer;
    query::SchemaGraph empty_graph;
    featurize::MscnFeaturizer mscn_feat(
        &catalog, &empty_graph,
        featurize::MscnFeaturizer::PredMode::kPerAttributeQft,
        DefaultConjOptions());
    est::MscnEstimator mscn(std::move(mscn_feat), DefaultMscn());
    std::vector<query::Query> qs;
    std::vector<double> cards;
    for (const workload::LabeledQuery& lq : labeled) {
      qs.push_back(lq.query);
      cards.push_back(lq.card);
    }
    QFCARD_CHECK_OK(mscn.Train(qs, cards, 0.1));
    table.AddRow({"train MSCN", common::StrFormat("%.2fs", timer.Seconds()),
                  "includes set featurization"});
  }

  std::printf(
      "Section 5.5.2: cost of reconstructing an estimator after data drift\n");
  table.Print(std::cout);
  std::printf(
      "\nPaper-scale reference: 3.5 days generating 125k queries, 1.5 min "
      "featurization, 6 s GB / 21 min NN / 41 min MSCN training. The shape "
      "to reproduce: labeling dominates; GB retrains orders of magnitude "
      "faster than the neural models.\n\n");

  // -------------------------------------------------------------------------
  // Recovery via serve/: stale model keeps serving while the retrainer
  // rebuilds from post-drift feedback and hot-swaps on improvement only.
  // -------------------------------------------------------------------------
  eval::TablePrinter recovery({"step", "time", "p95 q-error", "notes"});

  // v1: the pre-drift model, trained on the labeled workload from stage 1.
  est::EstimatorOptions eopts;
  eopts.gbm = DefaultGbm();
  eopts.conj = DefaultConjOptions();
  std::vector<query::Query> train_qs;
  std::vector<double> train_cards;
  for (const workload::LabeledQuery& lq : labeled) {
    train_qs.push_back(lq.query);
    train_cards.push_back(lq.card);
  }
  auto v1 = est::MakeEstimator("gb+complex", catalog, eopts).value();
  QFCARD_CHECK_OK(v1->Train(train_qs, train_cards, 0.1, 1));
  const std::filesystem::path store_root =
      std::filesystem::temp_directory_path() / "qfcard_bench_drift_store";
  std::filesystem::remove_all(store_root);
  serve::ModelStore store(store_root.string());
  const uint64_t v1_version =
      store.Publish(serve::BundleFromEstimator(*v1, "gb+complex").value())
          .value();
  serve::ServingEstimator serving(
      std::shared_ptr<const est::CardinalityEstimator>(std::move(v1)),
      v1_version);

  // The drifted world: same schema, new latent correlations, 4x fewer rows.
  workload::ForestOptions drift_opts = fopts;
  drift_opts.seed = 977;
  drift_opts.num_rows = ForestRows() / 4;
  const storage::Table drifted = workload::MakeForestTable(drift_opts);
  common::Rng drift_rng(4711);
  const int n_feedback = TestQueries();
  const std::vector<workload::LabeledQuery> feedback =
      workload::LabelOnTable(
          drifted,
          workload::GeneratePredicateWorkload(
              drifted, n_feedback,
              workload::MixedWorkloadOptions(MaxQueryAttrs()), drift_rng),
          true)
          .value();
  const std::vector<workload::LabeledQuery> drift_eval =
      workload::LabelOnTable(
          drifted,
          workload::GeneratePredicateWorkload(
              drifted, n_feedback / 2,
              workload::MixedWorkloadOptions(MaxQueryAttrs()), drift_rng),
          true)
          .value();

  const auto p95_on = [&](const std::vector<workload::LabeledQuery>& set) {
    std::vector<query::Query> qs;
    std::vector<double> truths;
    for (const workload::LabeledQuery& lq : set) {
      qs.push_back(lq.query);
      truths.push_back(lq.card);
    }
    const std::vector<double> est = serving.EstimateBatch(qs).value();
    return ml::QErrorSummary::FromErrors(ml::QErrors(truths, est)).p95;
  };

  const double stale_p95 = p95_on(drift_eval);
  recovery.AddRow({"serve stale v1 on drifted data", "-",
                   eval::FormatQ(stale_p95), "pre-recovery baseline"});

  serve::RetrainerOptions ropts;
  ropts.estimator_name = "gb+complex";
  ropts.estimator_opts = eopts;
  ropts.store = &store;
  serve::Retrainer retrainer(&serving, &catalog, ropts);
  for (const workload::LabeledQuery& lq : feedback) {
    retrainer.AddFeedback(lq.query, lq.card);
  }
  obs::ScopedTimer retrain_timer;
  const serve::RetrainResult promoted = retrainer.RetrainNow().value();
  recovery.AddRow(
      {"retrain + promote (gb+complex)",
       common::StrFormat("%.2fs", retrain_timer.Seconds()),
       common::StrFormat("%.2f -> %.2f", promoted.stale_p95,
                         promoted.candidate_p95),
       promoted.promoted ? common::StrFormat(
                               "promoted v%llu on %zu feedback queries",
                               static_cast<unsigned long long>(
                                   promoted.version),
                               promoted.feedback_used)
                         : promoted.detail});
  const double recovered_p95 = p95_on(drift_eval);
  recovery.AddRow({"serve promoted model on drifted data", "-",
                   eval::FormatQ(recovered_p95),
                   recovered_p95 < stale_p95 ? "recovered" : "NOT recovered"});

  // The gate's other half: a linear model cannot beat the fresh GB on the
  // same feedback, so the retrainer must refuse to swap it in.
  serve::RetrainerOptions weak = ropts;
  weak.estimator_name = "linear+complex";
  serve::Retrainer weak_retrainer(&serving, &catalog, weak);
  for (const workload::LabeledQuery& lq : feedback) {
    weak_retrainer.AddFeedback(lq.query, lq.card);
  }
  const uint64_t swaps_before = serving.SwapCount();
  obs::ScopedTimer weak_timer;
  const serve::RetrainResult rejected = weak_retrainer.RetrainNow().value();
  recovery.AddRow(
      {"weak candidate (linear+complex)",
       common::StrFormat("%.2fs", weak_timer.Seconds()),
       common::StrFormat("%.2f vs %.2f", rejected.candidate_p95,
                         rejected.stale_p95),
       !rejected.promoted && serving.SwapCount() == swaps_before
           ? "rejected, no swap"
           : "UNEXPECTED promotion"});

  std::printf("serve/ drift recovery (store: %s)\n", store.root().c_str());
  recovery.Print(std::cout);
  std::printf(
      "\nThe stale model served every query during the %.1fs retrain; the "
      "swap is one atomic pointer publication (docs/serving.md).\n",
      retrain_timer.Seconds());
  std::filesystem::remove_all(store_root);
}

// ---------------------------------------------------------------------------
// --stream: continuous drift stream (docs/adaptive.md)
// ---------------------------------------------------------------------------

struct StreamFlags {
  bool stream = false;
  bool deterministic = false;
  std::string stream_out;   // BENCH_drift_stream.json path
  std::string metrics_out;  // obs snapshot path
  uint64_t seed = 20230808;
};

int StreamTicks() { return static_cast<int>(common::ScalePick(320, 600, 4000)); }
int StreamEvalEvery() { return static_cast<int>(common::ScalePick(20, 40, 200)); }
int StreamHoldout() { return static_cast<int>(common::ScalePick(80, 200, 600)); }
/// Cap on distinct feature-space routes the stream concentrates on: few
/// enough that every route gets dense feedback, so tier switches have
/// evidence. Routes are added densest-first until the stream is covered.
constexpr int kMaxStreamRoutes = 8;
/// Query-shape width of the live traffic: narrow on purpose (the stream
/// models a hot application pattern, not the full ad-hoc mix) so routes
/// repeat and the per-route windows fill within a few dozen ticks.
int StreamMaxAttrs() { return std::min(3, MaxQueryAttrs()); }

std::string JNum(double v) {
  if (!std::isfinite(v)) return "0";
  return common::StrFormat("%.6g", v);
}

/// p95 q-error of `serving_like` over the labeled holdout.
double HoldoutP95(const est::CardinalityEstimator& estimator,
                  const std::vector<workload::LabeledQuery>& holdout) {
  std::vector<query::Query> qs;
  std::vector<double> truths;
  qs.reserve(holdout.size());
  for (const workload::LabeledQuery& lq : holdout) {
    qs.push_back(lq.query);
    truths.push_back(lq.card);
  }
  const std::vector<double> est = estimator.EstimateBatch(qs).value();
  return ml::QErrorSummary::FromErrors(ml::QErrors(truths, est)).p95;
}

struct EvalPoint {
  int tick = 0;
  double retrain_p95 = 0.0;
  double adaptive_p95 = 0.0;
  // Tiers the adaptive front served on stream queries since the last eval.
  int served_residual = 0;
  int served_knn = 0;
  int served_ml = 0;
};

int RunStream(const StreamFlags& flags) {
  // Pre-drift world: train v1 (gb+complex) exactly like the one-shot half.
  workload::ForestOptions fopts;
  fopts.num_rows = ForestRows();
  fopts.num_attributes = ForestAttrs();
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& forest = *catalog.GetTable("forest").value();
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(forest);

  common::Rng rng(flags.seed);
  const std::vector<workload::LabeledQuery> pre_drift =
      workload::LabelOnTable(
          forest,
          workload::GeneratePredicateWorkload(
              forest, TrainQueries(),
              workload::MixedWorkloadOptions(MaxQueryAttrs()), rng),
          true)
          .value();
  est::EstimatorOptions eopts;
  eopts.gbm = DefaultGbm();
  eopts.conj = DefaultConjOptions();
  std::vector<query::Query> train_qs;
  std::vector<double> train_cards;
  for (const workload::LabeledQuery& lq : pre_drift) {
    train_qs.push_back(lq.query);
    train_cards.push_back(lq.card);
  }
  auto v1 = est::MakeEstimator("gb+complex", catalog, eopts).value();
  QFCARD_CHECK_OK(v1->Train(train_qs, train_cards, 0.1, 1));
  auto serving = std::make_shared<serve::ServingEstimator>(
      std::shared_ptr<const est::CardinalityEstimator>(std::move(v1)), 1);

  // The stale synopses tier: Postgres-style statistics built BEFORE the
  // drift. The residual corrector has to recover them from feedback alone.
  auto base = std::shared_ptr<const est::CardinalityEstimator>(
      est::MakeEstimator("postgres", catalog, eopts).value());
  auto featurizer = std::shared_ptr<const featurize::Featurizer>(
      MakeQft("complex", schema).release());

  // Instantaneous drift: new latent correlations, 4x fewer rows.
  workload::ForestOptions drift_opts = fopts;
  drift_opts.seed = 977;
  drift_opts.num_rows = ForestRows() / 4;
  const storage::Table drifted = workload::MakeForestTable(drift_opts);

  // Live traffic: one query pool over the drifted data, concentrated on the
  // densest feature-space routes so every route accumulates evidence. The
  // holdout comes from the SAME routes (it measures the traffic the stream
  // serves) and is labeled BEFORE the feedback hook is installed — nothing
  // the learners train on.
  const int ticks = StreamTicks();
  common::Rng stream_rng(common::MixSeed(flags.seed, 7));
  // Generation is cheap (only the holdout is labeled), and route density is
  // what matters: a big pool filtered to its densest routes yields a stream
  // of mostly-distinct queries per route instead of verbatim repeats.
  const std::vector<query::Query> pool = workload::GeneratePredicateWorkload(
      drifted, 40 * (ticks + StreamHoldout()),
      workload::MixedWorkloadOptions(StreamMaxAttrs()), stream_rng);
  std::map<uint64_t, int> route_freq;
  for (const query::Query& q : pool) ++route_freq[serve::FeatureSpaceHash(q)];
  std::vector<std::pair<int, uint64_t>> ranked;
  for (const auto& [fss, count] : route_freq) ranked.push_back({count, fss});
  std::sort(ranked.rbegin(), ranked.rend());
  std::map<uint64_t, bool> kept_routes;
  int covered = 0;
  for (const auto& [count, fss] : ranked) {
    if (static_cast<int>(kept_routes.size()) >= kMaxStreamRoutes) break;
    if (covered >= ticks + StreamHoldout()) break;
    kept_routes[fss] = true;
    covered += count;
  }
  // Interleaved split: every 4th kept query goes to the holdout (up to the
  // scale budget), the rest become the tick stream — same routes, same
  // literal distribution, disjoint queries.
  std::vector<query::Query> kept;
  std::vector<query::Query> holdout_qs;
  for (const query::Query& q : pool) {
    if (!kept_routes.count(serve::FeatureSpaceHash(q))) continue;
    if ((kept.size() + holdout_qs.size()) % 4 == 3 &&
        holdout_qs.size() < static_cast<size_t>(StreamHoldout())) {
      holdout_qs.push_back(q);
    } else {
      kept.push_back(q);
    }
  }
  if (kept.size() < 8 || holdout_qs.size() < 8) {
    std::fprintf(stderr,
                 "bench_data_drift: top routes too sparse (%zu stream / %zu "
                 "holdout queries)\n",
                 kept.size(), holdout_qs.size());
    return 1;
  }
  const std::vector<workload::LabeledQuery> holdout =
      workload::LabelOnTable(drifted, holdout_qs, true).value();

  // Both recovery paths share ONE ServingEstimator: retrain swaps land
  // under the adaptive front too, so the report isolates what the online
  // tiers add on top of (not instead of) the paper's retrain loop.
  serve::RetrainerOptions ropts;
  ropts.estimator_name = "gb+complex";
  ropts.estimator_opts = eopts;
  serve::Retrainer retrainer(serving.get(), &catalog, ropts);

  adapt::AdaptiveOptions aopts;
  aopts.mode = adapt::AdaptiveMode::kAuto;
  aopts.arbiter.window = 32;
  aopts.arbiter.min_samples = 6;
  aopts.arbiter.hold_observations = 12;
  adapt::AdaptiveEstimator adaptive(base, serving, featurizer, aopts);
  adaptive.TrackServingVersion(serving.get());

  adapt::FeedbackBus bus;
  const uint64_t retrain_sub =
      bus.Subscribe([&retrainer](const adapt::FeedbackRecord& r) {
        retrainer.AddFeedback(r.query, r.true_card);
      });
  adaptive.ConnectTo(&bus);

  // Baseline before any feedback: both paths serve the stale v1 model
  // (empty learners fall through to ML), so they start from the same p95.
  const double stale_p95 = HoldoutP95(*serving, holdout);
  const double threshold = std::max(1.5, stale_p95 * 0.5);
  std::printf(
      "drift stream: %d ticks over %zu routes, holdout %zu queries\n"
      "stale holdout p95 %.2f, recovery threshold %.2f\n\n",
      ticks, kept_routes.size(), holdout.size(), stale_p95, threshold);

  std::vector<EvalPoint> timeline;
  {
    EvalPoint p0;
    p0.retrain_p95 = stale_p95;
    p0.adaptive_p95 = HoldoutP95(adaptive, holdout);
    timeline.push_back(p0);
  }

  obs::ScopedTimer wall_timer;
  const int swap_tick = ticks * 3 / 5;
  serve::RetrainResult retrain_result;
  int tiers_r = 0, tiers_k = 0, tiers_m = 0;
  {
    // From here on, every executed count(*) feeds the bus.
    adapt::ExecutionFeedbackConnection conn(&bus);
    for (int tick = 1; tick <= ticks; ++tick) {
      const query::Query& q = kept[static_cast<size_t>(tick - 1) % kept.size()];
      // Predict BEFORE executing: the adaptive front must answer the live
      // query without having seen its truth (predict-then-learn, the same
      // order the arbiter's counterfactual scoring uses).
      est::EstimateRequest request;
      request.query = q;
      const est::EstimateResponse response = adaptive.Estimate(request).value();
      switch (response.tier) {
        case est::ServedTier::kHistogramResidual: ++tiers_r; break;
        case est::ServedTier::kKnn: ++tiers_k; break;
        default: ++tiers_m; break;
      }
      // Execute: the hook publishes (query, truth) into the bus, which fans
      // out to the retrainer and the adaptive learners.
      QFCARD_CHECK_OK(query::Executor::Count(drifted, q).status());

      // The retrain-only path recovers the paper's way: one full rebuild
      // once enough drifted feedback accumulated.
      if (tick == swap_tick) {
        retrain_result = retrainer.RetrainNow().value();
        std::printf("[tick %4d] retrain: %s\n", tick,
                    retrain_result.promoted
                        ? common::StrFormat(
                              "promoted v%llu (holdout p95 %.2f -> %.2f)",
                              static_cast<unsigned long long>(
                                  retrain_result.version),
                              retrain_result.stale_p95,
                              retrain_result.candidate_p95)
                              .c_str()
                        : retrain_result.detail.c_str());
      }
      if (tick % StreamEvalEvery() == 0) {
        EvalPoint p;
        p.tick = tick;
        p.retrain_p95 = HoldoutP95(*serving, holdout);
        p.adaptive_p95 = HoldoutP95(adaptive, holdout);
        p.served_residual = tiers_r;
        p.served_knn = tiers_k;
        p.served_ml = tiers_m;
        tiers_r = tiers_k = tiers_m = 0;
        timeline.push_back(p);
        std::printf(
            "[tick %4d] holdout p95: retrain-only %8.2f | adaptive %8.2f "
            "(served r/k/m %d/%d/%d)\n",
            p.tick, p.retrain_p95, p.adaptive_p95, p.served_residual,
            p.served_knn, p.served_ml);
      }
    }
  }
  const double wall_seconds = flags.deterministic ? 0.0 : wall_timer.Seconds();
  adaptive.Disconnect();
  bus.Unsubscribe(retrain_sub);

  // Tier arbitration history — the greppable promotion evidence.
  const std::vector<adapt::TierArbiter::TierSwitch> switches =
      adaptive.arbiter().RecentSwitches();
  int promotions = 0;
  std::printf("\ntier switches (%zu):\n", switches.size());
  for (const adapt::TierArbiter::TierSwitch& s : switches) {
    const bool promotion = static_cast<int>(s.to) > static_cast<int>(s.from);
    promotions += promotion ? 1 : 0;
    std::printf("  route %016llx: %s->%s (p95 %.2f vs %.2f)%s\n",
                static_cast<unsigned long long>(s.fss),
                est::ServedTierName(s.from), est::ServedTierName(s.to),
                s.from_p95, s.to_p95, promotion ? " [promotion]" : "");
  }

  // Recovery: first eval tick at or below the threshold, per path.
  int retrain_recovery = -1, adaptive_recovery = -1;
  int retrain_stale_ticks = 0, adaptive_stale_ticks = 0;
  for (const EvalPoint& p : timeline) {
    if (retrain_recovery < 0 && p.retrain_p95 <= threshold) {
      retrain_recovery = p.tick;
    }
    if (adaptive_recovery < 0 && p.adaptive_p95 <= threshold) {
      adaptive_recovery = p.tick;
    }
    retrain_stale_ticks += p.retrain_p95 > threshold ? 1 : 0;
    adaptive_stale_ticks += p.adaptive_p95 > threshold ? 1 : 0;
  }
  const bool faster =
      adaptive_recovery >= 0 &&
      (retrain_recovery < 0 || adaptive_recovery < retrain_recovery);
  std::printf(
      "\nrecovery to p95 <= %.2f: adaptive tick %d, retrain-only tick %d\n%s\n",
      threshold, adaptive_recovery, retrain_recovery,
      faster ? "adaptive recovered faster than retrain-only"
             : "adaptive NOT faster than retrain-only");

  if (!flags.stream_out.empty()) {
    const EvalPoint& last = timeline.back();
    std::string out = "{\"version\":1,\"kind\":\"drift_stream\"";
    out += ",\"name\":\"drift_stream\"";
    out += ",\"context\":{\"scale\":\"" +
           std::string(common::ScaleName(common::GetScale())) + "\"";
    out += common::StrFormat(
        ",\"threads\":%d",
        flags.deterministic ? 0 : common::GlobalPool().num_threads());
    out += common::StrFormat(",\"seed\":%llu",
                             static_cast<unsigned long long>(flags.seed));
    out += std::string(",\"deterministic\":") +
           (flags.deterministic ? "true" : "false") + "}";
    out += ",\"timeline\":[";
    for (size_t i = 0; i < timeline.size(); ++i) {
      const EvalPoint& p = timeline[i];
      if (i > 0) out += ",";
      out += common::StrFormat("{\"tick\":%d", p.tick);
      out += ",\"retrain_p95\":" + JNum(p.retrain_p95);
      out += ",\"adaptive_p95\":" + JNum(p.adaptive_p95);
      out += common::StrFormat(
          ",\"served\":{\"residual\":%d,\"knn\":%d,\"ml\":%d}}",
          p.served_residual, p.served_knn, p.served_ml);
    }
    out += "],\"metrics\":[";
    const auto metric = [&out](const char* name, const char* unit, double v,
                               bool first = false) {
      if (!first) out += ",";
      out += common::StrFormat("{\"name\":\"%s\",\"unit\":\"%s\",\"value\":",
                               name, unit) +
             JNum(v) + "}";
    };
    metric("ticks", "count", ticks, true);
    metric("routes", "count", static_cast<double>(kept_routes.size()));
    metric("holdout_queries", "count", static_cast<double>(holdout.size()));
    metric("feedback_records", "count", static_cast<double>(bus.published()));
    metric("tier_switches", "count",
           static_cast<double>(adaptive.arbiter().switches()));
    metric("promotions", "count", promotions);
    metric("retrain_swap_tick", "tick", swap_tick);
    metric("retrain_promoted", "bool", retrain_result.promoted ? 1 : 0);
    metric("stale_holdout_p95", "qerror", stale_p95);
    metric("recovery_threshold", "qerror", threshold);
    metric("adaptive_recovery_tick", "tick", adaptive_recovery);
    metric("retrain_recovery_tick", "tick", retrain_recovery);
    metric("adaptive_stale_ticks", "count", adaptive_stale_ticks);
    metric("retrain_stale_ticks", "count", retrain_stale_ticks);
    metric("adaptive_final_p95", "qerror", last.adaptive_p95);
    metric("retrain_final_p95", "qerror", last.retrain_p95);
    metric("wall_seconds", "seconds", wall_seconds);
    out += "]}\n";
    std::ofstream file(flags.stream_out);
    if (!file) {
      std::fprintf(stderr, "bench_data_drift: cannot write %s\n",
                   flags.stream_out.c_str());
      return 1;
    }
    file << out;
    std::printf("wrote %s\n", flags.stream_out.c_str());
  }
  if (!flags.metrics_out.empty() &&
      !obs::WriteSnapshotJson(flags.metrics_out)) {
    std::fprintf(stderr, "bench_data_drift: cannot write %s\n",
                 flags.metrics_out.c_str());
    return 1;
  }
  return 0;
}

bool ParseStreamFlags(int argc, char** argv, StreamFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--stream") {
      flags->stream = true;
    } else if (arg == "--deterministic") {
      flags->deterministic = true;
    } else if (arg.rfind("--stream-out=", 0) == 0) {
      flags->stream_out = value("--stream-out=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      flags->metrics_out = value("--metrics-out=");
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags->seed = static_cast<uint64_t>(
          std::strtoull(value("--seed=").c_str(), nullptr, 10));
    } else {
      std::fprintf(
          stderr,
          "bench_data_drift: unknown flag '%s'\n"
          "usage: bench_data_drift [--stream] [--deterministic] [--seed=N]\n"
          "                        [--stream-out=PATH] [--metrics-out=PATH]\n",
          arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace qfcard::bench

int main(int argc, char** argv) {
  qfcard::bench::StreamFlags flags;
  if (!qfcard::bench::ParseStreamFlags(argc, argv, &flags)) return 2;
  if (!flags.metrics_out.empty()) qfcard::obs::SetMetricsEnabled(true);
  if (flags.stream) return qfcard::bench::RunStream(flags);
  qfcard::bench::Run();
  return 0;
}
