// Section 5.5.2 (data drift): when data changes, the paper recommends simply
// reconstructing the estimator, because the expensive step is obtaining
// labeled queries, not featurization or training. This bench measures the
// full reconstruction pipeline stage by stage — query generation + labeling
// (the paper spent 3.5 days on 125k queries), featurization (1.5 minutes),
// and training (GB 6s / NN 21min / MSCN 41min at paper scale) — so the
// *ratios* can be compared to the paper's.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  workload::ForestOptions fopts;
  fopts.num_rows = ForestRows();
  fopts.num_attributes = ForestAttrs();
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& forest = *catalog.GetTable("forest").value();
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(forest);

  const int n_queries = TrainQueries();
  eval::TablePrinter table({"stage", "time", "notes"});

  // Stage 1: generate + label (the dominant cost in the paper).
  obs::ScopedTimer label_timer;
  common::Rng rng(9090);
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(
          forest, n_queries, workload::MixedWorkloadOptions(MaxQueryAttrs()),
          rng);
  const std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(forest, queries, true).value();
  table.AddRow({"generate + label queries",
                common::StrFormat("%.2fs", label_timer.Seconds()),
                common::StrFormat("%zu labeled queries", labeled.size())});

  // Stage 2: featurization (Limited Disjunction Encoding).
  const auto featurizer = MakeQft("complex", schema);
  obs::ScopedTimer feat_timer;
  std::vector<std::vector<float>> features;
  std::vector<float> labels;
  features.reserve(labeled.size());
  for (const workload::LabeledQuery& lq : labeled) {
    features.push_back(featurizer->Featurize(lq.query).value());
    labels.push_back(ml::CardToLabel(lq.card));
  }
  table.AddRow({"featurize (complex)",
                common::StrFormat("%.2fs", feat_timer.Seconds()),
                common::StrFormat("%.1f us/query",
                                  feat_timer.Seconds() * 1e6 /
                                      static_cast<double>(labeled.size()))});
  const ml::Dataset data = ml::Dataset::FromVectors(features, labels).value();

  // Stage 3: training, per model type.
  {
    obs::ScopedTimer timer;
    ml::GradientBoosting gb(DefaultGbm());
    QFCARD_CHECK_OK(gb.Fit(data, nullptr));
    table.AddRow({"train GB", common::StrFormat("%.2fs", timer.Seconds()),
                  common::StrFormat("%d trees", gb.num_trees())});
  }
  {
    obs::ScopedTimer timer;
    ml::FeedForwardNet nn(DefaultNn());
    QFCARD_CHECK_OK(nn.Fit(data, nullptr));
    table.AddRow({"train NN", common::StrFormat("%.2fs", timer.Seconds()),
                  common::StrFormat("%zu params",
                                    nn.SizeBytes() / sizeof(float))});
  }
  {
    obs::ScopedTimer timer;
    query::SchemaGraph empty_graph;
    featurize::MscnFeaturizer mscn_feat(
        &catalog, &empty_graph,
        featurize::MscnFeaturizer::PredMode::kPerAttributeQft,
        DefaultConjOptions());
    est::MscnEstimator mscn(std::move(mscn_feat), DefaultMscn());
    std::vector<query::Query> qs;
    std::vector<double> cards;
    for (const workload::LabeledQuery& lq : labeled) {
      qs.push_back(lq.query);
      cards.push_back(lq.card);
    }
    QFCARD_CHECK_OK(mscn.Train(qs, cards, 0.1));
    table.AddRow({"train MSCN", common::StrFormat("%.2fs", timer.Seconds()),
                  "includes set featurization"});
  }

  std::printf(
      "Section 5.5.2: cost of reconstructing an estimator after data drift\n");
  table.Print(std::cout);
  std::printf(
      "\nPaper-scale reference: 3.5 days generating 125k queries, 1.5 min "
      "featurization, 6 s GB / 21 min NN / 41 min MSCN training. The shape "
      "to reproduce: labeling dominates; GB retrains orders of magnitude "
      "faster than the neural models.\n");
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
