// Figure 1: q-error distribution per QFT x ML model combination on the
// forest data set. simple/range/conjunctive run on the conjunctive workload;
// complex runs on the mixed workload (separated in the paper by a vertical
// line). MSCN rows use the set featurization: "simple" corresponds to the
// original per-predicate mode, "range" to a per-attribute range mode, and
// "conjunctive"/"complex" to the per-attribute QFT mode of Section 4.2.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle();
  eval::TablePrinter table(
      {"model", "qft", "workload", "box (p1 | p25 [med] p75 | p99 (max))",
       "mean", "train s"});

  const std::vector<std::string> qfts{"simple", "range", "conjunctive",
                                      "complex"};
  for (const std::string model_kind : {"GB", "NN"}) {
    for (const std::string& qft : qfts) {
      const bool mixed = qft == "complex";
      const auto& train = mixed ? bundle.mixed_train : bundle.conj_train;
      const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
      const auto featurizer = MakeQft(qft, bundle.schema);
      const auto model = MakeModel(model_kind);
      const auto result_or =
          eval::RunQftModel(*featurizer, *model, train, test);
      if (!result_or.ok()) {
        std::fprintf(stderr, "%s+%s failed: %s\n", model_kind.c_str(),
                     qft.c_str(), result_or.status().ToString().c_str());
        continue;
      }
      const eval::RunResult& r = result_or.value();
      table.AddRow({model_kind, qft, mixed ? "mixed" : "conjunctive",
                    eval::FormatBox(r.summary), eval::FormatQ(r.summary.mean),
                    common::StrFormat("%.1f", r.train_seconds)});
    }
  }

  // MSCN (global model applied to the single-table forest catalog).
  for (const std::string& qft : qfts) {
    const bool mixed = qft == "complex";
    const auto& train = mixed ? bundle.mixed_train : bundle.conj_train;
    const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
    query::SchemaGraph empty_graph;
    const featurize::MscnFeaturizer::PredMode mode =
        qft == "simple"
            ? featurize::MscnFeaturizer::PredMode::kPerPredicate
        : qft == "range"
            ? featurize::MscnFeaturizer::PredMode::kPerAttributeRange
            : featurize::MscnFeaturizer::PredMode::kPerAttributeQft;
    featurize::MscnFeaturizer featurizer(&bundle.catalog, &empty_graph, mode,
                                         DefaultConjOptions());
    est::MscnEstimator estimator(std::move(featurizer), DefaultMscn());
    std::vector<query::Query> queries;
    std::vector<double> cards;
    for (const workload::LabeledQuery& lq : train) {
      queries.push_back(lq.query);
      cards.push_back(lq.card);
    }
    obs::ScopedTimer timer;
    QFCARD_CHECK_OK(estimator.Train(queries, cards, 0.1));
    const double train_seconds = timer.Seconds();
    std::vector<double> errors;
    for (const workload::LabeledQuery& lq : test) {
      const auto est_or = estimator.EstimateCard(lq.query);
      if (!est_or.ok()) continue;
      errors.push_back(ml::QError(lq.card, est_or.value()));
    }
    const ml::QErrorSummary s = ml::QErrorSummary::FromErrors(errors);
    table.AddRow({"MSCN", qft, mixed ? "mixed" : "conjunctive",
                  eval::FormatBox(s), eval::FormatQ(s.mean),
                  common::StrFormat("%.1f", train_seconds)});
  }

  std::printf("Figure 1: error distribution by QFT x ML model (forest)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
