// Figure 2: estimation errors per QFT as a function of the number of
// attributes mentioned in the query (GB only, as in the paper; NN
// underperforms GB everywhere and MSCN is worse on joins).
// simple/range/conjunctive use the conjunctive workload; complex uses the
// mixed workload.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle();
  const std::vector<int> buckets{1, 2, 3, 5, 8};

  eval::TablePrinter table(
      {"qft", "#attrs", "box (p1 | p25 [med] p75 | p99 (max))", "mean", "n"});
  for (const std::string qft : {"simple", "range", "conjunctive", "complex"}) {
    const bool mixed = qft == "complex";
    const auto& train = mixed ? bundle.mixed_train : bundle.conj_train;
    const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
    const auto featurizer = MakeQft(qft, bundle.schema);
    const auto model = MakeModel("GB");
    const auto result_or = eval::RunQftModel(*featurizer, *model, train, test);
    QFCARD_CHECK_OK(result_or.status());
    const std::map<int, ml::QErrorSummary> grouped = eval::SummarizeByGroup(
        result_or.value().qerrors,
        eval::BucketizeGroups(eval::NumAttributesOf(test), buckets));
    for (const auto& [bucket, summary] : grouped) {
      table.AddRow({qft, std::to_string(bucket), eval::FormatBox(summary),
                    eval::FormatQ(summary.mean),
                    std::to_string(summary.count)});
    }
  }
  std::printf(
      "Figure 2: GB estimation errors per QFT by #attributes (forest)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
