// Figure 3: estimation errors per QFT as a function of the number of simple
// predicates in the query (GB only). Two predicates = one closed range;
// three = a range plus one not-equal, where Range Predicate Encoding starts
// losing information (the paper's spike in the 99% whisker).

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle();
  const std::vector<int> buckets{2, 3, 4, 6, 8, 12};

  eval::TablePrinter table(
      {"qft", "#preds", "box (p1 | p25 [med] p75 | p99 (max))", "mean", "n"});
  for (const std::string qft : {"simple", "range", "conjunctive", "complex"}) {
    const bool mixed = qft == "complex";
    const auto& train = mixed ? bundle.mixed_train : bundle.conj_train;
    const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
    const auto featurizer = MakeQft(qft, bundle.schema);
    const auto model = MakeModel("GB");
    const auto result_or = eval::RunQftModel(*featurizer, *model, train, test);
    QFCARD_CHECK_OK(result_or.status());
    const std::map<int, ml::QErrorSummary> grouped = eval::SummarizeByGroup(
        result_or.value().qerrors,
        eval::BucketizeGroups(eval::NumPredicatesOf(test), buckets));
    for (const auto& [bucket, summary] : grouped) {
      table.AddRow({qft, std::to_string(bucket), eval::FormatBox(summary),
                    eval::FormatQ(summary.mean),
                    std::to_string(summary.count)});
    }
  }
  std::printf(
      "Figure 3: GB estimation errors per QFT by #predicates (forest)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
