// Figure 4: the best QFT x model combinations (GB + conj for conjunctive
// queries, GB + complex for mixed queries) against established estimators:
// the Postgres-style independence estimator, 0.1% Bernoulli sampling (fresh
// per query), and MSCN without modifications. Distributions per number of
// attributes in the query. MSCN has no disjunction support, so it is absent
// from the mixed workload, as in the paper.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void AddGroupedRows(eval::TablePrinter& table, const std::string& workload,
                    const std::string& estimator,
                    const std::vector<double>& errors,
                    const std::vector<int>& attrs) {
  const std::vector<int> buckets{1, 2, 3, 5, 8};
  const std::map<int, ml::QErrorSummary> grouped =
      eval::SummarizeByGroup(errors, eval::BucketizeGroups(attrs, buckets));
  for (const auto& [bucket, summary] : grouped) {
    table.AddRow({workload, estimator, std::to_string(bucket),
                  eval::FormatBox(summary), eval::FormatQ(summary.mean)});
  }
}

// Batched q-errors of `estimator` on `test` (one EstimateBatch call).
std::vector<double> BatchErrors(const est::CardinalityEstimator& estimator,
                                const std::vector<workload::LabeledQuery>& test) {
  std::vector<query::Query> queries;
  queries.reserve(test.size());
  for (const workload::LabeledQuery& lq : test) queries.push_back(lq.query);
  const std::vector<double> ests = estimator.EstimateBatch(queries).value();
  std::vector<double> errors;
  errors.reserve(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    errors.push_back(ml::QError(test[i].card, ests[i]));
  }
  return errors;
}

void Run() {
  ForestBundle bundle = MakeForestBundle();
  const est::EstimatorOptions eopts = DefaultEstimatorOptions();
  const std::unique_ptr<est::CardinalityEstimator> postgres =
      est::MakeEstimator("postgres", bundle.catalog, eopts).value();
  const std::unique_ptr<est::CardinalityEstimator> sampling =
      est::MakeEstimator("sampling", bundle.catalog, eopts).value();

  eval::TablePrinter table({"workload", "estimator", "#attrs",
                            "box (p1 | p25 [med] p75 | p99 (max))", "mean"});

  for (const bool mixed : {false, true}) {
    const auto& train = mixed ? bundle.mixed_train : bundle.conj_train;
    const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
    const std::string workload = mixed ? "mixed" : "conjunctive";
    const std::vector<int> attrs = eval::NumAttributesOf(test);

    // GB + conj / GB + complex.
    {
      const auto featurizer =
          MakeQft(mixed ? "complex" : "conjunctive", bundle.schema);
      const auto model = MakeModel("GB");
      const auto result_or =
          eval::RunQftModel(*featurizer, *model, train, test);
      QFCARD_CHECK_OK(result_or.status());
      AddGroupedRows(table, workload, mixed ? "GB + complex" : "GB + conj",
                     result_or.value().qerrors, attrs);
    }

    // Postgres-style and sampling, batched over the whole test set.
    AddGroupedRows(table, workload, "Postgres", BatchErrors(*postgres, test),
                   attrs);
    AddGroupedRows(table, workload, "Sampling 0.1%",
                   BatchErrors(*sampling, test), attrs);

    // MSCN w/o mods: conjunctive workload only (kPerPredicate rejects
    // disjunctions, as in the original implementation).
    if (!mixed) {
      const std::unique_ptr<est::CardinalityEstimator> estimator =
          est::MakeEstimator("mscn", bundle.catalog, eopts).value();
      std::vector<query::Query> queries;
      std::vector<double> cards;
      for (const workload::LabeledQuery& lq : train) {
        queries.push_back(lq.query);
        cards.push_back(lq.card);
      }
      QFCARD_CHECK_OK(estimator->Train(queries, cards, 0.1, 0));
      AddGroupedRows(table, workload, "MSCN", BatchErrors(*estimator, test),
                     attrs);
    }
  }

  std::printf(
      "Figure 4: best QFT x model combinations vs established estimators "
      "(forest)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
