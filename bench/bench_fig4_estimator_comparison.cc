// Figure 4: the best QFT x model combinations (GB + conj for conjunctive
// queries, GB + complex for mixed queries) against established estimators:
// the Postgres-style independence estimator, 0.1% Bernoulli sampling (fresh
// per query), and MSCN without modifications. Distributions per number of
// attributes in the query. MSCN has no disjunction support, so it is absent
// from the mixed workload, as in the paper.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void AddGroupedRows(eval::TablePrinter& table, const std::string& workload,
                    const std::string& estimator,
                    const std::vector<double>& errors,
                    const std::vector<int>& attrs) {
  const std::vector<int> buckets{1, 2, 3, 5, 8};
  const std::map<int, ml::QErrorSummary> grouped =
      eval::SummarizeByGroup(errors, eval::BucketizeGroups(attrs, buckets));
  for (const auto& [bucket, summary] : grouped) {
    table.AddRow({workload, estimator, std::to_string(bucket),
                  eval::FormatBox(summary), eval::FormatQ(summary.mean)});
  }
}

void Run() {
  ForestBundle bundle = MakeForestBundle();
  const est::PostgresStyleEstimator postgres =
      est::PostgresStyleEstimator::Build(&bundle.catalog).value();
  est::SamplingEstimator sampling(&bundle.catalog, 0.001, 424242);

  eval::TablePrinter table({"workload", "estimator", "#attrs",
                            "box (p1 | p25 [med] p75 | p99 (max))", "mean"});

  for (const bool mixed : {false, true}) {
    const auto& train = mixed ? bundle.mixed_train : bundle.conj_train;
    const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
    const std::string workload = mixed ? "mixed" : "conjunctive";
    const std::vector<int> attrs = eval::NumAttributesOf(test);

    // GB + conj / GB + complex.
    {
      const auto featurizer =
          MakeQft(mixed ? "complex" : "conjunctive", bundle.schema);
      const auto model = MakeModel("GB");
      const auto result_or =
          eval::RunQftModel(*featurizer, *model, train, test);
      QFCARD_CHECK_OK(result_or.status());
      AddGroupedRows(table, workload, mixed ? "GB + complex" : "GB + conj",
                     result_or.value().qerrors, attrs);
    }

    // Postgres-style and sampling.
    std::vector<double> pg_errors;
    std::vector<double> sample_errors;
    for (const workload::LabeledQuery& lq : test) {
      pg_errors.push_back(
          ml::QError(lq.card, postgres.EstimateCard(lq.query).value()));
      sample_errors.push_back(
          ml::QError(lq.card, sampling.EstimateCard(lq.query).value()));
    }
    AddGroupedRows(table, workload, "Postgres", pg_errors, attrs);
    AddGroupedRows(table, workload, "Sampling 0.1%", sample_errors, attrs);

    // MSCN w/o mods: conjunctive workload only.
    if (!mixed) {
      query::SchemaGraph empty_graph;
      featurize::MscnFeaturizer featurizer(
          &bundle.catalog, &empty_graph,
          featurize::MscnFeaturizer::PredMode::kPerPredicate);
      est::MscnEstimator estimator(std::move(featurizer), DefaultMscn());
      std::vector<query::Query> queries;
      std::vector<double> cards;
      for (const workload::LabeledQuery& lq : train) {
        queries.push_back(lq.query);
        cards.push_back(lq.card);
      }
      QFCARD_CHECK_OK(estimator.Train(queries, cards, 0.1));
      std::vector<double> errors;
      std::vector<int> mscn_attrs;
      for (const workload::LabeledQuery& lq : test) {
        const auto est_or = estimator.EstimateCard(lq.query);
        if (!est_or.ok()) continue;
        errors.push_back(ml::QError(lq.card, est_or.value()));
        mscn_attrs.push_back(lq.query.NumAttributes());
      }
      AddGroupedRows(table, workload, "MSCN", errors, mscn_attrs);
    }
  }

  std::printf(
      "Figure 4: best QFT x model combinations vs established estimators "
      "(forest)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
