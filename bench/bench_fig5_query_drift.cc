// Figure 5: query drift. Models train on low-dimensional queries (at most
// two distinct attributes) and are tested on high-dimensional queries (three
// or more). Rows with #attrs <= 2 show training-distribution errors for
// reference, as in the paper's figure.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle();
  const std::vector<int> buckets{1, 2, 3, 5, 8};
  eval::TablePrinter table({"model", "qft", "#attrs", "split",
                            "box (p1 | p25 [med] p75 | p99 (max))", "mean"});

  for (const std::string model_kind : {"GB", "NN"}) {
    for (const std::string qft :
         {"simple", "range", "conjunctive", "complex"}) {
      const bool mixed = qft == "complex";
      std::vector<workload::LabeledQuery> all =
          mixed ? bundle.mixed_train : bundle.conj_train;
      const auto& extra = mixed ? bundle.mixed_test : bundle.conj_test;
      all.insert(all.end(), extra.begin(), extra.end());
      workload::DriftSplit split =
          workload::SplitByNumAttributes(std::move(all), 2);
      if (split.low.empty() || split.high.empty()) continue;

      const auto featurizer = MakeQft(qft, bundle.schema);
      const auto model = MakeModel(model_kind);
      // Train on low-dimensional queries; evaluate on both splits.
      const auto high_or =
          eval::RunQftModel(*featurizer, *model, split.low, split.high);
      QFCARD_CHECK_OK(high_or.status());
      // Training-distribution reference errors (no retraining).
      std::vector<double> low_errors;
      for (const workload::LabeledQuery& lq : split.low) {
        const auto vec_or = featurizer->Featurize(lq.query);
        if (!vec_or.ok()) continue;
        low_errors.push_back(ml::QError(
            lq.card, ml::LabelToCard(model->Predict(vec_or.value().data()))));
      }

      const auto add_rows = [&](const std::vector<double>& errors,
                                const std::vector<workload::LabeledQuery>& qs,
                                const char* label) {
        std::vector<int> attrs;
        attrs.reserve(qs.size());
        for (const workload::LabeledQuery& lq : qs) {
          attrs.push_back(lq.query.NumAttributes());
        }
        const auto grouped = eval::SummarizeByGroup(
            errors, eval::BucketizeGroups(attrs, buckets));
        for (const auto& [bucket, summary] : grouped) {
          table.AddRow({model_kind, qft, std::to_string(bucket), label,
                        eval::FormatBox(summary), eval::FormatQ(summary.mean)});
        }
      };
      add_rows(low_errors, split.low, "train (<=2)");
      add_rows(high_or.value().qerrors, split.high, "test (>=3)");
    }
  }
  std::printf(
      "Figure 5: query drift — train on <=2-attribute queries, test on "
      ">=3-attribute queries (forest)\n");
  table.Print(std::cout);
  // With QFCARD_METRICS=1 this also shows the drift monitor flipping to
  // DEGRADED on the high-dimensional split (docs/observability.md).
  eval::PrintTelemetrySnapshot(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
