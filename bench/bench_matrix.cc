// Benchmark matrix: estimator x workload family sweep (eval::RunMatrix),
// printing a per-cell q-error/latency table and optionally writing the
// versioned JSON report (tools/bench_schema.json) that CI archives as
// BENCH_matrix.json. With --deterministic the report zeroes every timing
// field and is byte-identical across QFCARD_THREADS and re-runs — the
// golden mode the mini-matrix smoke uses.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/matrix.h"
#include "obs/snapshot.h"
#include "workload/families.h"

namespace qfcard::bench {
namespace {

struct Flags {
  std::vector<std::string> estimators;
  std::vector<std::string> families;
  bool deterministic = false;
  std::string benchmark_out;
  std::string metrics_out;
  uint64_t seed = 20230707;
};

void PrintUsage() {
  std::printf(
      "usage: bench_matrix [--estimators=a,b,...] [--families=a,b,...]\n"
      "                    [--deterministic] [--seed=N]\n"
      "                    [--benchmark_out=PATH] [--metrics-out=PATH]\n"
      "defaults: estimators postgres,sampling,gb+complex,nn+complex,\n"
      "          linear+complex over every registered family\n"
      "families: %s\n",
      common::Join(workload::FamilyNames(), ", ").c_str());
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--estimators=", 0) == 0) {
      flags->estimators = common::Split(value("--estimators="), ',');
    } else if (arg.rfind("--families=", 0) == 0) {
      flags->families = common::Split(value("--families="), ',');
    } else if (arg == "--deterministic") {
      flags->deterministic = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags->seed = static_cast<uint64_t>(
          std::strtoull(value("--seed=").c_str(), nullptr, 10));
    } else if (arg.rfind("--benchmark_out=", 0) == 0) {
      flags->benchmark_out = value("--benchmark_out=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      flags->metrics_out = value("--metrics-out=");
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "bench_matrix: unknown flag '%s'\n", arg.c_str());
      PrintUsage();
      return false;
    }
  }
  return true;
}

int Run(const Flags& flags) {
  eval::MatrixOptions options;
  options.estimators = flags.estimators;
  options.families = flags.families;
  options.seed = flags.seed;
  options.include_timings = !flags.deterministic;
  options.estimator_options = DefaultEstimatorOptions();

  auto report_or = eval::RunMatrix(options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "bench_matrix: %s\n",
                 report_or.status().message().c_str());
    return 1;
  }
  const eval::MatrixReport& report = *report_or;

  eval::TablePrinter table({"family", "estimator", "status", "q-p50", "q-p95",
                            "q-max", "usec/query"});
  for (const std::string& family : report.families) {
    for (const eval::MatrixCell& cell : report.cells) {
      if (cell.family != family) continue;
      if (cell.status == eval::CellStatus::kOk) {
        table.AddRow({cell.family, cell.estimator,
                      eval::CellStatusToString(cell.status),
                      common::StrFormat("%.2f", cell.qerror_p50),
                      common::StrFormat("%.2f", cell.qerror_p95),
                      common::StrFormat("%.1f", cell.qerror_max),
                      common::StrFormat("%.1f", cell.usec_per_query)});
      } else {
        table.AddRow({cell.family, cell.estimator,
                      eval::CellStatusToString(cell.status), "-", "-", "-",
                      "-"});
      }
    }
  }
  std::printf("Estimator x workload-family matrix (%s scale, seed %llu%s)\n",
              report.scale.c_str(),
              static_cast<unsigned long long>(report.seed),
              report.deterministic ? ", deterministic" : "");
  table.Print(std::cout);

  if (!flags.benchmark_out.empty()) {
    std::ofstream out(flags.benchmark_out);
    if (!out) {
      std::fprintf(stderr, "bench_matrix: cannot write %s\n",
                   flags.benchmark_out.c_str());
      return 1;
    }
    out << report.ToJson();
    std::printf("wrote %s\n", flags.benchmark_out.c_str());
  }
  if (!flags.metrics_out.empty() &&
      !obs::WriteSnapshotJson(flags.metrics_out)) {
    std::fprintf(stderr, "bench_matrix: cannot write %s\n",
                 flags.metrics_out.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace qfcard::bench

int main(int argc, char** argv) {
  qfcard::bench::Flags flags;
  if (!qfcard::bench::ParseFlags(argc, argv, &flags)) return 2;
  if (!flags.metrics_out.empty()) qfcard::obs::SetMetricsEnabled(true);
  return qfcard::bench::Run(flags);
}
