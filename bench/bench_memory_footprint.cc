// Section 5.7: memory consumption of the estimators. The paper's shape:
// Postgres-style synopses are tiny, a 0.1% sample is ~0.1% of the data,
// GB is the smallest learned model (kBs), MSCN is mid-sized, the NN is the
// largest (around a MB at paper scale).

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

std::string Human(size_t bytes) {
  if (bytes >= 1024 * 1024) {
    return common::StrFormat("%.1f MB", static_cast<double>(bytes) / (1024 * 1024));
  }
  if (bytes >= 1024) {
    return common::StrFormat("%.1f kB", static_cast<double>(bytes) / 1024);
  }
  return common::StrFormat("%zu B", bytes);
}

void Run() {
  ForestBundle bundle = MakeForestBundle(/*need_conj=*/true,
                                         /*need_mixed=*/false);
  eval::TablePrinter table({"estimator", "bytes", "human"});

  // Raw data footprint for reference.
  const size_t data_bytes = static_cast<size_t>(bundle.forest->num_rows()) *
                            static_cast<size_t>(bundle.forest->num_columns()) *
                            sizeof(double);
  table.AddRow({"(forest data)", std::to_string(data_bytes), Human(data_bytes)});

  const est::EstimatorOptions eopts = DefaultEstimatorOptions();
  // Every estimator comes out of the registry; statistics-based ones ignore
  // Train (a no-op on the base class), so one loop covers the whole set.
  std::vector<query::Query> queries;
  std::vector<double> cards;
  for (const workload::LabeledQuery& lq : bundle.conj_train) {
    queries.push_back(lq.query);
    cards.push_back(lq.card);
  }

  const std::vector<std::pair<std::string, std::string>> arms = {
      {"postgres", "Postgres-style synopses"},
      {"sampling", "Sampling 0.1% (expected sample)"},
      {"gb+conj", "GB + conj"},
      {"nn+conj", "NN + conj (bench size)"},
      {"mscn+conj", "MSCN + conj"},
  };
  for (const auto& [name, label] : arms) {
    const std::unique_ptr<est::CardinalityEstimator> estimator =
        est::MakeEstimator(name, bundle.catalog, eopts).value();
    QFCARD_CHECK_OK(estimator->Train(queries, cards, 0.1, 12));
    table.AddRow({label, std::to_string(estimator->SizeBytes()),
                  Human(estimator->SizeBytes())});
  }

  // NN at the paper's architecture scale (hidden 512x256): the paper
  // reports the NN as the largest estimator at over 1 MB. Size is
  // independent of training length, so a few steps suffice here.
  {
    est::EstimatorOptions big = eopts;
    big.nn.hidden = {512, 256};
    big.nn.max_steps = 5;
    big.nn.max_epochs = 1;
    const std::unique_ptr<est::CardinalityEstimator> estimator =
        est::MakeEstimator("nn+conj", bundle.catalog, big).value();
    QFCARD_CHECK_OK(estimator->Train(queries, cards, 0.0, 14));
    table.AddRow({"NN + conj (paper-scale 512x256)",
                  std::to_string(estimator->SizeBytes()),
                  Human(estimator->SizeBytes())});
  }

  std::printf("Section 5.7: estimator memory consumption\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
