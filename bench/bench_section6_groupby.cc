// Section 6 ("GROUP BY clauses"): grouped count queries change the result
// size from #qualifying rows to #groups. The paper's proposed featurization
// appends one binary entry per attribute marking the grouping columns. This
// experiment trains GB on a grouped forest workload with and without the
// GROUP-BY bit vector, plus the Postgres-style NDV-product baseline. Without
// the bits, queries differing only in their GROUP BY clause collide onto one
// feature vector — the lossless-featurization violation of Section 2.2.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  workload::ForestOptions fopts;
  fopts.num_rows = ForestRows();
  fopts.num_attributes = ForestAttrs();
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& forest = *catalog.GetTable("forest").value();
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(forest);

  // Grouped workload: conjunctive predicates + 0-2 grouping attributes.
  common::Rng rng(606);
  workload::PredicateGenOptions gen =
      workload::ConjunctiveWorkloadOptions(MaxQueryAttrs());
  gen.max_group_by_attrs = 2;
  const int n = TrainQueries() + TestQueries();
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(forest, 2 * n, gen, rng);
  std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(forest, queries, true).value();
  const size_t n_test = std::min<size_t>(static_cast<size_t>(TestQueries()),
                                         labeled.size() / 4);
  const std::vector<workload::LabeledQuery> test(labeled.end() - n_test,
                                                 labeled.end());
  labeled.resize(labeled.size() - n_test);
  std::printf("[setup] %zu train / %zu test grouped queries\n\n",
              labeled.size(), test.size());

  eval::TablePrinter table({"estimator", "mean", "median", "99%", "max"});

  // GB + conj + GROUP-BY bit vector.
  {
    auto inner = MakeQft("conjunctive", schema);
    const featurize::GroupByAppendFeaturizer featurizer(
        std::move(inner), schema.num_attributes());
    const auto model = MakeModel("GB");
    const auto result_or = eval::RunQftModel(featurizer, *model, labeled, test);
    QFCARD_CHECK_OK(result_or.status());
    std::vector<std::string> row{"GB + conj + groupby bits"};
    AddSummaryCells(row, result_or.value().summary);
    table.AddRow(std::move(row));
  }
  // GB + conj without the bits (GROUP BY invisible to the model).
  {
    const auto featurizer = MakeQft("conjunctive", schema);
    const auto model = MakeModel("GB");
    const auto result_or =
        eval::RunQftModel(*featurizer, *model, labeled, test);
    QFCARD_CHECK_OK(result_or.status());
    std::vector<std::string> row{"GB + conj (no groupby bits)"};
    AddSummaryCells(row, result_or.value().summary);
    table.AddRow(std::move(row));
  }
  // Postgres-style baseline (min of row estimate and NDV product).
  {
    const est::PostgresStyleEstimator postgres =
        est::PostgresStyleEstimator::Build(&catalog).value();
    std::vector<double> errors;
    for (const workload::LabeledQuery& lq : test) {
      errors.push_back(
          ml::QError(lq.card, postgres.EstimateCard(lq.query).value()));
    }
    const ml::QErrorSummary s = ml::QErrorSummary::FromErrors(errors);
    std::vector<std::string> row{"Postgres-style"};
    AddSummaryCells(row, s);
    table.AddRow(std::move(row));
  }

  std::printf("Section 6: grouped count queries (forest)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
