// Section 6 ("Inclusion-Exclusion Principle"): the paper argues that IEP is
// not a practical alternative to featurizing disjunctions, because one
// mixed query becomes 2^n - 1 conjunctive estimation problems, each adding
// error. This experiment makes the argument quantitative: on the mixed
// forest workload it compares
//   - GB + complex (Limited Disjunction Encoding, one estimate per query),
//   - IEP over GB + conjunctive (exponentially many estimates per query),
//   - IEP over the exact oracle (the best case for IEP: no inner error).

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle(/*need_conj=*/true,
                                         /*need_mixed=*/true);
  std::vector<query::Query> train_queries;
  std::vector<double> train_cards;
  for (const workload::LabeledQuery& lq : bundle.mixed_train) {
    train_queries.push_back(lq.query);
    train_cards.push_back(lq.card);
  }

  // GB + complex: the paper's recommended estimator for mixed queries.
  est::MlEstimator complex_est(MakeQft("complex", bundle.schema),
                               MakeModel("GB"));
  QFCARD_CHECK_OK(complex_est.Train(train_queries, train_cards, 0.1, 31));

  // Inner conjunctive estimator for IEP: GB + conjunctive, trained on the
  // conjunctive workload (IEP only ever asks it conjunctive subqueries).
  std::vector<query::Query> conj_queries;
  std::vector<double> conj_cards;
  for (const workload::LabeledQuery& lq : bundle.conj_train) {
    conj_queries.push_back(lq.query);
    conj_cards.push_back(lq.card);
  }
  est::MlEstimator conj_inner(MakeQft("conjunctive", bundle.schema),
                              MakeModel("GB"));
  QFCARD_CHECK_OK(conj_inner.Train(conj_queries, conj_cards, 0.1, 32));
  const est::IepEstimator iep_ml(&conj_inner, /*max_terms=*/12);

  const est::TrueCardEstimator oracle(&bundle.catalog);
  const est::IepEstimator iep_oracle(&oracle, /*max_terms=*/12);

  struct Arm {
    std::string label;
    const est::CardinalityEstimator* estimator;
    std::vector<double> errors;
    int64_t subqueries = 0;
    int answered = 0;
    int rejected = 0;
    double seconds = 0.0;
    const est::IepEstimator* iep = nullptr;
    size_t max_queries = SIZE_MAX;
  };
  // The oracle arm re-executes every subquery against the data (hundreds of
  // scans per test query), so it runs on a subsample.
  Arm arms[] = {
      {"GB + complex (1 estimate/query)", &complex_est, {}, 0, 0, 0, 0.0,
       nullptr, SIZE_MAX},
      {"IEP over GB + conj", &iep_ml, {}, 0, 0, 0, 0.0, &iep_ml, SIZE_MAX},
      {"IEP over exact oracle (subsample)", &iep_oracle, {}, 0, 0, 0, 0.0,
       &iep_oracle, 100},
  };

  for (Arm& arm : arms) {
    obs::ScopedTimer timer;
    for (size_t qi = 0;
         qi < bundle.mixed_test.size() && qi < arm.max_queries; ++qi) {
      const workload::LabeledQuery& lq = bundle.mixed_test[qi];
      const auto est_or = arm.estimator->EstimateCard(lq.query);
      if (!est_or.ok()) {
        ++arm.rejected;  // IEP blow-up guard (> max_terms DNF terms)
        continue;
      }
      ++arm.answered;
      if (arm.iep != nullptr) arm.subqueries += arm.iep->last_call().subqueries;
      arm.errors.push_back(ml::QError(lq.card, est_or.value()));
    }
    arm.seconds = timer.Seconds();
  }

  eval::TablePrinter table({"estimator", "answered", "rejected",
                            "subqueries/query", "mean", "median", "p99",
                            "total s"});
  for (Arm& arm : arms) {
    const ml::QErrorSummary s =
        ml::QErrorSummary::FromErrors(std::move(arm.errors));
    table.AddRow(
        {arm.label, std::to_string(arm.answered), std::to_string(arm.rejected),
         arm.iep == nullptr
             ? "1"
             : common::StrFormat(
                   "%.1f", arm.answered > 0
                               ? static_cast<double>(arm.subqueries) / arm.answered
                               : 0.0),
         eval::FormatQ(s.mean), eval::FormatQ(s.median), eval::FormatQ(s.p99),
         common::StrFormat("%.2f", arm.seconds)});
  }
  std::printf(
      "Section 6: Limited Disjunction Encoding vs the inclusion-exclusion "
      "principle (mixed forest workload)\n");
  table.Print(std::cout);
  std::printf(
      "\nIEP rejections are queries whose DNF expansion exceeds 12 terms "
      "(2^12 - 1 = 4095 subqueries) — the exponential blow-up the paper "
      "describes.\n");
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
