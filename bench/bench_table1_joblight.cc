// Table 1: JOB-light-style join queries, local models (one per sub-schema).
// Rows: {NN, GB} x {simple, range, conj}; columns: mean / median / 99% / max
// q-error. As in the paper, Universal Conjunction Encoding uses 8
// per-attribute entries for the NN and 32 for GB; complex is omitted since
// JOB-light has no disjunctions (its vectors equal conj's).

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

struct LocalTrainingCache {
  std::map<std::string, std::pair<std::vector<query::Query>,
                                  std::vector<double>>> data;
};

void Run() {
  ImdbBundle bundle = MakeImdbBundle(/*max_tables=*/4);

  // Shared per-sub-schema training workloads (generated once, reused by
  // every model+QFT combination for a fair comparison).
  LocalTrainingCache cache;

  eval::TablePrinter table(
      {"model + QFT", "mean", "median", "99%", "max", "train s"});
  struct Combo {
    const char* model;
    const char* qft;
    int partitions;  // 0 = QFT has none
  };
  const Combo combos[] = {
      {"NN", "simple", 0}, {"NN", "range", 0}, {"NN", "conj", 8},
      {"GB", "simple", 0}, {"GB", "range", 0}, {"GB", "conj", 32},
  };
  for (const Combo& combo : combos) {
    const std::string qft = combo.qft;
    const int partitions = combo.partitions;
    est::LocalModelSet local(
        &bundle.db.catalog, &bundle.db.graph,
        [&qft, partitions](featurize::FeatureSchema schema) {
          return MakeQft(qft, schema, /*attr_sel=*/true, partitions);
        },
        [&combo]() { return MakeModel(combo.model); });

    obs::ScopedTimer timer;
    bool failed = false;
    for (const std::vector<std::string>& tables : bundle.subschemas) {
      const auto mat_or = local.GetOrMaterialize(tables);
      QFCARD_CHECK_OK(mat_or.status());
      const std::string key = query::SubSchemaKey(tables);
      if (!cache.data.count(key)) {
        cache.data[key] =
            MakeLocalTraining(*mat_or.value(), LocalTrainQueries(), 4004);
      }
      const auto& [qs, cards] = cache.data[key];
      const common::Status st = local.TrainSubSchema(tables, qs, cards, 0.1, 5005);
      if (!st.ok()) {
        std::fprintf(stderr, "training %s failed: %s\n", key.c_str(),
                     st.ToString().c_str());
        failed = true;
        break;
      }
    }
    if (failed) continue;
    const double train_seconds = timer.Seconds();

    std::vector<double> errors;
    for (size_t i = 0; i < bundle.test_queries.size(); ++i) {
      const auto est_or = local.EstimateCard(bundle.test_queries[i]);
      if (!est_or.ok()) continue;
      errors.push_back(ml::QError(bundle.test_cards[i], est_or.value()));
    }
    const ml::QErrorSummary s = ml::QErrorSummary::FromErrors(errors);
    std::vector<std::string> row{std::string(combo.model) + " + " + combo.qft};
    AddSummaryCells(row, s);
    row.push_back(common::StrFormat("%.1f", train_seconds));
    table.AddRow(std::move(row));
  }

  std::printf("Table 1: JOB-light-style join queries, local models\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
