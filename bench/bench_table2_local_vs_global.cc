// Table 2: local vs global models on JOB-light-style join queries.
// Rows: MSCN w/o mods (global, per-predicate featurization), MSCN + conj
// (global, Section 4.2's per-attribute QFT sets), NN + conj (local).

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ImdbBundle bundle = MakeImdbBundle(/*max_tables=*/4);

  // Catalog-level training queries: local predicate workloads per
  // sub-schema, lifted back to join queries (labels transfer exactly since
  // a selection over the materialized join has the join query's count).
  est::LocalModelSet scratch(
      &bundle.db.catalog, &bundle.db.graph,
      [](featurize::FeatureSchema schema) {
        return MakeQft("conj", schema);
      },
      []() { return MakeModel("GB"); });
  std::vector<query::Query> global_train;
  std::vector<double> global_cards;
  std::map<std::string,
           std::pair<std::vector<query::Query>, std::vector<double>>> cache;
  for (const std::vector<std::string>& tables : bundle.subschemas) {
    const storage::Table& mat = *scratch.GetOrMaterialize(tables).value();
    auto [qs, cards] = MakeLocalTraining(mat, LocalTrainQueries(), 6006);
    for (size_t i = 0; i < qs.size(); ++i) {
      const auto lifted_or = LiftLocalQuery(bundle.db, tables, mat, qs[i]);
      QFCARD_CHECK_OK(lifted_or.status());
      global_train.push_back(lifted_or.value());
      global_cards.push_back(cards[i]);
    }
    cache[query::SubSchemaKey(tables)] = {std::move(qs), std::move(cards)};
  }
  std::printf("[setup] %zu global training queries\n\n", global_train.size());

  eval::TablePrinter table(
      {"model + QFT", "mean", "median", "99%", "max", "train s"});

  // Global MSCN variants.
  for (const bool with_qft : {false, true}) {
    const featurize::MscnFeaturizer::PredMode mode =
        with_qft ? featurize::MscnFeaturizer::PredMode::kPerAttributeQft
                 : featurize::MscnFeaturizer::PredMode::kPerPredicate;
    featurize::MscnFeaturizer featurizer(&bundle.db.catalog, &bundle.db.graph,
                                         mode, DefaultConjOptions());
    est::MscnEstimator estimator(std::move(featurizer), DefaultMscn());
    obs::ScopedTimer timer;
    QFCARD_CHECK_OK(estimator.Train(global_train, global_cards, 0.1));
    const double train_seconds = timer.Seconds();
    std::vector<double> errors;
    for (size_t i = 0; i < bundle.test_queries.size(); ++i) {
      const auto est_or = estimator.EstimateCard(bundle.test_queries[i]);
      if (!est_or.ok()) continue;
      errors.push_back(ml::QError(bundle.test_cards[i], est_or.value()));
    }
    const ml::QErrorSummary s = ml::QErrorSummary::FromErrors(errors);
    std::vector<std::string> row{
        with_qft ? "MSCN + conj (global)" : "MSCN w/o mods (global)"};
    AddSummaryCells(row, s);
    row.push_back(common::StrFormat("%.1f", train_seconds));
    table.AddRow(std::move(row));
  }

  // Local NN + conj (8 per-attribute entries, as in Table 1).
  {
    est::LocalModelSet local(
        &bundle.db.catalog, &bundle.db.graph,
        [](featurize::FeatureSchema schema) {
          return MakeQft("conj", schema, true, 8);
        },
        []() { return MakeModel("NN"); });
    obs::ScopedTimer timer;
    for (const std::vector<std::string>& tables : bundle.subschemas) {
      QFCARD_CHECK_OK(local.GetOrMaterialize(tables).status());
      const auto& [qs, cards] = cache[query::SubSchemaKey(tables)];
      QFCARD_CHECK_OK(local.TrainSubSchema(tables, qs, cards, 0.1, 7007));
    }
    const double train_seconds = timer.Seconds();
    std::vector<double> errors;
    for (size_t i = 0; i < bundle.test_queries.size(); ++i) {
      const auto est_or = local.EstimateCard(bundle.test_queries[i]);
      if (!est_or.ok()) continue;
      errors.push_back(ml::QError(bundle.test_cards[i], est_or.value()));
    }
    const ml::QErrorSummary s = ml::QErrorSummary::FromErrors(errors);
    std::vector<std::string> row{"NN + conj (local)"};
    AddSummaryCells(row, s);
    row.push_back(common::StrFormat("%.1f", train_seconds));
    table.AddRow(std::move(row));
  }

  std::printf("Table 2: JOB-light-style join queries, local vs global models\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
