// Table 3: effect of the per-attribute selectivity appendix (the gray lines
// of Algorithm 1). Rows: {GB, NN} x {conj, comp} x {w/, w/o} attrSel.
// conj runs on the conjunctive workload, comp on the mixed workload.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle();
  eval::TablePrinter table(
      {"model", "mean", "median", "99%", "max"});
  for (const std::string model_kind : {"GB", "NN"}) {
    for (const std::string qft : {"conj", "comp"}) {
      const bool mixed = qft == "comp";
      const auto& train = mixed ? bundle.mixed_train : bundle.conj_train;
      const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
      for (const bool attr_sel : {true, false}) {
        const auto featurizer = MakeQft(qft, bundle.schema, attr_sel);
        const auto model = MakeModel(model_kind);
        const auto result_or =
            eval::RunQftModel(*featurizer, *model, train, test);
        QFCARD_CHECK_OK(result_or.status());
        std::vector<std::string> row{
            model_kind + "+" + qft + (attr_sel ? " w/ attrSel" : " w/o attrSel")};
        AddSummaryCells(row, result_or.value().summary);
        table.AddRow(std::move(row));
      }
    }
  }
  std::printf("Table 3: effect of per-attribute selectivity estimates\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
