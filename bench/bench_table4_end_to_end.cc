// Table 4: end-to-end run times. The same DP join-order optimizer is driven
// by three cardinality sources — the Postgres-style estimator, our local
// GB + conj models, and the true cardinalities — and every chosen plan is
// executed in the in-process engine. The paper's finding: better estimates
// improve run time only marginally for a defensive, small-search-space
// optimizer, and the learned estimator lands close to the true-cardinality
// plans.

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

opt::SubsetCardFn CardFnFor(const est::CardinalityEstimator& estimator,
                            const query::Query& q) {
  return [&estimator, &q](uint32_t mask) -> common::StatusOr<double> {
    QFCARD_ASSIGN_OR_RETURN(const query::Query sub,
                            opt::InducedSubQuery(q, mask));
    return estimator.EstimateCard(sub);
  };
}

void Run() {
  ImdbBundle bundle = MakeImdbBundle(/*max_tables=*/4);

  // Arm 1: Postgres-style synopses.
  const est::PostgresStyleEstimator postgres =
      est::PostgresStyleEstimator::Build(&bundle.db.catalog).value();
  // Arm 3: the oracle.
  const est::TrueCardEstimator oracle(&bundle.db.catalog);

  // Arm 2: our approach — local GB + conj models. Sub-queries seen by the
  // optimizer cover every connected sub-schema of each query, so train a
  // model per connected subset (including single tables).
  est::LocalModelSet local(
      &bundle.db.catalog, &bundle.db.graph,
      [](featurize::FeatureSchema schema) { return MakeQft("conj", schema); },
      []() { return MakeModel("GB"); });
  {
    obs::ScopedTimer timer;
    std::map<std::string, std::vector<std::string>> to_train;
    for (const query::Query& q : bundle.test_queries) {
      const std::vector<std::string> tables = TablesOf(q);
      const size_t n = tables.size();
      for (uint32_t mask = 1; mask < (1u << n); ++mask) {
        std::vector<std::string> subset;
        for (size_t t = 0; t < n; ++t) {
          if (mask & (1u << t)) subset.push_back(tables[t]);
        }
        if (subset.size() > 1 && !bundle.db.graph.IsConnected(subset)) continue;
        to_train[query::SubSchemaKey(subset)] = subset;
      }
    }
    for (const auto& [key, tables] : to_train) {
      const storage::Table& mat = *local.GetOrMaterialize(tables).value();
      const auto [qs, cards] =
          MakeLocalTraining(mat, LocalTrainQueries() / 2, 8008);
      if (qs.empty()) continue;
      QFCARD_CHECK_OK(local.TrainSubSchema(tables, qs, cards, 0.1, 9009));
    }
    std::printf("[setup] trained %d local models in %.1fs\n\n",
                local.num_models(), timer.Seconds());
  }

  // Extra arm: the best-of-both-worlds hybrid — learned models only for
  // sub-schemas of <= 2 tables, System R formulas for the rest (the
  // Section 2.1.2 model-count reduction).
  est::LocalModelSet small_local(
      &bundle.db.catalog, &bundle.db.graph,
      [](featurize::FeatureSchema schema) { return MakeQft("conj", schema); },
      []() { return MakeModel("GB"); });
  {
    obs::ScopedTimer timer;
    std::map<std::string, std::vector<std::string>> to_train;
    for (const query::Query& q : bundle.test_queries) {
      const std::vector<std::string> tables = TablesOf(q);
      for (const std::string& t : tables) to_train[t] = {t};
      for (size_t i = 1; i < tables.size(); ++i) {
        // title is always slot 0; every satellite pairs with it.
        std::vector<std::string> pair{tables[0], tables[i]};
        to_train[query::SubSchemaKey(pair)] = pair;
      }
    }
    for (const auto& [key, tables] : to_train) {
      const storage::Table& mat = *small_local.GetOrMaterialize(tables).value();
      const auto [qs, cards] =
          MakeLocalTraining(mat, LocalTrainQueries() / 2, 8108);
      if (qs.empty()) continue;
      QFCARD_CHECK_OK(small_local.TrainSubSchema(tables, qs, cards, 0.1, 9109));
    }
    std::printf("[setup] hybrid arm: %d small local models in %.1fs\n\n",
                small_local.num_models(), timer.Seconds());
  }
  const est::HybridEstimator hybrid(&small_local, &postgres);

  struct Arm {
    std::string label;
    const est::CardinalityEstimator* estimator;
    double seconds = 0.0;
    double intermediates = 0.0;
    int plans = 0;
  };
  Arm arms[] = {
      {"Postgres", &postgres, 0, 0, 0},
      {"Our approach", &local, 0, 0, 0},
      {"Hybrid (<=2-table models)", &hybrid, 0, 0, 0},
      {"True cardinalities", &oracle, 0, 0, 0},
  };

  for (const query::Query& q : bundle.test_queries) {
    for (Arm& arm : arms) {
      const auto plan_or =
          opt::JoinOrderOptimizer::Optimize(q, CardFnFor(*arm.estimator, q));
      if (!plan_or.ok()) continue;
      const auto exec_or = opt::ExecutePlan(bundle.db.catalog, q, plan_or.value());
      if (!exec_or.ok()) continue;
      arm.seconds += exec_or.value().seconds;
      arm.intermediates += exec_or.value().intermediate_rows;
      ++arm.plans;
    }
  }

  eval::TablePrinter table(
      {"estimates", "total run time", "intermediate rows", "plans"});
  for (const Arm& arm : arms) {
    table.AddRow({arm.label, common::StrFormat("%.3fs", arm.seconds),
                  common::StrFormat("%.0f", arm.intermediates),
                  std::to_string(arm.plans)});
  }
  std::printf(
      "Table 4: end-to-end run times (optimizer + executor, %zu queries)\n",
      bundle.test_queries.size());
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
