// Table 5: accuracy of Universal Conjunction Encoding (GB model) for
// different numbers of per-attribute entries n in {8, 16, 32, 64, 256}.
// The paper's U-shape: small n loses information, large n hurts
// learnability for a fixed training budget. The byte column is the feature
// vector footprint (= model input layer size; the rest of the model is
// unchanged).

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle(/*need_conj=*/true,
                                         /*need_mixed=*/false);
  eval::TablePrinter table({"no. entries", "bytes feat. vec.", "mean",
                            "median", "99%", "max", "train s"});
  for (const int n : {8, 16, 32, 64, 256}) {
    const auto featurizer =
        MakeQft("conjunctive", bundle.schema, /*attr_sel=*/true, n);
    const auto model = MakeModel("GB");
    const auto result_or = eval::RunQftModel(*featurizer, *model,
                                             bundle.conj_train,
                                             bundle.conj_test);
    QFCARD_CHECK_OK(result_or.status());
    const eval::RunResult& r = result_or.value();
    std::vector<std::string> row{
        std::to_string(n),
        std::to_string(featurizer->dim() * sizeof(float))};
    AddSummaryCells(row, r.summary);
    row.push_back(common::StrFormat("%.1f", r.train_seconds));
    table.AddRow(std::move(row));
  }
  std::printf(
      "Table 5: accuracy for different feature vector lengths "
      "(GB + conjunctive, forest)\n");
  table.Print(std::cout);
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
