// Table 6: training convergence — average q-error as a function of the
// number of training queries, for {GB, NN} x {conj, comp, range, simple}.
// conj/range/simple use the conjunctive workload; comp uses the mixed
// workload (as in the paper's Figure 1 convention).

#include <iostream>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

void Run() {
  ForestBundle bundle = MakeForestBundle();
  std::vector<int> sizes;
  const int max_train = static_cast<int>(bundle.conj_train.size());
  for (const double frac : {0.1, 0.2, 0.4, 0.7, 1.0}) {
    sizes.push_back(static_cast<int>(frac * max_train));
  }

  for (const std::string model_kind : {"GB", "NN"}) {
    eval::TablePrinter table(
        {"training queries", "conj", "comp", "range", "simple"});
    for (const int size : sizes) {
      std::vector<std::string> row{std::to_string(size)};
      for (const std::string qft : {"conj", "comp", "range", "simple"}) {
        const bool mixed = qft == "comp";
        const auto& full_train =
            mixed ? bundle.mixed_train : bundle.conj_train;
        const auto& test = mixed ? bundle.mixed_test : bundle.conj_test;
        const int n = std::min<int>(size, static_cast<int>(full_train.size()));
        const std::vector<workload::LabeledQuery> train(
            full_train.begin(), full_train.begin() + n);
        const auto featurizer = MakeQft(qft, bundle.schema);
        const auto model = MakeModel(model_kind);
        const auto result_or =
            eval::RunQftModel(*featurizer, *model, train, test);
        QFCARD_CHECK_OK(result_or.status());
        row.push_back(eval::FormatQ(result_or.value().summary.mean));
      }
      table.AddRow(std::move(row));
    }
    std::printf("Table 6 (%s): mean q-error by number of training queries\n",
                model_kind.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace qfcard::bench

int main() {
  qfcard::bench::Run();
  return 0;
}
