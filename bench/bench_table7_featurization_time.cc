// Table 7: time consumption of the QFTs — average microseconds to featurize
// one forest workload query, via google-benchmark. Expected ordering:
// simple < range < conjunctive < complex, all well under a millisecond.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace qfcard::bench {
namespace {

struct FeaturizeFixtureData {
  storage::Catalog catalog;
  featurize::FeatureSchema schema;
  std::vector<query::Query> conj_queries;
  std::vector<query::Query> mixed_queries;

  FeaturizeFixtureData() {
    workload::ForestOptions fopts;
    fopts.num_rows = 20000;  // featurization cost is data-size independent
    fopts.num_attributes = ForestAttrs();
    QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
    const storage::Table& forest = *catalog.GetTable("forest").value();
    schema = featurize::FeatureSchema::FromTable(forest);
    common::Rng rng(1001);
    conj_queries = workload::GeneratePredicateWorkload(
        forest, 2000, workload::ConjunctiveWorkloadOptions(MaxQueryAttrs()),
        rng);
    mixed_queries = workload::GeneratePredicateWorkload(
        forest, 2000, workload::MixedWorkloadOptions(MaxQueryAttrs()), rng);
  }
};

FeaturizeFixtureData& Fixture() {
  static FeaturizeFixtureData* data = new FeaturizeFixtureData();
  return *data;
}

void BM_Featurize(benchmark::State& state, const std::string& qft) {
  FeaturizeFixtureData& data = Fixture();
  const auto featurizer = MakeQft(qft, data.schema);
  const std::vector<query::Query>& queries =
      qft == "complex" ? data.mixed_queries : data.conj_queries;
  std::vector<float> out(static_cast<size_t>(featurizer->dim()), 0.0f);
  size_t i = 0;
  for (auto _ : state) {
    const common::Status status =
        featurizer->FeaturizeInto(queries[i % queries.size()], out.data());
    benchmark::DoNotOptimize(out.data());
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_Featurize, simple, std::string("simple"));
BENCHMARK_CAPTURE(BM_Featurize, range, std::string("range"));
BENCHMARK_CAPTURE(BM_Featurize, conjunctive, std::string("conjunctive"));
BENCHMARK_CAPTURE(BM_Featurize, complex, std::string("complex"));

}  // namespace
}  // namespace qfcard::bench
