file(REMOVE_RECURSE
  "../bench/bench_ablation_featurization"
  "../bench/bench_ablation_featurization.pdb"
  "CMakeFiles/bench_ablation_featurization.dir/bench_ablation_featurization.cc.o"
  "CMakeFiles/bench_ablation_featurization.dir/bench_ablation_featurization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_featurization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
