# Empty compiler generated dependencies file for bench_ablation_featurization.
# This may be replaced when dependencies are built.
