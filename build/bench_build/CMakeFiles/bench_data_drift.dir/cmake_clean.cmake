file(REMOVE_RECURSE
  "../bench/bench_data_drift"
  "../bench/bench_data_drift.pdb"
  "CMakeFiles/bench_data_drift.dir/bench_data_drift.cc.o"
  "CMakeFiles/bench_data_drift.dir/bench_data_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
