# Empty dependencies file for bench_data_drift.
# This may be replaced when dependencies are built.
