file(REMOVE_RECURSE
  "../bench/bench_fig1_qft_model_matrix"
  "../bench/bench_fig1_qft_model_matrix.pdb"
  "CMakeFiles/bench_fig1_qft_model_matrix.dir/bench_fig1_qft_model_matrix.cc.o"
  "CMakeFiles/bench_fig1_qft_model_matrix.dir/bench_fig1_qft_model_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_qft_model_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
