# Empty dependencies file for bench_fig1_qft_model_matrix.
# This may be replaced when dependencies are built.
