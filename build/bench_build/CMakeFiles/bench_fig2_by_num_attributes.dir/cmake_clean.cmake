file(REMOVE_RECURSE
  "../bench/bench_fig2_by_num_attributes"
  "../bench/bench_fig2_by_num_attributes.pdb"
  "CMakeFiles/bench_fig2_by_num_attributes.dir/bench_fig2_by_num_attributes.cc.o"
  "CMakeFiles/bench_fig2_by_num_attributes.dir/bench_fig2_by_num_attributes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_by_num_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
