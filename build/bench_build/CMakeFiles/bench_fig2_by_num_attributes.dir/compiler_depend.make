# Empty compiler generated dependencies file for bench_fig2_by_num_attributes.
# This may be replaced when dependencies are built.
