file(REMOVE_RECURSE
  "../bench/bench_fig3_by_num_predicates"
  "../bench/bench_fig3_by_num_predicates.pdb"
  "CMakeFiles/bench_fig3_by_num_predicates.dir/bench_fig3_by_num_predicates.cc.o"
  "CMakeFiles/bench_fig3_by_num_predicates.dir/bench_fig3_by_num_predicates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_by_num_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
