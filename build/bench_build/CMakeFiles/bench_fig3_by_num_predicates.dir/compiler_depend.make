# Empty compiler generated dependencies file for bench_fig3_by_num_predicates.
# This may be replaced when dependencies are built.
