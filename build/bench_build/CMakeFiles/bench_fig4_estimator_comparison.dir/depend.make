# Empty dependencies file for bench_fig4_estimator_comparison.
# This may be replaced when dependencies are built.
