file(REMOVE_RECURSE
  "../bench/bench_fig5_query_drift"
  "../bench/bench_fig5_query_drift.pdb"
  "CMakeFiles/bench_fig5_query_drift.dir/bench_fig5_query_drift.cc.o"
  "CMakeFiles/bench_fig5_query_drift.dir/bench_fig5_query_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_query_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
