# Empty compiler generated dependencies file for bench_fig5_query_drift.
# This may be replaced when dependencies are built.
