file(REMOVE_RECURSE
  "../bench/bench_memory_footprint"
  "../bench/bench_memory_footprint.pdb"
  "CMakeFiles/bench_memory_footprint.dir/bench_memory_footprint.cc.o"
  "CMakeFiles/bench_memory_footprint.dir/bench_memory_footprint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
