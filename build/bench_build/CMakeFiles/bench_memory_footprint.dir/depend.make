# Empty dependencies file for bench_memory_footprint.
# This may be replaced when dependencies are built.
