file(REMOVE_RECURSE
  "../bench/bench_section6_groupby"
  "../bench/bench_section6_groupby.pdb"
  "CMakeFiles/bench_section6_groupby.dir/bench_section6_groupby.cc.o"
  "CMakeFiles/bench_section6_groupby.dir/bench_section6_groupby.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section6_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
