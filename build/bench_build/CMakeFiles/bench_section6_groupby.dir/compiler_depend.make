# Empty compiler generated dependencies file for bench_section6_groupby.
# This may be replaced when dependencies are built.
