file(REMOVE_RECURSE
  "../bench/bench_section6_iep"
  "../bench/bench_section6_iep.pdb"
  "CMakeFiles/bench_section6_iep.dir/bench_section6_iep.cc.o"
  "CMakeFiles/bench_section6_iep.dir/bench_section6_iep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section6_iep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
