# Empty compiler generated dependencies file for bench_section6_iep.
# This may be replaced when dependencies are built.
