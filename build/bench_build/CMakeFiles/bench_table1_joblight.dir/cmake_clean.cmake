file(REMOVE_RECURSE
  "../bench/bench_table1_joblight"
  "../bench/bench_table1_joblight.pdb"
  "CMakeFiles/bench_table1_joblight.dir/bench_table1_joblight.cc.o"
  "CMakeFiles/bench_table1_joblight.dir/bench_table1_joblight.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_joblight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
