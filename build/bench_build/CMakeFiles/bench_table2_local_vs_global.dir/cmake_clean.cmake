file(REMOVE_RECURSE
  "../bench/bench_table2_local_vs_global"
  "../bench/bench_table2_local_vs_global.pdb"
  "CMakeFiles/bench_table2_local_vs_global.dir/bench_table2_local_vs_global.cc.o"
  "CMakeFiles/bench_table2_local_vs_global.dir/bench_table2_local_vs_global.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_local_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
