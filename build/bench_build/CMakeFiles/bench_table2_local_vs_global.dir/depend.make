# Empty dependencies file for bench_table2_local_vs_global.
# This may be replaced when dependencies are built.
