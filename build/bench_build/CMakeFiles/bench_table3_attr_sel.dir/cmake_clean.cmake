file(REMOVE_RECURSE
  "../bench/bench_table3_attr_sel"
  "../bench/bench_table3_attr_sel.pdb"
  "CMakeFiles/bench_table3_attr_sel.dir/bench_table3_attr_sel.cc.o"
  "CMakeFiles/bench_table3_attr_sel.dir/bench_table3_attr_sel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_attr_sel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
