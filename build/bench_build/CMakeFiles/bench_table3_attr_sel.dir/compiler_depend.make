# Empty compiler generated dependencies file for bench_table3_attr_sel.
# This may be replaced when dependencies are built.
