file(REMOVE_RECURSE
  "../bench/bench_table4_end_to_end"
  "../bench/bench_table4_end_to_end.pdb"
  "CMakeFiles/bench_table4_end_to_end.dir/bench_table4_end_to_end.cc.o"
  "CMakeFiles/bench_table4_end_to_end.dir/bench_table4_end_to_end.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
