# Empty dependencies file for bench_table4_end_to_end.
# This may be replaced when dependencies are built.
