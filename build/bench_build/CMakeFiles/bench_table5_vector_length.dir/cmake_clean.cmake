file(REMOVE_RECURSE
  "../bench/bench_table5_vector_length"
  "../bench/bench_table5_vector_length.pdb"
  "CMakeFiles/bench_table5_vector_length.dir/bench_table5_vector_length.cc.o"
  "CMakeFiles/bench_table5_vector_length.dir/bench_table5_vector_length.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_vector_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
