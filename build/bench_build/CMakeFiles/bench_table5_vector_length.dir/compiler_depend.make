# Empty compiler generated dependencies file for bench_table5_vector_length.
# This may be replaced when dependencies are built.
