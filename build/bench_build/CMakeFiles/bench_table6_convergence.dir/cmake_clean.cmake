file(REMOVE_RECURSE
  "../bench/bench_table6_convergence"
  "../bench/bench_table6_convergence.pdb"
  "CMakeFiles/bench_table6_convergence.dir/bench_table6_convergence.cc.o"
  "CMakeFiles/bench_table6_convergence.dir/bench_table6_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
