# Empty dependencies file for bench_table6_convergence.
# This may be replaced when dependencies are built.
