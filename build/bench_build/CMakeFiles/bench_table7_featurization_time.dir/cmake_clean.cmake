file(REMOVE_RECURSE
  "../bench/bench_table7_featurization_time"
  "../bench/bench_table7_featurization_time.pdb"
  "CMakeFiles/bench_table7_featurization_time.dir/bench_table7_featurization_time.cc.o"
  "CMakeFiles/bench_table7_featurization_time.dir/bench_table7_featurization_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_featurization_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
