# Empty compiler generated dependencies file for bench_table7_featurization_time.
# This may be replaced when dependencies are built.
