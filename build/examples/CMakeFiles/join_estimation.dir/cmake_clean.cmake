file(REMOVE_RECURSE
  "CMakeFiles/join_estimation.dir/join_estimation.cpp.o"
  "CMakeFiles/join_estimation.dir/join_estimation.cpp.o.d"
  "join_estimation"
  "join_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
