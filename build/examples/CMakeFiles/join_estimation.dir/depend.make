# Empty dependencies file for join_estimation.
# This may be replaced when dependencies are built.
