file(REMOVE_RECURSE
  "CMakeFiles/mixed_workload_demo.dir/mixed_workload_demo.cpp.o"
  "CMakeFiles/mixed_workload_demo.dir/mixed_workload_demo.cpp.o.d"
  "mixed_workload_demo"
  "mixed_workload_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_workload_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
