# Empty compiler generated dependencies file for mixed_workload_demo.
# This may be replaced when dependencies are built.
