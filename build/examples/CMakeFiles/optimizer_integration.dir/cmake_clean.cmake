file(REMOVE_RECURSE
  "CMakeFiles/optimizer_integration.dir/optimizer_integration.cpp.o"
  "CMakeFiles/optimizer_integration.dir/optimizer_integration.cpp.o.d"
  "optimizer_integration"
  "optimizer_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
