# Empty compiler generated dependencies file for optimizer_integration.
# This may be replaced when dependencies are built.
