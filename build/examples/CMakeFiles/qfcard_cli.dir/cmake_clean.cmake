file(REMOVE_RECURSE
  "CMakeFiles/qfcard_cli.dir/qfcard_cli.cpp.o"
  "CMakeFiles/qfcard_cli.dir/qfcard_cli.cpp.o.d"
  "qfcard_cli"
  "qfcard_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfcard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
