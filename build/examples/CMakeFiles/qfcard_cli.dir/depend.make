# Empty dependencies file for qfcard_cli.
# This may be replaced when dependencies are built.
