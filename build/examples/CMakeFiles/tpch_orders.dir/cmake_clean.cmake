file(REMOVE_RECURSE
  "CMakeFiles/tpch_orders.dir/tpch_orders.cpp.o"
  "CMakeFiles/tpch_orders.dir/tpch_orders.cpp.o.d"
  "tpch_orders"
  "tpch_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
