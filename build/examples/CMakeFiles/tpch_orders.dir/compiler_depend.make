# Empty compiler generated dependencies file for tpch_orders.
# This may be replaced when dependencies are built.
