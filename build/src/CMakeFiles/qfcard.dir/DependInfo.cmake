
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/env.cc" "src/CMakeFiles/qfcard.dir/common/env.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/common/env.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/qfcard.dir/common/random.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/qfcard.dir/common/status.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/qfcard.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/common/str_util.cc.o.d"
  "/root/repo/src/estimators/iep.cc" "src/CMakeFiles/qfcard.dir/estimators/iep.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/estimators/iep.cc.o.d"
  "/root/repo/src/estimators/local_models.cc" "src/CMakeFiles/qfcard.dir/estimators/local_models.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/estimators/local_models.cc.o.d"
  "/root/repo/src/estimators/ml_estimator.cc" "src/CMakeFiles/qfcard.dir/estimators/ml_estimator.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/estimators/ml_estimator.cc.o.d"
  "/root/repo/src/estimators/postgres.cc" "src/CMakeFiles/qfcard.dir/estimators/postgres.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/estimators/postgres.cc.o.d"
  "/root/repo/src/estimators/sampling.cc" "src/CMakeFiles/qfcard.dir/estimators/sampling.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/estimators/sampling.cc.o.d"
  "/root/repo/src/estimators/true_card.cc" "src/CMakeFiles/qfcard.dir/estimators/true_card.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/estimators/true_card.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/CMakeFiles/qfcard.dir/eval/harness.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/eval/harness.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/qfcard.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/eval/report.cc.o.d"
  "/root/repo/src/eval/summary.cc" "src/CMakeFiles/qfcard.dir/eval/summary.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/eval/summary.cc.o.d"
  "/root/repo/src/featurize/conjunction.cc" "src/CMakeFiles/qfcard.dir/featurize/conjunction.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/conjunction.cc.o.d"
  "/root/repo/src/featurize/disjunction.cc" "src/CMakeFiles/qfcard.dir/featurize/disjunction.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/disjunction.cc.o.d"
  "/root/repo/src/featurize/extensions.cc" "src/CMakeFiles/qfcard.dir/featurize/extensions.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/extensions.cc.o.d"
  "/root/repo/src/featurize/feature_schema.cc" "src/CMakeFiles/qfcard.dir/featurize/feature_schema.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/feature_schema.cc.o.d"
  "/root/repo/src/featurize/join_encoding.cc" "src/CMakeFiles/qfcard.dir/featurize/join_encoding.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/join_encoding.cc.o.d"
  "/root/repo/src/featurize/mscn_featurizer.cc" "src/CMakeFiles/qfcard.dir/featurize/mscn_featurizer.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/mscn_featurizer.cc.o.d"
  "/root/repo/src/featurize/partitioner.cc" "src/CMakeFiles/qfcard.dir/featurize/partitioner.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/partitioner.cc.o.d"
  "/root/repo/src/featurize/range.cc" "src/CMakeFiles/qfcard.dir/featurize/range.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/range.cc.o.d"
  "/root/repo/src/featurize/singular.cc" "src/CMakeFiles/qfcard.dir/featurize/singular.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/featurize/singular.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/qfcard.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/gbm.cc" "src/CMakeFiles/qfcard.dir/ml/gbm.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/gbm.cc.o.d"
  "/root/repo/src/ml/grid_search.cc" "src/CMakeFiles/qfcard.dir/ml/grid_search.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/grid_search.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/CMakeFiles/qfcard.dir/ml/linear.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/linear.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/qfcard.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/qfcard.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/mscn.cc" "src/CMakeFiles/qfcard.dir/ml/mscn.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/mscn.cc.o.d"
  "/root/repo/src/ml/nn.cc" "src/CMakeFiles/qfcard.dir/ml/nn.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/nn.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/CMakeFiles/qfcard.dir/ml/tree.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/ml/tree.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/qfcard.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/join_order.cc" "src/CMakeFiles/qfcard.dir/optimizer/join_order.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/optimizer/join_order.cc.o.d"
  "/root/repo/src/optimizer/plan_executor.cc" "src/CMakeFiles/qfcard.dir/optimizer/plan_executor.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/optimizer/plan_executor.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/qfcard.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/query/executor.cc.o.d"
  "/root/repo/src/query/join_executor.cc" "src/CMakeFiles/qfcard.dir/query/join_executor.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/query/join_executor.cc.o.d"
  "/root/repo/src/query/normalize.cc" "src/CMakeFiles/qfcard.dir/query/normalize.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/query/normalize.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/qfcard.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/query/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/qfcard.dir/query/query.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/query/query.cc.o.d"
  "/root/repo/src/query/schema_graph.cc" "src/CMakeFiles/qfcard.dir/query/schema_graph.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/query/schema_graph.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/qfcard.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/qfcard.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/qfcard.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/qfcard.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/storage/table.cc.o.d"
  "/root/repo/src/workload/forest.cc" "src/CMakeFiles/qfcard.dir/workload/forest.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/workload/forest.cc.o.d"
  "/root/repo/src/workload/imdb.cc" "src/CMakeFiles/qfcard.dir/workload/imdb.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/workload/imdb.cc.o.d"
  "/root/repo/src/workload/labeler.cc" "src/CMakeFiles/qfcard.dir/workload/labeler.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/workload/labeler.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/qfcard.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/qfcard.dir/workload/query_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
