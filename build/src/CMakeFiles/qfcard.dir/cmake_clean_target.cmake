file(REMOVE_RECURSE
  "libqfcard.a"
)
