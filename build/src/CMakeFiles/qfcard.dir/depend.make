# Empty dependencies file for qfcard.
# This may be replaced when dependencies are built.
