file(REMOVE_RECURSE
  "CMakeFiles/disjunction_test.dir/disjunction_test.cc.o"
  "CMakeFiles/disjunction_test.dir/disjunction_test.cc.o.d"
  "disjunction_test"
  "disjunction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjunction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
