# Empty dependencies file for disjunction_test.
# This may be replaced when dependencies are built.
