file(REMOVE_RECURSE
  "CMakeFiles/estimators_test.dir/estimators_test.cc.o"
  "CMakeFiles/estimators_test.dir/estimators_test.cc.o.d"
  "estimators_test"
  "estimators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
