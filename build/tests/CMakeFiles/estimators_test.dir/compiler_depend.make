# Empty compiler generated dependencies file for estimators_test.
# This may be replaced when dependencies are built.
