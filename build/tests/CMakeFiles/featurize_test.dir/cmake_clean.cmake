file(REMOVE_RECURSE
  "CMakeFiles/featurize_test.dir/featurize_test.cc.o"
  "CMakeFiles/featurize_test.dir/featurize_test.cc.o.d"
  "featurize_test"
  "featurize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/featurize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
