# Empty compiler generated dependencies file for featurize_test.
# This may be replaced when dependencies are built.
