file(REMOVE_RECURSE
  "CMakeFiles/gbm_test.dir/gbm_test.cc.o"
  "CMakeFiles/gbm_test.dir/gbm_test.cc.o.d"
  "gbm_test"
  "gbm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
