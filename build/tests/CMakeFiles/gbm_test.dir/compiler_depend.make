# Empty compiler generated dependencies file for gbm_test.
# This may be replaced when dependencies are built.
