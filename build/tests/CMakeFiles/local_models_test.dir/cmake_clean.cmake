file(REMOVE_RECURSE
  "CMakeFiles/local_models_test.dir/local_models_test.cc.o"
  "CMakeFiles/local_models_test.dir/local_models_test.cc.o.d"
  "local_models_test"
  "local_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
