# Empty dependencies file for local_models_test.
# This may be replaced when dependencies are built.
