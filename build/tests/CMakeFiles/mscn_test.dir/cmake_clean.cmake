file(REMOVE_RECURSE
  "CMakeFiles/mscn_test.dir/mscn_test.cc.o"
  "CMakeFiles/mscn_test.dir/mscn_test.cc.o.d"
  "mscn_test"
  "mscn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
