# Empty compiler generated dependencies file for mscn_test.
# This may be replaced when dependencies are built.
