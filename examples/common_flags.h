// Shared flag vocabulary for the example binaries (qfcard_cli,
// serving_loop, qfcard_server): telemetry outputs and model-store
// persistence. Each example keeps its own loop over argv and offers every
// unrecognized argument to TryParseCommonFlag first, so the flags below mean
// the same thing — and fail the same way — in every binary.
//
//   --metrics-out=PATH  enable telemetry (as if QFCARD_METRICS=1) and write
//                       the JSON snapshot (metrics + drift monitor + trace
//                       stats) to PATH on exit; tools/validate_metrics.py
//                       checks this file against tools/metrics_schema.json
//   --trace-out=PATH    enable stage tracing (as if QFCARD_TRACE=1) and
//                       write the span ring buffer as JSON to PATH on exit
//   --trace-events-out=PATH
//                       enable stage tracing and additionally write the
//                       Chrome trace-event export (load it in Perfetto or
//                       chrome://tracing; pid=route, tid=thread) to PATH;
//                       tools/analyze_trace.py reads either format
//   --model-dir=PATH    serve::ModelStore root for --save-model/--load-model
//   --save-model        after training, publish the model to --model-dir as
//                       the next version (ML estimators only)
//   --load-model[=N]    skip training and serve version N (default: latest)
//                       from --model-dir
//   --workload=FAMILY   build the catalog and train/test workload from a
//                       registered workload family (workload::FamilyNames())
//                       instead of a CSV or the synthetic forest; unknown
//                       names fail with a did-you-mean suggestion
//   --adaptive=MODE     put the adapt::AdaptiveEstimator front in front of
//                       the served ML path (docs/adaptive.md). MODE is one
//                       of off|knn|residual|auto; anything else fails with
//                       the mode vocabulary

#ifndef QFCARD_EXAMPLES_COMMON_FLAGS_H_
#define QFCARD_EXAMPLES_COMMON_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "qfcard.h"

namespace qfcard::examples {

struct CommonFlags {
  std::string metrics_out;
  std::string trace_out;
  std::string trace_events_out;
  std::string model_dir;
  bool save_model = false;
  bool load_model = false;
  uint64_t load_version = 0;  ///< 0 = latest
  std::string workload;  ///< workload family name; resolved via
                         ///< workload::FamilyNamed at startup
  /// --adaptive= mode; kOff (plain ML passthrough) unless the flag is given.
  adapt::AdaptiveMode adaptive = adapt::AdaptiveMode::kOff;
  bool adaptive_set = false;  ///< true when --adaptive= appeared
};

/// Consumes `arg` if it is one of the shared flags. Returns true when the
/// flag was recognized and applied, false when the caller should handle it,
/// and an error when it was recognized but malformed.
inline common::StatusOr<bool> TryParseCommonFlag(const std::string& arg,
                                                 CommonFlags* flags) {
  if (arg.rfind("--metrics-out=", 0) == 0) {
    flags->metrics_out = arg.substr(14);
    return true;
  }
  if (arg.rfind("--trace-out=", 0) == 0) {
    flags->trace_out = arg.substr(12);
    return true;
  }
  if (arg.rfind("--trace-events-out=", 0) == 0) {
    flags->trace_events_out = arg.substr(19);
    return true;
  }
  if (arg.rfind("--model-dir=", 0) == 0) {
    flags->model_dir = arg.substr(12);
    return true;
  }
  if (arg.rfind("--workload=", 0) == 0) {
    flags->workload = arg.substr(11);
    if (flags->workload.empty()) {
      return common::Status::InvalidArgument(
          "--workload= wants a family name; registered: " +
          common::Join(workload::FamilyNames(), ", "));
    }
    return true;
  }
  if (arg.rfind("--adaptive=", 0) == 0) {
    QFCARD_ASSIGN_OR_RETURN(flags->adaptive,
                            adapt::ParseAdaptiveMode(arg.substr(11)));
    flags->adaptive_set = true;
    return true;
  }
  if (arg == "--save-model") {
    flags->save_model = true;
    return true;
  }
  if (arg == "--load-model") {
    flags->load_model = true;
    return true;
  }
  if (arg.rfind("--load-model=", 0) == 0) {
    flags->load_model = true;
    const std::string version = arg.substr(13);
    char* end = nullptr;
    flags->load_version = std::strtoull(version.c_str(), &end, 10);
    if (version.empty() || end == nullptr || *end != '\0' ||
        flags->load_version == 0) {
      return common::Status::InvalidArgument(
          "--load-model= wants a positive version number, got: " + version);
    }
    return true;
  }
  return false;
}

/// Cross-flag consistency checks shared by every binary that persists
/// models. Call once after the argv loop.
inline common::Status ValidateCommonFlags(const CommonFlags& flags) {
  if ((flags.save_model || flags.load_model) && flags.model_dir.empty()) {
    return common::Status::InvalidArgument(
        "--save-model/--load-model need --model-dir=PATH");
  }
  if (flags.save_model && flags.load_model) {
    return common::Status::InvalidArgument(
        "--save-model and --load-model are mutually exclusive (a loaded "
        "model is already in the store)");
  }
  return common::Status::Ok();
}

/// Turns on the telemetry subsystems the output flags imply. Call before
/// the first traced/measured work.
inline void ApplyTelemetryFlags(const CommonFlags& flags) {
  if (!flags.metrics_out.empty()) obs::SetMetricsEnabled(true);
  if (!flags.trace_out.empty() || !flags.trace_events_out.empty()) {
    obs::SetTraceEnabled(true);
  }
}

/// Writes the requested snapshot/trace files. Returns false (after printing
/// to stderr) if any write failed — the caller should exit nonzero so CI
/// catches a missing snapshot.
inline bool WriteTelemetryOutputs(const CommonFlags& flags) {
  bool ok = true;
  if (!flags.metrics_out.empty()) {
    if (obs::WriteSnapshotJson(flags.metrics_out)) {
      std::fprintf(stderr, "telemetry snapshot written to %s\n",
                   flags.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write metrics snapshot to %s\n",
                   flags.metrics_out.c_str());
      ok = false;
    }
  }
  if (!flags.trace_out.empty()) {
    if (obs::WriteTraceJson(flags.trace_out)) {
      std::fprintf(stderr, "trace written to %s\n", flags.trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   flags.trace_out.c_str());
      ok = false;
    }
  }
  if (!flags.trace_events_out.empty()) {
    if (obs::WriteTraceEventJson(flags.trace_events_out)) {
      std::fprintf(stderr, "trace events written to %s\n",
                   flags.trace_events_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write trace events to %s\n",
                   flags.trace_events_out.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace qfcard::examples

#endif  // QFCARD_EXAMPLES_COMMON_FLAGS_H_
