// Join estimation with local models (Section 2.1.2 / 4.1): materialize the
// sub-schemas of a JOB-light-style workload over the synthetic IMDb
// database, train one GB + conjunctive model per sub-schema, and compare
// against the Postgres-style baseline on held-out join queries.
//
//   $ ./build/examples/join_estimation

#include <cstdio>
#include <map>

#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

int main() {
  workload::ImdbOptions iopts;
  iopts.num_titles = 8000;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(iopts);
  std::printf("IMDb-like catalog: %d tables, %zu key/foreign-key edges\n",
              db.catalog.num_tables(), db.graph.edges().size());

  // Test workload: JOB-light-like join queries.
  common::Rng rng(5);
  workload::JobLightOptions jopts;
  jopts.count = 40;
  jopts.max_tables = 3;  // keep materializations small for the demo
  const std::vector<query::Query> test_queries =
      workload::MakeJobLightWorkload(db, jopts, rng);

  // Local model set: GB + Universal Conjunction Encoding per sub-schema.
  est::LocalModelSet local(
      &db.catalog, &db.graph,
      [](featurize::FeatureSchema schema) {
        featurize::ConjunctionOptions copts;
        copts.max_partitions = 32;
        return std::make_unique<featurize::ConjunctionEncoding>(
            std::move(schema), copts);
      },
      []() { return std::make_unique<ml::GradientBoosting>(); });

  // Group test queries by sub-schema; train one local model per group.
  std::map<std::string, std::vector<std::string>> subschemas;
  for (const query::Query& q : test_queries) {
    std::vector<std::string> tables;
    for (const query::TableRef& ref : q.tables) tables.push_back(ref.name);
    subschemas[query::SubSchemaKey(tables)] = tables;
  }
  std::printf("training %zu local models...\n", subschemas.size());
  for (const auto& [key, tables] : subschemas) {
    const storage::Table& mat = *local.GetOrMaterialize(tables).value();
    // Training queries: selections over the materialized join, excluding
    // key columns (id / movie_id).
    workload::PredicateGenOptions gen;
    gen.max_attrs = 4;
    gen.max_not_equals = 1;
    for (int c = 0; c < mat.num_columns(); ++c) {
      const std::string& name = mat.column(c).name();
      if (name.find(".id") == std::string::npos &&
          name.find("movie_id") == std::string::npos) {
        gen.allowed_attrs.push_back(c);
      }
    }
    common::Rng gen_rng(17);
    const std::vector<query::Query> train_queries =
        workload::GeneratePredicateWorkload(mat, 1200, gen, gen_rng);
    const std::vector<workload::LabeledQuery> labeled =
        workload::LabelOnTable(mat, train_queries, true).value();
    std::vector<query::Query> qs;
    std::vector<double> cards;
    for (const workload::LabeledQuery& lq : labeled) {
      qs.push_back(lq.query);
      cards.push_back(lq.card);
    }
    QFCARD_CHECK_OK(local.TrainSubSchema(tables, qs, cards, 0.1, 19));
    std::printf("  %-45s %8lld joined rows, %5zu training queries\n",
                key.c_str(), static_cast<long long>(mat.num_rows()),
                qs.size());
  }

  // Baseline: Postgres-style histogram/independence estimator.
  const est::PostgresStyleEstimator postgres =
      est::PostgresStyleEstimator::Build(&db.catalog).value();
  const est::TrueCardEstimator oracle(&db.catalog);

  std::vector<double> local_err;
  std::vector<double> pg_err;
  for (const query::Query& q : test_queries) {
    const double truth = oracle.EstimateCard(q).value();
    local_err.push_back(
        ml::QError(truth, local.EstimateCard(q).value()));
    pg_err.push_back(ml::QError(truth, postgres.EstimateCard(q).value()));
  }
  std::printf("\nq-errors on %zu held-out join queries:\n", local_err.size());
  std::printf("  %-18s %s\n", local.name().c_str(),
              ml::QErrorSummary::FromErrors(local_err).ToString().c_str());
  std::printf("  %-18s %s\n", "postgres",
              ml::QErrorSummary::FromErrors(pg_err).ToString().c_str());
  std::printf("\nmodel footprint: %zu bytes across %d local models\n",
              local.SizeBytes(), local.num_models());
  return 0;
}
