// Mixed-query demo: featurize queries containing both conjunctions and
// disjunctions (Definition 3.3) with Limited Disjunction Encoding, train the
// paper's recommended GB + complex combination, and show how the other QFTs
// fail on the same queries.
//
//   $ ./build/examples/mixed_workload_demo

#include <cstdio>

#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

int main() {
  workload::ForestOptions fopts;
  fopts.num_rows = 20000;
  fopts.num_attributes = 8;
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& forest = *catalog.GetTable("forest").value();

  // A mixed query in SQL, in the shape of the paper's TPC-H example.
  const char* sql =
      "SELECT count(*) FROM forest WHERE "
      "(A1 >= 2200 AND A1 <= 2600 AND A1 <> 2400 OR A1 >= 3200) AND "
      "(A4 = 0 OR A4 = 2) AND "
      "A2 > 100 AND A2 < 900";
  const query::Query mixed = query::ParseQuery(sql, catalog).value();
  std::printf("query: %s\n", sql);
  std::printf("  attributes=%d simple-predicates=%d conjunctive=%s\n\n",
              mixed.NumAttributes(), mixed.NumSimplePredicates(),
              mixed.IsConjunctive() ? "yes" : "no");

  // Only Limited Disjunction Encoding supports this query class.
  const featurize::FeatureSchema schema =
      featurize::FeatureSchema::FromTable(forest);
  for (const featurize::QftKind kind :
       {featurize::QftKind::kSimple, featurize::QftKind::kRange,
        featurize::QftKind::kConjunctive, featurize::QftKind::kComplex}) {
    const auto featurizer = featurize::MakeFeaturizer(kind, schema);
    const auto vec_or = featurizer->Featurize(mixed);
    std::printf("  %-12s -> %s\n", featurizer->name().c_str(),
                vec_or.ok() ? "featurized" : vec_or.status().ToString().c_str());
  }

  // Train GB + complex on a mixed workload and evaluate.
  common::Rng rng(3);
  const std::vector<query::Query> queries = workload::GeneratePredicateWorkload(
      forest, 2500, workload::MixedWorkloadOptions(5), rng);
  std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(forest, queries, true).value();
  const size_t n_test = 400;
  const std::vector<workload::LabeledQuery> test(labeled.end() - n_test,
                                                 labeled.end());
  labeled.resize(labeled.size() - n_test);

  featurize::ConjunctionOptions copts;
  copts.max_partitions = 32;
  const auto comp = featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                              schema, copts);
  ml::GradientBoosting gb;
  const eval::RunResult result =
      eval::RunQftModel(*comp, gb, labeled, test).value();
  std::printf("\nGB + complex on %zu mixed test queries:\n  %s\n",
              test.size(), result.summary.ToString().c_str());

  // The truth for the SQL query above.
  const double truth =
      static_cast<double>(query::Executor::Count(forest, mixed).value());
  const double est =
      ml::LabelToCard(gb.Predict(comp->Featurize(mixed).value().data()));
  std::printf("\nexample query: true=%.0f estimate=%.0f q-error=%.2f\n", truth,
              est, ml::QError(truth, est));
  return 0;
}
