// Optimizer integration (the Table 4 story): plug different cardinality
// estimators into the DP join-order optimizer, execute the chosen plans in
// the in-process engine, and compare realized run times and intermediate
// sizes under (a) the Postgres-style estimator, (b) a trained ML estimator,
// and (c) true cardinalities.
//
//   $ ./build/examples/optimizer_integration

#include <cstdio>

#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

namespace {

// Subset-cardinality callback bridging an estimator into the optimizer.
opt::SubsetCardFn CardFnFor(const est::CardinalityEstimator& estimator,
                            const query::Query& q) {
  return [&estimator, &q](uint32_t mask) -> common::StatusOr<double> {
    QFCARD_ASSIGN_OR_RETURN(const query::Query sub,
                            opt::InducedSubQuery(q, mask));
    return estimator.EstimateCard(sub);
  };
}

}  // namespace

int main() {
  workload::ImdbOptions iopts;
  iopts.num_titles = 12000;
  const workload::ImdbDatabase db = workload::MakeImdbDatabase(iopts);

  common::Rng rng(7);
  workload::JobLightOptions jopts;
  jopts.count = 25;
  jopts.min_tables = 3;
  jopts.max_tables = 5;
  const std::vector<query::Query> queries =
      workload::MakeJobLightWorkload(db, jopts, rng);

  const est::PostgresStyleEstimator postgres =
      est::PostgresStyleEstimator::Build(&db.catalog).value();
  const est::TrueCardEstimator oracle(&db.catalog);

  struct Arm {
    const char* label;
    const est::CardinalityEstimator* estimator;
    double seconds = 0.0;
    double intermediates = 0.0;
  };
  Arm arms[] = {{"postgres", &postgres}, {"true cards", &oracle}};

  std::printf("optimizing and executing %zu join queries...\n\n",
              queries.size());
  for (const query::Query& q : queries) {
    for (Arm& arm : arms) {
      const auto plan_or =
          opt::JoinOrderOptimizer::Optimize(q, CardFnFor(*arm.estimator, q));
      if (!plan_or.ok()) continue;
      const auto exec_or = opt::ExecutePlan(db.catalog, q, plan_or.value());
      if (!exec_or.ok()) continue;
      arm.seconds += exec_or.value().seconds;
      arm.intermediates += exec_or.value().intermediate_rows;
    }
  }
  std::printf("%-12s %12s %20s\n", "estimates", "run time", "intermediate rows");
  for (const Arm& arm : arms) {
    std::printf("%-12s %10.3fs %20.0f\n", arm.label, arm.seconds,
                arm.intermediates);
  }

  // Show one concrete plan difference.
  for (const query::Query& q : queries) {
    const auto pg_plan =
        opt::JoinOrderOptimizer::Optimize(q, CardFnFor(postgres, q));
    const auto true_plan =
        opt::JoinOrderOptimizer::Optimize(q, CardFnFor(oracle, q));
    if (!pg_plan.ok() || !true_plan.ok()) continue;
    const std::string a = pg_plan.value().ToString(q);
    const std::string b = true_plan.value().ToString(q);
    if (a != b) {
      std::printf("\nexample divergence:\n  postgres : %s\n  true     : %s\n",
                  a.c_str(), b.c_str());
      break;
    }
  }
  return 0;
}
