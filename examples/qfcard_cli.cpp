// qfcard_cli: train a cardinality estimator on a CSV table and answer SQL
// count(*) estimates interactively (or from piped stdin).
//
//   $ ./build/examples/qfcard_cli data.csv tablename
//   $ ./build/examples/qfcard_cli --synthetic
//   > SELECT count(*) FROM forest WHERE A1 >= 2500 AND A1 <= 3000;
//   estimate=412  true=398  q-error=1.04
//
// Flags:
//   --synthetic     use the built-in forest generator instead of a CSV
//                   (sized by QFCARD_SCALE: smoke / default / full)
//   --no-truth      skip executing queries for the true count (faster)
//   --model=NAME    estimator from est::MakeEstimator, e.g. gb+complex,
//                   nn+complex, postgres, sampling ("gb"/"nn" are accepted
//                   as shorthand for <model>+complex; default gb+complex)
//   --metrics-out=PATH  enable telemetry (as if QFCARD_METRICS=1) and write
//                   the JSON snapshot (metrics + drift monitor + trace
//                   stats) to PATH on exit; tools/validate_metrics.py
//                   checks this file against tools/metrics_schema.json
//   --trace-out=PATH    enable stage tracing (as if QFCARD_TRACE=1) and
//                   write the span ring buffer as JSON to PATH on exit
//   --model-dir=PATH    serve::ModelStore root for --save-model/--load-model
//   --save-model    after training, publish the model to --model-dir as the
//                   next version (ML estimators only; see docs/serving.md)
//   --load-model[=N]    skip training and serve version N (default: latest)
//                   from --model-dir; the restored model featurizes with its
//                   saved schema, so estimates match the saving process even
//                   if the table has since drifted
//
// The served model always sits behind a serve::ServingEstimator, so the
// serve.swaps counter and serve.active_version gauge appear in every
// telemetry snapshot and a retraining loop could hot-swap it live (see
// examples/serving_loop.cpp).
//
// Labeling, training featurization, and the held-out accuracy report all
// run through the batch API; set QFCARD_THREADS to parallelize them. Every
// truth-checked query feeds the q-error drift monitor
// (docs/observability.md), which warns when the rolling p95 crosses its
// threshold.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

namespace {

struct CliOptions {
  std::string csv_path;
  std::string table_name = "data";
  bool synthetic = false;
  bool truth = true;
  std::string model = "gb+complex";
  std::string metrics_out;
  std::string trace_out;
  std::string model_dir;
  bool save_model = false;
  bool load_model = false;
  uint64_t load_version = 0;  ///< 0 = latest
};

common::StatusOr<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--synthetic") {
      opts.synthetic = true;
    } else if (arg == "--no-truth") {
      opts.truth = false;
    } else if (arg.rfind("--model=", 0) == 0) {
      opts.model = arg.substr(8);
      // Shorthands from before the registry existed.
      if (opts.model == "gb" || opts.model == "nn") {
        opts.model += "+complex";
      }
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      opts.metrics_out = arg.substr(14);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      opts.trace_out = arg.substr(12);
    } else if (arg.rfind("--model-dir=", 0) == 0) {
      opts.model_dir = arg.substr(12);
    } else if (arg == "--save-model") {
      opts.save_model = true;
    } else if (arg == "--load-model") {
      opts.load_model = true;
    } else if (arg.rfind("--load-model=", 0) == 0) {
      opts.load_model = true;
      const std::string version = arg.substr(13);
      char* end = nullptr;
      opts.load_version = std::strtoull(version.c_str(), &end, 10);
      if (version.empty() || end == nullptr || *end != '\0' ||
          opts.load_version == 0) {
        return common::Status::InvalidArgument(
            "--load-model= wants a positive version number, got: " + version);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return common::Status::InvalidArgument("unknown flag: " + arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (!opts.synthetic) {
    if (positional.empty()) {
      return common::Status::InvalidArgument(
          "usage: qfcard_cli <csv> [table-name] | qfcard_cli --synthetic");
    }
    opts.csv_path = positional[0];
    if (positional.size() > 1) opts.table_name = positional[1];
  }
  if ((opts.save_model || opts.load_model) && opts.model_dir.empty()) {
    return common::Status::InvalidArgument(
        "--save-model/--load-model need --model-dir=PATH");
  }
  if (opts.save_model && opts.load_model) {
    return common::Status::InvalidArgument(
        "--save-model and --load-model are mutually exclusive (a loaded "
        "model is already in the store)");
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts_or = ParseArgs(argc, argv);
  if (!opts_or.ok()) {
    std::fprintf(stderr, "%s\n", opts_or.status().ToString().c_str());
    return 1;
  }
  const CliOptions& opts = opts_or.value();

  if (!opts.metrics_out.empty()) obs::SetMetricsEnabled(true);
  if (!opts.trace_out.empty()) obs::SetTraceEnabled(true);
  obs::TraceSpan cli_span("cli.main");

  storage::Catalog catalog;
  if (opts.synthetic) {
    workload::ForestOptions fopts;
    fopts.num_rows = static_cast<int>(common::ScalePick(4000, 30000, 580000));
    fopts.num_attributes =
        static_cast<int>(common::ScalePick(6, 10, 55));
    QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  } else {
    auto table_or = storage::ReadCsv(opts.csv_path, opts.table_name);
    if (!table_or.ok()) {
      std::fprintf(stderr, "loading '%s': %s\n", opts.csv_path.c_str(),
                   table_or.status().ToString().c_str());
      return 1;
    }
    QFCARD_CHECK_OK(catalog.AddTable(std::move(table_or).value()));
  }
  const storage::Table& table = catalog.table(0);
  std::fprintf(stderr, "table '%s': %lld rows x %d columns\n",
               table.name().c_str(), static_cast<long long>(table.num_rows()),
               table.num_columns());

  std::unique_ptr<est::CardinalityEstimator> estimator;
  std::string model_name = opts.model;
  uint64_t served_version = 0;  // 0 = trained in-process, never published
  size_t num_train = 0;

  if (opts.load_model) {
    // Serve a published bundle: no workload, no training. The bundle
    // carries the featurizer's schema and partitioner state, so the
    // restored model estimates exactly like the process that saved it.
    const serve::ModelStore store(opts.model_dir);
    common::StatusOr<serve::ModelBundle> bundle_or =
        [&]() -> common::StatusOr<serve::ModelBundle> {
      if (opts.load_version != 0) {
        served_version = opts.load_version;
        return store.Load(opts.load_version);
      }
      auto latest_or = store.LoadLatest();
      if (!latest_or.ok()) return latest_or.status();
      served_version = latest_or.value().first;
      return std::move(latest_or).value().second;
    }();
    if (!bundle_or.ok()) {
      std::fprintf(stderr, "loading model from '%s': %s\n",
                   opts.model_dir.c_str(),
                   bundle_or.status().ToString().c_str());
      return 1;
    }
    model_name = bundle_or.value().estimator;
    auto loaded_or = serve::EstimatorFromBundle(bundle_or.value(), catalog);
    if (!loaded_or.ok()) {
      std::fprintf(stderr, "restoring model: %s\n",
                   loaded_or.status().ToString().c_str());
      return 1;
    }
    estimator = std::move(loaded_or).value();
    std::fprintf(stderr, "loaded '%s' v%llu from %s\n", model_name.c_str(),
                 static_cast<unsigned long long>(served_version),
                 opts.model_dir.c_str());
  } else {
    // Build the estimator by registry name and train it on an auto-generated
    // mixed workload (statistics-based estimators ignore Train).
    std::fprintf(stderr, "building '%s' on auto-generated workload...\n",
                 opts.model.c_str());
    est::EstimatorOptions eopts;
    eopts.conj.max_partitions = 64;
    auto estimator_or = est::MakeEstimator(opts.model, catalog, eopts);
    if (!estimator_or.ok()) {
      std::fprintf(stderr, "%s\n", estimator_or.status().ToString().c_str());
      return 1;
    }
    estimator = std::move(estimator_or).value();

    common::Rng rng(1);
    const int num_workload =
        static_cast<int>(common::ScalePick(800, 4000, 60000));
    const std::vector<query::Query> queries =
        workload::GeneratePredicateWorkload(
            table, num_workload,
            workload::MixedWorkloadOptions(std::min(table.num_columns(), 6)),
            rng);
    const std::vector<workload::LabeledQuery> labeled =
        workload::LabelOnTable(table, queries, true).value();
    // Hold out a tail slice for the post-training accuracy report below.
    const size_t num_held_out = labeled.size() / 10;
    num_train = labeled.size() - num_held_out;
    {
      std::vector<query::Query> qs;
      std::vector<double> cards;
      for (size_t i = 0; i < num_train; ++i) {
        qs.push_back(labeled[i].query);
        cards.push_back(labeled[i].card);
      }
      QFCARD_CHECK_OK(estimator->Train(qs, cards, 0.1, 2));
    }

    // Batched accuracy report on the held-out slice (one EstimateBatch call
    // instead of a per-query loop).
    if (num_held_out > 0) {
      std::vector<query::Query> held_out;
      for (size_t i = num_train; i < labeled.size(); ++i) {
        held_out.push_back(labeled[i].query);
      }
      const auto ests_or = estimator->EstimateBatch(held_out);
      if (ests_or.ok()) {
        // Held-out truths are labeled q-errors: they seed the drift
        // monitor's window (the post-training baseline) and the qerror
        // histogram.
        obs::QErrorDriftMonitor& drift = obs::QErrorDriftMonitor::Global();
        obs::Histogram* qerr_hist =
            obs::MetricsEnabled()
                ? obs::MetricsRegistry::Global().HistogramNamed(
                      "qerror", obs::QErrorBounds(), "backend=" + opts.model)
                : nullptr;
        std::vector<double> qerrors;
        for (size_t i = 0; i < held_out.size(); ++i) {
          qerrors.push_back(
              ml::QError(labeled[num_train + i].card, ests_or.value()[i]));
          drift.Observe(qerrors.back());
          if (qerr_hist != nullptr) qerr_hist->Observe(qerrors.back());
        }
        const ml::QErrorSummary summary =
            ml::QErrorSummary::FromErrors(qerrors);
        std::fprintf(
            stderr,
            "held-out q-error over %zu queries: median=%.2f p95=%.2f\n",
            held_out.size(), summary.median, summary.p95);
      } else {
        std::fprintf(stderr, "held-out eval failed: %s\n",
                     ests_or.status().ToString().c_str());
      }
    }

    if (opts.save_model) {
      serve::ModelStore store(opts.model_dir);
      auto bundle_or = serve::BundleFromEstimator(*estimator, model_name);
      if (!bundle_or.ok()) {
        std::fprintf(stderr, "cannot save '%s': %s\n", model_name.c_str(),
                     bundle_or.status().ToString().c_str());
        return 1;
      }
      auto version_or = store.Publish(bundle_or.value());
      if (!version_or.ok()) {
        std::fprintf(stderr, "publishing to '%s': %s\n",
                     opts.model_dir.c_str(),
                     version_or.status().ToString().c_str());
        return 1;
      }
      served_version = version_or.value();
      std::fprintf(stderr, "saved '%s' as v%llu in %s\n", model_name.c_str(),
                   static_cast<unsigned long long>(served_version),
                   opts.model_dir.c_str());
    }
  }

  // Serve through the hot-swap front so the serve.* metric families are
  // always live (a retraining loop could swap this model without downtime).
  const serve::ServingEstimator serving(
      std::shared_ptr<const est::CardinalityEstimator>(std::move(estimator)),
      served_version);
  std::fprintf(stderr,
               "ready (%zu training queries, %zu byte model). Enter SQL "
               "count(*) queries, one per line.\n",
               num_train, serving.SizeBytes());

  obs::QErrorDriftMonitor& drift = obs::QErrorDriftMonitor::Global();
  bool was_degraded = drift.degraded();
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string_view stripped = common::StripWhitespace(line);
    if (stripped.empty()) continue;
    if (stripped == "quit" || stripped == "exit") break;
    const auto q_or = query::ParseQuery(stripped, catalog);
    if (!q_or.ok()) {
      std::printf("error: %s\n", q_or.status().ToString().c_str());
      continue;
    }
    const auto est_or = serving.EstimateCard(q_or.value());
    if (!est_or.ok()) {
      std::printf("error: %s\n", est_or.status().ToString().c_str());
      continue;
    }
    if (opts.truth) {
      const auto truth_or = query::Executor::Count(table, q_or.value());
      if (truth_or.ok()) {
        const double truth = static_cast<double>(truth_or.value());
        const double qerr = ml::QError(truth, est_or.value());
        std::printf("estimate=%.0f  true=%.0f  q-error=%.2f\n", est_or.value(),
                    truth, qerr);
        // Every truth-checked query is labeled feedback for the drift
        // monitor; warn once per healthy->degraded flip.
        drift.Observe(qerr);
        const bool degraded = drift.degraded();
        if (degraded && !was_degraded) {
          const obs::QErrorDriftMonitor::State s = drift.GetState();
          std::fprintf(stderr,
                       "warning: q-error drift detected (rolling p95=%.2f > "
                       "%.2f); the workload has likely left the training "
                       "distribution — consider retraining\n",
                       s.p95, s.threshold);
        }
        was_degraded = degraded;
        continue;
      }
    }
    std::printf("estimate=%.0f\n", est_or.value());
  }

  cli_span.End();
  if (!opts.metrics_out.empty()) {
    if (obs::WriteSnapshotJson(opts.metrics_out)) {
      std::fprintf(stderr, "telemetry snapshot written to %s\n",
                   opts.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write metrics snapshot to %s\n",
                   opts.metrics_out.c_str());
      return 1;
    }
  }
  if (!opts.trace_out.empty()) {
    if (obs::WriteTraceJson(opts.trace_out)) {
      std::fprintf(stderr, "trace written to %s\n", opts.trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   opts.trace_out.c_str());
      return 1;
    }
  }
  return 0;
}
