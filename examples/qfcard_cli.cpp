// qfcard_cli: train a cardinality estimator on a CSV table and answer SQL
// count(*) estimates interactively (or from piped stdin).
//
//   $ ./build/examples/qfcard_cli data.csv tablename
//   $ ./build/examples/qfcard_cli --synthetic
//   > SELECT count(*) FROM forest WHERE A1 >= 2500 AND A1 <= 3000;
//   estimate=412  true=398  q-error=1.04
//
// Flags:
//   --synthetic     use the built-in forest generator instead of a CSV
//                   (sized by QFCARD_SCALE: smoke / default / full)
//   --no-truth      skip executing queries for the true count (faster)
//   --model=NAME    estimator from est::MakeEstimator, e.g. gb+complex,
//                   nn+complex, postgres, sampling ("gb"/"nn" are accepted
//                   as shorthand for <model>+complex; default gb+complex)
//   --workload=FAM  build catalog + train/test sets from a registered
//                   workload family (e.g. strings, in_heavy, zipf_skew;
//                   see docs/benchmarks.md) instead of a CSV / the forest;
//                   join families answer truth checks via the catalog
//                   labeler, so joined SQL works at the prompt too
//
// Telemetry and model-store flags (--metrics-out, --trace-out, --model-dir,
// --save-model, --load-model[=N]) and --adaptive=<off|knn|residual|auto>
// are shared across the example binaries; see examples/common_flags.h for
// their documentation.
//
// The served model always sits behind a serve::ServingEstimator, so the
// serve.swaps counter and serve.active_version gauge appear in every
// telemetry snapshot and a retraining loop could hot-swap it live (see
// examples/serving_loop.cpp). With --adaptive=MODE the adaptive front
// (docs/adaptive.md) additionally sits in front of that serving path: every
// truth-checked answer is published as execution feedback, the kNN and
// residual tiers learn from it, and each answer line reports which tier
// served it (tier=residual|knn|ml).
//
// Labeling, training featurization, and the held-out accuracy report all
// run through the batch API; set QFCARD_THREADS to parallelize them. Every
// truth-checked query feeds the q-error drift monitor
// (docs/observability.md), which warns when the rolling p95 crosses its
// threshold.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "common_flags.h"
#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

namespace {

struct CliOptions {
  std::string csv_path;
  std::string table_name = "data";
  bool synthetic = false;
  bool truth = true;
  std::string model = "gb+complex";
  examples::CommonFlags common;
};

common::StatusOr<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    QFCARD_ASSIGN_OR_RETURN(
        const bool consumed, examples::TryParseCommonFlag(arg, &opts.common));
    if (consumed) continue;
    if (arg == "--synthetic") {
      opts.synthetic = true;
    } else if (arg == "--no-truth") {
      opts.truth = false;
    } else if (arg.rfind("--model=", 0) == 0) {
      opts.model = arg.substr(8);
      // Shorthands from before the registry existed.
      if (opts.model == "gb" || opts.model == "nn") {
        opts.model += "+complex";
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return common::Status::InvalidArgument("unknown flag: " + arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (!opts.common.workload.empty()) {
    if (opts.synthetic || !positional.empty()) {
      return common::Status::InvalidArgument(
          "--workload= already provides the data; drop --synthetic and the "
          "CSV argument");
    }
  } else if (!opts.synthetic) {
    if (positional.empty()) {
      return common::Status::InvalidArgument(
          "usage: qfcard_cli <csv> [table-name] | qfcard_cli --synthetic | "
          "qfcard_cli --workload=FAMILY");
    }
    opts.csv_path = positional[0];
    if (positional.size() > 1) opts.table_name = positional[1];
  }
  if (opts.common.adaptive != adapt::AdaptiveMode::kOff && !opts.truth) {
    return common::Status::InvalidArgument(
        "--adaptive= learns from the truth-checked answers; it cannot work "
        "with --no-truth (no execution feedback to learn from)");
  }
  QFCARD_RETURN_IF_ERROR(examples::ValidateCommonFlags(opts.common));
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts_or = ParseArgs(argc, argv);
  if (!opts_or.ok()) {
    std::fprintf(stderr, "%s\n", opts_or.status().ToString().c_str());
    return 1;
  }
  const CliOptions& opts = opts_or.value();

  examples::ApplyTelemetryFlags(opts.common);
  obs::TraceSpan cli_span("cli.main");

  storage::Catalog catalog;
  // Family mode: the instance supplies catalog, schema graph, and the
  // labeled train/test split; kept alive for the graph (table addresses are
  // stable across the catalog move).
  std::optional<workload::FamilyInstance> family_inst;
  const workload::WorkloadFamily* family = nullptr;
  std::string primary_table = opts.table_name;
  if (!opts.common.workload.empty()) {
    // FamilyNamed fails unknown names with a did-you-mean suggestion.
    auto family_or = workload::FamilyNamed(opts.common.workload);
    if (!family_or.ok()) {
      std::fprintf(stderr, "%s\n", family_or.status().ToString().c_str());
      return 1;
    }
    family = family_or.value();
    auto inst_or = family->build(workload::ScaledFamilySizes(), /*seed=*/2);
    if (!inst_or.ok()) {
      std::fprintf(stderr, "building family '%s': %s\n", family->name.c_str(),
                   inst_or.status().ToString().c_str());
      return 1;
    }
    family_inst = std::move(inst_or).value();
    primary_table = family_inst->primary_table;
    catalog = std::move(family_inst->catalog);
    std::fprintf(stderr,
                 "workload family '%s': %s (%d table(s), %zu train / %zu "
                 "test queries)\n",
                 family->name.c_str(), family->description.c_str(),
                 catalog.num_tables(), family_inst->train.size(),
                 family_inst->test.size());
  } else if (opts.synthetic) {
    workload::ForestOptions fopts;
    fopts.num_rows = static_cast<int>(common::ScalePick(4000, 30000, 580000));
    fopts.num_attributes =
        static_cast<int>(common::ScalePick(6, 10, 55));
    QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  } else {
    auto table_or = storage::ReadCsv(opts.csv_path, opts.table_name);
    if (!table_or.ok()) {
      std::fprintf(stderr, "loading '%s': %s\n", opts.csv_path.c_str(),
                   table_or.status().ToString().c_str());
      return 1;
    }
    QFCARD_CHECK_OK(catalog.AddTable(std::move(table_or).value()));
  }
  const storage::Table& table =
      family_inst ? *catalog.GetTable(primary_table).value()
                  : catalog.table(0);
  primary_table = table.name();
  std::fprintf(stderr, "table '%s': %lld rows x %d columns\n",
               table.name().c_str(), static_cast<long long>(table.num_rows()),
               table.num_columns());

  std::unique_ptr<est::CardinalityEstimator> estimator;
  std::string model_name = opts.model;
  uint64_t served_version = 0;  // 0 = trained in-process, never published
  size_t num_train = 0;

  if (opts.common.load_model) {
    // Serve a published bundle: no workload, no training. The bundle
    // carries the featurizer's schema and partitioner state, so the
    // restored model estimates exactly like the process that saved it.
    const serve::ModelStore store(opts.common.model_dir);
    common::StatusOr<serve::ModelBundle> bundle_or =
        [&]() -> common::StatusOr<serve::ModelBundle> {
      if (opts.common.load_version != 0) {
        served_version = opts.common.load_version;
        return store.Load(opts.common.load_version);
      }
      auto latest_or = store.LoadLatest();
      if (!latest_or.ok()) return latest_or.status();
      served_version = latest_or.value().first;
      return std::move(latest_or).value().second;
    }();
    if (!bundle_or.ok()) {
      std::fprintf(stderr, "loading model from '%s': %s\n",
                   opts.common.model_dir.c_str(),
                   bundle_or.status().ToString().c_str());
      return 1;
    }
    model_name = bundle_or.value().estimator;
    auto loaded_or = serve::EstimatorFromBundle(bundle_or.value(), catalog);
    if (!loaded_or.ok()) {
      std::fprintf(stderr, "restoring model: %s\n",
                   loaded_or.status().ToString().c_str());
      return 1;
    }
    estimator = std::move(loaded_or).value();
    std::fprintf(stderr, "loaded '%s' v%llu from %s\n", model_name.c_str(),
                 static_cast<unsigned long long>(served_version),
                 opts.common.model_dir.c_str());
  } else {
    // Build the estimator by registry name and train it on an auto-generated
    // mixed workload (statistics-based estimators ignore Train).
    std::fprintf(stderr, "building '%s' on auto-generated workload...\n",
                 opts.model.c_str());
    if (family != nullptr) {
      // Fail fast on capability mismatches (same gate the benchmark matrix
      // applies) instead of erroring deep inside Train/EstimateBatch.
      const auto info_or = est::EstimatorInfoFor(opts.model);
      if (info_or.ok()) {
        const est::EstimatorInfo& info = *info_or.value();
        if (family->joins && !info.supports_joins) {
          std::fprintf(stderr,
                       "'%s' does not support join queries; family '%s' "
                       "needs one of: postgres, true, mscn*\n",
                       opts.model.c_str(), family->name.c_str());
          return 1;
        }
        if (family->disjunctions && !info.supports_disjunctions) {
          std::fprintf(stderr,
                       "'%s' does not support disjunctions; family '%s' "
                       "needs a +complex variant, postgres, or sampling\n",
                       opts.model.c_str(), family->name.c_str());
          return 1;
        }
      }
    }
    est::EstimatorOptions eopts;
    eopts.conj.max_partitions = 64;
    eopts.table = primary_table;
    if (family != nullptr && family->joins) {
      eopts.schema_graph = &family_inst->graph;
    }
    auto estimator_or = est::MakeEstimator(opts.model, catalog, eopts);
    if (!estimator_or.ok()) {
      std::fprintf(stderr, "%s\n", estimator_or.status().ToString().c_str());
      return 1;
    }
    estimator = std::move(estimator_or).value();

    std::vector<workload::LabeledQuery> labeled;
    if (family_inst) {
      // The family supplies its own train/test split; train on the head,
      // report held-out accuracy on the family's test slice.
      labeled = family_inst->train;
      labeled.insert(labeled.end(), family_inst->test.begin(),
                     family_inst->test.end());
      num_train = family_inst->train.size();
    } else {
      common::Rng rng(1);
      const int num_workload =
          static_cast<int>(common::ScalePick(800, 4000, 60000));
      const std::vector<query::Query> queries =
          workload::GeneratePredicateWorkload(
              table, num_workload,
              workload::MixedWorkloadOptions(std::min(table.num_columns(), 6)),
              rng);
      labeled = workload::LabelOnTable(table, queries, true).value();
      // Hold out a tail slice for the post-training accuracy report below.
      num_train = labeled.size() - labeled.size() / 10;
    }
    const size_t num_held_out = labeled.size() - num_train;
    {
      std::vector<query::Query> qs;
      std::vector<double> cards;
      for (size_t i = 0; i < num_train; ++i) {
        qs.push_back(labeled[i].query);
        cards.push_back(labeled[i].card);
      }
      QFCARD_CHECK_OK(estimator->Train(qs, cards, 0.1, 2));
    }

    // Batched accuracy report on the held-out slice (one EstimateBatch call
    // instead of a per-query loop).
    if (num_held_out > 0) {
      std::vector<query::Query> held_out;
      for (size_t i = num_train; i < labeled.size(); ++i) {
        held_out.push_back(labeled[i].query);
      }
      const auto ests_or = estimator->EstimateBatch(held_out);
      if (ests_or.ok()) {
        // Held-out truths are labeled q-errors: they seed the drift
        // monitor's window (the post-training baseline) and the qerror
        // histogram.
        obs::QErrorDriftMonitor& drift = obs::QErrorDriftMonitor::Global();
        obs::Histogram* qerr_hist =
            obs::MetricsEnabled()
                ? obs::MetricsRegistry::Global().HistogramNamed(
                      "qerror", obs::QErrorBounds(), "backend=" + opts.model)
                : nullptr;
        std::vector<double> qerrors;
        for (size_t i = 0; i < held_out.size(); ++i) {
          qerrors.push_back(
              ml::QError(labeled[num_train + i].card, ests_or.value()[i]));
          drift.Observe(qerrors.back());
          if (qerr_hist != nullptr) qerr_hist->Observe(qerrors.back());
        }
        const ml::QErrorSummary summary =
            ml::QErrorSummary::FromErrors(qerrors);
        std::fprintf(
            stderr,
            "held-out q-error over %zu queries: median=%.2f p95=%.2f\n",
            held_out.size(), summary.median, summary.p95);
      } else {
        std::fprintf(stderr, "held-out eval failed: %s\n",
                     ests_or.status().ToString().c_str());
      }
    }

    if (opts.common.save_model) {
      serve::ModelStore store(opts.common.model_dir);
      auto bundle_or = serve::BundleFromEstimator(*estimator, model_name);
      if (!bundle_or.ok()) {
        std::fprintf(stderr, "cannot save '%s': %s\n", model_name.c_str(),
                     bundle_or.status().ToString().c_str());
        return 1;
      }
      auto version_or = store.Publish(bundle_or.value());
      if (!version_or.ok()) {
        std::fprintf(stderr, "publishing to '%s': %s\n",
                     opts.common.model_dir.c_str(),
                     version_or.status().ToString().c_str());
        return 1;
      }
      served_version = version_or.value();
      std::fprintf(stderr, "saved '%s' as v%llu in %s\n", model_name.c_str(),
                   static_cast<unsigned long long>(served_version),
                   opts.common.model_dir.c_str());
    }
  }

  // Serve through the hot-swap front so the serve.* metric families are
  // always live (a retraining loop could swap this model without downtime).
  const auto serving = std::make_shared<serve::ServingEstimator>(
      std::shared_ptr<const est::CardinalityEstimator>(std::move(estimator)),
      served_version);

  // --adaptive=MODE: put the online-learning front (docs/adaptive.md) in
  // front of the served ML path. The stale-statistics base is a
  // Postgres-style estimator over the live table, the kNN tier featurizes
  // with the complex QFT, and every truth-checked answer below feeds the
  // learners through the execution-feedback hook. Installed AFTER training
  // and the held-out report, so only the interactive (serial) truth checks
  // publish — that fixed feedback order keeps the learners deterministic.
  std::unique_ptr<adapt::AdaptiveEstimator> adaptive;
  std::optional<adapt::FeedbackBus> bus;
  std::optional<adapt::ExecutionFeedbackConnection> feedback;
  if (opts.common.adaptive != adapt::AdaptiveMode::kOff) {
    if (family != nullptr && family->joins) {
      std::fprintf(stderr,
                   "--adaptive= fronts are single-table (featurizer + "
                   "executor feedback); family '%s' has joins\n",
                   family->name.c_str());
      return 1;
    }
    est::EstimatorOptions base_opts;
    base_opts.table = primary_table;
    auto base_or = est::MakeEstimator("postgres", catalog, base_opts);
    if (!base_or.ok()) {
      std::fprintf(stderr, "building adaptive base: %s\n",
                   base_or.status().ToString().c_str());
      return 1;
    }
    const auto base = std::shared_ptr<const est::CardinalityEstimator>(
        std::move(base_or).value());
    const auto featurizer = std::shared_ptr<const featurize::Featurizer>(
        featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                  featurize::FeatureSchema::FromTable(table)));
    adapt::AdaptiveOptions aopts;
    aopts.mode = opts.common.adaptive;
    adaptive = std::make_unique<adapt::AdaptiveEstimator>(base, serving,
                                                          featurizer, aopts);
    adaptive->TrackServingVersion(serving.get());
    bus.emplace();
    adaptive->ConnectTo(&*bus);
    feedback.emplace(&*bus);
    const est::EstimatorInfo info = adapt::AdaptiveEstimatorInfo();
    std::fprintf(stderr,
                 "adaptive front on: mode=%s, tiers=residual|knn|ml, "
                 "learns_online=%s (every truth-checked answer is feedback)\n",
                 adapt::AdaptiveModeName(opts.common.adaptive),
                 info.learns_online ? "true" : "false");
  }

  std::fprintf(stderr,
               "ready (%zu training queries, %zu byte model). Enter SQL "
               "count(*) queries, one per line.\n",
               num_train, serving->SizeBytes());

  obs::QErrorDriftMonitor& drift = obs::QErrorDriftMonitor::Global();
  bool was_degraded = drift.degraded();
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string_view stripped = common::StripWhitespace(line);
    if (stripped.empty()) continue;
    if (stripped == "quit" || stripped == "exit") break;
    const auto q_or = query::ParseQuery(stripped, catalog);
    if (!q_or.ok()) {
      std::printf("error: %s\n", q_or.status().ToString().c_str());
      continue;
    }
    // The request/response API (docs/batch_api.md) is the serving entry
    // point: the response carries the estimate plus provenance (which model
    // version answered, and how long the call took).
    est::EstimateRequest request;
    request.query = q_or.value();
    const auto resp_or =
        adaptive ? adaptive->Estimate(request) : serving->Estimate(request);
    if (!resp_or.ok()) {
      std::printf("error: %s\n", resp_or.status().ToString().c_str());
      continue;
    }
    const est::EstimateResponse& resp = resp_or.value();
    if (opts.truth) {
      // Family mode labels through the catalog so truth checks also cover
      // joined SQL; the classic paths stay on the single-table executor.
      const auto truth_or = [&]() -> common::StatusOr<double> {
        if (family_inst) {
          QFCARD_ASSIGN_OR_RETURN(
              const std::vector<workload::LabeledQuery> one,
              workload::LabelOnCatalog(catalog, {q_or.value()},
                                       /*drop_empty=*/false));
          return one.empty() ? 0.0 : one[0].card;
        }
        QFCARD_ASSIGN_OR_RETURN(const int64_t count,
                                query::Executor::Count(table, q_or.value()));
        return static_cast<double>(count);
      }();
      if (truth_or.ok()) {
        const double truth = truth_or.value();
        const double qerr = ml::QError(truth, resp.estimate);
        if (resp.tier != est::ServedTier::kNone) {
          std::printf(
              "estimate=%.0f  true=%.0f  q-error=%.2f  tier=%s  [v%llu]\n",
              resp.estimate, truth, qerr, est::ServedTierName(resp.tier),
              static_cast<unsigned long long>(resp.model_version));
        } else {
          std::printf("estimate=%.0f  true=%.0f  q-error=%.2f  [v%llu]\n",
                      resp.estimate, truth, qerr,
                      static_cast<unsigned long long>(resp.model_version));
        }
        // Every truth-checked query is labeled feedback for the drift
        // monitor; warn once per healthy->degraded flip.
        drift.Observe(qerr);
        const bool degraded = drift.degraded();
        if (degraded && !was_degraded) {
          const obs::QErrorDriftMonitor::State s = drift.GetState();
          std::fprintf(stderr,
                       "warning: q-error drift detected (rolling p95=%.2f > "
                       "%.2f); the workload has likely left the training "
                       "distribution — consider retraining\n",
                       s.p95, s.threshold);
        }
        was_degraded = degraded;
        continue;
      }
    }
    if (resp.tier != est::ServedTier::kNone) {
      std::printf("estimate=%.0f  tier=%s  [v%llu]\n", resp.estimate,
                  est::ServedTierName(resp.tier),
                  static_cast<unsigned long long>(resp.model_version));
    } else {
      std::printf("estimate=%.0f  [v%llu]\n", resp.estimate,
                  static_cast<unsigned long long>(resp.model_version));
    }
  }

  // Drop the execution-feedback hook and bus subscription before the
  // learners (members of `adaptive`) go away.
  feedback.reset();
  if (adaptive) {
    adaptive->Disconnect();
    std::fprintf(stderr,
                 "adaptive front: %llu feedback record(s), %zu route(s), "
                 "%llu tier switch(es)\n",
                 static_cast<unsigned long long>(adaptive->ingested()),
                 adaptive->arbiter().RouteCount(),
                 static_cast<unsigned long long>(adaptive->arbiter().switches()));
  }

  cli_span.End();
  if (!examples::WriteTelemetryOutputs(opts.common)) return 1;
  return 0;
}
