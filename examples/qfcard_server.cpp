// qfcard_server: the estimation server of docs/serving.md end to end —
// feature-space routing, cross-request micro-batching, and a hot swap under
// concurrent traffic.
//
//   $ ./build/examples/qfcard_server                      # intelligent mode
//   $ ./build/examples/qfcard_server --mode=controlled
//
// N client threads (default 4) stream three families of query shapes at an
// EstimationServer:
//   - conjunctive ranges   (A0 between x and y, A1 >= z)      [the busiest]
//   - IN-lists             (A2 = a OR A2 = b OR A2 = c)
//   - mixed disjuncts      ((A0 between x and y OR A0 = v) AND A3 = w)
// Every family hashes to its own feature space (serve/fss.h), so the
// ModelRouter gives each its own hot-swappable model.
//
// Flags:
//   --mode=M      routing policy: intelligent (default) auto-creates a route
//                 per new shape via a factory that serves a statistics-based
//                 postgres model instantly; forced sends every shape to one
//                 default route; controlled serves only the pre-registered
//                 range family and rejects the rest
//   --clients=N   number of concurrent client threads (default 4)
//
// Telemetry flags (--metrics-out, --trace-out) and
// --adaptive=<off|knn|residual|auto> are shared with the other examples;
// see examples/common_flags.h. The snapshot carries the serve.route.*
// families that tools/validate_metrics.py --profile=server checks in CI.
//
// With --adaptive=MODE the demo appends a drift episode (docs/adaptive.md):
// the forest regenerates with new correlations and 4x fewer rows, and the
// busiest route's (now stale) model keeps serving — but behind an
// adapt::AdaptiveEstimator front fed by the execution-feedback hook. The
// greppable "tier hand-off" lines show the arbiter demoting the route from
// the stale ML tier to the online learners as the feedback arrives.
//
// In intelligent mode the demo also trains a gradient-boosting model on the
// busiest family and swaps it into that route while the clients are still
// running, then proves the server transparent: a verification batch is
// answered once through the server and once directly on the route's model,
// and the two result vectors must be byte-identical (the greppable
// "server-vs-direct" line). Sized by QFCARD_SCALE like the benches.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common_flags.h"
#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

namespace {

struct ServerOptions {
  serve::RoutePolicy mode = serve::RoutePolicy::kIntelligent;
  int clients = 4;
  examples::CommonFlags common;
};

common::StatusOr<ServerOptions> ParseArgs(int argc, char** argv) {
  ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    QFCARD_ASSIGN_OR_RETURN(
        const bool consumed, examples::TryParseCommonFlag(arg, &opts.common));
    if (consumed) continue;
    if (arg.rfind("--mode=", 0) == 0) {
      QFCARD_ASSIGN_OR_RETURN(opts.mode,
                              serve::ParseRoutePolicy(arg.substr(7)));
    } else if (arg.rfind("--clients=", 0) == 0) {
      opts.clients = std::atoi(arg.substr(10).c_str());
      if (opts.clients < 1) {
        return common::Status::InvalidArgument(
            "--clients= wants a positive count, got: " + arg.substr(10));
      }
    } else {
      return common::Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (opts.common.save_model || opts.common.load_model) {
    return common::Status::InvalidArgument(
        "qfcard_server builds its models in-process; "
        "--save-model/--load-model are not supported");
  }
  return opts;
}

// --- The three workload shape families -------------------------------------
// Literals vary per call; the shape (and therefore the feature-space hash)
// never does.

query::CompoundPredicate Compound(
    int col, const std::vector<std::vector<std::pair<query::CmpOp, double>>>&
                 clauses) {
  const query::ColumnRef ref{0, col};
  query::CompoundPredicate cp;
  cp.col = ref;
  for (const auto& clause_spec : clauses) {
    query::ConjunctiveClause clause;
    for (const auto& [op, value] : clause_spec) {
      clause.preds.push_back(query::SimplePredicate{ref, op, value});
    }
    cp.disjuncts.push_back(std::move(clause));
  }
  return cp;
}

/// Family 0 (the busiest): conjunctive ranges, A0 in [lo, hi] AND A1 >= z.
query::Query RangeQuery(const std::string& table, common::Rng& rng) {
  query::Query q;
  q.tables.push_back(query::TableRef{table, table});
  const double lo = rng.Uniform(0.0, 2000.0);
  q.predicates.push_back(
      Compound(0, {{{query::CmpOp::kGe, lo},
                    {query::CmpOp::kLe, lo + rng.Uniform(50.0, 800.0)}}}));
  q.predicates.push_back(
      Compound(1, {{{query::CmpOp::kGe, rng.Uniform(0.0, 1500.0)}}}));
  return q;
}

/// Family 1: IN-lists, A2 = a OR A2 = b OR A2 = c.
query::Query InListQuery(const std::string& table, common::Rng& rng) {
  query::Query q;
  q.tables.push_back(query::TableRef{table, table});
  q.predicates.push_back(
      Compound(2, {{{query::CmpOp::kEq, rng.Uniform(0.0, 40.0)}},
                   {{query::CmpOp::kEq, rng.Uniform(0.0, 40.0)}},
                   {{query::CmpOp::kEq, rng.Uniform(0.0, 40.0)}}}));
  return q;
}

/// Family 2: mixed disjuncts, (A0 in [lo, hi] OR A0 = v) AND A3 = w.
query::Query MixedQuery(const std::string& table, common::Rng& rng) {
  query::Query q;
  q.tables.push_back(query::TableRef{table, table});
  const double lo = rng.Uniform(0.0, 2000.0);
  q.predicates.push_back(
      Compound(0, {{{query::CmpOp::kGe, lo},
                    {query::CmpOp::kLe, lo + rng.Uniform(50.0, 400.0)}},
                   {{query::CmpOp::kEq, rng.Uniform(0.0, 2000.0)}}}));
  q.predicates.push_back(
      Compound(3, {{{query::CmpOp::kEq, rng.Uniform(0.0, 30.0)}}}));
  return q;
}

query::Query FamilyQuery(int family, const std::string& table,
                         common::Rng& rng) {
  switch (family % 3) {
    case 0:
      return RangeQuery(table, rng);
    case 1:
      return InListQuery(table, rng);
    default:
      return MixedQuery(table, rng);
  }
}

std::shared_ptr<serve::ServingEstimator> PostgresServing(
    const storage::Catalog& catalog, uint64_t version) {
  auto built =
      est::MakeEstimator("postgres", catalog, est::EstimatorOptions{}).value();
  return std::make_shared<serve::ServingEstimator>(
      std::shared_ptr<const est::CardinalityEstimator>(std::move(built)),
      version);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts_or = ParseArgs(argc, argv);
  if (!opts_or.ok()) {
    std::fprintf(stderr, "%s\n", opts_or.status().ToString().c_str());
    return 1;
  }
  const ServerOptions& opts = opts_or.value();
  examples::ApplyTelemetryFlags(opts.common);

  workload::ForestOptions fopts;
  fopts.num_rows = common::ScalePick(3000, 15000, 120000);
  fopts.num_attributes = 6;
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& table = catalog.table(0);
  const std::string table_name = table.name();

  // The range family's feature space, computed up front: it seeds the
  // controlled-mode route table and names the hot-swap target.
  common::Rng probe_rng(1);
  const query::Query range_probe = RangeQuery(table_name, probe_rng);
  const uint64_t range_fss = serve::FeatureSpaceHash(range_probe);

  serve::ModelRouterOptions ropts;
  ropts.policy = opts.mode;
  uint64_t next_version = 1;
  if (opts.mode == serve::RoutePolicy::kIntelligent) {
    // First sight of a shape serves a statistics-based model instantly; a
    // trained model can be hot-swapped in behind the same route id later.
    ropts.factory = [&catalog, &next_version](uint64_t, const query::Query&)
        -> common::StatusOr<std::shared_ptr<serve::ServingEstimator>> {
      return PostgresServing(catalog, next_version++);
    };
  }
  serve::ModelRouter router(ropts);
  if (opts.mode == serve::RoutePolicy::kForced) {
    router.SetDefaultRoute(PostgresServing(catalog, next_version++));
  } else if (opts.mode == serve::RoutePolicy::kControlled) {
    QFCARD_CHECK_OK(router.AddRoute(range_fss,
                                    PostgresServing(catalog, next_version++),
                                    serve::FeatureSpaceSignature(range_probe)));
  }

  serve::EstimationServer server(&router);
  server.Start();
  std::fprintf(stderr, "serving '%s' (%lld rows), policy=%s, clients=%d\n",
               table_name.c_str(), static_cast<long long>(table.num_rows()),
               serve::RoutePolicyToString(opts.mode), opts.clients);

  // --- Concurrent traffic --------------------------------------------------
  const int per_client =
      static_cast<int>(common::ScalePick(80, 240, 1200));
  std::atomic<long> served{0};
  std::atomic<long> rejected{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(opts.clients));
  for (int c = 0; c < opts.clients; ++c) {
    clients.emplace_back([&, c] {
      common::Rng rng(100 + static_cast<uint64_t>(c));
      for (int i = 0; i < per_client; ++i) {
        // The range family gets a double share — it is the "busiest route"
        // the hot swap targets.
        const int family = (i % 4 == 0 || i % 4 == 2) ? 0 : (i % 4 == 1 ? 1 : 2);
        est::EstimateRequest request;
        request.query = FamilyQuery(family, table_name, rng);
        const auto resp_or = server.Estimate(request);
        if (resp_or.ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // --- Hot swap under load (intelligent mode) ------------------------------
  if (opts.mode == serve::RoutePolicy::kIntelligent) {
    // Train the upgrade offline while the clients hammer the server.
    common::Rng train_rng(7);
    std::vector<query::Query> train_queries;
    const int num_train = static_cast<int>(common::ScalePick(200, 600, 4000));
    for (int i = 0; i < num_train; ++i) {
      train_queries.push_back(RangeQuery(table_name, train_rng));
    }
    const std::vector<workload::LabeledQuery> labeled =
        workload::LabelOnTable(table, train_queries, /*drop_empty=*/true)
            .value();
    est::EstimatorOptions eopts;
    eopts.gbm.num_trees = 40;
    auto gb = est::MakeEstimator("gb+conjunctive", catalog, eopts).value();
    {
      std::vector<query::Query> qs;
      std::vector<double> cards;
      for (const auto& lq : labeled) {
        qs.push_back(lq.query);
        cards.push_back(lq.card);
      }
      QFCARD_CHECK_OK(gb->Train(qs, cards, 0.1, 3));
    }

    // Wait until the clients have opened the busiest route, then swap the
    // trained model in behind its id — traffic in flight keeps running on
    // the model it pinned; the next micro-batch serves the upgrade.
    std::shared_ptr<serve::ServingEstimator> route;
    while ((route = router.FindRoute(range_fss)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const uint64_t gb_version = next_version++;
    route->Swap(
        std::shared_ptr<const est::CardinalityEstimator>(std::move(gb)),
        gb_version);
    std::fprintf(stderr,
                 "hot-swapped gb+conjunctive v%llu into route %s (\"%s\") "
                 "under load\n",
                 static_cast<unsigned long long>(gb_version),
                 serve::FormatFss(range_fss).c_str(),
                 router.RouteLabel(range_fss).c_str());
  }

  for (std::thread& t : clients) t.join();

  // --- Transparency check: server vs direct, byte for byte -----------------
  // The same verification batch answered through the micro-batching server
  // and directly on the route's model must agree exactly (docs/serving.md).
  const uint64_t verify_route =
      opts.mode == serve::RoutePolicy::kForced ? 0 : range_fss;
  const std::shared_ptr<serve::ServingEstimator> direct =
      router.FindRoute(verify_route);
  if (direct != nullptr) {
    common::Rng verify_rng(17);
    std::vector<est::EstimateRequest> requests(64);
    std::vector<query::Query> queries;
    for (auto& request : requests) {
      request.query = RangeQuery(table_name, verify_rng);
      queries.push_back(request.query);
    }
    const auto via_server = server.EstimateMany(requests);
    const std::vector<double> via_direct =
        direct->EstimateBatch(queries).value();
    bool identical = true;
    for (size_t i = 0; i < requests.size(); ++i) {
      identical = identical && via_server[i].ok() &&
                  std::memcmp(&via_server[i].value().estimate, &via_direct[i],
                              sizeof(double)) == 0;
    }
    std::printf("server-vs-direct: %s (%zu queries, route %s, model v%llu)\n",
                identical ? "byte-identical" : "MISMATCH", requests.size(),
                serve::FormatFss(verify_route).c_str(),
                static_cast<unsigned long long>(direct->ActiveVersion()));
    if (!identical) return 1;
  }

  server.Stop();

  std::printf("traffic: served=%ld rejected=%ld over %zu route(s), "
              "%llu micro-batch(es)\n",
              served.load(), rejected.load(), router.NumRoutes(),
              static_cast<unsigned long long>(server.BatchesFlushed()));
  for (const uint64_t id : router.RouteIds()) {
    std::printf("  route %s  \"%s\"\n", serve::FormatFss(id).c_str(),
                router.RouteLabel(id).c_str());
  }
  if (opts.mode == serve::RoutePolicy::kControlled && rejected.load() == 0) {
    std::fprintf(stderr,
                 "error: controlled mode should have rejected the "
                 "unregistered families\n");
    return 1;
  }

  // --- Drift episode behind the adaptive front (--adaptive=MODE) -----------
  // The route keeps serving the model it trained on the ORIGINAL table, but
  // the data underneath drifts wholesale. The adaptive front watches the
  // executed truths and hands the route off to whichever tier the feedback
  // says is best — the online learners while the ML path is stale.
  if (opts.common.adaptive != adapt::AdaptiveMode::kOff) {
    const uint64_t episode_route_id =
        opts.mode == serve::RoutePolicy::kForced ? 0 : range_fss;
    const std::shared_ptr<serve::ServingEstimator> route =
        router.FindRoute(episode_route_id);
    if (route == nullptr) {
      std::fprintf(stderr, "error: adaptive episode needs route %s\n",
                   serve::FormatFss(episode_route_id).c_str());
      return 1;
    }

    // Instantaneous drift: new latent correlations, 4x fewer rows. The
    // route's model and the postgres synopses both describe the old table.
    workload::ForestOptions drift_opts = fopts;
    drift_opts.seed = 977;
    drift_opts.num_rows = std::max<int64_t>(fopts.num_rows / 4, 500);
    const storage::Table drifted = workload::MakeForestTable(drift_opts);

    est::EstimatorOptions base_opts;
    base_opts.table = table_name;
    const auto base = std::shared_ptr<const est::CardinalityEstimator>(
        est::MakeEstimator("postgres", catalog, base_opts).value());
    const auto featurizer = std::shared_ptr<const featurize::Featurizer>(
        featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                  featurize::FeatureSchema::FromTable(table)));
    adapt::AdaptiveOptions aopts;
    aopts.mode = opts.common.adaptive;
    aopts.arbiter.window = 32;
    aopts.arbiter.min_samples = 6;
    aopts.arbiter.hold_observations = 12;
    adapt::AdaptiveEstimator adaptive(base, route, featurizer, aopts);
    adaptive.TrackServingVersion(route.get());
    adapt::FeedbackBus bus;
    adaptive.ConnectTo(&bus);

    const int ticks = static_cast<int>(common::ScalePick(160, 320, 1200));
    // Served-tier counts per episode half, indexed by est::ServedTier.
    int tiers_served[2][4] = {};
    {
      // The hook is live only for this serial tick loop, so the feedback
      // order (and therefore the learner state) is reproducible.
      adapt::ExecutionFeedbackConnection conn(&bus);
      common::Rng rng(900);
      for (int i = 0; i < ticks; ++i) {
        est::EstimateRequest request;
        request.query = RangeQuery(table_name, rng);
        const auto resp_or = adaptive.Estimate(request);
        QFCARD_CHECK_OK(resp_or.status());
        ++tiers_served[i * 2 / ticks]
                      [static_cast<int>(resp_or.value().tier) & 3];
        // Executing the count on the drifted table publishes the truth into
        // the bus — after the serve, so no tier is graded on a query it
        // already absorbed.
        QFCARD_CHECK_OK(
            query::Executor::Count(drifted, request.query).status());
      }
    }
    adaptive.Disconnect();

    std::printf(
        "adaptive drift episode (mode=%s): %d ticks against drifted '%s' "
        "(%lld rows) behind route %s\n",
        adapt::AdaptiveModeName(opts.common.adaptive), ticks,
        table_name.c_str(), static_cast<long long>(drifted.num_rows()),
        serve::FormatFss(episode_route_id).c_str());
    for (int phase = 0; phase < 2; ++phase) {
      std::printf("  served %s half: residual=%d knn=%d ml=%d\n",
                  phase == 0 ? "first " : "second", tiers_served[phase][1],
                  tiers_served[phase][2], tiers_served[phase][3]);
    }
    const std::vector<adapt::TierArbiter::TierSwitch> switches =
        adaptive.arbiter().RecentSwitches();
    for (const auto& sw : switches) {
      std::printf(
          "  tier hand-off: %s->%s (challenger p95 %.2f vs incumbent %.2f) "
          "at observation %llu\n",
          est::ServedTierName(sw.from), est::ServedTierName(sw.to), sw.to_p95,
          sw.from_p95, static_cast<unsigned long long>(sw.at_observation));
    }
    if (switches.empty()) {
      std::printf("  no tier hand-off (feedback never beat the incumbent "
                  "by the switch margin)\n");
    }
  }

  if (!examples::WriteTelemetryOutputs(opts.common)) return 1;
  return 0;
}
