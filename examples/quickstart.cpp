// Quickstart: build a table, parse a SQL count query, train a GB estimator
// with Universal Conjunction Encoding, and compare its estimate to the truth.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

int main() {
  // 1. Synthesize a small forest-covertype-like table and register it.
  workload::ForestOptions fopts;
  fopts.num_rows = 20000;
  fopts.num_attributes = 8;
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fopts)));
  const storage::Table& forest = *catalog.GetTable("forest").value();
  std::printf("table 'forest': %lld rows, %d attributes\n",
              static_cast<long long>(forest.num_rows()), forest.num_columns());

  // 2. Generate and label a training workload of conjunctive queries.
  common::Rng rng(1);
  const std::vector<query::Query> queries = workload::GeneratePredicateWorkload(
      forest, 2000, workload::ConjunctiveWorkloadOptions(5), rng);
  const std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(forest, queries, /*drop_empty=*/true).value();
  std::printf("labeled %zu training queries\n", labeled.size());

  // 3. Choose a QFT (the paper's Universal Conjunction Encoding) and an
  //    input-agnostic model (gradient boosting), then train.
  featurize::ConjunctionOptions copts;
  copts.max_partitions = 32;
  est::MlEstimator estimator(
      featurize::MakeFeaturizer(featurize::QftKind::kConjunctive,
                                featurize::FeatureSchema::FromTable(forest),
                                copts),
      std::make_unique<ml::GradientBoosting>());
  std::vector<query::Query> train_queries;
  std::vector<double> cards;
  for (const workload::LabeledQuery& lq : labeled) {
    train_queries.push_back(lq.query);
    cards.push_back(lq.card);
  }
  QFCARD_CHECK_OK(estimator.Train(train_queries, cards, /*valid_fraction=*/0.1,
                                  /*seed=*/2));
  std::printf("trained %s (%zu bytes)\n", estimator.name().c_str(),
              estimator.SizeBytes());

  // 4. Estimate the cardinality of a SQL query and compare to the truth.
  const char* sql =
      "SELECT count(*) FROM forest "
      "WHERE A1 >= 2500 AND A1 <= 3100 AND A2 <> 220 AND A3 < 180";
  const query::Query q = query::ParseQuery(sql, catalog).value();
  const double estimate = estimator.EstimateCard(q).value();
  const double truth =
      static_cast<double>(query::Executor::Count(forest, q).value());
  std::printf("\n%s\n  true count : %.0f\n  estimate   : %.0f\n  q-error    : %.2f\n",
              sql, truth, estimate, ml::QError(truth, estimate));
  return 0;
}
