// serving_loop: the full model lifecycle of docs/serving.md in one process.
//
//   1. Train a gradient-boosting estimator on a forest workload, publish it
//      to a serve::ModelStore, and serve it through a ServingEstimator.
//   2. Stream labeled traffic through the server; every true cardinality
//      feeds the Retrainer's feedback window and the q-error drift monitor.
//   3. Shift the data distribution (a second forest with different latent
//      factors) so the monitor flips healthy->degraded, which triggers a
//      background retrain on the recent feedback.
//   4. The retrainer promotes the candidate only because its holdout p95
//      improves, publishes it as version 2, and hot-swaps it under the
//      still-running traffic — the loop then shows the recovered accuracy.
//
//   $ ./build/examples/serving_loop [--model-dir=PATH] [--metrics-out=PATH]
//                                   [--trace-out=PATH]
//
// Telemetry flags are shared with the other examples (common_flags.h);
// --model-dir overrides the default on-disk store location. Sized by
// QFCARD_SCALE (smoke / default / full) like the benches.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common_flags.h"
#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

namespace {

struct Traffic {
  std::vector<query::Query> queries;
  std::vector<double> truths;
};

/// Labeled single-table traffic drawn from `table`.
Traffic MakeTraffic(const storage::Table& table, int count, uint64_t seed) {
  common::Rng rng(seed);
  const std::vector<query::Query> raw = workload::GeneratePredicateWorkload(
      table, count, workload::ConjunctiveWorkloadOptions(4), rng);
  const std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(table, raw, /*drop_empty=*/true).value();
  Traffic t;
  for (const auto& lq : labeled) {
    t.queries.push_back(lq.query);
    t.truths.push_back(lq.card);
  }
  return t;
}

/// Streams one batch through the server via the request/response API
/// (docs/batch_api.md), reporting p95 q-error and feeding every truth back
/// into the drift monitor and the retrainer. The responses also carry which
/// model version served the batch, so the label line no longer needs to
/// query the server separately.
double ServeBatch(const serve::ServingEstimator& serving,
                  obs::QErrorDriftMonitor& monitor, serve::Retrainer& retrainer,
                  const Traffic& traffic, const char* label) {
  std::vector<est::EstimateRequest> requests(traffic.queries.size());
  for (size_t i = 0; i < traffic.queries.size(); ++i) {
    requests[i].query = traffic.queries[i];
  }
  const std::vector<est::EstimateResponse> responses =
      serving.EstimateRequests(requests).value();
  // Feedback first, monitor second: if an observation flips the monitor and
  // schedules a retrain, the feedback window already holds the whole batch.
  for (size_t i = 0; i < responses.size(); ++i) {
    retrainer.AddFeedback(traffic.queries[i], traffic.truths[i]);
  }
  std::vector<double> qerrors;
  for (size_t i = 0; i < responses.size(); ++i) {
    const double qerr = ml::QError(traffic.truths[i], responses[i].estimate);
    qerrors.push_back(qerr);
    monitor.Observe(qerr);
  }
  const uint64_t served_version =
      responses.empty() ? serving.ActiveVersion() : responses[0].model_version;
  const ml::QErrorSummary summary =
      ml::QErrorSummary::FromErrors(std::move(qerrors));
  std::printf("%-22s v%llu  %4zu queries  median=%6.2f  p95=%8.2f%s\n", label,
              static_cast<unsigned long long>(served_version),
              traffic.queries.size(), summary.median, summary.p95,
              monitor.degraded() ? "  [drift flagged]" : "");
  return summary.p95;
}

}  // namespace

int main(int argc, char** argv) {
  examples::CommonFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto consumed_or = examples::TryParseCommonFlag(arg, &flags);
    if (!consumed_or.ok() || !consumed_or.value()) {
      std::fprintf(stderr, "%s\n",
                   consumed_or.ok()
                       ? ("unknown flag: " + arg).c_str()
                       : consumed_or.status().ToString().c_str());
      return 1;
    }
  }
  if (flags.save_model || flags.load_model) {
    std::fprintf(stderr,
                 "serving_loop scripts its own publish/load cycle; "
                 "--save-model/--load-model are not supported\n");
    return 1;
  }
  examples::ApplyTelemetryFlags(flags);

  const int64_t rows = common::ScalePick(3000, 20000, 200000);
  const int traffic_size = static_cast<int>(common::ScalePick(150, 400, 2000));

  // Two tables with the same schema but different latent correlation: the
  // second one is the "after the upstream pipeline changed" world.
  workload::ForestOptions before_opts;
  before_opts.num_rows = rows;
  before_opts.num_attributes = 6;
  before_opts.seed = 42;
  workload::ForestOptions after_opts = before_opts;
  after_opts.seed = 977;
  after_opts.num_rows = rows / 4;  // the upstream feed also shrank 4x

  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(before_opts)));
  // Same schema and table name, different correlation structure: labeling
  // traffic on it yields the truths the production table would produce
  // after the upstream pipeline changed.
  const storage::Table shifted = workload::MakeForestTable(after_opts);
  const Traffic train = MakeTraffic(catalog.table(0), 3 * traffic_size, 7);
  const Traffic live_before = MakeTraffic(catalog.table(0), traffic_size, 11);
  const Traffic live_after = MakeTraffic(shifted, traffic_size, 13);

  // Train v1 and publish it.
  est::EstimatorOptions eopts;
  eopts.gbm.num_trees = 60;
  auto estimator = est::MakeEstimator("gb+conjunctive", catalog, eopts).value();
  QFCARD_CHECK_OK(estimator->Train(train.queries, train.truths, 0.1, 1));
  serve::ModelStore store(
      flags.model_dir.empty() ? "serving_loop_store" : flags.model_dir);
  const uint64_t v1 =
      store.Publish(
               serve::BundleFromEstimator(*estimator, "gb+conjunctive").value())
          .value();
  serve::ServingEstimator serving(
      std::shared_ptr<const est::CardinalityEstimator>(std::move(estimator)),
      v1);

  // Drift monitor + retrainer wired to the server.
  obs::DriftMonitorOptions mopts;
  mopts.window = static_cast<size_t>(traffic_size);
  mopts.p95_threshold = 8.0;
  mopts.min_samples = 30;
  obs::QErrorDriftMonitor monitor(mopts);
  serve::RetrainerOptions ropts;
  ropts.estimator_name = "gb+conjunctive";
  ropts.estimator_opts = eopts;
  ropts.min_feedback = 64;
  // Keep only the most recent batch of feedback, so a retrain after the
  // shift trains on post-shift truths instead of averaging both worlds.
  ropts.max_feedback = static_cast<size_t>(traffic_size);
  ropts.monitor = &monitor;
  ropts.store = &store;
  serve::Retrainer retrainer(&serving, &catalog, ropts);
  retrainer.Start();

  std::printf("serving '%s' from %s\n\n", serving.name().c_str(),
              store.root().c_str());
  ServeBatch(serving, monitor, retrainer, live_before, "in-distribution");

  // The world changes: the same traffic shape now reflects the shifted
  // table, the rolling p95 blows through the threshold, and the flip kicks
  // off a background retrain on the feedback gathered above.
  ServeBatch(serving, monitor, retrainer, live_after, "after data shift");

  // Wait for the background run the flip scheduled (bounded); fall back to
  // a synchronous retrain if the threshold was never crossed at this scale.
  if (monitor.degraded()) {
    for (int i = 0; i < 3000 && retrainer.runs() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  } else {
    (void)retrainer.RetrainNow();
  }
  retrainer.Stop();
  const serve::RetrainResult result = retrainer.last_result();
  std::printf("\nretrain: %s (holdout p95 %.2f -> %.2f)\n",
              result.detail.c_str(), result.stale_p95, result.candidate_p95);

  ServeBatch(serving, monitor, retrainer, live_after, "after hot-swap");
  std::printf("\nstore now holds %zu version(s); swaps=%llu\n",
              store.ListVersions().value().size(),
              static_cast<unsigned long long>(serving.SwapCount()));
  if (!examples::WriteTelemetryOutputs(flags)) return 1;
  return 0;
}
