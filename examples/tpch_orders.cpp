// The paper's Section 3.3 example, end to end: a TPC-H-like Orders table
// with string statuses (dictionary-encoded), dates (integral yyyymmdd), and
// prices; the exact mixed query from the paper; Limited Disjunction
// Encoding featurization; a trained GB estimator; plus the Section 6
// string-prefix extension via LIKE. Also demonstrates CSV round-tripping.
//
//   $ ./build/examples/tpch_orders

#include <cstdio>

#include "qfcard.h"

using namespace qfcard;  // NOLINT: example brevity

namespace {

// Builds a synthetic Orders table: o_orderdate in 1992..1998 (yyyymmdd),
// o_orderstatus in {F, O, P}, o_totalprice skewed, o_clerk strings.
storage::Table MakeOrders(int64_t rows, uint64_t seed) {
  common::Rng rng(seed);
  storage::Table orders("Orders");

  storage::Column date("o_orderdate", storage::ColumnType::kInt64);
  storage::Column price("o_totalprice", storage::ColumnType::kInt64);
  std::vector<std::string> statuses;
  std::vector<std::string> clerks;
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t year = rng.UniformInt(1992, 1998);
    const int64_t month = rng.UniformInt(1, 12);
    const int64_t day = rng.UniformInt(1, 28);
    date.Append(static_cast<double>(year * 10000 + month * 100 + day));
    price.Append(std::min(900000.0, 100.0 * rng.Exponential(1.0 / 15.0)));
    const double u = rng.Uniform01();
    statuses.push_back(u < 0.48 ? "F" : (u < 0.96 ? "O" : "P"));
    clerks.push_back(common::StrFormat("Clerk#%03d",
                                       static_cast<int>(rng.Zipf(200, 1.0))));
  }
  QFCARD_CHECK_OK(orders.AddColumn(std::move(date)));
  QFCARD_CHECK_OK(orders.AddColumn(std::move(price)));
  {
    storage::Dictionary dict = storage::Dictionary::FromValues(statuses);
    storage::Column status("o_orderstatus", storage::ColumnType::kDictString);
    for (const std::string& s : statuses) {
      status.Append(static_cast<double>(dict.Code(s).value()));
    }
    status.SetDictionary(std::move(dict));
    QFCARD_CHECK_OK(orders.AddColumn(std::move(status)));
  }
  {
    storage::Dictionary dict = storage::Dictionary::FromValues(clerks);
    storage::Column clerk("o_clerk", storage::ColumnType::kDictString);
    for (const std::string& s : clerks) {
      clerk.Append(static_cast<double>(dict.Code(s).value()));
    }
    clerk.SetDictionary(std::move(dict));
    QFCARD_CHECK_OK(orders.AddColumn(std::move(clerk)));
  }
  QFCARD_CHECK_OK(orders.Validate());
  return orders;
}

}  // namespace

int main() {
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(MakeOrders(50000, 77)));
  const storage::Table& orders = *catalog.GetTable("Orders").value();

  // CSV round trip (strings survive through the dictionary).
  QFCARD_CHECK_OK(storage::WriteCsv(orders, "/tmp/qfcard_orders.csv"));
  const storage::Table reloaded =
      storage::ReadCsv("/tmp/qfcard_orders.csv", "Orders2").value();
  std::printf("orders: %lld rows; CSV round trip: %lld rows\n\n",
              static_cast<long long>(orders.num_rows()),
              static_cast<long long>(reloaded.num_rows()));

  // The mixed query below Definition 3.3, adapted to yyyymmdd dates:
  // orders from 1994 or 1996 (July 4th excluded in both years), in progress
  // or finished, priced between 1000 and 2000.
  const char* sql =
      "SELECT count(*) FROM Orders WHERE "
      "(o_orderdate >= 19940101 AND o_orderdate <= 19941231 "
      " AND o_orderdate <> 19940704 "
      " OR "
      " o_orderdate >= 19960101 AND o_orderdate <= 19961231 "
      " AND o_orderdate <> 19960704) AND "
      "(o_orderstatus = 'P' OR o_orderstatus = 'F') AND "
      "(o_totalprice > 1000 AND o_totalprice < 2000);";
  const query::Query paper_query = query::ParseQuery(sql, catalog).value();
  std::printf("Section 3.3 query:\n%s\n", sql);
  std::printf("  -> %d compound predicates, %d simple predicates\n\n",
              paper_query.NumAttributes(), paper_query.NumSimplePredicates());

  // Train GB + Limited Disjunction Encoding on a mixed workload.
  common::Rng rng(7);
  workload::PredicateGenOptions gen = workload::MixedWorkloadOptions(3);
  const std::vector<query::Query> queries =
      workload::GeneratePredicateWorkload(orders, 3000, gen, rng);
  const std::vector<workload::LabeledQuery> labeled =
      workload::LabelOnTable(orders, queries, true).value();
  featurize::ConjunctionOptions copts;
  copts.max_partitions = 64;
  est::MlEstimator estimator(
      featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                featurize::FeatureSchema::FromTable(orders),
                                copts),
      std::make_unique<ml::GradientBoosting>());
  std::vector<query::Query> qs;
  std::vector<double> cards;
  for (const workload::LabeledQuery& lq : labeled) {
    qs.push_back(lq.query);
    cards.push_back(lq.card);
  }
  QFCARD_CHECK_OK(estimator.Train(qs, cards, 0.1, 8));

  const double truth = static_cast<double>(
      query::Executor::Count(orders, paper_query).value());
  const double est = estimator.EstimateCard(paper_query).value();
  std::printf("paper query: true=%.0f estimate=%.0f q-error=%.2f\n\n", truth,
              est, ml::QError(truth, est));

  // Section 6 extension: prefix LIKE over the sorted dictionary.
  for (const char* like_sql :
       {"SELECT count(*) FROM Orders WHERE o_clerk LIKE 'Clerk#00%'",
        "SELECT count(*) FROM Orders WHERE o_clerk LIKE 'Clerk#001' "
        "AND o_totalprice < 5000"}) {
    const query::Query q = query::ParseQuery(like_sql, catalog).value();
    const double like_truth =
        static_cast<double>(query::Executor::Count(orders, q).value());
    const double like_est = estimator.EstimateCard(q).value();
    std::printf("%s\n  true=%.0f estimate=%.0f q-error=%.2f\n", like_sql,
                like_truth, like_est, ml::QError(like_truth, like_est));
  }
  std::remove("/tmp/qfcard_orders.csv");
  return 0;
}
