#include "adapt/adapt_fuzz.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adapt/adaptive_estimator.h"
#include "adapt/feedback_bus.h"
#include "common/random.h"
#include "common/status.h"
#include "common/str_util.h"
#include "estimators/registry.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "query/executor.h"
#include "query/query.h"
#include "serve/serving_estimator.h"
#include "storage/catalog.h"
#include "testing/query_fuzzer.h"
#include "workload/forest.h"
#include "workload/query_gen.h"

namespace qfcard::adapt {

namespace {

// Adaptation fuzzing (docs/adaptive.md): random mixed-predicate queries run
// through a live execution-feedback loop — estimate, execute, publish, learn
// — and the round cross-checks the two safety contracts the subsystem
// claims. First, the loop is an observer: the executor's counts with the
// feedback hook installed must equal the counts without it (an adaptive
// front that perturbs truth would poison every consumer downstream).
// Second, the learners are deterministic: a twin front fed the identical
// record stream through its own bus must reproduce every estimate byte for
// byte, tier choices included.
void AdaptiveRound(const testing::FuzzRoundContext& ctx) {
  const int round = ctx.round;
  common::Rng rng(
      common::MixSeed(ctx.options->seed, static_cast<uint64_t>(round)));

  workload::ForestOptions fo;
  fo.num_rows = rng.UniformInt(150, 400);
  fo.num_attributes = static_cast<int>(rng.UniformInt(2, 5));
  fo.seed = rng.Next();
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fo)));
  const storage::Table& table = catalog.table(0);

  workload::PredicateGenOptions go;
  go.max_attrs = fo.num_attributes;
  go.max_not_equals = 2;
  const std::vector<query::Query> queries = workload::GeneratePredicateWorkload(
      table, ctx.options->queries_per_round, go, rng);

  // Ground truth with no feedback loop anywhere near the executor.
  std::vector<int64_t> baseline;
  baseline.reserve(queries.size());
  for (const query::Query& q : queries) {
    const auto count = query::Executor::Count(table, q);
    if (!count.ok()) {
      ctx.record_failure("adaptive-baseline-exec", count.status().ToString());
      return;
    }
    baseline.push_back(count.value());
  }

  // Both fronts share the deterministic const pieces; each owns its learner
  // state. Tight arbiter knobs so tier switches actually happen within one
  // round's query budget.
  const auto base = std::shared_ptr<const est::CardinalityEstimator>(
      est::MakeEstimator("postgres", catalog).value());
  const auto serving = std::make_shared<serve::ServingEstimator>(base, 1);
  const auto featurizer = std::shared_ptr<const featurize::Featurizer>(
      featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                featurize::FeatureSchema::FromTable(table)));
  AdaptiveOptions aopts;
  aopts.mode = AdaptiveMode::kAuto;
  aopts.arbiter.window = 16;
  aopts.arbiter.min_samples = 4;
  aopts.arbiter.hold_observations = 4;

  AdaptiveEstimator live(base, serving, featurizer, aopts);
  FeedbackBus live_bus;
  live.ConnectTo(&live_bus);

  // The live loop: predict, then execute with the hook publishing into the
  // front. Executor truth must match the hook-free baseline exactly.
  std::vector<est::EstimateResponse> live_responses;
  live_responses.reserve(queries.size());
  {
    ExecutionFeedbackConnection conn(&live_bus);
    for (size_t i = 0; i < queries.size(); ++i) {
      if (ctx.full()) {
        live.Disconnect();
        return;
      }
      ctx.count_query();
      est::EstimateRequest request;
      request.query = queries[i];
      const auto resp = live.Estimate(request);
      if (!resp.ok()) {
        ctx.record_failure("adaptive-estimate", resp.status().ToString());
        live.Disconnect();
        return;
      }
      live_responses.push_back(resp.value());
      ctx.count_check();
      if (resp.value().tier == est::ServedTier::kNone) {
        ctx.record_failure(
            "adaptive-tier-stamp",
            common::StrFormat("query %llu served with tier=none",
                              static_cast<unsigned long long>(i)));
      }
      const auto count = query::Executor::Count(table, queries[i]);
      if (!count.ok()) {
        ctx.record_failure("adaptive-live-exec", count.status().ToString());
        live.Disconnect();
        return;
      }
      ctx.count_check();
      if (count.value() != baseline[i]) {
        ctx.record_failure(
            "adaptive-truth-changed",
            common::StrFormat(
                "query %llu: count %lld with the feedback loop live vs %lld "
                "without it",
                static_cast<unsigned long long>(i),
                static_cast<long long>(count.value()),
                static_cast<long long>(baseline[i])));
      }
    }
  }
  live.Disconnect();

  // Twin determinism: an identically configured front fed the same records
  // through its own bus must reproduce every estimate byte for byte.
  AdaptiveEstimator twin(base, serving, featurizer, aopts);
  FeedbackBus twin_bus;
  twin.ConnectTo(&twin_bus);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (ctx.full()) break;
    est::EstimateRequest request;
    request.query = queries[i];
    const auto resp = twin.Estimate(request);
    if (!resp.ok()) {
      ctx.record_failure("adaptive-twin-estimate", resp.status().ToString());
      break;
    }
    ctx.count_check();
    const double live_estimate = live_responses[i].estimate;
    const double twin_estimate = resp.value().estimate;
    if (std::memcmp(&live_estimate, &twin_estimate, sizeof(double)) != 0 ||
        resp.value().tier != live_responses[i].tier) {
      ctx.record_failure(
          "adaptive-divergence",
          common::StrFormat(
              "query %llu: live %.17g (tier %s) vs twin %.17g (tier %s) on "
              "the identical feedback stream",
              static_cast<unsigned long long>(i), live_estimate,
              est::ServedTierName(live_responses[i].tier), twin_estimate,
              est::ServedTierName(resp.value().tier)));
    }
    FeedbackRecord record;
    record.query = queries[i];
    record.true_card = static_cast<double>(baseline[i]);
    twin_bus.Publish(std::move(record));
  }
  twin.Disconnect();
}

}  // namespace

void RegisterAdaptiveFuzzRound() { testing::SetAdaptiveRound(AdaptiveRound); }

}  // namespace qfcard::adapt
