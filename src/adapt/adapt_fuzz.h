#ifndef QFCARD_ADAPT_ADAPT_FUZZ_H_
#define QFCARD_ADAPT_ADAPT_FUZZ_H_

namespace qfcard::adapt {

/// Installs the adapt/ online-adaptation fuzz round into the differential
/// fuzzer (testing::SetAdaptiveRound). testing/ sits below adapt/ in the
/// layer order (tools/layers.json), so the fuzzer cannot include adapt/
/// itself; entry points that want adaptation coverage (qfcard_fuzz,
/// fuzz_smoke_test) call this before testing::RunFuzzer. The round asserts
/// the two safety contracts of docs/adaptive.md: executing queries with the
/// execution-feedback loop live never changes the executor's counts, and
/// two fronts fed the identical feedback stream produce byte-identical
/// estimates. Idempotent; not thread-safe against a running fuzzer.
void RegisterAdaptiveFuzzRound();

}  // namespace qfcard::adapt

#endif  // QFCARD_ADAPT_ADAPT_FUZZ_H_
