#include "adapt/adaptive_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/fss.h"

namespace qfcard::adapt {

common::StatusOr<AdaptiveMode> ParseAdaptiveMode(const std::string& text) {
  if (text == "off") return AdaptiveMode::kOff;
  if (text == "knn") return AdaptiveMode::kKnnOnly;
  if (text == "residual") return AdaptiveMode::kResidualOnly;
  if (text == "auto") return AdaptiveMode::kAuto;
  return common::Status::InvalidArgument(
      "adaptive mode must be one of off|knn|residual|auto, got: " + text);
}

const char* AdaptiveModeName(AdaptiveMode mode) {
  switch (mode) {
    case AdaptiveMode::kOff: return "off";
    case AdaptiveMode::kKnnOnly: return "knn";
    case AdaptiveMode::kResidualOnly: return "residual";
    case AdaptiveMode::kAuto: return "auto";
  }
  return "off";
}

AdaptiveEstimator::AdaptiveEstimator(
    std::shared_ptr<const est::CardinalityEstimator> base,
    std::shared_ptr<const est::CardinalityEstimator> ml,
    std::shared_ptr<const featurize::Featurizer> featurizer,
    AdaptiveOptions options)
    : base_(std::move(base)),
      ml_(std::move(ml)),
      featurizer_(std::move(featurizer)),
      opts_(options),
      knn_(options.knn),
      residual_(options.residual),
      arbiter_(options.arbiter) {}

AdaptiveEstimator::~AdaptiveEstimator() { Disconnect(); }

void AdaptiveEstimator::ConnectTo(FeedbackBus* bus) {
  Disconnect();
  const uint64_t id =
      bus->Subscribe([this](const FeedbackRecord& r) { IngestFeedback(r); });
  common::MutexLock lock(&mu_);
  bus_ = bus;
  subscription_ = id;
}

void AdaptiveEstimator::Disconnect() {
  FeedbackBus* bus = nullptr;
  uint64_t id = 0;
  {
    common::MutexLock lock(&mu_);
    bus = bus_;
    id = subscription_;
    bus_ = nullptr;
    subscription_ = 0;
  }
  // Unsubscribe outside mu_: it blocks on in-flight IngestFeedback calls,
  // which take mu_ themselves (lock order: never bus lock under mu_).
  if (bus != nullptr) bus->Unsubscribe(id);
}

void AdaptiveEstimator::TrackServingVersion(
    const serve::ServingEstimator* serving) {
  common::MutexLock lock(&mu_);
  tracked_serving_ = serving;
  last_serving_version_ = serving != nullptr ? serving->ActiveVersion() : 0;
}

uint64_t AdaptiveEstimator::ingested() const {
  common::MutexLock lock(&mu_);
  return ingested_;
}

void AdaptiveEstimator::IngestFeedback(const FeedbackRecord& record) {
  const uint64_t fss = record.fss != 0
                           ? record.fss
                           : serve::FeatureSpaceHash(record.query);
  const double truth = std::max(record.true_card, 1.0);

  // A hot-swapped ML model invalidates its predecessor's q-error history:
  // reset the arbiter's ML windows so the fresh model re-earns (or
  // re-loses) the route on its own feedback.
  {
    common::MutexLock lock(&mu_);
    ++ingested_;
    if (tracked_serving_ != nullptr) {
      const uint64_t version = tracked_serving_->ActiveVersion();
      if (version != last_serving_version_) {
        last_serving_version_ = version;
        arbiter_.ResetTier(est::ServedTier::kMl);
      }
    }
  }

  // Counterfactual scoring BEFORE learning: grade each tier on what it
  // would have answered had this query been served, so no tier is scored
  // on feedback it already absorbed.
  const common::StatusOr<double> base_est = base_->EstimateCard(record.query);
  if (base_est.ok()) {
    const double corrected = residual_.Correct(fss, base_est.value());
    arbiter_.ObserveTier(fss, est::ServedTier::kHistogramResidual,
                         ml::QError(truth, corrected));
  }
  std::vector<float> features = record.features;
  if (features.empty()) {
    const common::StatusOr<std::vector<float>> computed =
        featurizer_->Featurize(record.query);
    if (computed.ok()) features = computed.value();
  }
  if (!features.empty()) {
    const std::optional<double> knn_log = knn_.PredictLog(fss, features);
    if (knn_log.has_value()) {
      arbiter_.ObserveTier(
          fss, est::ServedTier::kKnn,
          ml::QError(truth, ml::LabelToCard(static_cast<float>(
                                *knn_log))));
    }
  }
  const common::StatusOr<double> ml_est = ml_->EstimateCard(record.query);
  if (ml_est.ok()) {
    arbiter_.ObserveTier(fss, est::ServedTier::kMl,
                         ml::QError(truth, ml_est.value()));
  }

  // Learn.
  if (base_est.ok()) residual_.Observe(fss, base_est.value(), truth);
  if (!features.empty()) {
    knn_.Observe(fss, features, std::log2(truth));
  }

  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GaugeNamed("adapt.routes")
        ->Set(static_cast<int64_t>(knn_.RouteCount()));
    obs::MetricsRegistry::Global()
        .GaugeNamed("adapt.knn.neighbors")
        ->Set(static_cast<int64_t>(knn_.TotalNeighbors()));
  }
}

AdaptiveEstimator::TierPick AdaptiveEstimator::PickTier(uint64_t fss) const {
  TierPick pick;
  switch (opts_.mode) {
    case AdaptiveMode::kOff:
      pick.tier = est::ServedTier::kMl;
      pick.reason = "adaptive off, ml passthrough";
      return pick;
    case AdaptiveMode::kResidualOnly:
      pick.tier = est::ServedTier::kHistogramResidual;
      pick.reason = "forced residual tier";
      return pick;
    case AdaptiveMode::kKnnOnly:
      if (knn_.NeighborCount(fss) > 0) {
        pick.tier = est::ServedTier::kKnn;
        pick.reason = "forced knn tier";
      } else {
        pick.tier = est::ServedTier::kMl;
        pick.reason = "knn empty, fell back to ml";
      }
      return pick;
    case AdaptiveMode::kAuto:
      break;
  }
  const TierArbiter::Decision decision = arbiter_.Choose(fss);
  pick.tier = decision.tier;
  pick.reason = decision.reason;
  if (pick.tier == est::ServedTier::kKnn && knn_.NeighborCount(fss) == 0) {
    pick.tier = est::ServedTier::kMl;
    pick.reason = "knn chosen but empty, fell back to ml";
  }
  return pick;
}

common::StatusOr<double> AdaptiveEstimator::EstimateVia(
    const query::Query& q, uint64_t fss, est::ServedTier tier) const {
  switch (tier) {
    case est::ServedTier::kHistogramResidual: {
      QFCARD_ASSIGN_OR_RETURN(const double base, base_->EstimateCard(q));
      return residual_.Correct(fss, base);
    }
    case est::ServedTier::kKnn: {
      QFCARD_ASSIGN_OR_RETURN(const std::vector<float> features,
                              featurizer_->Featurize(q));
      const std::optional<double> log = knn_.PredictLog(fss, features);
      if (!log.has_value()) {
        return ml_->EstimateCard(q);  // raced to empty; the heavy path answers
      }
      return ml::LabelToCard(static_cast<float>(*log));
    }
    case est::ServedTier::kMl:
    case est::ServedTier::kNone:
      break;
  }
  return ml_->EstimateCard(q);
}

common::StatusOr<double> AdaptiveEstimator::EstimateCard(
    const query::Query& q) const {
  obs::TraceSpan span("adapt.predict");
  obs::ScopedTimer timer("adapt.predict_seconds");
  const uint64_t fss = serve::FeatureSpaceHash(q);
  const TierPick pick = PickTier(fss);
  obs::IncrementCounter("adapt.predictions",
                        std::string("tier=") + est::ServedTierName(pick.tier));
  return EstimateVia(q, fss, pick.tier);
}

common::StatusOr<est::EstimateResponse> AdaptiveEstimator::Estimate(
    const est::EstimateRequest& request) const {
  obs::TraceSpan span("adapt.predict");
  obs::ScopedTimer timer("adapt.predict_seconds");
  const uint64_t fss = request.route_hint != 0
                           ? request.route_hint
                           : serve::FeatureSpaceHash(request.query);
  const TierPick pick = PickTier(fss);
  obs::IncrementCounter("adapt.predictions",
                        std::string("tier=") + est::ServedTierName(pick.tier));
  est::EstimateResponse response;
  QFCARD_ASSIGN_OR_RETURN(response.estimate,
                          EstimateVia(request.query, fss, pick.tier));
  response.tier = pick.tier;
  response.tier_reason = pick.reason;
  response.latency_seconds = timer.Seconds();
  return response;
}

common::StatusOr<std::vector<est::EstimateResponse>>
AdaptiveEstimator::EstimateRequests(
    const std::vector<est::EstimateRequest>& requests) const {
  // Sequential on purpose: every tier answers in O(k*dim) or one synopsis
  // walk, and per-request tier provenance matters more than fan-out here.
  // Estimates are identical to the EstimateCard loop (and to the default
  // parallel EstimateBatch) by construction.
  std::vector<est::EstimateResponse> responses;
  responses.reserve(requests.size());
  for (const est::EstimateRequest& request : requests) {
    QFCARD_ASSIGN_OR_RETURN(est::EstimateResponse response, Estimate(request));
    responses.push_back(std::move(response));
  }
  return responses;
}

common::Status AdaptiveEstimator::Train(
    const std::vector<query::Query>& queries, const std::vector<double>& cards,
    double valid_fraction, uint64_t seed) {
  (void)queries;
  (void)cards;
  (void)valid_fraction;
  (void)seed;
  return common::Status::FailedPrecondition(
      "adaptive estimator: learns online from the feedback bus; train the "
      "underlying ML path instead");
}

std::string AdaptiveEstimator::name() const {
  return std::string("adaptive[") + AdaptiveModeName(opts_.mode) +
         "](base=" + base_->name() + ",ml=" + ml_->name() + ")";
}

size_t AdaptiveEstimator::SizeBytes() const {
  return knn_.SizeBytes() + base_->SizeBytes() + ml_->SizeBytes();
}

est::EstimatorInfo AdaptiveEstimatorInfo() {
  est::EstimatorInfo info;
  info.name = "adaptive";
  info.kind = "adaptive";
  info.needs_training = false;   // learns online instead
  info.supports_joins = false;   // single-table fronts (the stock wiring)
  info.supports_disjunctions = true;
  info.group_aware = false;
  info.learns_online = true;
  return info;
}

}  // namespace qfcard::adapt
