#ifndef QFCARD_ADAPT_ADAPTIVE_ESTIMATOR_H_
#define QFCARD_ADAPT_ADAPTIVE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adapt/arbiter.h"
#include "adapt/feedback_bus.h"
#include "adapt/online_knn.h"
#include "adapt/residual.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "estimators/estimator.h"
#include "estimators/registry.h"
#include "featurize/featurizer.h"
#include "serve/serving_estimator.h"

namespace qfcard::adapt {

/// Which tiers the adaptive front may serve (the --adaptive=MODE flag).
enum class AdaptiveMode {
  kOff,           ///< passthrough to the ML path (no adaptation)
  kKnnOnly,       ///< kNN when it has neighbors, ML otherwise
  kResidualOnly,  ///< corrected-histogram tier always
  kAuto,          ///< TierArbiter picks per route from rolling q-errors
};

/// Parses "off" / "knn" / "residual" / "auto" (case-sensitive, the flag
/// vocabulary of docs/adaptive.md).
common::StatusOr<AdaptiveMode> ParseAdaptiveMode(const std::string& text);
const char* AdaptiveModeName(AdaptiveMode mode);

struct AdaptiveOptions {
  AdaptiveMode mode = AdaptiveMode::kAuto;
  OnlineKnnOptions knn;
  ResidualOptions residual;
  TierArbiterOptions arbiter;
};

/// The always-on online-learning front of the serving stack
/// (docs/adaptive.md): a CardinalityEstimator that answers every query from
/// one of three tiers — corrected histogram (base + ResidualCorrector),
/// OnlineKnn, or the full ML path — chosen per feature-space route by the
/// TierArbiter. Feedback arrives through a FeedbackBus subscription (or
/// IngestFeedback directly): each record is first scored counterfactually
/// against all three tiers (predict-then-learn, so no tier is graded on a
/// query it already absorbed), then folded into the kNN store and the
/// residual EWMA.
///
/// Estimation is const-thread-safe (learner state is mutex-guarded), so the
/// front serves through serve::ServingEstimator / EstimationServer like any
/// other estimator, and responses carry the serving tier and the arbiter's
/// reason (EstimateResponse::tier/tier_reason). Determinism: with a fixed
/// feedback order, estimates are byte-identical at any QFCARD_THREADS —
/// every tier is a deterministic function of learner state, and the default
/// parallel EstimateBatch only fans out the same per-query computation.
class AdaptiveEstimator : public est::CardinalityEstimator {
 public:
  /// `base` is the cheap synopses estimator the residual tier corrects
  /// (PostgresStyleEstimator in the stock wiring), `ml` the heavy path
  /// (usually a serve::ServingEstimator so retrains hot-swap underneath),
  /// `featurizer` the QFT producing kNN feature vectors. All three must be
  /// const-thread-safe and non-null.
  AdaptiveEstimator(std::shared_ptr<const est::CardinalityEstimator> base,
                    std::shared_ptr<const est::CardinalityEstimator> ml,
                    std::shared_ptr<const featurize::Featurizer> featurizer,
                    AdaptiveOptions options = {});
  ~AdaptiveEstimator() override;

  /// Subscribes to `bus` (not owned; must outlive this estimator or a
  /// Disconnect call). Replaces any previous connection.
  void ConnectTo(FeedbackBus* bus);
  /// Drops the bus subscription; safe when none exists.
  void Disconnect();

  /// When set (not owned), the estimator watches the serving version and
  /// resets the arbiter's ML q-error windows on every hot-swap — a promoted
  /// model should not be vetoed by its predecessor's mistakes. Usually the
  /// same object as `ml`.
  void TrackServingVersion(const serve::ServingEstimator* serving);

  /// Feeds one feedback record: counterfactual tier scoring, then learning.
  /// What the bus subscription calls; public for bus-less callers (tests,
  /// benches with hand-rolled loops).
  void IngestFeedback(const FeedbackRecord& record);

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  common::StatusOr<est::EstimateResponse> Estimate(
      const est::EstimateRequest& request) const override;
  common::StatusOr<std::vector<est::EstimateResponse>> EstimateRequests(
      const std::vector<est::EstimateRequest>& requests) const override;

  common::Status Train(const std::vector<query::Query>& queries,
                       const std::vector<double>& cards, double valid_fraction,
                       uint64_t seed) override;

  std::string name() const override;
  size_t SizeBytes() const override;

  /// Learner internals, for tests, benches, and reports.
  const OnlineKnn& knn() const { return knn_; }
  const ResidualCorrector& residual() const { return residual_; }
  const TierArbiter& arbiter() const { return arbiter_; }
  AdaptiveMode mode() const { return opts_.mode; }

  /// Feedback records ingested so far.
  uint64_t ingested() const;

 private:
  struct TierPick {
    est::ServedTier tier = est::ServedTier::kMl;
    std::string reason;
  };
  /// The arbitration policy: mode + arbiter decision + availability
  /// fallbacks (kNN without neighbors falls back to ML).
  TierPick PickTier(uint64_t fss) const;
  /// Computes the estimate for one query through `pick`'s tier.
  common::StatusOr<double> EstimateVia(const query::Query& q, uint64_t fss,
                                       est::ServedTier tier) const;

  const std::shared_ptr<const est::CardinalityEstimator> base_;
  const std::shared_ptr<const est::CardinalityEstimator> ml_;
  const std::shared_ptr<const featurize::Featurizer> featurizer_;
  const AdaptiveOptions opts_;

  // qfcard-lint: ok(guarded-by): internally synchronized (each owns its mutex)
  OnlineKnn knn_;
  // qfcard-lint: ok(guarded-by): internally synchronized (each owns its mutex)
  ResidualCorrector residual_;
  // qfcard-lint: ok(guarded-by): internally synchronized (each owns its mutex)
  TierArbiter arbiter_;

  mutable common::Mutex mu_;
  FeedbackBus* bus_ QFCARD_GUARDED_BY(mu_) = nullptr;
  uint64_t subscription_ QFCARD_GUARDED_BY(mu_) = 0;
  const serve::ServingEstimator* tracked_serving_ QFCARD_GUARDED_BY(mu_) =
      nullptr;
  uint64_t last_serving_version_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t ingested_ QFCARD_GUARDED_BY(mu_) = 0;
};

/// Capability metadata for the adaptive front, mirroring
/// est::RegisteredEstimatorInfos() entries. The registry itself cannot
/// construct one (adapt sits above estimators in the layer order), so the
/// CLI and reports surface this info directly.
est::EstimatorInfo AdaptiveEstimatorInfo();

}  // namespace qfcard::adapt

#endif  // QFCARD_ADAPT_ADAPTIVE_ESTIMATOR_H_
