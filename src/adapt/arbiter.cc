#include "adapt/arbiter.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace qfcard::adapt {

namespace {

const est::ServedTier kTiers[] = {est::ServedTier::kHistogramResidual,
                                  est::ServedTier::kKnn, est::ServedTier::kMl};

}  // namespace

TierArbiter::TierArbiter(TierArbiterOptions options) : opts_(options) {}

double TierArbiter::WindowP95Locked(const TierWindow& w) const {
  if (w.observed < opts_.min_samples || w.qerrors.empty()) return 0.0;
  std::vector<double> sorted = w.qerrors;
  std::sort(sorted.begin(), sorted.end());
  return common::QuantileSorted(sorted, 0.95);
}

void TierArbiter::EvaluateLocked(uint64_t fss, RouteState* route) {
  if (route->since_switch < opts_.hold_observations) return;
  const auto incumbent_it = route->windows.find(
      static_cast<int>(route->current));
  const double incumbent_p95 =
      incumbent_it == route->windows.end()
          ? 0.0
          : WindowP95Locked(incumbent_it->second);
  // Incumbent warming up (has observations but fewer than min_samples):
  // wait for a comparable window instead of switching on no evidence. Only
  // a truly empty incumbent window — erased by ResetTier after a model
  // hot-swap — concedes to any measured challenger below.
  if (incumbent_p95 <= 0.0 && incumbent_it != route->windows.end() &&
      incumbent_it->second.observed > 0) {
    return;
  }

  est::ServedTier best = route->current;
  double best_p95 = incumbent_p95;
  for (const est::ServedTier tier : kTiers) {
    if (tier == route->current) continue;
    const auto it = route->windows.find(static_cast<int>(tier));
    if (it == route->windows.end()) continue;
    const double p95 = WindowP95Locked(it->second);
    if (p95 <= 0.0) continue;  // below min_samples: not comparable yet
    // A challenger needs a margin win over the incumbent — and over any
    // earlier challenger this pass — to take the route. When the incumbent
    // has no comparable window (just reset after a swap), any measured
    // challenger wins.
    const double bar = best_p95 > 0.0 ? opts_.switch_margin * best_p95
                                      : std::numeric_limits<double>::max();
    if (p95 < bar) {
      best = tier;
      best_p95 = p95;
    }
  }
  if (best == route->current) return;

  TierSwitch sw;
  sw.fss = fss;
  sw.from = route->current;
  sw.to = best;
  sw.from_p95 = incumbent_p95;
  sw.to_p95 = best_p95;
  sw.at_observation = observations_;
  if (switch_log_.size() >= opts_.switch_log && !switch_log_.empty()) {
    switch_log_.erase(switch_log_.begin());
  }
  switch_log_.push_back(sw);
  ++switches_;
  route->current = best;
  route->since_switch = 0;
  route->reason = common::StrFormat(
      "switched %s->%s: p95 %.2f vs %.2f over last %zu labeled",
      est::ServedTierName(sw.from), est::ServedTierName(sw.to), sw.to_p95,
      sw.from_p95, opts_.window);
  obs::IncrementCounter("adapt.tier.switches",
                        std::string("to=") + est::ServedTierName(best));
}

void TierArbiter::ObserveTier(uint64_t fss, est::ServedTier tier,
                              double qerror) {
  common::MutexLock lock(&mu_);
  ++observations_;
  auto it = routes_.find(fss);
  if (it == routes_.end()) {
    RouteState fresh;
    fresh.current = opts_.initial;
    fresh.reason = std::string("initial tier ") +
                   est::ServedTierName(opts_.initial);
    fresh.since_switch = opts_.hold_observations;  // no artificial hold-off
    it = routes_.emplace(fss, std::move(fresh)).first;
  }
  RouteState& route = it->second;
  TierWindow& window = route.windows[static_cast<int>(tier)];
  const double clamped = std::max(qerror, 1.0);
  if (window.qerrors.size() < opts_.window) {
    window.qerrors.push_back(clamped);
  } else if (!window.qerrors.empty()) {
    window.qerrors[window.next_slot] = clamped;
    window.next_slot = (window.next_slot + 1) % window.qerrors.size();
  }
  ++window.observed;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .HistogramNamed("adapt.qerror", obs::QErrorBounds(),
                        std::string("tier=") + est::ServedTierName(tier))
        ->Observe(clamped);
  }
  ++route.since_switch;
  EvaluateLocked(fss, &route);
}

TierArbiter::Decision TierArbiter::Choose(uint64_t fss) const {
  common::MutexLock lock(&mu_);
  const auto it = routes_.find(fss);
  Decision decision;
  if (it == routes_.end()) {
    decision.tier = opts_.initial;
    decision.reason = std::string("no feedback yet, initial tier ") +
                      est::ServedTierName(opts_.initial);
    return decision;
  }
  decision.tier = it->second.current;
  decision.reason = it->second.reason;
  return decision;
}

void TierArbiter::ResetTier(est::ServedTier tier) {
  common::MutexLock lock(&mu_);
  for (auto& [fss, route] : routes_) {
    (void)fss;
    route.windows.erase(static_cast<int>(tier));
  }
}

std::vector<TierArbiter::TierSwitch> TierArbiter::RecentSwitches() const {
  common::MutexLock lock(&mu_);
  return switch_log_;
}

double TierArbiter::TierP95(uint64_t fss, est::ServedTier tier) const {
  common::MutexLock lock(&mu_);
  const auto it = routes_.find(fss);
  if (it == routes_.end()) return 0.0;
  const auto w = it->second.windows.find(static_cast<int>(tier));
  if (w == it->second.windows.end()) return 0.0;
  return WindowP95Locked(w->second);
}

uint64_t TierArbiter::switches() const {
  common::MutexLock lock(&mu_);
  return switches_;
}

size_t TierArbiter::RouteCount() const {
  common::MutexLock lock(&mu_);
  return routes_.size();
}

}  // namespace qfcard::adapt
