#ifndef QFCARD_ADAPT_ARBITER_H_
#define QFCARD_ADAPT_ARBITER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "estimators/request.h"

namespace qfcard::adapt {

/// Knobs for TierArbiter. Defaults are tuned for feedback rates of a few
/// records per second per route: windows small enough that a regime change
/// shows within tens of observations, hysteresis strong enough that noisy
/// ties never flap.
struct TierArbiterOptions {
  /// Rolling q-error window per (route, tier) — the same shape as
  /// obs::QErrorDriftMonitor's window, kept per tier.
  size_t window = 48;
  /// Observations a challenger tier needs in its window before it can be
  /// compared at all.
  size_t min_samples = 8;
  /// A challenger must beat the incumbent's rolling p95 by this factor
  /// (challenger_p95 < switch_margin * incumbent_p95) to take over. < 1.0;
  /// the gap is the first half of the hysteresis.
  double switch_margin = 0.8;
  /// After a switch the route holds its tier for this many further
  /// observations — the second half of the hysteresis (no flapping even
  /// when two tiers straddle the margin).
  size_t hold_observations = 16;
  /// Tier served before any evidence exists. The ML path is the trained
  /// default; routes demote away from it only when feedback shows a cheaper
  /// tier doing better.
  est::ServedTier initial = est::ServedTier::kMl;
  /// Recent switch events retained for RecentSwitches().
  size_t switch_log = 64;
};

/// Per-route tier selection for the adaptive loop (docs/adaptive.md):
/// every feedback record scores all three tiers counterfactually (what
/// would residual / kNN / ML have estimated?), the q-errors feed per-tier
/// rolling windows, and the arbiter switches a route's serving tier when a
/// challenger's window p95 beats the incumbent's by the configured margin —
/// with a hold-off period after every switch so tiers never flap.
///
/// Tier order for "promotion" language: residual < knn < ml (cheapest to
/// heaviest); a switch toward the heavier tier is a promotion.
///
/// Thread-safe (one mutex); deterministic for a fixed observation order.
class TierArbiter {
 public:
  explicit TierArbiter(TierArbiterOptions options = {});
  TierArbiter(const TierArbiter&) = delete;
  TierArbiter& operator=(const TierArbiter&) = delete;

  /// Feeds one counterfactual q-error (>= 1) for `tier` on `fss`, then
  /// re-evaluates the route's tier choice.
  void ObserveTier(uint64_t fss, est::ServedTier tier, double qerror);

  /// The arbiter's current choice for a route, with the human-readable
  /// reason the adaptive front copies into EstimateResponse::tier_reason.
  struct Decision {
    est::ServedTier tier = est::ServedTier::kMl;
    std::string reason;
  };
  Decision Choose(uint64_t fss) const;

  /// Drops the rolling window of one tier on every route — called when that
  /// tier's world changed wholesale (the ML model was hot-swapped), so
  /// pre-change q-errors stop vetoing it.
  void ResetTier(est::ServedTier tier);

  /// One recorded switch, oldest first in RecentSwitches().
  struct TierSwitch {
    uint64_t fss = 0;
    est::ServedTier from = est::ServedTier::kMl;
    est::ServedTier to = est::ServedTier::kMl;
    double from_p95 = 0.0;  ///< incumbent window p95 at the switch
    double to_p95 = 0.0;    ///< challenger window p95 at the switch
    uint64_t at_observation = 0;  ///< global observation count at the switch
  };
  std::vector<TierSwitch> RecentSwitches() const;

  /// Rolling window p95 of one (route, tier); 0 when below min_samples.
  double TierP95(uint64_t fss, est::ServedTier tier) const;

  /// Total switches across all routes.
  uint64_t switches() const;
  /// Routes currently tracked.
  size_t RouteCount() const;

 private:
  struct TierWindow {
    std::vector<double> qerrors;  // ring, oldest evicted
    size_t next_slot = 0;
    size_t observed = 0;
  };
  struct RouteState {
    est::ServedTier current;
    std::string reason;
    std::map<int, TierWindow> windows;  // keyed by static_cast<int>(tier)
    size_t since_switch = 0;  ///< observations since the last switch
  };

  double WindowP95Locked(const TierWindow& w) const QFCARD_REQUIRES(mu_);
  void EvaluateLocked(uint64_t fss, RouteState* route) QFCARD_REQUIRES(mu_);

  const TierArbiterOptions opts_;

  mutable common::Mutex mu_;
  std::map<uint64_t, RouteState> routes_ QFCARD_GUARDED_BY(mu_);
  std::vector<TierSwitch> switch_log_ QFCARD_GUARDED_BY(mu_);
  uint64_t switches_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t observations_ QFCARD_GUARDED_BY(mu_) = 0;
};

}  // namespace qfcard::adapt

#endif  // QFCARD_ADAPT_ARBITER_H_
