#include "adapt/feedback_bus.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/exec_feedback.h"
#include "serve/fss.h"

namespace qfcard::adapt {

FeedbackBus::FeedbackBus(FeedbackBusOptions options) : opts_(options) {}

uint64_t FeedbackBus::Subscribe(Subscriber fn) {
  common::MutexLock lock(&subscribers_mu_);
  const uint64_t id = next_subscriber_id_++;
  subscribers_.emplace_back(id, std::move(fn));
  return id;
}

void FeedbackBus::Unsubscribe(uint64_t id) {
  // Taking subscribers_mu_ waits out any fan-out in progress, so after this
  // returns the removed subscriber can never be invoked again.
  common::MutexLock lock(&subscribers_mu_);
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      subscribers_.end());
}

void FeedbackBus::Publish(FeedbackRecord record) {
  obs::TraceSpan span("adapt.feedback");
  if (record.fss == 0) record.fss = serve::FeatureSpaceHash(record.query);
  record.true_card = std::max(record.true_card, 1.0);
  record.log_card = std::log2(record.true_card);

  // Holding subscribers_mu_ across append + fan-out serializes publishes:
  // subscribers always see records in sequence order, which is what makes a
  // fixed feedback order reproduce identical learner state (the repo's
  // byte-identical determinism contract, docs/adaptive.md).
  common::MutexLock sub_lock(&subscribers_mu_);
  {
    common::MutexLock lock(&mu_);
    record.sequence = ++published_;
    if (ring_.size() < opts_.capacity) {
      ring_.push_back(record);
    } else if (!ring_.empty()) {
      ring_[next_slot_] = record;
      next_slot_ = (next_slot_ + 1) % ring_.size();
      ++dropped_;
    }
  }
  obs::IncrementCounter("adapt.feedback.published");
  if (record.sequence > opts_.capacity) {
    obs::IncrementCounter("adapt.feedback.dropped");
  }
  for (const auto& [id, subscriber] : subscribers_) {
    (void)id;
    subscriber(record);
  }
}

uint64_t FeedbackBus::published() const {
  common::MutexLock lock(&mu_);
  return published_;
}

uint64_t FeedbackBus::dropped() const {
  common::MutexLock lock(&mu_);
  return dropped_;
}

size_t FeedbackBus::size() const {
  common::MutexLock lock(&mu_);
  return ring_.size();
}

std::vector<FeedbackRecord> FeedbackBus::Snapshot() const {
  common::MutexLock lock(&mu_);
  std::vector<FeedbackRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < opts_.capacity) {
    out = ring_;  // insertion order is oldest-first until the ring wraps
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
    }
  }
  return out;
}

ExecutionFeedbackConnection::ExecutionFeedbackConnection(FeedbackBus* bus) {
  query::SetExecutionFeedbackHook(
      [bus](const query::Query& q, double true_card) {
        FeedbackRecord record;
        record.query = q;
        record.true_card = true_card;
        bus->Publish(std::move(record));
      });
}

ExecutionFeedbackConnection::~ExecutionFeedbackConnection() {
  query::SetExecutionFeedbackHook({});
}

}  // namespace qfcard::adapt
