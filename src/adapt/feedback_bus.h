#ifndef QFCARD_ADAPT_FEEDBACK_BUS_H_
#define QFCARD_ADAPT_FEEDBACK_BUS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "query/query.h"

namespace qfcard::adapt {

/// One executed count(*) observation, as published by the plan executor
/// hook (query/exec_feedback.h) or directly by serving code: the query, its
/// feature-space hash, the optional feature vector the publisher already
/// had, and the observed true cardinality in natural and label (log2)
/// space. `sequence` is assigned by the bus in publish order — the
/// determinism anchor: with a fixed publish order every subscriber sees the
/// identical record stream, so the learners' state (and therefore every
/// estimate) is byte-identical at any QFCARD_THREADS.
struct FeedbackRecord {
  query::Query query;
  /// serve::FeatureSpaceHash of the query; Publish computes it when left 0.
  uint64_t fss = 0;
  /// Feature vector under the subscriber's QFT; empty when the publisher
  /// has no featurizer (the executor hook) — subscribers featurize then.
  std::vector<float> features;
  /// Observed true cardinality, clamped to >= 1 by Publish.
  double true_card = 1.0;
  /// ml::CardToLabel space (log2) of true_card; Publish fills it.
  double log_card = 0.0;
  /// Dense publish-order id, assigned by the bus starting at 1.
  uint64_t sequence = 0;
};

struct FeedbackBusOptions {
  /// Ring capacity: the window Snapshot() can replay to a late-joining
  /// subscriber; older records are overwritten (counted as dropped).
  size_t capacity = 1024;
};

/// The one ingestion point of the online-adaptation loop (docs/adaptive.md):
/// a bounded ring of feedback records with synchronous subscriber fan-out.
/// Publish appends to the ring and invokes every subscriber, in
/// subscription order, on the publishing thread — publishes are serialized
/// on the subscriber lock, so the fan-out order always equals the sequence
/// order even with concurrent publishers. Subscribers must be fast and must
/// not call back into the bus (the subscriber lock is held during the
/// call); Unsubscribe blocks until in-flight invocations of the removed
/// subscriber have returned.
///
/// Exports adapt.feedback.published / adapt.feedback.dropped counters and
/// wraps each fan-out in an adapt.feedback trace span.
class FeedbackBus {
 public:
  explicit FeedbackBus(FeedbackBusOptions options = {});
  FeedbackBus(const FeedbackBus&) = delete;
  FeedbackBus& operator=(const FeedbackBus&) = delete;

  using Subscriber = std::function<void(const FeedbackRecord&)>;

  /// Registers a subscriber; returns an id for Unsubscribe.
  uint64_t Subscribe(Subscriber fn);

  /// Unregisters a subscriber; blocks until any in-flight invocation has
  /// returned, so its captures can be destroyed safely afterward.
  void Unsubscribe(uint64_t id);

  /// Publishes one record: fills fss (when 0), clamps true_card, computes
  /// log_card, assigns the sequence, appends to the ring, and fans out.
  void Publish(FeedbackRecord record);

  /// Records published so far.
  uint64_t published() const;
  /// Records overwritten in the ring (published - retained once full).
  uint64_t dropped() const;
  /// Records currently retained in the ring.
  size_t size() const;
  /// Ring contents, oldest first.
  std::vector<FeedbackRecord> Snapshot() const;

 private:
  const FeedbackBusOptions opts_;

  mutable common::Mutex mu_;
  std::vector<FeedbackRecord> ring_ QFCARD_GUARDED_BY(mu_);
  size_t next_slot_ QFCARD_GUARDED_BY(mu_) = 0;  // ring cursor once full
  uint64_t published_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ QFCARD_GUARDED_BY(mu_) = 0;

  /// Serializes fan-outs and guards the registry. Lock order:
  /// subscribers_mu_ -> mu_ (Publish holds subscribers_mu_ across the ring
  /// append and the fan-out; mu_ only for the append itself).
  mutable common::Mutex subscribers_mu_;
  std::vector<std::pair<uint64_t, Subscriber>> subscribers_
      QFCARD_GUARDED_BY(subscribers_mu_);
  uint64_t next_subscriber_id_ QFCARD_GUARDED_BY(subscribers_mu_) = 1;
};

/// RAII connector from the engine's execution-feedback hook to a bus: the
/// constructor installs a query::SetExecutionFeedbackHook that publishes
/// every executed count(*) into `bus`, the destructor removes it. Only one
/// connection should be live at a time (the hook is process-wide). `bus`
/// must outlive the connection.
class ExecutionFeedbackConnection {
 public:
  explicit ExecutionFeedbackConnection(FeedbackBus* bus);
  ~ExecutionFeedbackConnection();
  ExecutionFeedbackConnection(const ExecutionFeedbackConnection&) = delete;
  ExecutionFeedbackConnection& operator=(const ExecutionFeedbackConnection&) =
      delete;
};

}  // namespace qfcard::adapt

#endif  // QFCARD_ADAPT_FEEDBACK_BUS_H_
