#include "adapt/online_knn.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace qfcard::adapt {

namespace {

/// Squared L2 distance over the shorter common prefix: feature vectors of a
/// route share one QFT so lengths normally match; a mismatch (schema
/// evolved mid-stream) still orders sensibly instead of reading past the
/// end.
double SquaredDistance(const std::vector<float>& a,
                       const std::vector<float>& b) {
  const size_t n = std::min(a.size(), b.size());
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d += diff * diff;
  }
  const size_t longer = std::max(a.size(), b.size());
  d += static_cast<double>(longer - n);  // missing dims count as unit error
  return d;
}

}  // namespace

OnlineKnn::OnlineKnn(OnlineKnnOptions options) : opts_(options) {}

void OnlineKnn::Observe(uint64_t fss, const std::vector<float>& features,
                        double log_card) {
  common::MutexLock lock(&mu_);
  const uint64_t seq = ++next_seq_;

  auto it = routes_.find(fss);
  if (it == routes_.end()) {
    // Admit the route, evicting the one with the oldest last write when the
    // route bound is hit (whole-route recency, mirroring neighbor recency).
    if (routes_.size() >= opts_.max_routes && !routes_.empty()) {
      auto oldest = routes_.begin();
      for (auto cand = routes_.begin(); cand != routes_.end(); ++cand) {
        if (cand->second.last_write < oldest->second.last_write) oldest = cand;
      }
      total_neighbors_ -= oldest->second.neighbors.size();
      obs::IncrementCounter("adapt.knn.evicted", "",
                            oldest->second.neighbors.size());
      routes_.erase(oldest);
    }
    it = routes_.emplace(fss, RouteStore{}).first;
  }
  RouteStore& store = it->second;
  store.last_write = seq;

  // Near-duplicate features refine the stored target in place (AQO's
  // OkNNr_learn path): the neighborhood stays diverse instead of filling
  // with copies of one popular query shape.
  for (Neighbor& n : store.neighbors) {
    if (SquaredDistance(n.features, features) <= opts_.update_epsilon) {
      n.log_card += opts_.learning_rate * (log_card - n.log_card);
      n.seq = seq;
      obs::IncrementCounter("adapt.knn.updated");
      return;
    }
  }

  if (store.neighbors.size() >= opts_.capacity_per_route &&
      !store.neighbors.empty()) {
    auto oldest = store.neighbors.begin();
    for (auto cand = store.neighbors.begin(); cand != store.neighbors.end();
         ++cand) {
      if (cand->seq < oldest->seq) oldest = cand;
    }
    *oldest = Neighbor{features, log_card, seq};
    obs::IncrementCounter("adapt.knn.evicted");
    obs::IncrementCounter("adapt.knn.inserted");
    return;
  }
  store.neighbors.push_back(Neighbor{features, log_card, seq});
  ++total_neighbors_;
  obs::IncrementCounter("adapt.knn.inserted");
}

std::optional<double> OnlineKnn::PredictLog(
    uint64_t fss, const std::vector<float>& features) const {
  common::MutexLock lock(&mu_);
  const auto it = routes_.find(fss);
  if (it == routes_.end() || it->second.neighbors.empty()) return std::nullopt;
  const std::vector<Neighbor>& neighbors = it->second.neighbors;

  // Rank by (distance, insertion seq): the seq tie-break keeps the k-subset
  // — and therefore the prediction — deterministic when distances tie.
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    ranked.emplace_back(SquaredDistance(neighbors[i].features, features), i);
  }
  std::sort(ranked.begin(), ranked.end(),
            [&](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return neighbors[a.second].seq < neighbors[b.second].seq;
            });
  const size_t k = std::min<size_t>(
      neighbors.size(), static_cast<size_t>(std::max(opts_.k, 1)));

  // Exact (or epsilon-close) match short-circuits to the stored value.
  if (ranked[0].first <= opts_.update_epsilon) {
    return neighbors[ranked[0].second].log_card;
  }

  // Inverse-distance weighting over the k nearest (OkNNr_predict).
  double weight_sum = 0.0;
  double value = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (1e-3 + std::sqrt(ranked[i].first));
    weight_sum += w;
    value += w * neighbors[ranked[i].second].log_card;
  }
  return value / weight_sum;
}

size_t OnlineKnn::NeighborCount(uint64_t fss) const {
  common::MutexLock lock(&mu_);
  const auto it = routes_.find(fss);
  return it == routes_.end() ? 0 : it->second.neighbors.size();
}

size_t OnlineKnn::RouteCount() const {
  common::MutexLock lock(&mu_);
  return routes_.size();
}

size_t OnlineKnn::TotalNeighbors() const {
  common::MutexLock lock(&mu_);
  return total_neighbors_;
}

size_t OnlineKnn::SizeBytes() const {
  common::MutexLock lock(&mu_);
  size_t bytes = sizeof(*this);
  for (const auto& [fss, store] : routes_) {
    (void)fss;
    bytes += sizeof(RouteStore);
    for (const Neighbor& n : store.neighbors) {
      bytes += sizeof(Neighbor) + n.features.size() * sizeof(float);
    }
  }
  return bytes;
}

}  // namespace qfcard::adapt
