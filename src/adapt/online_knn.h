#ifndef QFCARD_ADAPT_ONLINE_KNN_H_
#define QFCARD_ADAPT_ONLINE_KNN_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qfcard::adapt {

/// Knobs for OnlineKnn. Defaults follow AQO's OkNNr shape (SNIPPETS.md
/// snippets 1-2): small neighborhoods, in-place target refinement for
/// near-duplicate feature vectors, strict per-route and global bounds so
/// memory stays O(max_routes * capacity_per_route * dim).
struct OnlineKnnOptions {
  /// Neighbors consulted per prediction (the k of kNN).
  int k = 5;
  /// Neighbors retained per route; beyond this the least recently written
  /// neighbor is evicted.
  size_t capacity_per_route = 64;
  /// Routes retained; beyond this the route with the oldest last write is
  /// evicted wholesale.
  size_t max_routes = 256;
  /// Squared-distance threshold under which Observe refines the existing
  /// neighbor's target instead of inserting a near-duplicate.
  double update_epsilon = 1e-9;
  /// Weight of the new observation when refining in place (EWMA).
  double learning_rate = 0.5;
};

/// Per-route (serve::FeatureSpaceHash-keyed) bounded neighbor stores with
/// distance-weighted log-cardinality prediction — the kNN tier of the
/// adaptive loop (docs/adaptive.md), after AQO's OkNNr_predict: each
/// executed query becomes a (features, log2 card) neighbor; a prediction
/// inverse-distance-weights the k nearest neighbors of the same route.
/// O(capacity * dim) per Observe/Predict, no retraining.
///
/// Thread-safe (one mutex over the store); deterministic: ties in the
/// neighbor ranking break by insertion sequence, so a fixed observation
/// order reproduces identical predictions at any thread count.
class OnlineKnn {
 public:
  explicit OnlineKnn(OnlineKnnOptions options = {});
  OnlineKnn(const OnlineKnn&) = delete;
  OnlineKnn& operator=(const OnlineKnn&) = delete;

  /// Learns one executed query: inserts (features, log_card) into the
  /// route's store, refining in place when an almost-identical neighbor
  /// exists, evicting by write recency when bounds are hit.
  void Observe(uint64_t fss, const std::vector<float>& features,
               double log_card);

  /// Distance-weighted log2-cardinality prediction from the route's k
  /// nearest neighbors; nullopt when the route has no neighbors (callers
  /// fall back to another tier). An exact feature match returns that
  /// neighbor's stored value.
  std::optional<double> PredictLog(uint64_t fss,
                                   const std::vector<float>& features) const;

  /// Neighbors currently stored for a route (0 for unknown routes).
  size_t NeighborCount(uint64_t fss) const;
  /// Routes currently stored.
  size_t RouteCount() const;
  /// Neighbors stored across all routes.
  size_t TotalNeighbors() const;
  /// Approximate memory footprint of the neighbor stores.
  size_t SizeBytes() const;

 private:
  struct Neighbor {
    std::vector<float> features;
    double log_card = 0.0;
    uint64_t seq = 0;  ///< last write (insert or refine), for eviction
  };
  struct RouteStore {
    std::vector<Neighbor> neighbors;
    uint64_t last_write = 0;
  };

  const OnlineKnnOptions opts_;

  mutable common::Mutex mu_;
  std::map<uint64_t, RouteStore> routes_ QFCARD_GUARDED_BY(mu_);
  uint64_t next_seq_ QFCARD_GUARDED_BY(mu_) = 0;
  size_t total_neighbors_ QFCARD_GUARDED_BY(mu_) = 0;
};

}  // namespace qfcard::adapt

#endif  // QFCARD_ADAPT_ONLINE_KNN_H_
