#include "adapt/residual.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace qfcard::adapt {

ResidualCorrector::ResidualCorrector(ResidualOptions options)
    : opts_(options) {}

void ResidualCorrector::Observe(uint64_t fss, double base_estimate,
                                double true_card) {
  const double residual = std::log2(std::max(true_card, 1.0)) -
                          std::log2(std::max(base_estimate, 1.0));
  common::MutexLock lock(&mu_);
  const uint64_t seq = ++next_seq_;
  auto it = routes_.find(fss);
  if (it == routes_.end()) {
    if (routes_.size() >= opts_.max_routes && !routes_.empty()) {
      auto oldest = routes_.begin();
      for (auto cand = routes_.begin(); cand != routes_.end(); ++cand) {
        if (cand->second.last_seq < oldest->second.last_seq) oldest = cand;
      }
      routes_.erase(oldest);
    }
    it = routes_.emplace(fss, Entry{}).first;
  }
  Entry& entry = it->second;
  entry.last_seq = seq;
  RouteState& state = entry.state;
  if (state.observed == 0) {
    state.bias = residual;  // first observation seeds the EWMA
  } else {
    state.bias += opts_.alpha * (residual - state.bias);
  }
  state.bias = std::clamp(state.bias, -opts_.max_abs_bias, opts_.max_abs_bias);
  ++state.observed;
  obs::IncrementCounter("adapt.residual.observed");
}

double ResidualCorrector::Correct(uint64_t fss, double base_estimate) const {
  common::MutexLock lock(&mu_);
  const auto it = routes_.find(fss);
  if (it == routes_.end() ||
      it->second.state.observed < opts_.min_observations) {
    return std::max(base_estimate, 1.0);
  }
  return std::max(std::max(base_estimate, 1.0) *
                      std::exp2(it->second.state.bias),
                  1.0);
}

std::optional<ResidualCorrector::RouteState> ResidualCorrector::StateFor(
    uint64_t fss) const {
  common::MutexLock lock(&mu_);
  const auto it = routes_.find(fss);
  if (it == routes_.end()) return std::nullopt;
  return it->second.state;
}

size_t ResidualCorrector::RouteCount() const {
  common::MutexLock lock(&mu_);
  return routes_.size();
}

}  // namespace qfcard::adapt
