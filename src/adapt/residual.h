#ifndef QFCARD_ADAPT_RESIDUAL_H_
#define QFCARD_ADAPT_RESIDUAL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qfcard::adapt {

/// Knobs for ResidualCorrector.
struct ResidualOptions {
  /// EWMA weight of a new residual observation.
  double alpha = 0.25;
  /// Observations required before Correct applies the learned bias (an
  /// undertrained correction is worse than none).
  size_t min_observations = 3;
  /// Routes retained; beyond this the least recently observed route is
  /// evicted.
  size_t max_routes = 1024;
  /// Clamp on the learned log2 bias, so one wild observation can never push
  /// corrections past a factor of 2^max_abs_bias.
  double max_abs_bias = 30.0;
};

/// Online corrector over the *error* of a cheap base estimator (the
/// TiCard idea, PAPERS.md): per route (serve::FeatureSpaceHash) it keeps an
/// EWMA of the log2 residual r = log2(true) - log2(base_estimate) observed
/// on executed queries, and Correct multiplies the base estimate by 2^bias.
/// The base estimator itself — PostgresStyleEstimator in the serving wiring
/// — is never touched: stale synopses keep answering, and the learned bias
/// absorbs their drift, which is why this tier recovers within a handful of
/// feedback records where a full retrain needs thousands.
///
/// Thread-safe (one mutex); deterministic for a fixed observation order.
class ResidualCorrector {
 public:
  explicit ResidualCorrector(ResidualOptions options = {});
  ResidualCorrector(const ResidualCorrector&) = delete;
  ResidualCorrector& operator=(const ResidualCorrector&) = delete;

  /// Learns from one executed query: folds log2(true/base) into the
  /// route's bias EWMA. Both inputs are clamped to >= 1.
  void Observe(uint64_t fss, double base_estimate, double true_card);

  /// Applies the learned bias: base_estimate * 2^bias, clamped to >= 1.
  /// Routes with fewer than min_observations return base_estimate
  /// unchanged.
  double Correct(uint64_t fss, double base_estimate) const;

  /// Learned per-route state, for tests and reports.
  struct RouteState {
    double bias = 0.0;       ///< EWMA of the log2 residual
    uint64_t observed = 0;   ///< observations folded in
  };
  std::optional<RouteState> StateFor(uint64_t fss) const;

  /// Routes currently tracked.
  size_t RouteCount() const;

 private:
  struct Entry {
    RouteState state;
    uint64_t last_seq = 0;  ///< recency, for route eviction
  };

  const ResidualOptions opts_;

  mutable common::Mutex mu_;
  std::map<uint64_t, Entry> routes_ QFCARD_GUARDED_BY(mu_);
  uint64_t next_seq_ QFCARD_GUARDED_BY(mu_) = 0;
};

}  // namespace qfcard::adapt

#endif  // QFCARD_ADAPT_RESIDUAL_H_
