#include "common/env.h"

#include <cstdlib>

namespace qfcard::common {

std::string GetEnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return v;
}

int64_t GetEnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return parsed;
}

Scale GetScale() {
  const std::string s = GetEnvString("QFCARD_SCALE", "default");
  if (s == "smoke") return Scale::kSmoke;
  if (s == "full") return Scale::kFull;
  return Scale::kDefault;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kFull:
      return "full";
    case Scale::kDefault:
      break;
  }
  return "default";
}

int64_t ScalePick(int64_t smoke, int64_t def, int64_t full) {
  switch (GetScale()) {
    case Scale::kSmoke:
      return smoke;
    case Scale::kFull:
      return full;
    case Scale::kDefault:
      break;
  }
  return def;
}

}  // namespace qfcard::common
