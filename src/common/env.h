#ifndef QFCARD_COMMON_ENV_H_
#define QFCARD_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace qfcard::common {

/// Reads environment variable `name`, returning `def` when unset or empty.
std::string GetEnvString(const char* name, const std::string& def);

/// Reads an integer environment variable, returning `def` when unset or
/// unparsable.
int64_t GetEnvInt(const char* name, int64_t def);

/// Experiment scale selected via QFCARD_SCALE: "smoke" (CI-sized), "default"
/// (minutes per bench on one core), or "full" (paper-sized counts).
enum class Scale { kSmoke, kDefault, kFull };

/// Returns the scale selected by the QFCARD_SCALE environment variable
/// ("smoke" / "default" / "full"); defaults to kDefault.
Scale GetScale();

/// The QFCARD_SCALE spelling of `scale` ("smoke" / "default" / "full"),
/// for report context blocks.
const char* ScaleName(Scale scale);

/// Picks one of three values based on GetScale().
int64_t ScalePick(int64_t smoke, int64_t def, int64_t full);

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_ENV_H_
