#ifndef QFCARD_COMMON_MUTEX_H_
#define QFCARD_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace qfcard::common {

/// std::mutex wrapped as a Clang thread-safety capability. All shared
/// mutable state in the repo is declared QFCARD_GUARDED_BY one of these, so
/// -Wthread-safety (a blocking CI job) rejects any unlocked access at
/// compile time. Lock/Unlock are lowercase-aliased too so the wrapper still
/// satisfies BasicLockable for std:: facilities.
class QFCARD_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QFCARD_ACQUIRE() { mu_.lock(); }
  void Unlock() QFCARD_RELEASE() { mu_.unlock(); }
  bool TryLock() QFCARD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling (std::lock_guard, condition_variable_any, ...).
  void lock() QFCARD_ACQUIRE() { mu_.lock(); }
  void unlock() QFCARD_RELEASE() { mu_.unlock(); }
  bool try_lock() QFCARD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock: holds the Mutex for the enclosing scope. The scoped-capability
/// annotation tells the analysis which guarded members become accessible.
class QFCARD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QFCARD_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QFCARD_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait takes the Mutex directly (and
/// REQUIRES it held), so waiting loops spell their predicate as a plain
/// while-loop over guarded state the analysis can check:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);   // ready_ is GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks until notified, reacquires *mu.
  /// Spurious wakeups are possible; always wait in a predicate loop.
  void Wait(Mutex* mu) QFCARD_REQUIRES(mu) { cv_.wait(*mu); }

  /// Wait with a relative timeout (steady-clock based, so immune to
  /// wall-clock jumps). Returns false when the timeout elapsed without a
  /// notification. Spurious wakeups return true; as with Wait, callers must
  /// re-check their predicate either way.
  bool WaitFor(Mutex* mu, double seconds) QFCARD_REQUIRES(mu) {
    return cv_.wait_for(*mu, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_MUTEX_H_
