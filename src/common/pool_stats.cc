#include "common/pool_stats.h"

#include <atomic>

namespace qfcard::common {

namespace {

// Constant-initialized, so reads are valid even from static initializers in
// other translation units that run before this one's dynamic init.
std::atomic<PoolStatsSink*> g_pool_stats_sink{nullptr};
std::atomic<PoolTraceBridge*> g_pool_trace_bridge{nullptr};

}  // namespace

void SetPoolStatsSink(PoolStatsSink* sink) {
  g_pool_stats_sink.store(sink, std::memory_order_release);
}

PoolStatsSink* GetPoolStatsSink() {
  return g_pool_stats_sink.load(std::memory_order_acquire);
}

void SetPoolTraceBridge(PoolTraceBridge* bridge) {
  g_pool_trace_bridge.store(bridge, std::memory_order_release);
}

PoolTraceBridge* GetPoolTraceBridge() {
  return g_pool_trace_bridge.load(std::memory_order_acquire);
}

}  // namespace qfcard::common
