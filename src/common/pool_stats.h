#ifndef QFCARD_COMMON_POOL_STATS_H_
#define QFCARD_COMMON_POOL_STATS_H_

#include <cstdint>

namespace qfcard::common {

/// Telemetry callback interface for ThreadPool. common/ sits at the bottom
/// of the layer stack (tools/layers.json) and must not include obs/, so the
/// pool reports its stats through this sink instead of touching
/// obs::MetricsRegistry directly; obs/metrics.cc installs the one real
/// implementation at static-initialization time and forwards into the
/// threadpool.* series (docs/observability.md). Binaries that never link
/// obs/ simply run with no sink and the pool skips all bookkeeping.
///
/// Implementations must be safe to call concurrently from every pool worker
/// and must not call back into ThreadPool (the pool may hold its own lock
/// around NowSeconds when timing a job publish).
class PoolStatsSink {
 public:
  virtual ~PoolStatsSink() = default;

  /// Cheap dynamic toggle, checked once per ParallelFor / worker wake. When
  /// false the pool skips the remaining callbacks (and their clock reads).
  virtual bool Enabled() const = 0;

  /// Monotonic seconds from an arbitrary fixed epoch; only differences are
  /// meaningful. Used to time job publish -> worker wake and task runs.
  virtual double NowSeconds() const = 0;

  /// One ParallelFor call dispatching `indices` indices on a pool of
  /// `pool_size` threads.
  virtual void OnParallelFor(int64_t indices, int pool_size) = 0;

  /// A ParallelFor that ran inline on the caller (serial pool, trivial
  /// loop, or nested call while a job was in flight).
  virtual void OnInlineRun() = 0;

  /// One thread finished its claim loop for a job: `chunks` index chunks
  /// claimed over `run_seconds` of wall time inside the loop.
  virtual void OnJobRun(uint64_t chunks, double run_seconds) = 0;

  /// Queue wait measured by a worker: job publish to condvar wake.
  virtual void OnQueueWait(double wait_seconds) = 0;
};

/// Installs the process-wide sink (not owned; pass nullptr to uninstall).
/// The sink must outlive every ThreadPool call made after installation.
void SetPoolStatsSink(PoolStatsSink* sink);

/// The installed sink, or nullptr. Lock-free (one relaxed atomic load).
PoolStatsSink* GetPoolStatsSink();

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_POOL_STATS_H_
