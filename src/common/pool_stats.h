#ifndef QFCARD_COMMON_POOL_STATS_H_
#define QFCARD_COMMON_POOL_STATS_H_

#include <cstdint>

namespace qfcard::common {

/// Telemetry callback interface for ThreadPool. common/ sits at the bottom
/// of the layer stack (tools/layers.json) and must not include obs/, so the
/// pool reports its stats through this sink instead of touching
/// obs::MetricsRegistry directly; obs/metrics.cc installs the one real
/// implementation at static-initialization time and forwards into the
/// threadpool.* series (docs/observability.md). Binaries that never link
/// obs/ simply run with no sink and the pool skips all bookkeeping.
///
/// Implementations must be safe to call concurrently from every pool worker
/// and must not call back into ThreadPool (the pool may hold its own lock
/// around NowSeconds when timing a job publish).
class PoolStatsSink {
 public:
  virtual ~PoolStatsSink() = default;

  /// Cheap dynamic toggle, checked once per ParallelFor / worker wake. When
  /// false the pool skips the remaining callbacks (and their clock reads).
  virtual bool Enabled() const = 0;

  /// Monotonic seconds from an arbitrary fixed epoch; only differences are
  /// meaningful. Used to time job publish -> worker wake and task runs.
  virtual double NowSeconds() const = 0;

  /// One ParallelFor call dispatching `indices` indices on a pool of
  /// `pool_size` threads.
  virtual void OnParallelFor(int64_t indices, int pool_size) = 0;

  /// A ParallelFor that ran inline on the caller (serial pool, trivial
  /// loop, or nested call while a job was in flight).
  virtual void OnInlineRun() = 0;

  /// One thread finished its claim loop for a job: `chunks` index chunks
  /// claimed over `run_seconds` of wall time inside the loop.
  virtual void OnJobRun(uint64_t chunks, double run_seconds) = 0;

  /// Queue wait measured by a worker: job publish to condvar wake.
  virtual void OnQueueWait(double wait_seconds) = 0;
};

/// Installs the process-wide sink (not owned; pass nullptr to uninstall).
/// The sink must outlive every ThreadPool call made after installation.
void SetPoolStatsSink(PoolStatsSink* sink);

/// The installed sink, or nullptr. Lock-free (one relaxed atomic load).
PoolStatsSink* GetPoolStatsSink();

/// Opaque trace identity a ThreadPool job carries from the submitting
/// thread to the workers that run it. common/ cannot see obs::TraceContext
/// (layering, tools/layers.json), so the pool treats the pair as two plain
/// integers; obs/trace.cc gives them meaning.
struct PoolTraceToken {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// Trace-context handoff interface for ThreadPool, the same dependency
/// inversion as PoolStatsSink above: obs/trace.cc installs the one real
/// implementation at static-initialization time. The pool captures the
/// caller's token once per ParallelFor and brackets every per-thread claim
/// loop with Adopt/Release, so spans a task opens on a worker parent under
/// the submitting span — and a task that leaks an unclosed span cannot
/// corrupt attribution for later tasks, because Release restores the
/// worker's pre-task chain unconditionally.
///
/// Adopt/Release are strictly nested per thread (a nested ParallelFor runs
/// inline on the worker and brackets again). Implementations must be safe
/// to call concurrently from every pool worker.
class PoolTraceBridge {
 public:
  virtual ~PoolTraceBridge() = default;

  /// Cheap dynamic toggle; when false the pool skips Capture/Adopt/Release.
  virtual bool Enabled() const = 0;

  /// The calling thread's current trace context.
  virtual PoolTraceToken Capture() const = 0;

  /// Saves this thread's context and installs `token`.
  virtual void Adopt(const PoolTraceToken& token) = 0;

  /// Restores the context saved by the matching Adopt.
  virtual void Release() = 0;
};

/// Installs the process-wide bridge (not owned; pass nullptr to uninstall).
void SetPoolTraceBridge(PoolTraceBridge* bridge);

/// The installed bridge, or nullptr. Lock-free (one acquire atomic load).
PoolTraceBridge* GetPoolTraceBridge();

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_POOL_STATS_H_
