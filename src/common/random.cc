#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace qfcard::common {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t x = seed ^ (stream * 0x94D049BB133111EBULL + 0x9E3779B97f4A7C15ULL);
  return SplitMix64(x);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % span);
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = Uniform01();
  while (u1 <= 1e-300) u1 = Uniform01();
  const double u2 = Uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  double u = Uniform01();
  while (u <= 1e-300) u = Uniform01();
  return -std::log(u) / rate;
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 1;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double acc = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), s);
      zipf_cdf_[static_cast<size_t>(i - 1)] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = Uniform01();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int64_t>(it - zipf_cdf_.begin()) + 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  // Floyd's algorithm would avoid the O(n) init, but n is small everywhere
  // this is used (attribute counts), so a shuffle prefix is simplest.
  std::vector<int> all(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  Shuffle(all);
  all.resize(static_cast<size_t>(std::min(n, k)));
  return all;
}

}  // namespace qfcard::common
