#ifndef QFCARD_COMMON_RANDOM_H_
#define QFCARD_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qfcard::common {

/// Deterministically mixes a base seed with a stream id (SplitMix64
/// finalizer over the pair). Used to derive independent per-task random
/// streams — e.g. one stream per query of a parallel batch — from a single
/// experiment seed, so batched and serial execution draw identical samples.
uint64_t MixSeed(uint64_t seed, uint64_t stream);

/// Deterministic pseudo-random generator (xoshiro256** seeded via SplitMix64).
/// Every stochastic component in qfcard (data generators, workload
/// generators, model initialization, sampling estimators) takes an explicit
/// seed so that experiments are reproducible run to run.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform01();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [lo, hi] (inclusive).
  /// Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double Normal();

  /// Returns a sample from N(mean, stddev^2).
  double Normal(double mean, double stddev);

  /// Returns a sample from Exp(rate), i.e. mean 1/rate. Requires rate > 0.
  double Exponential(double rate);

  /// Returns a Zipf-distributed integer in [1, n] with exponent s >= 0
  /// (s == 0 degenerates to uniform). Uses inverse-CDF over precomputed
  /// weights, O(log n) per draw after O(n) setup per (n, s) pair.
  int64_t Zipf(int64_t n, double s);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Draws k distinct values from [0, n) uniformly at random (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
  // Cache for Zipf inverse-CDF tables keyed by (n, s).
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
  // Spare normal variate from Box-Muller.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_RANDOM_H_
