#ifndef QFCARD_COMMON_STATS_H_
#define QFCARD_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace qfcard::common {

/// Linear-interpolated quantile of a sorted sample, q in [0, 1]. Lives in
/// common/ because both obs/ (the q-error drift monitor) and ml/ (q-error
/// summaries) need it, and obs/ sits below ml/ in the layer order
/// (tools/layers.json); ml::QuantileSorted forwards here.
inline double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_STATS_H_
