#include "common/status.h"

#include <cstdio>

namespace qfcard::common {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

void CheckOk(const Status& status, const char* file, int line) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s:%d: QFCARD_CHECK_OK failed: %s\n", file, line,
               status.ToString().c_str());
  std::abort();
}

}  // namespace qfcard::common
