#ifndef QFCARD_COMMON_STATUS_H_
#define QFCARD_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qfcard::common {

/// Error categories used across the library. Mirrors the subset of
/// absl::StatusCode that the code base needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight error-or-success result. qfcard does not use C++ exceptions;
/// every fallible operation returns a Status (or StatusOr<T>).
/// [[nodiscard]]: silently dropping a Status hides failures — callers must
/// test it, propagate it, or cast to (void) with a reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message. `code` should not
  /// be kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Aborts the process with a diagnostic if `status` is not OK. Used at call
/// sites that have a proven invariant (e.g. featurizing a query that was just
/// generated for this schema).
void CheckOk(const Status& status, const char* file, int line);

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored StatusOr aborts, so callers must test ok() first (or use
/// QFCARD_ASSIGN_OR_RETURN).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : status_(), value_(std::move(value)) {}
  /// Constructs from an error. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DieIfError();
    return *value_;
  }
  T& value() & {
    DieIfError();
    return *value_;
  }
  T&& value() && {
    DieIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void DieIfError() const {
    if (!status_.ok()) {
      CheckOk(status_, __FILE__, __LINE__);
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace qfcard::common

#define QFCARD_CONCAT_INNER_(a, b) a##b
#define QFCARD_CONCAT_(a, b) QFCARD_CONCAT_INNER_(a, b)

/// Propagates a non-OK Status to the caller. The local is line-suffixed so
/// invocations in nested scopes don't shadow each other under -Wshadow.
#define QFCARD_RETURN_IF_ERROR(expr)                                  \
  do {                                                                \
    ::qfcard::common::Status QFCARD_CONCAT_(qfcard_status_,          \
                                            __LINE__) = (expr);       \
    if (!QFCARD_CONCAT_(qfcard_status_, __LINE__).ok())               \
      return QFCARD_CONCAT_(qfcard_status_, __LINE__);                \
  } while (0)

/// Evaluates a StatusOr expression; on error propagates the Status, otherwise
/// moves the value into `lhs`.
#define QFCARD_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto QFCARD_CONCAT_(qfcard_statusor_, __LINE__) = (expr);         \
  if (!QFCARD_CONCAT_(qfcard_statusor_, __LINE__).ok())             \
    return QFCARD_CONCAT_(qfcard_statusor_, __LINE__).status();     \
  lhs = std::move(QFCARD_CONCAT_(qfcard_statusor_, __LINE__)).value()

/// Aborts if `expr` is not OK. For invariants, not for expected failures.
#define QFCARD_CHECK_OK(expr) \
  ::qfcard::common::CheckOk((expr), __FILE__, __LINE__)

#endif  // QFCARD_COMMON_STATUS_H_
