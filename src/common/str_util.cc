#include "common/str_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace qfcard::common {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  // One rolling row of the classic DP table: O(|a|*|b|) time, O(|b|) space.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // dp[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t above = row[j];  // dp[i-1][j]
      const size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min(subst, std::min(above, row[j - 1]) + 1);
      diag = above;
    }
  }
  return row[b.size()];
}

std::string ClosestMatch(std::string_view name,
                         const std::vector<std::string>& candidates,
                         size_t max_distance) {
  const std::string lowered = ToLower(name);
  std::string best;
  size_t best_distance = max_distance + 1;
  for (const std::string& candidate : candidates) {
    const size_t d = EditDistance(lowered, ToLower(candidate));
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace qfcard::common
