#ifndef QFCARD_COMMON_STR_UTIL_H_
#define QFCARD_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qfcard::common {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Levenshtein edit distance (insertions, deletions, substitutions).
size_t EditDistance(std::string_view a, std::string_view b);

/// The candidate with the smallest case-insensitive edit distance to `name`,
/// or "" when `candidates` is empty or no candidate comes within
/// `max_distance` edits. Ties break to the earliest candidate, so callers
/// passing a deterministic list get a deterministic suggestion.
std::string ClosestMatch(std::string_view name,
                         const std::vector<std::string>& candidates,
                         size_t max_distance = 3);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_STR_UTIL_H_
