#ifndef QFCARD_COMMON_THREAD_ANNOTATIONS_H_
#define QFCARD_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis annotations (docs/static_analysis.md).
//
// These macros let the compiler enforce lock discipline statically: declare
// which mutex guards each piece of shared mutable state (GUARDED_BY), which
// locks a function needs held on entry (REQUIRES) or must not hold
// (EXCLUDES), and the analysis rejects any access pattern that could race —
// at compile time, with no runtime cost. Under Clang the repo builds with
// -Wthread-safety -Werror=thread-safety (see the thread-safety CI job); on
// GCC and other compilers every macro expands to nothing.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define QFCARD_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define QFCARD_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

// Marks a class as a lockable capability ("mutex" names the capability kind
// in diagnostics).
#define QFCARD_CAPABILITY(x) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII class that acquires a capability in its constructor and
// releases it in its destructor.
#define QFCARD_SCOPED_CAPABILITY \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Declares that the annotated member is protected by the given mutex: reads
// and writes are only legal while it is held.
#define QFCARD_GUARDED_BY(x) QFCARD_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// As GUARDED_BY, but for the data a pointer member points to.
#define QFCARD_PT_GUARDED_BY(x) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Declares that callers must hold the given mutex(es), exclusively, before
// calling the annotated function.
#define QFCARD_REQUIRES(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// As REQUIRES for shared (reader) access.
#define QFCARD_REQUIRES_SHARED(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Declares that callers must NOT hold the given mutex(es) — the function
// acquires them itself (deadlock guard).
#define QFCARD_EXCLUDES(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// The annotated function acquires the capability and does not release it
// before returning.
#define QFCARD_ACQUIRE(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define QFCARD_ACQUIRE_SHARED(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

// The annotated function releases the capability (held on entry).
#define QFCARD_RELEASE(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define QFCARD_RELEASE_SHARED(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

// The annotated function acquires the capability if and only if it returns
// the given value (try-lock).
#define QFCARD_TRY_ACQUIRE(...) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// Returns a reference to the capability guarding this object (lets wrapper
// accessors participate in the analysis).
#define QFCARD_RETURN_CAPABILITY(x) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables analysis inside one function. Every use must carry
// a comment explaining why the analysis cannot see the invariant.
#define QFCARD_NO_THREAD_SAFETY_ANALYSIS \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// Runtime-free assertion that the capability is held (re-establishes the
// fact for the analysis after an opaque boundary, e.g. a callback).
#define QFCARD_ASSERT_CAPABILITY(x) \
  QFCARD_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#endif  // QFCARD_COMMON_THREAD_ANNOTATIONS_H_
