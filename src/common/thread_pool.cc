#include "common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/env.h"
#include "common/pool_stats.h"

namespace qfcard::common {

namespace {

// Indices claimed per fetch_add. Small enough that the tail of a skewed
// loop still load-balances (>= 8 claims per thread), large enough that the
// atomic stops dominating trivial bodies. Chunking only moves indices
// between threads; every index still runs exactly once.
int64_t ChunkSize(int64_t n, int num_threads) {
  const int64_t target = n / (8 * static_cast<int64_t>(num_threads));
  return std::clamp<int64_t>(target, 1, 256);
}

// The telemetry sink, if any. obs/metrics.cc installs one that forwards
// into the threadpool.* series; common/ itself never sees obs/ (layering,
// tools/layers.json). Returns nullptr when disabled so call sites pay one
// relaxed load + one virtual call per ParallelFor when metrics are off.
PoolStatsSink* ActiveSink() {
  PoolStatsSink* sink = GetPoolStatsSink();
  return (sink != nullptr && sink->Enabled()) ? sink : nullptr;
}

// The trace-context bridge, if any. obs/trace.cc installs one so spans
// opened inside pool tasks join the submitting thread's trace; same
// layering inversion as the stats sink. Returns nullptr when tracing is
// off so the handoff costs one relaxed load + one virtual call.
PoolTraceBridge* ActiveBridge() {
  PoolTraceBridge* bridge = GetPoolTraceBridge();
  return (bridge != nullptr && bridge->Enabled()) ? bridge : nullptr;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 0; t < num_threads_ - 1; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunJob() {
  FunctionRef<void(int64_t)> fn;
  int64_t n = 0;
  PoolTraceToken trace_token;
  {
    MutexLock lock(&mu_);
    fn = job_fn_;
    n = job_n_;
    trace_token = job_trace_;
  }
  if (!fn) return;
  // Task boundary: install the submitter's trace context for the duration
  // of this thread's claim loop, restoring the prior chain afterwards (the
  // Release half is what keeps a leaked span from poisoning later tasks).
  PoolTraceBridge* bridge = ActiveBridge();
  if (bridge != nullptr) bridge->Adopt(trace_token);
  PoolStatsSink* sink = ActiveSink();
  const double run_start = sink != nullptr ? sink->NowSeconds() : 0.0;
  uint64_t claimed_chunks = 0;
  const int64_t chunk = ChunkSize(n, num_threads_);
  for (;;) {
    const int64_t begin =
        next_index_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) break;
    ++claimed_chunks;
    const int64_t end = std::min(begin + chunk, n);
    for (int64_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        // Keep the exception of the smallest failing index; every index
        // still runs so the winner is deterministic regardless of pool size.
        MutexLock lock(&err_mu_);
        if (err_index_ < 0 || i < err_index_) {
          err_index_ = i;
          err_ = std::current_exception();
        }
      }
    }
  }
  if (bridge != nullptr) bridge->Release();
  if (sink != nullptr) {
    sink->OnJobRun(claimed_chunks, sink->NowSeconds() - run_start);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_job = 0;
  for (;;) {
    double publish = 0.0;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && job_id_ == seen_job) work_cv_.Wait(&mu_);
      if (shutdown_) return;
      seen_job = job_id_;
      publish = job_publish_;
    }
    if (publish != 0.0) {
      // Queue wait: ParallelFor publishing the job to this worker picking
      // it up (condvar wake + scheduling latency). publish is 0 when the
      // sink was off at publish time.
      PoolStatsSink* sink = ActiveSink();
      if (sink != nullptr) sink->OnQueueWait(sink->NowSeconds() - publish);
    }
    RunJob();
    {
      MutexLock lock(&mu_);
      if (--workers_active_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(int64_t n, FunctionRef<void(int64_t)> fn) {
  if (n <= 0) return;
  PoolStatsSink* sink = ActiveSink();
  if (sink != nullptr) sink->OnParallelFor(n, num_threads_);
  bool expected = false;
  const bool parallel =
      num_threads_ > 1 && n > 1 &&
      busy_.compare_exchange_strong(expected, true);
  if (!parallel) {
    if (sink != nullptr) sink->OnInlineRun();
    // Serial pool, trivial loop, or a job already in flight (nested call):
    // run inline on the calling thread. Every index runs even after a
    // throw, matching the parallel path, and the smallest failing index's
    // exception wins (here: the first one).
    std::exception_ptr first_err;
    for (int64_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_err) first_err = std::current_exception();
      }
    }
    if (first_err) std::rethrow_exception(first_err);
    return;
  }
  {
    MutexLock lock(&mu_);
    job_fn_ = fn;
    job_n_ = n;
    job_publish_ = sink != nullptr ? sink->NowSeconds() : 0.0;
    {
      PoolTraceBridge* bridge = ActiveBridge();
      job_trace_ = bridge != nullptr ? bridge->Capture() : PoolTraceToken{};
    }
    next_index_.store(0, std::memory_order_relaxed);
    {
      MutexLock err_lock(&err_mu_);
      err_index_ = -1;
      err_ = nullptr;
    }
    workers_active_ = static_cast<int>(workers_.size());
    ++job_id_;
  }
  work_cv_.NotifyAll();
  RunJob();
  {
    MutexLock lock(&mu_);
    while (workers_active_ != 0) done_cv_.Wait(&mu_);
    job_fn_ = FunctionRef<void(int64_t)>();
  }
  busy_.store(false);
  std::exception_ptr err;
  {
    MutexLock lock(&err_mu_);
    err = std::exchange(err_, nullptr);
    err_index_ = -1;
  }
  if (err) std::rethrow_exception(err);
}

Status ThreadPool::ParallelForStatus(int64_t n,
                                     FunctionRef<Status(int64_t)> fn) {
  Mutex mu;
  int64_t bad_index = -1;
  Status bad = Status::Ok();
  auto body = [&](int64_t i) {
    Status s = fn(i);
    if (s.ok()) return;
    MutexLock lock(&mu);
    if (bad_index < 0 || i < bad_index) {
      bad_index = i;
      bad = std::move(s);
    }
  };
  ParallelFor(n, body);
  return bad;
}

int ThreadPoolSizeFromEnv() {
  int64_t v = GetEnvInt("QFCARD_THREADS", 1);
  if (v < 1) v = 1;
  if (v > 1024) v = 1024;
  return static_cast<int>(v);
}

namespace {

Mutex global_pool_mu;

std::unique_ptr<ThreadPool>& GlobalPoolSlot() QFCARD_REQUIRES(global_pool_mu) {
  static std::unique_ptr<ThreadPool>* slot =
      new std::unique_ptr<ThreadPool>();  // leaked: outlives static dtors
  return *slot;
}

}  // namespace

ThreadPool& GlobalPool() {
  MutexLock lock(&global_pool_mu);
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(ThreadPoolSizeFromEnv());
  return *slot;
}

void SetGlobalThreads(int n) {
  MutexLock lock(&global_pool_mu);
  GlobalPoolSlot() = std::make_unique<ThreadPool>(n);
}

}  // namespace qfcard::common
