#ifndef QFCARD_COMMON_THREAD_POOL_H_
#define QFCARD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/pool_stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace qfcard::common {

/// Non-owning reference to a callable: one context pointer plus one plain
/// function pointer. ParallelFor takes its body as FunctionRef instead of
/// const std::function& so the hot claim loop pays a single indirect call
/// per index with the target and context held in registers — std::function
/// adds a second indirection (type-erased dispatch through the heap- or
/// SBO-stored wrapper) that the per-index loop would re-load every
/// iteration, which clang-tidy's performance-* checks flag as churn.
///
/// The referenced callable must outlive every call. ParallelFor blocks until
/// the loop finishes, so passing a temporary lambda at the call site is safe.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() = default;

  /// Implicit by design: call sites pass lambdas (or any callable, including
  /// std::function) directly.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return call_ != nullptr; }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

/// Fixed-size worker pool driving order-preserving parallel loops. This is
/// the substrate of the batch-first estimation API: every batch entry point
/// (Featurizer::FeaturizeBatch, CardinalityEstimator::EstimateBatch,
/// workload labeling, grid search) funnels its per-item work through
/// ParallelFor.
///
/// Determinism contract: ParallelFor(n, fn) calls fn exactly once for every
/// index in [0, n). Callers produce results by writing to slot i only, so
/// the output is byte-identical for any pool size — a pool of 1 (the
/// QFCARD_THREADS serial fallback) and a pool of 16 see the same indices and
/// write the same slots. fn must therefore be safe to call concurrently for
/// distinct indices and must not depend on cross-index execution order.
///
/// A pool of size 1 spawns no worker threads and runs loops inline. Nested
/// or concurrent ParallelFor calls on one pool are safe: whoever arrives
/// while a job is active runs its loop inline (serially) instead of
/// deadlocking on the shared workers.
///
/// Hot-path shape (kept deliberately, see docs/static_analysis.md): workers
/// claim *chunks* of indices with one relaxed fetch_add per chunk instead of
/// one per index, and the loop body is a FunctionRef copied into a local, so
/// inside a chunk each iteration is a single indirect call with the target
/// and context loop-invariant. Chunking changes which thread runs an index,
/// never whether it runs — the determinism contract is by slot, not by
/// schedule.
///
/// Telemetry (docs/observability.md): when QFCARD_METRICS is on, every
/// ParallelFor updates threadpool.* counters (calls, indices, chunk claims)
/// and histograms (queue_wait_seconds: publish-to-worker-wake latency;
/// task_run_seconds: per-thread time inside the claim loop). When metrics
/// are off the added cost is one relaxed atomic load per call.
///
/// Tracing (docs/observability.md): when QFCARD_TRACE is on, ParallelFor
/// captures the caller's trace context (PoolTraceBridge) into the job and
/// every thread running the job adopts it around its claim loop, so spans a
/// task opens on a worker parent under the submitting span instead of
/// starting stray per-worker roots. Release at the task boundary restores
/// the worker's prior chain unconditionally — a task that leaks an unclosed
/// span cannot corrupt attribution for later tasks on that worker.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads`-way parallelism (clamped to >= 1).
  /// The calling thread participates in every loop, so `num_threads - 1`
  /// workers are spawned.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n), blocking until all calls finish.
  /// Indices are claimed dynamically for load balance; order preservation is
  /// by slot, per the determinism contract above. If any call throws, every
  /// index still runs and the exception of the smallest failing index is
  /// rethrown (deterministic regardless of pool size).
  void ParallelFor(int64_t n, FunctionRef<void(int64_t)> fn)
      QFCARD_EXCLUDES(mu_, err_mu_);

  /// As ParallelFor for Status-returning bodies: runs every index and
  /// returns the non-OK Status with the smallest index, or OK. Equivalent to
  /// the serial loop's first error, independent of pool size.
  Status ParallelForStatus(int64_t n, FunctionRef<Status(int64_t)> fn)
      QFCARD_EXCLUDES(mu_, err_mu_);

 private:
  void WorkerLoop() QFCARD_EXCLUDES(mu_, err_mu_);
  // Claims chunks of the active job until exhausted.
  void RunJob() QFCARD_EXCLUDES(mu_, err_mu_);

  const int num_threads_;
  // Written only by the constructor (before any worker can observe it) and
  // joined by the destructor after shutdown_ is set; no lock is ever held
  // around it.
  // qfcard-lint: ok(guarded-by): immutable between ctor and dtor; workers never touch it
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  bool shutdown_ QFCARD_GUARDED_BY(mu_) = false;
  // Bumped per ParallelFor; wakes workers.
  uint64_t job_id_ QFCARD_GUARDED_BY(mu_) = 0;
  int64_t job_n_ QFCARD_GUARDED_BY(mu_) = 0;
  FunctionRef<void(int64_t)> job_fn_ QFCARD_GUARDED_BY(mu_);
  // When the current job was published, in PoolStatsSink::NowSeconds()
  // time; workers subtract this from their wake time to measure queue
  // wait. 0.0 when no sink was active at publish time.
  double job_publish_ QFCARD_GUARDED_BY(mu_) = 0.0;
  // Trace context of the thread that published the current job; adopted by
  // every thread running it. Zero when no bridge was active at publish.
  PoolTraceToken job_trace_ QFCARD_GUARDED_BY(mu_);
  // Workers still inside the current job.
  int workers_active_ QFCARD_GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> next_index_{0};
  std::atomic<bool> busy_{false};  // a job is in flight (nesting guard)

  Mutex err_mu_;
  int64_t err_index_ QFCARD_GUARDED_BY(err_mu_) = -1;
  std::exception_ptr err_ QFCARD_GUARDED_BY(err_mu_);
};

/// Parallelism selected by the QFCARD_THREADS environment variable; unset,
/// empty, or values < 1 fall back to 1 (fully serial).
int ThreadPoolSizeFromEnv();

/// The process-wide pool used by all batch APIs, built on first use with
/// ThreadPoolSizeFromEnv().
ThreadPool& GlobalPool();

/// Replaces the global pool with one of `n` threads. Test/bench hook for
/// comparing thread counts in one process; must not be called while a
/// ParallelFor is in flight.
void SetGlobalThreads(int n);

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_THREAD_POOL_H_
