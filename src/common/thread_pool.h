#ifndef QFCARD_COMMON_THREAD_POOL_H_
#define QFCARD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace qfcard::common {

/// Fixed-size worker pool driving order-preserving parallel loops. This is
/// the substrate of the batch-first estimation API: every batch entry point
/// (Featurizer::FeaturizeBatch, CardinalityEstimator::EstimateBatch,
/// workload labeling, grid search) funnels its per-item work through
/// ParallelFor.
///
/// Determinism contract: ParallelFor(n, fn) calls fn exactly once for every
/// index in [0, n). Callers produce results by writing to slot i only, so
/// the output is byte-identical for any pool size — a pool of 1 (the
/// QFCARD_THREADS serial fallback) and a pool of 16 see the same indices and
/// write the same slots. fn must therefore be safe to call concurrently for
/// distinct indices and must not depend on cross-index execution order.
///
/// A pool of size 1 spawns no worker threads and runs loops inline. Nested
/// or concurrent ParallelFor calls on one pool are safe: whoever arrives
/// while a job is active runs its loop inline (serially) instead of
/// deadlocking on the shared workers.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads`-way parallelism (clamped to >= 1).
  /// The calling thread participates in every loop, so `num_threads - 1`
  /// workers are spawned.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n), blocking until all calls finish.
  /// Indices are claimed dynamically for load balance; order preservation is
  /// by slot, per the determinism contract above. If any call throws, every
  /// index still runs and the exception of the smallest failing index is
  /// rethrown (deterministic regardless of pool size).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// As ParallelFor for Status-returning bodies: runs every index and
  /// returns the non-OK Status with the smallest index, or OK. Equivalent to
  /// the serial loop's first error, independent of pool size.
  Status ParallelForStatus(int64_t n,
                           const std::function<Status(int64_t)>& fn);

 private:
  void WorkerLoop();
  void RunJob();  // claims indices of the active job until exhausted

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  uint64_t job_id_ = 0;  // bumped per ParallelFor; wakes workers
  int64_t job_n_ = 0;
  const std::function<void(int64_t)>* job_fn_ = nullptr;
  int workers_active_ = 0;  // workers still inside the current job
  std::atomic<int64_t> next_index_{0};
  std::atomic<bool> busy_{false};  // a job is in flight (nesting guard)

  std::mutex err_mu_;
  int64_t err_index_ = -1;
  std::exception_ptr err_;
};

/// Parallelism selected by the QFCARD_THREADS environment variable; unset,
/// empty, or values < 1 fall back to 1 (fully serial).
int ThreadPoolSizeFromEnv();

/// The process-wide pool used by all batch APIs, built on first use with
/// ThreadPoolSizeFromEnv().
ThreadPool& GlobalPool();

/// Replaces the global pool with one of `n` threads. Test/bench hook for
/// comparing thread counts in one process; must not be called while a
/// ParallelFor is in flight.
void SetGlobalThreads(int n);

}  // namespace qfcard::common

#endif  // QFCARD_COMMON_THREAD_POOL_H_
