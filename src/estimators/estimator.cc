#include "estimators/estimator.h"

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfcard::est {

common::StatusOr<EstimateResponse> CardinalityEstimator::Estimate(
    const EstimateRequest& request) const {
  obs::ScopedTimer timer;
  EstimateResponse response;
  QFCARD_ASSIGN_OR_RETURN(response.estimate, EstimateCard(request.query));
  response.latency_seconds = timer.Seconds();
  return response;
}

common::StatusOr<std::vector<EstimateResponse>>
CardinalityEstimator::EstimateRequests(
    const std::vector<EstimateRequest>& requests) const {
  obs::ScopedTimer timer;
  std::vector<query::Query> queries;
  queries.reserve(requests.size());
  for (const EstimateRequest& request : requests) {
    queries.push_back(request.query);
  }
  QFCARD_ASSIGN_OR_RETURN(const std::vector<double> estimates,
                          EstimateBatch(queries));
  const double elapsed = timer.Seconds();
  std::vector<EstimateResponse> responses(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    responses[i].estimate = estimates[i];
    responses[i].latency_seconds = elapsed;
  }
  return responses;
}

common::StatusOr<std::vector<double>> CardinalityEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) const {
  obs::TraceSpan span("estimate.batch");
  const std::string backend_label = "backend=" + name();
  obs::ScopedTimer timer("estimate.batch_seconds", backend_label);
  obs::IncrementCounter("estimate.queries", backend_label,
                        static_cast<uint64_t>(queries.size()));
  std::vector<double> out(queries.size(), 0.0);
  QFCARD_RETURN_IF_ERROR(common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(queries.size()), [&](int64_t i) -> common::Status {
        const size_t idx = static_cast<size_t>(i);
        QFCARD_ASSIGN_OR_RETURN(out[idx], EstimateCard(queries[idx]));
        return common::Status::Ok();
      }));
  return out;
}

common::Status CardinalityEstimator::Train(
    const std::vector<query::Query>& queries, const std::vector<double>& cards,
    double valid_fraction, uint64_t seed) {
  (void)queries;
  (void)cards;
  (void)valid_fraction;
  (void)seed;
  return common::Status::Ok();  // statistics-based estimators are train-free
}

}  // namespace qfcard::est
