#ifndef QFCARD_ESTIMATORS_ESTIMATOR_H_
#define QFCARD_ESTIMATORS_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "estimators/request.h"
#include "query/query.h"

namespace qfcard::est {

/// A cardinality estimator: maps a (possibly joined, possibly mixed) count
/// query to an estimated result size >= 1. Implementations cover the
/// paper's comparison set: the Postgres-style independence estimator,
/// Bernoulli sampling, QFT x ML model combinations, and the true-cardinality
/// oracle.
///
/// The API is batch-first (docs/batch_api.md): Estimate/EstimateRequests —
/// speaking est::EstimateRequest/EstimateResponse — are the public serving
/// entry points, and EstimateBatch parallelizes across queries via the
/// global thread pool sized by QFCARD_THREADS. EstimateCard remains for
/// single interactive queries. Implementations must keep EstimateCard
/// const-thread-safe so the default EstimateBatch can fan it out; estimators
/// with per-call random state (see SamplingEstimator) derive a deterministic
/// per-query stream so batch results are byte-identical to the serial loop
/// at any pool size — and therefore independent of how a batching layer
/// groups queries, which is what makes the estimation server's cross-request
/// micro-batching transparent (docs/serving.md).
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Estimated result cardinality of `q` (clamped to >= 1 by convention).
  virtual common::StatusOr<double> EstimateCard(const query::Query& q) const = 0;

  /// Serves one EstimateRequest. The default implementation answers from
  /// EstimateCard and reports route_id/model_version 0 (no routing, no
  /// versioning); serve::ServingEstimator fills in the active model version
  /// and serve::EstimationServer the feature-space route.
  virtual common::StatusOr<EstimateResponse> Estimate(
      const EstimateRequest& request) const;

  /// Serves a batch of requests, one response per request in input order —
  /// the batch face of the request API. The default forwards the extracted
  /// queries to EstimateBatch, so backends that override EstimateBatch
  /// (matrix featurization, batched predict) serve requests at full speed
  /// without also overriding this.
  virtual common::StatusOr<std::vector<EstimateResponse>> EstimateRequests(
      const std::vector<EstimateRequest>& requests) const;

  /// Estimates every query, returning one cardinality per query in input
  /// order. The default implementation runs EstimateCard per query on the
  /// global thread pool; on failure it returns the error of the smallest
  /// failing index (what a serial loop would hit first). MlEstimator and
  /// MscnEstimator override this to featurize the whole batch into one
  /// matrix and run the model's batched predict.
  virtual common::StatusOr<std::vector<double>> EstimateBatch(
      const std::vector<query::Query>& queries) const;

  /// Trains the estimator on labeled queries (`cards` are true cardinalities
  /// in natural space; a `valid_fraction` tail/holdout drives early stopping
  /// where the model supports it). Statistics-based estimators need no
  /// training: the default is a no-op returning OK, which lets registry
  /// consumers (est::MakeEstimator) treat every estimator uniformly.
  virtual common::Status Train(const std::vector<query::Query>& queries,
                               const std::vector<double>& cards,
                               double valid_fraction, uint64_t seed);

  /// Label used in reports.
  virtual std::string name() const = 0;

  /// Approximate memory footprint of the estimator's state (Section 5.7).
  virtual size_t SizeBytes() const { return 0; }
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_ESTIMATOR_H_
