#ifndef QFCARD_ESTIMATORS_ESTIMATOR_H_
#define QFCARD_ESTIMATORS_ESTIMATOR_H_

#include <string>

#include "common/status.h"
#include "query/query.h"

namespace qfcard::est {

/// A cardinality estimator: maps a (possibly joined, possibly mixed) count
/// query to an estimated result size >= 1. Implementations cover the
/// paper's comparison set: the Postgres-style independence estimator,
/// Bernoulli sampling, QFT x ML model combinations, and the true-cardinality
/// oracle.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Estimated result cardinality of `q` (clamped to >= 1 by convention).
  virtual common::StatusOr<double> EstimateCard(const query::Query& q) const = 0;

  /// Label used in reports.
  virtual std::string name() const = 0;

  /// Approximate memory footprint of the estimator's state (Section 5.7).
  virtual size_t SizeBytes() const { return 0; }
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_ESTIMATOR_H_
