#include "estimators/iep.h"

#include <algorithm>

#include "common/str_util.h"

namespace qfcard::est {

common::StatusOr<double> IepEstimator::EstimateCard(
    const query::Query& q) const {
  last_call_ = CallStats{};

  // Expand the conjunction of per-attribute disjunctions into DNF terms:
  // each term picks one clause per compound predicate.
  int64_t num_terms = 1;
  for (const query::CompoundPredicate& cp : q.predicates) {
    num_terms *= static_cast<int64_t>(cp.disjuncts.size());
    if (num_terms > max_terms_) {
      return common::Status::OutOfRange(common::StrFormat(
          "IEP expansion exceeds %d DNF terms (2^n subqueries)", max_terms_));
    }
  }
  last_call_.dnf_terms = static_cast<int>(num_terms);

  // Fast path: already conjunctive.
  if (num_terms == 1) {
    last_call_.subqueries = 1;
    return inner_->EstimateCard(q);
  }

  // Term k is described by the clause index chosen for each compound.
  std::vector<std::vector<int>> term_choices;
  term_choices.reserve(static_cast<size_t>(num_terms));
  std::vector<int> current(q.predicates.size(), 0);
  for (int64_t k = 0; k < num_terms; ++k) {
    term_choices.push_back(current);
    for (size_t a = 0; a < current.size(); ++a) {
      if (++current[a] <
          static_cast<int>(q.predicates[a].disjuncts.size())) {
        break;
      }
      current[a] = 0;
    }
  }

  // Inclusion-exclusion over all non-empty subsets of terms.
  double estimate = 0.0;
  const uint64_t full = (1ULL << num_terms) - 1;
  for (uint64_t mask = 1; mask <= full; ++mask) {
    // AND of the selected terms: per attribute, concatenate each selected
    // term's clause into one conjunctive clause.
    query::Query sub;
    sub.tables = q.tables;
    sub.joins = q.joins;
    sub.group_by = q.group_by;
    for (size_t a = 0; a < q.predicates.size(); ++a) {
      query::CompoundPredicate cp;
      cp.col = q.predicates[a].col;
      query::ConjunctiveClause merged;
      for (int64_t k = 0; k < num_terms; ++k) {
        if (!(mask & (1ULL << k))) continue;
        const query::ConjunctiveClause& clause =
            q.predicates[a]
                .disjuncts[static_cast<size_t>(
                    term_choices[static_cast<size_t>(k)][a])];
        merged.preds.insert(merged.preds.end(), clause.preds.begin(),
                            clause.preds.end());
      }
      cp.disjuncts.push_back(std::move(merged));
      sub.predicates.push_back(std::move(cp));
    }
    QFCARD_ASSIGN_OR_RETURN(const double card, inner_->EstimateCard(sub));
    ++last_call_.subqueries;
    const bool add = (__builtin_popcountll(mask) % 2) == 1;
    estimate += add ? card : -card;
  }
  return std::max(estimate, 1.0);
}

common::StatusOr<std::vector<double>> IepEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const query::Query& q : queries) {
    QFCARD_ASSIGN_OR_RETURN(const double card, EstimateCard(q));
    out.push_back(card);
  }
  return out;
}

}  // namespace qfcard::est
