#ifndef QFCARD_ESTIMATORS_IEP_H_
#define QFCARD_ESTIMATORS_IEP_H_

#include "estimators/estimator.h"

namespace qfcard::est {

/// Inclusion-Exclusion Principle adapter (Section 6): answers mixed queries
/// using an estimator that only supports conjunctions, by expanding the
/// query's per-attribute disjunctions into DNF terms T_1 ... T_n and
/// estimating |T_1 v ... v T_n| = sum over non-empty S of
/// (-1)^(|S|+1) |AND of S| — i.e. 2^n - 1 conjunctive sub-estimates.
///
/// The paper argues this is impractical: one disjunctive query becomes
/// exponentially many estimation problems, each contributing error, which is
/// exactly what the bench_section6_iep experiment shows against Limited
/// Disjunction Encoding. Negative partial sums are possible when the inner
/// estimates are inconsistent; the final result clamps to >= 1.
class IepEstimator : public CardinalityEstimator {
 public:
  /// Per-call bookkeeping (exposed for the Section 6 experiment).
  struct CallStats {
    int dnf_terms = 0;
    int64_t subqueries = 0;
  };

  /// `inner` must handle conjunctive queries over the same catalog; not
  /// owned. Queries expanding to more than `max_terms` DNF terms are
  /// rejected (2^n growth).
  IepEstimator(const CardinalityEstimator* inner, int max_terms = 16)
      : inner_(inner), max_terms_(max_terms) {}

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  /// Serial override: EstimateCard mutates the per-call stats below, so the
  /// parallel base-class fan-out would race. IEP is the paper's
  /// impracticality baseline; it stays single-threaded by design.
  common::StatusOr<std::vector<double>> EstimateBatch(
      const std::vector<query::Query>& queries) const override;
  std::string name() const override { return "IEP(" + inner_->name() + ")"; }
  size_t SizeBytes() const override { return inner_->SizeBytes(); }

  /// Statistics of the most recent EstimateCard call.
  const CallStats& last_call() const { return last_call_; }

 private:
  const CardinalityEstimator* inner_;
  int max_terms_;
  mutable CallStats last_call_;
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_IEP_H_
