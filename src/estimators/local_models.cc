#include "estimators/local_models.h"

#include <algorithm>

#include "common/str_util.h"
#include "optimizer/join_order.h"
#include "query/join_executor.h"

namespace qfcard::est {

common::StatusOr<const storage::Table*> LocalModelSet::GetOrMaterialize(
    const std::vector<std::string>& tables) {
  const std::string key = query::SubSchemaKey(tables);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    QFCARD_ASSIGN_OR_RETURN(
        storage::Table mat,
        query::JoinExecutor::Materialize(*catalog_, tables, *graph_));
    Entry entry;
    entry.materialized = std::make_unique<storage::Table>(std::move(mat));
    it = entries_.emplace(key, std::move(entry)).first;
  }
  return static_cast<const storage::Table*>(it->second.materialized.get());
}

common::Status LocalModelSet::TrainSubSchema(
    const std::vector<std::string>& tables,
    const std::vector<query::Query>& local_queries,
    const std::vector<double>& cards, double valid_fraction, uint64_t seed) {
  QFCARD_ASSIGN_OR_RETURN(const storage::Table* mat, GetOrMaterialize(tables));
  Entry& entry = entries_[query::SubSchemaKey(tables)];
  entry.estimator = std::make_unique<MlEstimator>(
      ffactory_(featurize::FeatureSchema::FromTable(*mat)), mfactory_());
  return entry.estimator->Train(local_queries, cards, valid_fraction, seed);
}

common::StatusOr<query::Query> LocalModelSet::RewriteToLocal(
    const query::Query& q) const {
  std::vector<std::string> tables;
  tables.reserve(q.tables.size());
  for (const query::TableRef& ref : q.tables) tables.push_back(ref.name);
  const std::string key = query::SubSchemaKey(tables);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return common::Status::NotFound(common::StrFormat(
        "no local model for sub-schema '%s'", key.c_str()));
  }
  const storage::Table& mat = *it->second.materialized;

  query::Query local;
  local.tables.push_back(query::TableRef{mat.name(), mat.name()});
  for (const query::CompoundPredicate& cp : q.predicates) {
    const std::string& tname =
        q.tables[static_cast<size_t>(cp.col.table)].name;
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* base,
                            catalog_->GetTable(tname));
    const std::string col_name =
        tname + "." + base->column(cp.col.column).name();
    QFCARD_ASSIGN_OR_RETURN(const int local_col, mat.ColumnIndex(col_name));
    query::CompoundPredicate rebased = cp;
    rebased.col = query::ColumnRef{0, local_col};
    for (query::ConjunctiveClause& clause : rebased.disjuncts) {
      for (query::SimplePredicate& p : clause.preds) p.col = rebased.col;
    }
    local.predicates.push_back(std::move(rebased));
  }
  return local;
}

common::StatusOr<double> LocalModelSet::EstimateCard(
    const query::Query& q) const {
  QFCARD_ASSIGN_OR_RETURN(const query::Query local, RewriteToLocal(q));
  std::vector<std::string> tables;
  for (const query::TableRef& ref : q.tables) tables.push_back(ref.name);
  const Entry& entry = entries_.at(query::SubSchemaKey(tables));
  if (entry.estimator == nullptr) {
    return common::Status::FailedPrecondition(
        "sub-schema materialized but model not trained");
  }
  return entry.estimator->EstimateCard(local);
}

std::string LocalModelSet::name() const {
  for (const auto& [key, entry] : entries_) {
    if (entry.estimator != nullptr) {
      return "local(" + entry.estimator->name() + ")";
    }
  }
  return "local(<untrained>)";
}

size_t LocalModelSet::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.estimator != nullptr) bytes += entry.estimator->SizeBytes();
  }
  return bytes;
}

bool LocalModelSet::HasModel(const std::vector<std::string>& tables) const {
  const auto it = entries_.find(query::SubSchemaKey(tables));
  return it != entries_.end() && it->second.estimator != nullptr;
}

common::StatusOr<double> HybridEstimator::EstimateCard(
    const query::Query& q) const {
  // 1. Exact sub-schema model.
  std::vector<std::string> tables;
  for (const query::TableRef& ref : q.tables) tables.push_back(ref.name);
  if (local_->HasModel(tables)) {
    return local_->EstimateCard(q);
  }

  // 2. Largest trained sub-schema of the query's tables (ties broken by
  // enumeration order). Masks index Query::tables slots.
  const size_t n = q.tables.size();
  uint32_t best_mask = 0;
  int best_size = 0;
  for (uint32_t mask = 1; n < 32 && mask < (1u << n); ++mask) {
    const int size = __builtin_popcount(mask);
    if (size <= best_size) continue;
    std::vector<std::string> subset;
    for (size_t t = 0; t < n; ++t) {
      if (mask & (1u << t)) subset.push_back(tables[t]);
    }
    if (local_->HasModel(subset)) {
      best_mask = mask;
      best_size = size;
    }
  }
  QFCARD_ASSIGN_OR_RETURN(const double pg_full, synopses_->EstimateCard(q));
  if (best_mask == 0) {
    // 3. No learned model covers any part of the query.
    return pg_full;
  }
  QFCARD_ASSIGN_OR_RETURN(const query::Query sub,
                          opt::InducedSubQuery(q, best_mask));
  QFCARD_ASSIGN_OR_RETURN(const double learned_sub,
                          local_->EstimateCard(sub));
  QFCARD_ASSIGN_OR_RETURN(const double pg_sub, synopses_->EstimateCard(sub));
  // Scale the learned core by the traditional estimate of the remainder.
  return std::max(learned_sub * pg_full / std::max(pg_sub, 1.0), 1.0);
}

}  // namespace qfcard::est
