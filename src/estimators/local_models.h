#ifndef QFCARD_ESTIMATORS_LOCAL_MODELS_H_
#define QFCARD_ESTIMATORS_LOCAL_MODELS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "estimators/ml_estimator.h"
#include "estimators/postgres.h"
#include "query/schema_graph.h"
#include "storage/catalog.h"

namespace qfcard::est {

/// Creates a featurizer for a sub-schema's FeatureSchema.
using FeaturizerFactory =
    std::function<std::unique_ptr<featurize::Featurizer>(
        featurize::FeatureSchema)>;
/// Creates a fresh untrained model.
using ModelFactory = std::function<std::unique_ptr<ml::Model>()>;

/// The local-model approach of Section 2.1.2 / 4.1: one QFT x model
/// estimator per sub-schema (base table or join result). Each registered
/// sub-schema's join is materialized once; training queries are
/// selection-only queries over the materialization, and catalog-level join
/// queries are answered by rewriting their predicates onto the
/// materialization's columns.
class LocalModelSet : public CardinalityEstimator {
 public:
  /// `catalog` and `graph` are not owned and must outlive this object.
  LocalModelSet(const storage::Catalog* catalog,
                const query::SchemaGraph* graph, FeaturizerFactory ffactory,
                ModelFactory mfactory)
      : catalog_(catalog),
        graph_(graph),
        ffactory_(std::move(ffactory)),
        mfactory_(std::move(mfactory)) {}

  /// Materializes (once) and returns the join of `tables`. The returned
  /// table's columns are named `<table>.<column>`.
  common::StatusOr<const storage::Table*> GetOrMaterialize(
      const std::vector<std::string>& tables);

  /// Trains the sub-schema's local model on `local_queries`, which are
  /// single-table queries over the materialized join (as returned by
  /// GetOrMaterialize) with true cardinalities `cards`.
  common::Status TrainSubSchema(const std::vector<std::string>& tables,
                                const std::vector<query::Query>& local_queries,
                                const std::vector<double>& cards,
                                double valid_fraction, uint64_t seed);

  /// Rewrites a catalog-level (join) query into a selection query over the
  /// sub-schema's materialized join.
  common::StatusOr<query::Query> RewriteToLocal(const query::Query& q) const;

  /// Routes `q` to the local model of its sub-schema.
  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  std::string name() const override;
  /// Total model footprint across sub-schemas (materializations excluded:
  /// they are training-time scaffolding, not estimator state).
  size_t SizeBytes() const override;

  int num_models() const { return static_cast<int>(entries_.size()); }

  /// True if a trained model exists for exactly this sub-schema.
  bool HasModel(const std::vector<std::string>& tables) const;

 private:
  struct Entry {
    std::unique_ptr<storage::Table> materialized;
    std::unique_ptr<MlEstimator> estimator;
  };

  const storage::Catalog* catalog_;
  const query::SchemaGraph* graph_;
  FeaturizerFactory ffactory_;
  ModelFactory mfactory_;
  std::map<std::string, Entry> entries_;  // keyed by SubSchemaKey
};

/// Best-of-both-worlds estimator (Section 2.1.2 / Woltmann et al. [31]):
/// local ML models are built only for the sub-schemata where the System R
/// uniformity/independence assumptions fail; everything else falls back to
/// traditional formulas. For a query q:
///   1. if its exact sub-schema has a trained local model, use it;
///   2. otherwise find the largest trained sub-schema S of q's tables and
///      return local(q|S) * synopses(q) / synopses(q|S), i.e. the learned
///      estimate extended by the Postgres-style estimate of the remaining
///      joins and predicates;
///   3. with no covering model at all, return the synopses estimate.
class HybridEstimator : public CardinalityEstimator {
 public:
  /// Neither argument is owned; both must outlive this object.
  HybridEstimator(const LocalModelSet* local,
                  const PostgresStyleEstimator* synopses)
      : local_(local), synopses_(synopses) {}

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  std::string name() const override { return "hybrid(" + local_->name() + ")"; }
  size_t SizeBytes() const override {
    return local_->SizeBytes() + synopses_->SizeBytes();
  }

 private:
  const LocalModelSet* local_;
  const PostgresStyleEstimator* synopses_;
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_LOCAL_MODELS_H_
