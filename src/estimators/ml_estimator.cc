#include "estimators/ml_estimator.h"

#include <algorithm>

#include "common/random.h"

namespace qfcard::est {

common::Status MlEstimator::Train(const std::vector<query::Query>& queries,
                                  const std::vector<double>& cards,
                                  double valid_fraction, uint64_t seed) {
  if (queries.size() != cards.size()) {
    return common::Status::InvalidArgument("queries/cards length mismatch");
  }
  std::vector<std::vector<float>> features;
  std::vector<float> labels;
  features.reserve(queries.size());
  labels.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QFCARD_ASSIGN_OR_RETURN(std::vector<float> vec,
                            featurizer_->Featurize(queries[i]));
    features.push_back(std::move(vec));
    labels.push_back(ml::CardToLabel(cards[i]));
  }
  QFCARD_ASSIGN_OR_RETURN(const ml::Dataset all,
                          ml::Dataset::FromVectors(features, labels));
  if (valid_fraction <= 0.0) {
    return model_->Fit(all, nullptr);
  }
  common::Rng rng(seed);
  const ml::TrainTestSplit split =
      ml::SplitTrainTest(all, 1.0 - valid_fraction, rng);
  return model_->Fit(split.train, &split.test);
}

common::StatusOr<double> MlEstimator::EstimateCard(
    const query::Query& q) const {
  QFCARD_ASSIGN_OR_RETURN(const std::vector<float> vec,
                          featurizer_->Featurize(q));
  return ml::LabelToCard(model_->Predict(vec.data()));
}

common::Status MscnEstimator::Train(const std::vector<query::Query>& queries,
                                    const std::vector<double>& cards,
                                    double valid_fraction) {
  if (queries.size() != cards.size()) {
    return common::Status::InvalidArgument("queries/cards length mismatch");
  }
  std::vector<featurize::MscnSample> samples;
  std::vector<float> labels;
  samples.reserve(queries.size());
  labels.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QFCARD_ASSIGN_OR_RETURN(featurize::MscnSample s,
                            featurizer_.Featurize(queries[i]));
    samples.push_back(std::move(s));
    labels.push_back(ml::CardToLabel(cards[i]));
  }
  const size_t n_valid = valid_fraction > 0.0
                             ? static_cast<size_t>(valid_fraction *
                                                   static_cast<double>(samples.size()))
                             : 0;
  if (n_valid == 0) {
    return model_.Fit(samples, labels, nullptr, nullptr);
  }
  const std::vector<featurize::MscnSample> train_samples(
      samples.begin(), samples.end() - static_cast<long>(n_valid));
  const std::vector<float> train_labels(labels.begin(),
                                        labels.end() - static_cast<long>(n_valid));
  const std::vector<featurize::MscnSample> valid_samples(
      samples.end() - static_cast<long>(n_valid), samples.end());
  const std::vector<float> valid_labels(labels.end() - static_cast<long>(n_valid),
                                        labels.end());
  return model_.Fit(train_samples, train_labels, &valid_samples, &valid_labels);
}

common::StatusOr<double> MscnEstimator::EstimateCard(
    const query::Query& q) const {
  QFCARD_ASSIGN_OR_RETURN(const featurize::MscnSample sample,
                          featurizer_.Featurize(q));
  return ml::LabelToCard(model_.Predict(sample));
}

}  // namespace qfcard::est
