#include "estimators/ml_estimator.h"

#include <algorithm>

#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfcard::est {

common::Status MlEstimator::Train(const std::vector<query::Query>& queries,
                                  const std::vector<double>& cards,
                                  double valid_fraction, uint64_t seed) {
  if (queries.size() != cards.size()) {
    return common::Status::InvalidArgument("queries/cards length mismatch");
  }
  // One batched featurization pass straight into the training matrix.
  ml::Dataset all;
  all.x = ml::Matrix(static_cast<int>(queries.size()), featurizer_->dim());
  QFCARD_RETURN_IF_ERROR(featurizer_->FeaturizeBatch(
      {queries.data(), queries.size()}, all.x.data().data()));
  all.y.reserve(cards.size());
  for (const double card : cards) all.y.push_back(ml::CardToLabel(card));
  if (valid_fraction <= 0.0) {
    return model_->Fit(all, nullptr);
  }
  common::Rng rng(seed);
  const ml::TrainTestSplit split =
      ml::SplitTrainTest(all, 1.0 - valid_fraction, rng);
  return model_->Fit(split.train, &split.test);
}

common::StatusOr<double> MlEstimator::EstimateCard(
    const query::Query& q) const {
  QFCARD_ASSIGN_OR_RETURN(const std::vector<float> vec,
                          featurizer_->Featurize(q));
  return ml::LabelToCard(model_->Predict(vec.data()));
}

common::StatusOr<std::vector<double>> MlEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) const {
  obs::TraceSpan span("estimate.batch");
  const std::string backend_label = "backend=" + name();
  obs::ScopedTimer timer("estimate.batch_seconds", backend_label);
  obs::IncrementCounter("estimate.queries", backend_label,
                        static_cast<uint64_t>(queries.size()));
  ml::Matrix x(static_cast<int>(queries.size()), featurizer_->dim());
  {
    // Sub-stage: featurize (FeaturizeBatch opens its own featurize.batch
    // span, nested under estimate.featurize here).
    obs::TraceSpan featurize_span("estimate.featurize");
    obs::ScopedTimer featurize_timer("estimate.featurize_seconds",
                                     backend_label);
    QFCARD_RETURN_IF_ERROR(featurizer_->FeaturizeBatch(
        {queries.data(), queries.size()}, x.data().data()));
    obs::StageCapture::Report(obs::Stage::kFeaturize,
                              featurize_timer.Seconds());
  }
  obs::TraceSpan predict_span("estimate.predict");
  obs::ScopedTimer predict_timer("estimate.predict_seconds", backend_label);
  const std::vector<float> preds = model_->PredictBatch(x);
  std::vector<double> out(queries.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = ml::LabelToCard(preds[i]);
  obs::StageCapture::Report(obs::Stage::kPredict, predict_timer.Seconds());
  return out;
}

namespace {

// Set-featurizes `queries` in parallel (order-preserving).
common::Status FeaturizeMscnBatch(const featurize::MscnFeaturizer& featurizer,
                                  const std::vector<query::Query>& queries,
                                  std::vector<featurize::MscnSample>* out) {
  out->assign(queries.size(), featurize::MscnSample{});
  return common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(queries.size()), [&](int64_t i) -> common::Status {
        const size_t idx = static_cast<size_t>(i);
        QFCARD_ASSIGN_OR_RETURN((*out)[idx], featurizer.Featurize(queries[idx]));
        return common::Status::Ok();
      });
}

}  // namespace

common::Status MscnEstimator::Train(const std::vector<query::Query>& queries,
                                    const std::vector<double>& cards,
                                    double valid_fraction, uint64_t seed) {
  (void)seed;  // MSCN seeds via MscnParams
  if (queries.size() != cards.size()) {
    return common::Status::InvalidArgument("queries/cards length mismatch");
  }
  std::vector<featurize::MscnSample> samples;
  QFCARD_RETURN_IF_ERROR(FeaturizeMscnBatch(featurizer_, queries, &samples));
  std::vector<float> labels;
  labels.reserve(cards.size());
  for (const double card : cards) labels.push_back(ml::CardToLabel(card));
  const size_t n_valid = valid_fraction > 0.0
                             ? static_cast<size_t>(valid_fraction *
                                                   static_cast<double>(samples.size()))
                             : 0;
  if (n_valid == 0) {
    return model_.Fit(samples, labels, nullptr, nullptr);
  }
  const std::vector<featurize::MscnSample> train_samples(
      samples.begin(), samples.end() - static_cast<long>(n_valid));
  const std::vector<float> train_labels(labels.begin(),
                                        labels.end() - static_cast<long>(n_valid));
  const std::vector<featurize::MscnSample> valid_samples(
      samples.end() - static_cast<long>(n_valid), samples.end());
  const std::vector<float> valid_labels(labels.end() - static_cast<long>(n_valid),
                                        labels.end());
  return model_.Fit(train_samples, train_labels, &valid_samples, &valid_labels);
}

common::StatusOr<double> MscnEstimator::EstimateCard(
    const query::Query& q) const {
  QFCARD_ASSIGN_OR_RETURN(const featurize::MscnSample sample,
                          featurizer_.Featurize(q));
  return ml::LabelToCard(model_.Predict(sample));
}

common::StatusOr<std::vector<double>> MscnEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) const {
  obs::TraceSpan span("estimate.batch");
  const std::string backend_label = "backend=" + name();
  obs::ScopedTimer timer("estimate.batch_seconds", backend_label);
  obs::IncrementCounter("estimate.queries", backend_label,
                        static_cast<uint64_t>(queries.size()));
  std::vector<featurize::MscnSample> samples;
  {
    obs::TraceSpan featurize_span("estimate.featurize");
    obs::ScopedTimer featurize_timer("estimate.featurize_seconds",
                                     backend_label);
    QFCARD_RETURN_IF_ERROR(FeaturizeMscnBatch(featurizer_, queries, &samples));
    obs::StageCapture::Report(obs::Stage::kFeaturize,
                              featurize_timer.Seconds());
  }
  obs::TraceSpan predict_span("estimate.predict");
  obs::ScopedTimer predict_timer("estimate.predict_seconds", backend_label);
  std::vector<double> out(queries.size());
  common::GlobalPool().ParallelFor(
      static_cast<int64_t>(queries.size()), [&](int64_t i) {
        const size_t idx = static_cast<size_t>(i);
        out[idx] = ml::LabelToCard(model_.Predict(samples[idx]));
      });
  obs::StageCapture::Report(obs::Stage::kPredict, predict_timer.Seconds());
  return out;
}

}  // namespace qfcard::est
