#ifndef QFCARD_ESTIMATORS_ML_ESTIMATOR_H_
#define QFCARD_ESTIMATORS_ML_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "estimators/estimator.h"
#include "featurize/featurizer.h"
#include "featurize/mscn_featurizer.h"
#include "ml/dataset.h"
#include "ml/mscn.h"

namespace qfcard::est {

/// A QFT x ML-model cardinality estimator for one table (or one
/// materialized sub-schema join): featurize the query, run the model, map
/// the log2 prediction back to a cardinality >= 1. This is the paper's
/// two-step mapping "query -> vector -> cardinality" (Equation 2).
class MlEstimator : public CardinalityEstimator {
 public:
  MlEstimator(std::unique_ptr<featurize::Featurizer> featurizer,
              std::unique_ptr<ml::Model> model)
      : featurizer_(std::move(featurizer)), model_(std::move(model)) {}

  /// Trains the model on labeled queries. `cards` are true cardinalities
  /// (natural space); a `valid_fraction` tail split drives early stopping.
  common::Status Train(const std::vector<query::Query>& queries,
                       const std::vector<double>& cards,
                       double valid_fraction, uint64_t seed) override;

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  /// Batched estimate: featurizes the whole batch into one row-major matrix
  /// (Featurizer::FeaturizeBatch) and runs the model's batched predict —
  /// one featurization pass and one model pass instead of per-query calls.
  common::StatusOr<std::vector<double>> EstimateBatch(
      const std::vector<query::Query>& queries) const override;
  std::string name() const override {
    return model_->name() + "+" + featurizer_->name();
  }
  size_t SizeBytes() const override { return model_->SizeBytes(); }

  const featurize::Featurizer& featurizer() const { return *featurizer_; }
  const ml::Model& model() const { return *model_; }

  /// Serializes the trained model parameters (the featurizer is persisted
  /// separately by serve::EncodeBundle).
  common::Status SerializeModel(std::vector<uint8_t>* out) const {
    return model_->Serialize(out);
  }
  /// Restores model parameters serialized by SerializeModel.
  common::Status DeserializeModel(const std::vector<uint8_t>& data) {
    return model_->Deserialize(data);
  }

 private:
  std::unique_ptr<featurize::Featurizer> featurizer_;
  std::unique_ptr<ml::Model> model_;
};

/// Global-model estimator: the MSCN set featurization plus the Mscn network
/// (Sections 2.1.2 / 4.2). Handles queries over arbitrary sub-schemas of the
/// catalog with a single model.
class MscnEstimator : public CardinalityEstimator {
 public:
  MscnEstimator(featurize::MscnFeaturizer featurizer, ml::MscnParams params)
      : featurizer_(std::move(featurizer)),
        model_(featurizer_.table_dim(), featurizer_.join_dim(),
               featurizer_.pred_dim(), params) {}

  /// `seed` is unused: MSCN's initialization seed lives in MscnParams.
  common::Status Train(const std::vector<query::Query>& queries,
                       const std::vector<double>& cards,
                       double valid_fraction, uint64_t seed = 0) override;

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  /// Batched estimate: set-featurizes and predicts all queries in parallel.
  common::StatusOr<std::vector<double>> EstimateBatch(
      const std::vector<query::Query>& queries) const override;
  std::string name() const override {
    return featurizer_.mode() ==
                   featurize::MscnFeaturizer::PredMode::kPerPredicate
               ? "MSCN"
               : "MSCN+conj";
  }
  size_t SizeBytes() const override { return model_.SizeBytes(); }

  const featurize::MscnFeaturizer& featurizer() const { return featurizer_; }
  const ml::Mscn& model() const { return model_; }

  /// Serializes the trained network (the featurizer is persisted separately
  /// by serve::EncodeBundle).
  common::Status SerializeModel(std::vector<uint8_t>* out) const {
    return model_.Serialize(out);
  }
  /// Restores a network serialized by SerializeModel; its set dimensions
  /// must match this estimator's featurizer.
  common::Status DeserializeModel(const std::vector<uint8_t>& data) {
    return model_.Deserialize(data);
  }

 private:
  featurize::MscnFeaturizer featurizer_;
  ml::Mscn model_;
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_ML_ESTIMATOR_H_
