#include "estimators/postgres.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace qfcard::est {

namespace {

ColumnSynopsis BuildSynopsis(const storage::Column& col,
                             const PostgresOptions& options) {
  ColumnSynopsis s;
  s.rows = col.size();
  s.integral = col.integral();
  const storage::ColumnStats& stats = col.GetStats();
  s.min = stats.min;
  s.max = stats.max;
  s.distinct = std::max<int64_t>(stats.distinct, 1);
  if (col.size() == 0) return s;

  // Most common values.
  std::map<double, int64_t> freq;
  for (const double v : col.data()) ++freq[v];
  std::vector<std::pair<int64_t, double>> by_count;
  by_count.reserve(freq.size());
  for (const auto& [v, c] : freq) by_count.push_back({c, v});
  std::sort(by_count.begin(), by_count.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const int n_mcv =
      std::min<int>(options.mcv_entries, static_cast<int>(by_count.size()));
  for (int i = 0; i < n_mcv; ++i) {
    const double f =
        static_cast<double>(by_count[static_cast<size_t>(i)].first) /
        static_cast<double>(col.size());
    s.mcv.push_back({by_count[static_cast<size_t>(i)].second, f});
    s.mcv_total_freq += f;
  }
  std::sort(s.mcv.begin(), s.mcv.end());

  // Equi-depth histogram over all values (Postgres builds it over non-MCV
  // values; including them only flattens the estimate slightly).
  std::vector<double> sorted = col.data();
  std::sort(sorted.begin(), sorted.end());
  const int buckets = std::max(1, options.histogram_buckets);
  s.hist_bounds.push_back(sorted.front());
  for (int b = 1; b <= buckets; ++b) {
    const size_t pos = static_cast<size_t>(
        static_cast<double>(b) / buckets * static_cast<double>(sorted.size() - 1));
    s.hist_bounds.push_back(sorted[pos]);
  }
  return s;
}

}  // namespace

double ColumnSynopsis::FractionLe(double v) const {
  if (hist_bounds.size() < 2) return v >= max ? 1.0 : 0.0;
  if (v < hist_bounds.front()) return 0.0;
  if (v >= hist_bounds.back()) return 1.0;
  // Locate bucket: bounds b_0 <= b_1 <= ... <= b_n; bucket i spans
  // [b_i, b_{i+1}] and holds 1/n of the rows. Linear interpolation inside.
  const size_t n = hist_bounds.size() - 1;
  const auto it = std::upper_bound(hist_bounds.begin(), hist_bounds.end(), v);
  size_t idx = static_cast<size_t>(it - hist_bounds.begin());
  if (idx == 0) return 0.0;
  idx -= 1;  // bucket index
  const double lo = hist_bounds[idx];
  const double hi = hist_bounds[idx + 1];
  const double within = hi > lo ? (v - lo) / (hi - lo) : 1.0;
  return (static_cast<double>(idx) + std::clamp(within, 0.0, 1.0)) /
         static_cast<double>(n);
}

double ColumnSynopsis::FractionEq(double v) const {
  const auto it = std::lower_bound(
      mcv.begin(), mcv.end(), std::make_pair(v, -1.0),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it != mcv.end() && it->first == v) return it->second;
  if (v < min || v > max) return 0.0;
  const int64_t non_mcv_distinct =
      std::max<int64_t>(distinct - static_cast<int64_t>(mcv.size()), 1);
  return std::max(0.0, 1.0 - mcv_total_freq) /
         static_cast<double>(non_mcv_distinct);
}

common::StatusOr<PostgresStyleEstimator> PostgresStyleEstimator::Build(
    const storage::Catalog* catalog, const PostgresOptions& options) {
  PostgresStyleEstimator est;
  est.catalog_ = catalog;
  est.synopses_.resize(static_cast<size_t>(catalog->num_tables()));
  for (int t = 0; t < catalog->num_tables(); ++t) {
    const storage::Table& table = catalog->table(t);
    for (int c = 0; c < table.num_columns(); ++c) {
      est.synopses_[static_cast<size_t>(t)].push_back(
          BuildSynopsis(table.column(c), options));
    }
  }
  return est;
}

double PostgresStyleEstimator::ClauseSelectivity(
    const ColumnSynopsis& s, const query::ConjunctiveClause& clause) const {
  // Accumulate the tightest range, equality value, and exclusions, mirroring
  // how Postgres' clauselist_selectivity pairs up range bounds.
  double lo = s.min;
  double hi = s.max;
  bool has_eq = false;
  double eq_value = 0.0;
  std::vector<double> nots;
  const double step = s.integral ? 1.0 : 0.0;
  for (const query::SimplePredicate& p : clause.preds) {
    switch (p.op) {
      case query::CmpOp::kEq:
        has_eq = true;
        eq_value = p.value;
        break;
      case query::CmpOp::kGe:
        lo = std::max(lo, p.value);
        break;
      case query::CmpOp::kGt:
        lo = std::max(lo, p.value + step);
        break;
      case query::CmpOp::kLe:
        hi = std::min(hi, p.value);
        break;
      case query::CmpOp::kLt:
        hi = std::min(hi, p.value - step);
        break;
      case query::CmpOp::kNe:
        nots.push_back(p.value);
        break;
    }
  }
  double sel;
  if (has_eq) {
    sel = (eq_value >= lo && eq_value <= hi) ? s.FractionEq(eq_value) : 0.0;
  } else if (lo > hi) {
    sel = 0.0;
  } else {
    // F(hi) - F(lo - step): inclusive bounds on an equi-depth CDF (for
    // continuous attributes the point mass at lo is negligible).
    const double f_hi = s.FractionLe(hi);
    const double f_lo = s.FractionLe(s.integral ? lo - 1.0 : lo);
    sel = std::max(0.0, f_hi - f_lo);
    for (const double v : nots) {
      if (v >= lo && v <= hi) sel = std::max(0.0, sel - s.FractionEq(v));
    }
  }
  return std::clamp(sel, 0.0, 1.0);
}

double PostgresStyleEstimator::CompoundSelectivity(
    const ColumnSynopsis& synopsis, const query::CompoundPredicate& cp) const {
  // Disjunction: s = s1 + s2 - s1*s2, folded left to right (Postgres'
  // clauselist OR treatment).
  double sel = 0.0;
  for (const query::ConjunctiveClause& clause : cp.disjuncts) {
    const double s = ClauseSelectivity(synopsis, clause);
    sel = sel + s - sel * s;
  }
  return std::clamp(sel, 0.0, 1.0);
}

common::StatusOr<double> PostgresStyleEstimator::EstimateCard(
    const query::Query& q) const {
  QFCARD_RETURN_IF_ERROR(query::ValidateQuery(q, *catalog_));
  // Per-table selected fractions under the independence assumption.
  std::vector<int> catalog_idx(q.tables.size());
  double card = 1.0;
  for (size_t t = 0; t < q.tables.size(); ++t) {
    QFCARD_ASSIGN_OR_RETURN(catalog_idx[t],
                            catalog_->TableIndex(q.tables[t].name));
    card *= static_cast<double>(
        catalog_->table(catalog_idx[t]).num_rows());
  }
  for (const query::CompoundPredicate& cp : q.predicates) {
    const ColumnSynopsis& s =
        synopses_[static_cast<size_t>(
            catalog_idx[static_cast<size_t>(cp.col.table)])]
                 [static_cast<size_t>(cp.col.column)];
    card *= CompoundSelectivity(s, cp);
  }
  // System R equi-join selectivity: 1 / max(ndv(a), ndv(b)).
  for (const query::JoinPredicate& j : q.joins) {
    const ColumnSynopsis& left =
        synopses_[static_cast<size_t>(
            catalog_idx[static_cast<size_t>(j.left.table)])]
                 [static_cast<size_t>(j.left.column)];
    const ColumnSynopsis& right =
        synopses_[static_cast<size_t>(
            catalog_idx[static_cast<size_t>(j.right.table)])]
                 [static_cast<size_t>(j.right.column)];
    card /= static_cast<double>(std::max(left.distinct, right.distinct));
  }
  if (!q.group_by.empty()) {
    // Result size of a grouped count: bounded by the product of grouping
    // NDVs and by the number of qualifying rows.
    double groups = 1.0;
    for (const query::ColumnRef& g : q.group_by) {
      const ColumnSynopsis& s =
          synopses_[static_cast<size_t>(
              catalog_idx[static_cast<size_t>(g.table)])]
                   [static_cast<size_t>(g.column)];
      groups *= static_cast<double>(s.distinct);
    }
    card = std::min(card, groups);
  }
  return std::max(card, 1.0);
}

size_t PostgresStyleEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& per_table : synopses_) {
    for (const ColumnSynopsis& s : per_table) {
      bytes += sizeof(ColumnSynopsis);
      bytes += s.hist_bounds.size() * sizeof(double);
      bytes += s.mcv.size() * sizeof(std::pair<double, double>);
    }
  }
  return bytes;
}

}  // namespace qfcard::est
