#ifndef QFCARD_ESTIMATORS_POSTGRES_H_
#define QFCARD_ESTIMATORS_POSTGRES_H_

#include <vector>

#include "estimators/estimator.h"
#include "storage/catalog.h"

namespace qfcard::est {

/// Per-column statistics in the style of PostgreSQL's pg_stats: an
/// equi-depth histogram over the value distribution, a most-common-values
/// list, and the distinct count.
struct ColumnSynopsis {
  std::vector<double> hist_bounds;  ///< ascending equi-depth bucket bounds
  std::vector<std::pair<double, double>> mcv;  ///< (value, frequency)
  double mcv_total_freq = 0.0;
  int64_t distinct = 1;
  int64_t rows = 0;
  double min = 0.0;
  double max = 0.0;
  bool integral = true;

  /// Estimated fraction of rows with value <= v.
  double FractionLe(double v) const;
  /// Estimated fraction of rows with value == v.
  double FractionEq(double v) const;
};

/// Options for PostgresStyleEstimator.
struct PostgresOptions {
  int histogram_buckets = 100;
  int mcv_entries = 20;
};

/// The Selinger/Postgres-style baseline (Section 7: "Postgres implements
/// this estimator"): per-predicate selectivities from 1-D synopses,
/// independence across attributes, s1 + s2 - s1*s2 for disjunctions, and
/// System R formulas (1 / max(ndv_left, ndv_right)) for equi-joins.
class PostgresStyleEstimator : public CardinalityEstimator {
 public:
  /// Builds synopses for every column of every table. `catalog` is not
  /// owned and must outlive this object.
  static common::StatusOr<PostgresStyleEstimator> Build(
      const storage::Catalog* catalog, const PostgresOptions& options = {});

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  std::string name() const override { return "postgres"; }
  size_t SizeBytes() const override;

  /// Estimated selectivity of one compound predicate against its column's
  /// synopsis (exposed for tests and the optimizer).
  double CompoundSelectivity(const ColumnSynopsis& synopsis,
                             const query::CompoundPredicate& cp) const;

  const ColumnSynopsis& synopsis(int table, int column) const {
    return synopses_[static_cast<size_t>(table)][static_cast<size_t>(column)];
  }

 private:
  PostgresStyleEstimator() = default;

  double ClauseSelectivity(const ColumnSynopsis& synopsis,
                           const query::ConjunctiveClause& clause) const;

  const storage::Catalog* catalog_ = nullptr;
  // synopses_[table][column]
  std::vector<std::vector<ColumnSynopsis>> synopses_;
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_POSTGRES_H_
