#include "estimators/registry.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/str_util.h"
#include "estimators/ml_estimator.h"
#include "estimators/sampling.h"
#include "estimators/true_card.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "featurize/mscn_featurizer.h"
#include "ml/dataset.h"
#include "ml/linear.h"
#include "obs/metrics.h"

namespace qfcard::est {

namespace {

std::string Lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// MSCN handles join queries; when the caller has no schema graph (the
// single-table forest catalogs) an empty shared graph keeps the featurizer
// pointer valid for the estimator's lifetime.
const query::SchemaGraph& EmptyGraph() {
  static const query::SchemaGraph* graph = new query::SchemaGraph();
  return *graph;
}

common::StatusOr<std::unique_ptr<CardinalityEstimator>> MakeMscn(
    const storage::Catalog& catalog, const EstimatorOptions& opts,
    featurize::MscnFeaturizer::PredMode mode) {
  const query::SchemaGraph* graph =
      opts.schema_graph != nullptr ? opts.schema_graph : &EmptyGraph();
  featurize::MscnFeaturizer featurizer(&catalog, graph, mode, opts.conj);
  return std::unique_ptr<CardinalityEstimator>(
      std::make_unique<MscnEstimator>(std::move(featurizer), opts.mscn));
}

// "; did you mean \"gb+conjunctive\"?" when a registered name is within a
// few edits of the typo, "" otherwise — appended to unknown-name errors so
// a fat-fingered --model flag points at the fix instead of a 15-name list.
std::string DidYouMean(const std::string& name) {
  const std::string suggestion =
      common::ClosestMatch(name, RegisteredEstimators());
  if (suggestion.empty()) return "";
  return "; did you mean \"" + suggestion + "\"?";
}

common::StatusOr<const storage::Table*> ResolveTable(
    const storage::Catalog& catalog, const EstimatorOptions& opts) {
  if (!opts.table.empty()) return catalog.GetTable(opts.table);
  if (catalog.num_tables() == 0) {
    obs::IncrementCounter("registry.errors", "kind=bad-catalog");
    return common::Status::InvalidArgument(
        "registry: catalog has no tables to featurize");
  }
  return &catalog.table(0);
}

}  // namespace

common::StatusOr<std::unique_ptr<CardinalityEstimator>> MakeEstimator(
    const std::string& name, const storage::Catalog& catalog,
    const EstimatorOptions& opts) {
  const std::string key = Lowered(name);

  if (key == "postgres") {
    QFCARD_ASSIGN_OR_RETURN(PostgresStyleEstimator built,
                            PostgresStyleEstimator::Build(&catalog,
                                                          opts.postgres));
    return std::unique_ptr<CardinalityEstimator>(
        std::make_unique<PostgresStyleEstimator>(std::move(built)));
  }
  if (key == "sampling") {
    return std::unique_ptr<CardinalityEstimator>(
        std::make_unique<SamplingEstimator>(&catalog, opts.sampling_fraction,
                                            opts.sampling_seed));
  }
  if (key == "true") {
    return std::unique_ptr<CardinalityEstimator>(
        std::make_unique<TrueCardEstimator>(&catalog));
  }
  if (key == "mscn") {
    return MakeMscn(catalog, opts,
                    featurize::MscnFeaturizer::PredMode::kPerPredicate);
  }
  if (key == "mscn+range") {
    return MakeMscn(catalog, opts,
                    featurize::MscnFeaturizer::PredMode::kPerAttributeRange);
  }
  if (key == "mscn+conj") {
    return MakeMscn(catalog, opts,
                    featurize::MscnFeaturizer::PredMode::kPerAttributeQft);
  }

  // Everything else is "<model>+<qft>".
  const size_t plus = key.find('+');
  if (plus == std::string::npos || plus == 0 || plus + 1 >= key.size()) {
    obs::IncrementCounter("registry.errors", "kind=unknown-estimator");
    return common::Status::InvalidArgument(
        "registry: unknown estimator \"" + name + "\"" + DidYouMean(name) +
        "; registered names: " + common::Join(RegisteredEstimators(), ", "));
  }
  const std::string model_key = key.substr(0, plus);
  const std::string qft_key = key.substr(plus + 1);

  featurize::QftKind kind;
  if (qft_key == "simple") {
    kind = featurize::QftKind::kSimple;
  } else if (qft_key == "range") {
    kind = featurize::QftKind::kRange;
  } else if (qft_key == "conj" || qft_key == "conjunctive") {
    kind = featurize::QftKind::kConjunctive;
  } else if (qft_key == "complex" || qft_key == "comp") {
    kind = featurize::QftKind::kComplex;
  } else {
    obs::IncrementCounter("registry.errors", "kind=unknown-qft");
    return common::Status::InvalidArgument(
        "registry: unknown QFT \"" + qft_key +
        "\" (expected simple/range/conj|conjunctive/complex|comp)" +
        DidYouMean(name));
  }

  std::unique_ptr<ml::Model> model;
  if (model_key == "gb") {
    model = std::make_unique<ml::GradientBoosting>(opts.gbm);
  } else if (model_key == "nn") {
    model = std::make_unique<ml::FeedForwardNet>(opts.nn);
  } else if (model_key == "linear") {
    model = std::make_unique<ml::LinearRegression>();
  } else {
    obs::IncrementCounter("registry.errors", "kind=unknown-model");
    return common::Status::InvalidArgument(
        "registry: unknown model \"" + model_key +
        "\" (expected gb/nn/linear)" + DidYouMean(name) +
        "; registered names: " + common::Join(RegisteredEstimators(), ", "));
  }

  QFCARD_ASSIGN_OR_RETURN(const storage::Table* table,
                          ResolveTable(catalog, opts));
  featurize::FeatureSchema schema = featurize::FeatureSchema::FromTable(*table);
  std::unique_ptr<featurize::Featurizer> featurizer =
      featurize::MakeFeaturizer(kind, std::move(schema), opts.conj);
  return std::unique_ptr<CardinalityEstimator>(std::make_unique<MlEstimator>(
      std::move(featurizer), std::move(model)));
}

std::vector<std::string> RegisteredEstimators() {
  std::vector<std::string> names = {"postgres", "sampling", "true",
                                    "mscn",     "mscn+range", "mscn+conj"};
  for (const char* model : {"gb", "nn", "linear"}) {
    for (const char* qft : {"simple", "range", "conjunctive", "complex"}) {
      names.push_back(std::string(model) + "+" + qft);
    }
  }
  return names;
}

const std::vector<EstimatorInfo>& RegisteredEstimatorInfos() {
  static const std::vector<EstimatorInfo>* const kInfos = [] {
    auto* infos = new std::vector<EstimatorInfo>;
    for (const std::string& name : RegisteredEstimators()) {
      EstimatorInfo info;
      info.name = name;
      if (name == "postgres") {
        // Synopses with join-selectivity and NDV-product GROUP BY handling.
        info.kind = "stats";
        info.supports_joins = true;
        info.supports_disjunctions = true;
        info.group_aware = true;
      } else if (name == "sampling") {
        // Per-query Bernoulli scan: single-table only, counts filtered rows.
        info.kind = "sampling";
        info.supports_disjunctions = true;
      } else if (name == "true") {
        info.kind = "oracle";
        info.supports_joins = true;
        info.supports_disjunctions = true;
        info.group_aware = true;
      } else if (name.rfind("mscn", 0) == 0) {
        // Joins enter through the schema-graph set encoding; only the
        // per-attribute QFT mode (mscn+conj) encodes disjunctions.
        info.kind = "mscn";
        info.needs_training = true;
        info.supports_joins = true;
        info.supports_disjunctions = (name == "mscn+conj");
      } else {
        // <model>+<qft>: single-table QFTs; GROUP BY only enters through
        // the GroupByAppendFeaturizer decorator, which the registry does
        // not apply. Only the complex QFT (Limited Disjunction Encoding)
        // featurizes mixed queries.
        info.kind = "ml";
        info.needs_training = true;
        info.supports_disjunctions =
            name.size() > 8 &&
            name.compare(name.size() - 8, 8, "+complex") == 0;
      }
      infos->push_back(std::move(info));
    }
    return infos;
  }();
  return *kInfos;
}

common::StatusOr<const EstimatorInfo*> EstimatorInfoFor(
    const std::string& name) {
  std::string key = Lowered(name);
  // Normalize the QFT aliases MakeEstimator accepts to the canonical names
  // RegisteredEstimators() lists.
  const size_t plus = key.find('+');
  if (plus != std::string::npos) {
    const std::string qft = key.substr(plus + 1);
    if (qft == "conj" && key.rfind("mscn", 0) != 0) {
      key = key.substr(0, plus + 1) + "conjunctive";
    } else if (qft == "comp") {
      key = key.substr(0, plus + 1) + "complex";
    }
  }
  for (const EstimatorInfo& info : RegisteredEstimatorInfos()) {
    if (info.name == key) return &info;
  }
  obs::IncrementCounter("registry.errors", "kind=unknown-estimator");
  return common::Status::NotFound(
      "registry: unknown estimator \"" + name + "\"" + DidYouMean(name) +
      "; registered names: " + common::Join(RegisteredEstimators(), ", "));
}

}  // namespace qfcard::est
