#ifndef QFCARD_ESTIMATORS_REGISTRY_H_
#define QFCARD_ESTIMATORS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "estimators/estimator.h"
#include "estimators/postgres.h"
#include "featurize/conjunction.h"
#include "ml/gbm.h"
#include "ml/mscn.h"
#include "ml/nn.h"
#include "query/schema_graph.h"
#include "storage/catalog.h"

namespace qfcard::est {

/// Construction-time knobs for MakeEstimator. Every field has the default
/// the benches and examples used before the registry existed, so most
/// callers only touch what they study.
struct EstimatorOptions {
  /// Table whose schema single-table QFTs featurize; "" means the
  /// catalog's first table.
  std::string table;
  /// Partitioning knobs for the conjunctive/complex QFTs (and the MSCN
  /// per-attribute predicate modes).
  featurize::ConjunctionOptions conj;
  ml::GbmParams gbm;
  ml::NnParams nn;
  ml::MscnParams mscn;
  PostgresOptions postgres;
  double sampling_fraction = 0.001;  ///< the paper's 0.1%
  uint64_t sampling_seed = 424242;
  /// Schema graph for MSCN's join encoding; nullptr means no join edges
  /// (single-table catalogs).
  const query::SchemaGraph* schema_graph = nullptr;
};

/// Builds a cardinality estimator from one string key — the single entry
/// point benches, examples, and the CLI use to construct the paper's
/// comparison set instead of hand-wiring QFT x model combinations.
///
/// Recognized names (case-insensitive):
///   "postgres"              Postgres-style synopses (built immediately)
///   "sampling"              per-query Bernoulli sampling
///   "true"                  true-cardinality oracle
///   "mscn"                  MSCN, original per-predicate featurization
///   "mscn+range"            MSCN, per-attribute range adaptation
///   "mscn+conj"             MSCN, per-attribute QFT mode (Section 4.2)
///   "<model>+<qft>"         MlEstimator; model in {gb, nn, linear}, qft in
///                           {simple, range, conj|conjunctive, complex|comp}
///
/// ML estimators come back untrained: call Train() (on the base interface)
/// with a labeled workload. `catalog` — and `opts.schema_graph` when set —
/// must outlive the returned estimator.
common::StatusOr<std::unique_ptr<CardinalityEstimator>> MakeEstimator(
    const std::string& name, const storage::Catalog& catalog,
    const EstimatorOptions& opts = {});

/// Names MakeEstimator recognizes, for help text and exhaustive sweeps.
std::vector<std::string> RegisteredEstimators();

/// Capability metadata for one registry entry, used by sweep drivers
/// (eval::MatrixRunner) to pair estimators with the workload families they
/// can actually serve instead of erroring mid-sweep.
struct EstimatorInfo {
  std::string name;  ///< canonical registry key ("gb+conjunctive")
  /// Coarse implementation class: "stats", "sampling", "oracle", "mscn",
  /// or "ml" (single-table QFT x model).
  std::string kind;
  bool needs_training = false;  ///< Train() required before estimating
  bool supports_joins = false;  ///< accepts multi-table join queries
  /// Accepts compound predicates with more than one disjunct (mixed
  /// queries, Definition 3.3). False for the simple/range/conjunctive QFTs
  /// and the original/range MSCN modes, which error on OR.
  bool supports_disjunctions = false;
  /// True when GROUP BY changes the estimate (the estimator predicts group
  /// counts); single-table QFTs and sampling ignore the clause and predict
  /// filtered row counts instead.
  bool group_aware = false;
  /// True when the estimator improves from execution feedback at serving
  /// time without an offline retrain (docs/adaptive.md). False for every
  /// registry entry here — the online-learning front
  /// (adapt::AdaptiveEstimator, see adapt::AdaptiveEstimatorInfo) is built
  /// above this layer and cannot be constructed by MakeEstimator.
  bool learns_online = false;
};

/// Metadata for every RegisteredEstimators() entry, in the same order.
const std::vector<EstimatorInfo>& RegisteredEstimatorInfos();

/// Looks up metadata by (case-insensitive) name, accepting the same QFT
/// aliases MakeEstimator does ("conj" = "conjunctive", "comp" = "complex").
/// Unknown names get the registry's did-you-mean error.
common::StatusOr<const EstimatorInfo*> EstimatorInfoFor(
    const std::string& name);

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_REGISTRY_H_
