#ifndef QFCARD_ESTIMATORS_REQUEST_H_
#define QFCARD_ESTIMATORS_REQUEST_H_

#include <cstdint>
#include <string>

#include "query/query.h"

namespace qfcard::est {

/// Which estimation tier produced a response (docs/adaptive.md). Plain
/// estimators leave kNone; the adaptive front (adapt::AdaptiveEstimator)
/// stamps the tier its arbiter selected, and the serving layers pass the
/// value through untouched so clients can see which path answered and why.
enum class ServedTier : uint8_t {
  kNone = 0,              ///< no tiering (direct estimator call)
  kHistogramResidual = 1, ///< cheap synopses + online residual correction
  kKnn = 2,               ///< per-feature-space online kNN over feedback
  kMl = 3,                ///< the full trained ML path
};

/// Stable short label for a tier, as spelled in metrics labels, logs, and
/// bench output ("none", "residual", "knn", "ml").
inline const char* ServedTierName(ServedTier tier) {
  switch (tier) {
    case ServedTier::kHistogramResidual: return "residual";
    case ServedTier::kKnn: return "knn";
    case ServedTier::kMl: return "ml";
    case ServedTier::kNone: break;
  }
  return "none";
}

/// Per-request knobs of the serving API (docs/serving.md). Kept separate
/// from the query so transports and batching layers can pass requests around
/// without re-deriving policy from context.
struct EstimateOptions {
  /// Under the router's intelligent policy a request whose feature space has
  /// never been seen creates a new route (model) as a side effect. Setting
  /// this to false opts this one request out: an unseen shape is rejected
  /// instead, as if the router ran in controlled mode. Ignored by estimators
  /// that do no routing.
  bool allow_route_creation = true;

  bool operator==(const EstimateOptions&) const = default;
};

/// One estimation request — the public entry point of the serving API
/// (docs/batch_api.md). Everything that used to be a bare query-vector
/// element now travels with its options and an optional routing hint.
struct EstimateRequest {
  query::Query query;
  EstimateOptions options;
  /// Feature-space hash to route to, skipping the hash computation. 0 (the
  /// default) means "compute serve::FeatureSpaceHash(query)". A nonzero hint
  /// is still subject to the router's admission policy.
  uint64_t route_hint = 0;
};

/// Where one request's latency went, in seconds (docs/serving.md). Filled
/// by the estimation server from its span tree and stage capture; all zero
/// for direct estimator calls (no queue, no batch). The split is also
/// exported as the serve.request.stage_seconds{stage=...} histograms.
struct StageBreakdown {
  /// Admission to micro-batch execution start (time spent queued).
  double queue_wait_seconds = 0.0;
  /// Wall time of the micro-batch execution that served this request
  /// (shared by every member of the batch).
  double batch_exec_seconds = 0.0;
  /// Featurization portion of the batch execution, when the serving
  /// backend reports stages (ML backends do; stats backends leave it 0).
  double featurize_seconds = 0.0;
  /// Model-inference portion of the batch execution, ditto.
  double predict_seconds = 0.0;
};

/// The answer to one EstimateRequest. Alongside the estimate it carries the
/// provenance a production client needs for debugging and SLO accounting:
/// which feature-space route served it, which model version was active, and
/// how long the request took.
struct EstimateResponse {
  /// Estimated cardinality (>= 1 by the repo-wide convention).
  double estimate = 1.0;
  /// Feature-space route that served the request; 0 when the estimator does
  /// no routing (direct estimator call, or a forced-mode default route).
  uint64_t route_id = 0;
  /// ServingEstimator version that produced the estimate; 0 for unversioned
  /// in-process models.
  uint64_t model_version = 0;
  /// Seconds from submission to completion on the serving side. For direct
  /// estimator calls this is the featurize+predict time; through the
  /// estimation server it additionally includes micro-batching queue wait.
  double latency_seconds = 0.0;
  /// Root span id of this request's trace when QFCARD_TRACE is on and the
  /// request went through the estimation server; 0 otherwise. Matches the
  /// "trace" field in trace dumps, so a slow response can be looked up in
  /// the tail-sampled span tree (docs/observability.md).
  uint64_t trace_id = 0;
  /// Per-stage latency attribution (server-filled; zeros elsewhere).
  StageBreakdown stages;
  /// Estimation tier that answered (docs/adaptive.md); kNone outside the
  /// adaptive front. Serving layers preserve whatever the inner estimator
  /// stamped here.
  ServedTier tier = ServedTier::kNone;
  /// Human-readable arbitration note for the tier choice ("hold: ml p95
  /// 2.1", "knn empty, fell back to ml", ...). Empty outside the adaptive
  /// front.
  std::string tier_reason;
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_REQUEST_H_
