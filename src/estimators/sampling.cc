#include "estimators/sampling.h"

#include <algorithm>
#include <cmath>

#include "query/query.h"

namespace qfcard::est {

common::StatusOr<double> SamplingEstimator::EstimateCard(
    const query::Query& q) const {
  if (q.tables.size() != 1 || !q.joins.empty()) {
    return common::Status::Unimplemented(
        "Bernoulli sampling estimator supports single-table queries only");
  }
  QFCARD_ASSIGN_OR_RETURN(const storage::Table* table,
                          catalog_->GetTable(q.tables[0].name));
  int64_t matches = 0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    if (!rng_.Bernoulli(p_)) continue;
    bool ok = true;
    for (const query::CompoundPredicate& cp : q.predicates) {
      if (!query::EvalCompoundOnRow(*table, r, cp)) {
        ok = false;
        break;
      }
    }
    if (ok) ++matches;
  }
  return std::max(static_cast<double>(matches) / p_, 1.0);
}

size_t SamplingEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (int t = 0; t < catalog_->num_tables(); ++t) {
    const storage::Table& table = catalog_->table(t);
    bytes += static_cast<size_t>(
        p_ * static_cast<double>(table.num_rows()) *
        static_cast<double>(table.num_columns()) * sizeof(double));
  }
  return bytes;
}

}  // namespace qfcard::est
