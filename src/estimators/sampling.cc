#include "estimators/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "query/query.h"

namespace qfcard::est {

common::StatusOr<double> SamplingEstimator::EstimateWithRng(
    const query::Query& q, common::Rng& rng) const {
  if (q.tables.size() != 1 || !q.joins.empty()) {
    return common::Status::Unimplemented(
        "Bernoulli sampling estimator supports single-table queries only");
  }
  QFCARD_ASSIGN_OR_RETURN(const storage::Table* table,
                          catalog_->GetTable(q.tables[0].name));
  int64_t matches = 0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    if (!rng.Bernoulli(p_)) continue;
    bool ok = true;
    for (const query::CompoundPredicate& cp : q.predicates) {
      if (!query::EvalCompoundOnRow(*table, r, cp)) {
        ok = false;
        break;
      }
    }
    if (ok) ++matches;
  }
  return std::max(static_cast<double>(matches) / p_, 1.0);
}

common::StatusOr<double> SamplingEstimator::EstimateCard(
    const query::Query& q) const {
  common::Rng rng(common::MixSeed(seed_, draws_.fetch_add(1)));
  return EstimateWithRng(q, rng);
}

common::StatusOr<std::vector<double>> SamplingEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) const {
  // Ticket i of this batch is exactly the ticket query i would have drawn
  // from a serial EstimateCard loop, so results match it bit for bit.
  const uint64_t base = draws_.fetch_add(queries.size());
  std::vector<double> out(queries.size(), 0.0);
  QFCARD_RETURN_IF_ERROR(common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(queries.size()), [&](int64_t i) -> common::Status {
        const size_t idx = static_cast<size_t>(i);
        common::Rng rng(
            common::MixSeed(seed_, base + static_cast<uint64_t>(i)));
        QFCARD_ASSIGN_OR_RETURN(out[idx],
                                EstimateWithRng(queries[idx], rng));
        return common::Status::Ok();
      }));
  return out;
}

size_t SamplingEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (int t = 0; t < catalog_->num_tables(); ++t) {
    const storage::Table& table = catalog_->table(t);
    bytes += static_cast<size_t>(
        p_ * static_cast<double>(table.num_rows()) *
        static_cast<double>(table.num_columns()) * sizeof(double));
  }
  return bytes;
}

}  // namespace qfcard::est
