#ifndef QFCARD_ESTIMATORS_SAMPLING_H_
#define QFCARD_ESTIMATORS_SAMPLING_H_

#include "common/random.h"
#include "estimators/estimator.h"
#include "storage/catalog.h"

namespace qfcard::est {

/// Bernoulli sampling estimator (Section 7): per query, draws a fresh p-%
/// sample R' of the table (each row independently with probability p) and
/// returns |R'(Q)| / p. The paper's configuration is p = 0.1% with the
/// sample drawn independently per query, which is what this implements —
/// including the characteristic heavy tail for selective predicates.
/// Join queries are not supported (the paper evaluates sampling on the
/// single-table forest workloads only).
class SamplingEstimator : public CardinalityEstimator {
 public:
  /// `catalog` is not owned and must outlive this object.
  SamplingEstimator(const storage::Catalog* catalog, double sample_fraction,
                    uint64_t seed)
      : catalog_(catalog), p_(sample_fraction), rng_(seed) {}

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  std::string name() const override { return "sampling"; }
  /// Expected resident size of one sample (Section 5.7 reports ~0.1% of the
  /// data size).
  size_t SizeBytes() const override;

 private:
  const storage::Catalog* catalog_;
  double p_;
  mutable common::Rng rng_;  // per-query sample draws
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_SAMPLING_H_
