#ifndef QFCARD_ESTIMATORS_SAMPLING_H_
#define QFCARD_ESTIMATORS_SAMPLING_H_

#include <atomic>

#include "common/random.h"
#include "estimators/estimator.h"
#include "storage/catalog.h"

namespace qfcard::est {

/// Bernoulli sampling estimator (Section 7): per query, draws a fresh p-%
/// sample R' of the table (each row independently with probability p) and
/// returns |R'(Q)| / p. The paper's configuration is p = 0.1% with the
/// sample drawn independently per query, which is what this implements —
/// including the characteristic heavy tail for selective predicates.
///
/// Each estimate draws from its own random stream, derived from the base
/// seed and a monotone draw ticket (common::MixSeed): draw k answers with
/// the same sample whether it was issued by EstimateCard or by any thread
/// of EstimateBatch, so batched results are byte-identical to the serial
/// per-query loop at every QFCARD_THREADS setting, while repeated estimates
/// of the same query still see fresh samples.
///
/// Join queries are not supported (the paper evaluates sampling on the
/// single-table forest workloads only).
class SamplingEstimator : public CardinalityEstimator {
 public:
  /// `catalog` is not owned and must outlive this object.
  SamplingEstimator(const storage::Catalog* catalog, double sample_fraction,
                    uint64_t seed)
      : catalog_(catalog), p_(sample_fraction), seed_(seed) {}

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  /// Parallel batch: reserves one draw ticket per query up front, then
  /// samples all queries concurrently with their per-ticket streams.
  common::StatusOr<std::vector<double>> EstimateBatch(
      const std::vector<query::Query>& queries) const override;
  std::string name() const override { return "sampling"; }
  /// Expected resident size of one sample (Section 5.7 reports ~0.1% of the
  /// data size).
  size_t SizeBytes() const override;

 private:
  common::StatusOr<double> EstimateWithRng(const query::Query& q,
                                           common::Rng& rng) const;

  const storage::Catalog* catalog_;
  double p_;
  uint64_t seed_;
  mutable std::atomic<uint64_t> draws_{0};  // next fresh-sample ticket
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_SAMPLING_H_
