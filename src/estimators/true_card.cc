#include "estimators/true_card.h"

#include <algorithm>

#include "query/executor.h"
#include "query/join_executor.h"

namespace qfcard::est {

common::StatusOr<double> TrueCardEstimator::EstimateCard(
    const query::Query& q) const {
  // Returns the raw count (possibly 0): q-error computation clamps to >= 1
  // itself, and exact counts must stay exact for consumers like the
  // IEP identity and the optimizer's cost model.
  if (q.tables.size() == 1 && q.joins.empty()) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* table,
                            catalog_->GetTable(q.tables[0].name));
    QFCARD_ASSIGN_OR_RETURN(const int64_t count,
                            query::Executor::Count(*table, q));
    return static_cast<double>(count);
  }
  QFCARD_ASSIGN_OR_RETURN(const int64_t count,
                          query::JoinExecutor::Count(*catalog_, q));
  return static_cast<double>(count);
}

}  // namespace qfcard::est
