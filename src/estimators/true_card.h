#ifndef QFCARD_ESTIMATORS_TRUE_CARD_H_
#define QFCARD_ESTIMATORS_TRUE_CARD_H_

#include "estimators/estimator.h"
#include "storage/catalog.h"

namespace qfcard::est {

/// Oracle estimator: executes the query and returns the exact cardinality.
/// Used as the "true cardinalities" arm of the end-to-end experiment
/// (Table 4) and as the labeling source for training workloads.
class TrueCardEstimator : public CardinalityEstimator {
 public:
  /// `catalog` is not owned and must outlive this object.
  explicit TrueCardEstimator(const storage::Catalog* catalog)
      : catalog_(catalog) {}

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;
  std::string name() const override { return "true"; }

 private:
  const storage::Catalog* catalog_;
};

}  // namespace qfcard::est

#endif  // QFCARD_ESTIMATORS_TRUE_CARD_H_
