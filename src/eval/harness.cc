#include "eval/harness.h"

#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/qerror_monitor.h"
#include "obs/trace.h"

namespace qfcard::eval {

namespace {

// Featurizes the workload straight into the dataset matrix, one query per
// row, in parallel (row i is written only by query i, so the matrix is
// identical at every QFCARD_THREADS setting).
common::StatusOr<ml::Dataset> FeaturizeSet(
    const featurize::Featurizer& featurizer,
    const std::vector<workload::LabeledQuery>& queries) {
  ml::Dataset out;
  out.x = ml::Matrix(static_cast<int>(queries.size()), featurizer.dim());
  out.y.resize(queries.size());
  QFCARD_RETURN_IF_ERROR(common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(queries.size()), [&](int64_t i) {
        const workload::LabeledQuery& lq = queries[static_cast<size_t>(i)];
        out.y[static_cast<size_t>(i)] = ml::CardToLabel(lq.card);
        return featurizer.FeaturizeInto(lq.query,
                                        out.x.Row(static_cast<int>(i)));
      }));
  return out;
}

}  // namespace

common::StatusOr<FeaturizedData> FeaturizeWorkload(
    const featurize::Featurizer& featurizer,
    const std::vector<workload::LabeledQuery>& train,
    const std::vector<workload::LabeledQuery>& test, double valid_fraction,
    uint64_t seed) {
  FeaturizedData out;
  QFCARD_ASSIGN_OR_RETURN(ml::Dataset train_all,
                          FeaturizeSet(featurizer, train));
  if (valid_fraction > 0.0 && train_all.num_rows() > 10) {
    common::Rng rng(seed);
    ml::TrainTestSplit split =
        ml::SplitTrainTest(train_all, 1.0 - valid_fraction, rng);
    out.train = std::move(split.train);
    out.valid = std::move(split.test);
  } else {
    out.train = std::move(train_all);
  }
  QFCARD_ASSIGN_OR_RETURN(out.test, FeaturizeSet(featurizer, test));
  out.test_cards.reserve(test.size());
  for (const workload::LabeledQuery& lq : test) out.test_cards.push_back(lq.card);
  return out;
}

common::StatusOr<RunResult> RunQftModel(
    const featurize::Featurizer& featurizer, ml::Model& model,
    const std::vector<workload::LabeledQuery>& train,
    const std::vector<workload::LabeledQuery>& test, double valid_fraction,
    uint64_t seed) {
  RunResult result;
  obs::TraceSpan run_span("harness.run");
  FeaturizedData data;
  {
    obs::TraceSpan span("harness.featurize");
    obs::ScopedTimer feat_timer("harness.featurize_seconds");
    QFCARD_ASSIGN_OR_RETURN(
        data, FeaturizeWorkload(featurizer, train, test, valid_fraction, seed));
    result.featurize_seconds = feat_timer.Stop();
  }

  {
    obs::TraceSpan span("harness.train");
    obs::ScopedTimer train_timer("harness.train_seconds");
    QFCARD_RETURN_IF_ERROR(model.Fit(
        data.train, data.valid.num_rows() > 0 ? &data.valid : nullptr));
    result.train_seconds = train_timer.Stop();
  }
  result.model_bytes = model.SizeBytes();

  obs::TraceSpan predict_span("harness.predict");
  const std::vector<float> preds = model.PredictBatch(data.test.x);
  result.estimates.reserve(preds.size());
  result.qerrors.reserve(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    const double est = ml::LabelToCard(preds[i]);
    result.estimates.push_back(est);
    result.qerrors.push_back(ml::QError(data.test_cards[i], est));
  }
  // The reported summary stays exact; the registry gets the same q-errors
  // bucketed per featurizer, and the drift monitor sees them as labeled
  // feedback (harness truths are known cardinalities).
  if (obs::MetricsEnabled()) {
    obs::Histogram* hist = obs::MetricsRegistry::Global().HistogramNamed(
        "qerror", obs::QErrorBounds(), "qft=" + featurizer.name());
    obs::QErrorDriftMonitor& drift = obs::QErrorDriftMonitor::Global();
    for (const double q : result.qerrors) {
      hist->Observe(q);
      drift.Observe(q);
    }
  }
  result.summary = ml::QErrorSummary::FromErrors(result.qerrors);
  return result;
}

std::vector<int> NumAttributesOf(
    const std::vector<workload::LabeledQuery>& queries) {
  std::vector<int> out;
  out.reserve(queries.size());
  for (const workload::LabeledQuery& lq : queries) {
    out.push_back(lq.query.NumAttributes());
  }
  return out;
}

std::vector<int> NumPredicatesOf(
    const std::vector<workload::LabeledQuery>& queries) {
  std::vector<int> out;
  out.reserve(queries.size());
  for (const workload::LabeledQuery& lq : queries) {
    out.push_back(lq.query.NumSimplePredicates());
  }
  return out;
}

}  // namespace qfcard::eval
