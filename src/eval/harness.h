#ifndef QFCARD_EVAL_HARNESS_H_
#define QFCARD_EVAL_HARNESS_H_

#include <vector>

#include "common/status.h"
#include "featurize/featurizer.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "workload/labeler.h"

namespace qfcard::eval {

// Wall-clock timing goes through obs::ScopedTimer (obs/metrics.h) — the
// old eval::Timer was removed so every stage and bench shares one clock
// path and can feed the telemetry registry.

/// A featurized train/valid/test bundle produced by one featurizer from a
/// labeled workload.
struct FeaturizedData {
  ml::Dataset train;
  ml::Dataset valid;
  ml::Dataset test;
  std::vector<double> test_cards;  ///< natural-space truths, test order
};

/// Featurizes the workloads with `featurizer`; a `valid_fraction` slice of
/// the (shuffled) training set is held out for early stopping.
/// Featurization fans out over the global thread pool (QFCARD_THREADS) and
/// produces bit-identical datasets at every thread count.
common::StatusOr<FeaturizedData> FeaturizeWorkload(
    const featurize::Featurizer& featurizer,
    const std::vector<workload::LabeledQuery>& train,
    const std::vector<workload::LabeledQuery>& test, double valid_fraction,
    uint64_t seed);

/// One end-to-end QFT x model evaluation.
struct RunResult {
  std::vector<double> estimates;  ///< per test query, natural space
  std::vector<double> qerrors;    ///< per test query
  ml::QErrorSummary summary;
  size_t model_bytes = 0;
  double featurize_seconds = 0.0;
  double train_seconds = 0.0;
};

/// Featurizes, trains `model`, and evaluates q-errors on the test set.
/// Featurization and test-set prediction are batched/parallel (see
/// FeaturizeWorkload and ml::Model::PredictBatch).
///
/// Telemetry: when QFCARD_METRICS is on, every test q-error lands in the
/// `qerror{qft=<featurizer name>}` histogram and feeds the global
/// obs::QErrorDriftMonitor; stage latencies land in harness.* histograms.
/// The returned summary stays exact (full sort) regardless.
common::StatusOr<RunResult> RunQftModel(
    const featurize::Featurizer& featurizer, ml::Model& model,
    const std::vector<workload::LabeledQuery>& train,
    const std::vector<workload::LabeledQuery>& test,
    double valid_fraction = 0.1, uint64_t seed = 99);

/// Per-query group keys of a labeled workload (for Figures 2/3/5).
std::vector<int> NumAttributesOf(const std::vector<workload::LabeledQuery>& queries);
std::vector<int> NumPredicatesOf(const std::vector<workload::LabeledQuery>& queries);

}  // namespace qfcard::eval

#endif  // QFCARD_EVAL_HARNESS_H_
