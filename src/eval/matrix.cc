#include "eval/matrix.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/env.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfcard::eval {

namespace {

// Fixed float formatting so identical cell values render byte-identically.
// Non-finite values (defensive; q-errors over labeled workloads are finite)
// render as 0 to keep the report valid JSON.
std::string JNum(double v) {
  if (!std::isfinite(v)) return "0";
  return common::StrFormat("%.6g", v);
}

std::string JEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JStrList(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JEscape(items[i]) + "\"";
  }
  return out + "]";
}

struct CellTotals {
  int64_t ok = 0;
  int64_t unsupported = 0;
  int64_t error = 0;
  int64_t test_queries = 0;
};

CellTotals Totalize(const std::vector<MatrixCell>& cells) {
  CellTotals t;
  for (const MatrixCell& c : cells) {
    switch (c.status) {
      case CellStatus::kOk:
        ++t.ok;
        t.test_queries += c.test_queries;
        break;
      case CellStatus::kUnsupported:
        ++t.unsupported;
        break;
      case CellStatus::kError:
        ++t.error;
        break;
    }
  }
  return t;
}

// Runs one estimator over one built family instance, filling `cell`.
void RunCell(const MatrixOptions& options, const est::EstimatorInfo& info,
             const workload::WorkloadFamily& family,
             const workload::FamilyInstance& inst, MatrixCell* cell) {
  const std::string labels =
      "estimator=" + info.name + ",family=" + family.name;
  obs::TraceSpan span("eval.matrix.cell");
  obs::ScopedTimer cell_timer("eval.matrix.cell_seconds", labels);

  est::EstimatorOptions eopts = options.estimator_options;
  eopts.table = inst.primary_table;
  if (family.joins) eopts.schema_graph = &inst.graph;
  auto est_or = est::MakeEstimator(info.name, inst.catalog, eopts);
  if (!est_or.ok()) {
    cell->status = CellStatus::kError;
    cell->message = est_or.status().message();
    return;
  }
  std::unique_ptr<est::CardinalityEstimator> estimator =
      std::move(est_or).value();

  std::vector<query::Query> train_queries;
  std::vector<double> train_cards;
  train_queries.reserve(inst.train.size());
  train_cards.reserve(inst.train.size());
  for (const workload::LabeledQuery& lq : inst.train) {
    train_queries.push_back(lq.query);
    train_cards.push_back(lq.card);
  }
  obs::ScopedTimer train_timer;
  const common::Status train_status = estimator->Train(
      train_queries, train_cards, options.valid_fraction, options.seed);
  const double train_seconds = train_timer.Seconds();
  if (!train_status.ok()) {
    cell->status = CellStatus::kError;
    cell->message = train_status.message();
    return;
  }

  std::vector<query::Query> test_queries;
  test_queries.reserve(inst.test.size());
  for (const workload::LabeledQuery& lq : inst.test) {
    test_queries.push_back(lq.query);
  }
  obs::ScopedTimer estimate_timer("eval.matrix.estimate_seconds", labels);
  auto estimates_or = estimator->EstimateBatch(test_queries);
  const double estimate_seconds = estimate_timer.Stop();
  if (!estimates_or.ok()) {
    cell->status = CellStatus::kError;
    cell->message = estimates_or.status().message();
    return;
  }
  const std::vector<double>& estimates = *estimates_or;

  // Per-cell aggregation through obs::Histogram, the same machinery the
  // registry exports — bucket-interpolated quantiles, exact mean/max.
  obs::Histogram qhist(obs::QErrorBounds());
  for (size_t i = 0; i < estimates.size(); ++i) {
    const double q = ml::QError(inst.test[i].card, estimates[i]);
    qhist.Observe(q);
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Global()
          .HistogramNamed("eval.matrix.qerror", obs::QErrorBounds(), labels)
          ->Observe(q);
    }
  }
  cell->status = CellStatus::kOk;
  cell->train_queries = static_cast<int64_t>(inst.train.size());
  cell->test_queries = static_cast<int64_t>(inst.test.size());
  cell->qerror_mean = qhist.Mean();
  cell->qerror_p50 = qhist.P50();
  cell->qerror_p90 = qhist.P90();
  cell->qerror_p95 = qhist.P95();
  cell->qerror_p99 = qhist.Quantile(0.99);
  cell->qerror_max = qhist.Max();
  cell->group_aware = !(family.group_by && !info.group_aware);
  cell->learns_online = info.learns_online;
  if (options.include_timings && !inst.test.empty()) {
    cell->train_seconds = train_seconds;
    cell->usec_per_query =
        estimate_seconds * 1e6 / static_cast<double>(inst.test.size());
  }
  obs::IncrementCounter("eval.matrix.queries", "",
                        static_cast<uint64_t>(inst.test.size()));
}

}  // namespace

const char* CellStatusToString(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kUnsupported:
      return "unsupported";
    case CellStatus::kError:
      return "error";
  }
  return "unknown";
}

common::StatusOr<MatrixReport> RunMatrix(const MatrixOptions& options) {
  obs::TraceSpan span("eval.matrix.run");
  obs::ScopedTimer wall_timer;

  std::vector<std::string> estimator_names = options.estimators;
  if (estimator_names.empty()) {
    // Default comparison set: every entry must handle mixed (disjunctive)
    // predicates, so the ML members use the complex QFT.
    estimator_names = {"postgres", "sampling", "gb+complex", "nn+complex",
                       "linear+complex"};
  }
  std::vector<const est::EstimatorInfo*> infos;
  infos.reserve(estimator_names.size());
  for (const std::string& name : estimator_names) {
    QFCARD_ASSIGN_OR_RETURN(const est::EstimatorInfo* info,
                            est::EstimatorInfoFor(name));
    infos.push_back(info);
  }

  std::vector<std::string> family_names = options.families;
  if (family_names.empty()) family_names = workload::FamilyNames();
  std::vector<const workload::WorkloadFamily*> families;
  families.reserve(family_names.size());
  for (const std::string& name : family_names) {
    QFCARD_ASSIGN_OR_RETURN(const workload::WorkloadFamily* family,
                            workload::FamilyNamed(name));
    families.push_back(family);
  }

  // Build every family instance once; all estimators share it, so the cell
  // axis is the estimator, never the data.
  std::vector<workload::FamilyInstance> instances;
  instances.reserve(families.size());
  for (const workload::WorkloadFamily* family : families) {
    obs::ScopedTimer build_timer("eval.matrix.family_build_seconds",
                                 "family=" + family->name);
    QFCARD_ASSIGN_OR_RETURN(workload::FamilyInstance inst,
                            family->build(options.sizes, options.seed));
    instances.push_back(std::move(inst));
  }

  MatrixReport report;
  report.name = options.report_name;
  report.scale = common::ScaleName(common::GetScale());
  report.threads =
      options.include_timings ? common::GlobalPool().num_threads() : 0;
  report.seed = options.seed;
  report.deterministic = !options.include_timings;
  for (const est::EstimatorInfo* info : infos) {
    report.estimators.push_back(info->name);
  }
  for (const workload::WorkloadFamily* family : families) {
    report.families.push_back(family->name);
  }

  for (const est::EstimatorInfo* info : infos) {
    for (size_t f = 0; f < families.size(); ++f) {
      const workload::WorkloadFamily& family = *families[f];
      MatrixCell cell;
      cell.estimator = info->name;
      cell.family = family.name;
      if (family.joins && !info->supports_joins) {
        cell.status = CellStatus::kUnsupported;
        cell.message = "estimator does not support join queries";
      } else if (family.disjunctions && !info->supports_disjunctions) {
        cell.status = CellStatus::kUnsupported;
        cell.message = "estimator does not support disjunctions";
      } else {
        RunCell(options, *info, family, instances[f], &cell);
      }
      obs::IncrementCounter("eval.matrix.cells",
                            std::string("status=") +
                                CellStatusToString(cell.status));
      report.cells.push_back(std::move(cell));
    }
  }
  if (obs::MetricsEnabled()) {
    obs::ObserveLatency("eval.matrix.run_seconds", wall_timer.Seconds());
  }
  return report;
}

std::string MatrixReport::ToJson() const {
  const CellTotals totals = Totalize(cells);
  std::string out = "{\"version\":1,\"kind\":\"matrix\"";
  out += ",\"name\":\"" + JEscape(name) + "\"";
  out += ",\"context\":{\"scale\":\"" + JEscape(scale) + "\"";
  out += common::StrFormat(",\"threads\":%d", threads);
  out += common::StrFormat(",\"seed\":%llu",
                           static_cast<unsigned long long>(seed));
  out += std::string(",\"deterministic\":") +
         (deterministic ? "true" : "false") + "}";
  out += ",\"estimators\":" + JStrList(estimators);
  out += ",\"families\":" + JStrList(families);
  out += ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& c = cells[i];
    if (i > 0) out += ",";
    out += "{\"estimator\":\"" + JEscape(c.estimator) + "\"";
    out += ",\"family\":\"" + JEscape(c.family) + "\"";
    out += std::string(",\"status\":\"") + CellStatusToString(c.status) + "\"";
    if (!c.message.empty()) {
      out += ",\"message\":\"" + JEscape(c.message) + "\"";
    }
    if (c.status == CellStatus::kOk) {
      out += common::StrFormat(",\"train_queries\":%lld",
                               static_cast<long long>(c.train_queries));
      out += common::StrFormat(",\"test_queries\":%lld",
                               static_cast<long long>(c.test_queries));
      out += ",\"qerror\":{\"mean\":" + JNum(c.qerror_mean);
      out += ",\"p50\":" + JNum(c.qerror_p50);
      out += ",\"p90\":" + JNum(c.qerror_p90);
      out += ",\"p95\":" + JNum(c.qerror_p95);
      out += ",\"p99\":" + JNum(c.qerror_p99);
      out += ",\"max\":" + JNum(c.qerror_max) + "}";
      out += ",\"train_seconds\":" + JNum(c.train_seconds);
      out += ",\"usec_per_query\":" + JNum(c.usec_per_query);
      out += std::string(",\"group_aware\":") +
             (c.group_aware ? "true" : "false");
      out += std::string(",\"learns_online\":") +
             (c.learns_online ? "true" : "false");
    }
    out += "}";
  }
  out += "],\"metrics\":[";
  out += common::StrFormat(
      "{\"name\":\"cells_ok\",\"unit\":\"count\",\"value\":%lld}",
      static_cast<long long>(totals.ok));
  out += common::StrFormat(
      ",{\"name\":\"cells_unsupported\",\"unit\":\"count\",\"value\":%lld}",
      static_cast<long long>(totals.unsupported));
  out += common::StrFormat(
      ",{\"name\":\"cells_error\",\"unit\":\"count\",\"value\":%lld}",
      static_cast<long long>(totals.error));
  out += common::StrFormat(
      ",{\"name\":\"test_queries_total\",\"unit\":\"count\",\"value\":%lld}",
      static_cast<long long>(totals.test_queries));
  out += "]}\n";
  return out;
}

}  // namespace qfcard::eval
