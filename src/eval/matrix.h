#ifndef QFCARD_EVAL_MATRIX_H_
#define QFCARD_EVAL_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "estimators/registry.h"
#include "workload/families.h"

namespace qfcard::eval {

/// Options of one benchmark-matrix sweep (estimator x workload family).
struct MatrixOptions {
  /// Registry names to sweep; empty = the default comparison set
  /// (postgres, sampling, gb+complex, nn+complex, linear+complex).
  std::vector<std::string> estimators;
  /// Family names to sweep; empty = every registered family.
  std::vector<std::string> families;
  /// Data/workload budgets per family; default from ScaledFamilySizes().
  workload::FamilySizes sizes = workload::ScaledFamilySizes();
  uint64_t seed = 20230707;
  double valid_fraction = 0.1;
  /// When false the report is byte-identical across thread counts and
  /// re-runs: every timing field is written as 0 and the context records
  /// threads=0. Golden tests and the CI mini-matrix use this; trajectory
  /// runs keep timings on.
  bool include_timings = true;
  /// Construction knobs forwarded to MakeEstimator. The per-family schema
  /// graph overrides `estimator_options.schema_graph` for join families.
  est::EstimatorOptions estimator_options;
  std::string report_name = "matrix";
};

/// Outcome class of one estimator x family cell.
enum class CellStatus {
  kOk,
  kUnsupported,  ///< skipped by capability metadata (e.g. joins)
  kError,        ///< construction/training/estimation failed
};

const char* CellStatusToString(CellStatus status);

/// One estimator x family result. Quantiles come from a per-cell
/// obs::Histogram over QErrorBounds, so report numbers and the exported
/// eval.matrix.* telemetry agree by construction.
struct MatrixCell {
  std::string estimator;
  std::string family;
  CellStatus status = CellStatus::kOk;
  std::string message;  ///< error text or skip reason, "" when ok
  int64_t train_queries = 0;
  int64_t test_queries = 0;
  double qerror_mean = 0.0;
  double qerror_p50 = 0.0;
  double qerror_p90 = 0.0;
  double qerror_p95 = 0.0;
  double qerror_p99 = 0.0;
  double qerror_max = 0.0;
  double train_seconds = 0.0;
  double usec_per_query = 0.0;
  /// False when the family carries GROUP BY but the estimator ignores the
  /// clause (predicts filtered row counts, not group counts) — the cell
  /// still runs, since ranking under misuse is part of the benchmark.
  bool group_aware = true;
  /// Mirror of EstimatorInfo::learns_online for the cell's estimator: true
  /// when it improves from execution feedback without an offline retrain
  /// (docs/adaptive.md). False for every current registry entry; surfaced
  /// here so report tooling can tell adaptive fronts apart when they join
  /// the sweep.
  bool learns_online = false;
};

/// A finished sweep, serializable to the versioned report format described
/// by tools/bench_schema.json (kind "matrix").
struct MatrixReport {
  std::string name;
  std::string scale;  ///< "smoke" | "default" | "full"
  int threads = 0;    ///< effective pool width, 0 in deterministic mode
  uint64_t seed = 0;
  bool deterministic = false;
  std::vector<std::string> estimators;  ///< sweep order
  std::vector<std::string> families;    ///< sweep order
  std::vector<MatrixCell> cells;        ///< estimator-major order

  /// Renders the versioned JSON report: fixed key order, fixed float
  /// formatting — byte-identical for identical cell values.
  std::string ToJson() const;
};

/// Runs the full sweep: builds each family instance once, then drives every
/// estimator through Train + EstimateBatch (global thread pool) on it.
/// Per-cell q-error quantiles and usec/query are aggregated via
/// obs::Histogram; eval.matrix.* counters/histograms land in the global
/// metrics registry when metrics are enabled. Fails only on unknown
/// estimator/family names or a family build failure — per-cell failures
/// are reported in the cell's status instead of aborting the sweep.
common::StatusOr<MatrixReport> RunMatrix(const MatrixOptions& options);

}  // namespace qfcard::eval

#endif  // QFCARD_EVAL_MATRIX_H_
