#include "eval/report.h"

#include <algorithm>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/qerror_monitor.h"

namespace qfcard::eval {

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << cell;
      if (c + 1 < widths.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (const size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatQ(double v) {
  if (v >= 1000.0) return common::StrFormat("%.0f", v);
  if (v >= 100.0) return common::StrFormat("%.1f", v);
  return common::StrFormat("%.2f", v);
}

std::string FormatBox(const ml::QErrorSummary& s) {
  return common::StrFormat("%s | %s [%s] %s | %s (max %s)",
                           FormatQ(s.p01).c_str(), FormatQ(s.p25).c_str(),
                           FormatQ(s.median).c_str(), FormatQ(s.p75).c_str(),
                           FormatQ(s.p99).c_str(), FormatQ(s.max).c_str());
}

void PrintTelemetrySnapshot(std::ostream& os) {
  if (!obs::MetricsEnabled()) return;
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  os << "\n[telemetry] histograms (p50/p95/max):\n";
  TablePrinter hist_table({"histogram", "labels", "count", "mean", "p50",
                           "p95", "max"});
  for (const obs::MetricsRegistry::HistogramRow& row : reg.HistogramRows()) {
    if (row.count == 0) continue;
    hist_table.AddRow({row.name, row.labels, std::to_string(row.count),
                       common::StrFormat("%.4g", row.mean),
                       common::StrFormat("%.4g", row.p50),
                       common::StrFormat("%.4g", row.p95),
                       common::StrFormat("%.4g", row.max)});
  }
  hist_table.Print(os);

  os << "\n[telemetry] counters:\n";
  TablePrinter counter_table({"counter", "labels", "value"});
  for (const obs::MetricsRegistry::CounterRow& row : reg.CounterRows()) {
    if (row.value == 0) continue;
    counter_table.AddRow({row.name, row.labels, std::to_string(row.value)});
  }
  counter_table.Print(os);

  const obs::QErrorDriftMonitor::State drift =
      obs::QErrorDriftMonitor::Global().GetState();
  if (drift.observed > 0) {
    os << common::StrFormat(
        "\n[telemetry] drift monitor: %s (window p95=%.2f vs threshold "
        "%.2f over %zu/%zu labeled q-errors; %llu flip%s, max=%.2f)\n",
        drift.degraded ? "DEGRADED" : "healthy", drift.p95, drift.threshold,
        drift.window_fill, drift.window_size,
        static_cast<unsigned long long>(drift.flips),
        drift.flips == 1 ? "" : "s", drift.max_qerror);
  }
}

}  // namespace qfcard::eval
