#include "eval/report.h"

#include <algorithm>

#include "common/str_util.h"

namespace qfcard::eval {

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << cell;
      if (c + 1 < widths.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (const size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatQ(double v) {
  if (v >= 1000.0) return common::StrFormat("%.0f", v);
  if (v >= 100.0) return common::StrFormat("%.1f", v);
  return common::StrFormat("%.2f", v);
}

std::string FormatBox(const ml::QErrorSummary& s) {
  return common::StrFormat("%s | %s [%s] %s | %s (max %s)",
                           FormatQ(s.p01).c_str(), FormatQ(s.p25).c_str(),
                           FormatQ(s.median).c_str(), FormatQ(s.p75).c_str(),
                           FormatQ(s.p99).c_str(), FormatQ(s.max).c_str());
}

}  // namespace qfcard::eval
