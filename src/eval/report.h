#ifndef QFCARD_EVAL_REPORT_H_
#define QFCARD_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "ml/metrics.h"

namespace qfcard::eval {

/// Fixed-width text table, the output format of every bench binary.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Prints the table with aligned columns and a separator under the header.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Compact text rendering of a q-error distribution in box-plot order:
/// "p1 | p25 [median] p75 | p99  (max)". Used for the figure
/// reproductions, which are box plots in the paper.
std::string FormatBox(const ml::QErrorSummary& summary);

/// Formats a double with sensible precision for q-errors.
std::string FormatQ(double v);

/// Appends a telemetry section to a report: per-histogram p50/p95/max for
/// every registered latency and q-error series, hot counters, and the
/// q-error drift monitor's state. No-op (prints nothing) when
/// QFCARD_METRICS is off, so existing bench output is unchanged by default.
void PrintTelemetrySnapshot(std::ostream& os);

}  // namespace qfcard::eval

#endif  // QFCARD_EVAL_REPORT_H_
