#include "eval/summary.h"

#include <algorithm>
#include <tuple>

#include "obs/metrics.h"

namespace qfcard::eval {

std::map<int, ml::QErrorSummary> SummarizeByGroup(
    const std::vector<double>& errors, const std::vector<int>& groups) {
  // One obs::Histogram per group instead of the old sort-per-group: a group
  // of k errors costs O(k) bucket increments plus an O(buckets) quantile
  // walk, not O(k log k), and the figures share bucket resolution with the
  // exported telemetry. count/mean/max stay exact (the histogram tracks sum
  // and max exactly); quantiles are interpolated inside QErrorBounds()
  // buckets — see the pinned regression test in tests/eval_test.cc.
  std::map<int, obs::Histogram> hists;
  const size_t n = std::min(errors.size(), groups.size());
  for (size_t i = 0; i < n; ++i) {
    auto it = hists.find(groups[i]);
    if (it == hists.end()) {
      it = hists
               .emplace(std::piecewise_construct,
                        std::forward_as_tuple(groups[i]),
                        std::forward_as_tuple(obs::QErrorBounds()))
               .first;
    }
    it->second.Observe(errors[i]);
  }
  std::map<int, ml::QErrorSummary> out;
  for (const auto& [key, hist] : hists) {
    ml::QErrorSummary s;
    s.count = hist.Count();
    s.mean = hist.Mean();
    s.p01 = hist.Quantile(0.01);
    s.p25 = hist.Quantile(0.25);
    s.median = hist.Quantile(0.50);
    s.p75 = hist.Quantile(0.75);
    s.p90 = hist.Quantile(0.90);
    s.p95 = hist.Quantile(0.95);
    s.p99 = hist.Quantile(0.99);
    s.max = hist.Max();
    out[key] = s;
  }
  return out;
}

std::vector<int> BucketizeGroups(const std::vector<int>& groups,
                                 const std::vector<int>& buckets) {
  std::vector<int> sorted = buckets;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> out;
  out.reserve(groups.size());
  for (const int g : groups) {
    int chosen = sorted.front();
    for (const int b : sorted) {
      if (b <= g) chosen = b;
    }
    out.push_back(chosen);
  }
  return out;
}

}  // namespace qfcard::eval
