#include "eval/summary.h"

#include <algorithm>

namespace qfcard::eval {

std::map<int, ml::QErrorSummary> SummarizeByGroup(
    const std::vector<double>& errors, const std::vector<int>& groups) {
  std::map<int, std::vector<double>> buckets;
  const size_t n = std::min(errors.size(), groups.size());
  for (size_t i = 0; i < n; ++i) {
    buckets[groups[i]].push_back(errors[i]);
  }
  std::map<int, ml::QErrorSummary> out;
  for (auto& [key, errs] : buckets) {
    out[key] = ml::QErrorSummary::FromErrors(std::move(errs));
  }
  return out;
}

std::vector<int> BucketizeGroups(const std::vector<int>& groups,
                                 const std::vector<int>& buckets) {
  std::vector<int> sorted = buckets;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> out;
  out.reserve(groups.size());
  for (const int g : groups) {
    int chosen = sorted.front();
    for (const int b : sorted) {
      if (b <= g) chosen = b;
    }
    out.push_back(chosen);
  }
  return out;
}

}  // namespace qfcard::eval
