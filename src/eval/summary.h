#ifndef QFCARD_EVAL_SUMMARY_H_
#define QFCARD_EVAL_SUMMARY_H_

#include <map>
#include <vector>

#include "ml/metrics.h"

namespace qfcard::eval {

/// Buckets q-errors by an integer group key (e.g. number of attributes or
/// predicates in the query) and summarizes each bucket — the aggregation
/// behind Figures 2, 3, 4 and 5. count/mean/max are exact; quantiles come
/// from an obs::Histogram over QErrorBounds() (interpolated within fixed
/// buckets) instead of a full sort per group.
std::map<int, ml::QErrorSummary> SummarizeByGroup(
    const std::vector<double>& errors, const std::vector<int>& groups);

/// Collapses group keys onto a fixed set of buckets: each value maps to the
/// largest bucket <= value (values below the first bucket map to it).
/// Matches the paper's figures, which show #attributes in {1, 2, 3, 5, 8}.
std::vector<int> BucketizeGroups(const std::vector<int>& groups,
                                 const std::vector<int>& buckets);

}  // namespace qfcard::eval

#endif  // QFCARD_EVAL_SUMMARY_H_
