#include "featurize/conjunction.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace qfcard::featurize {

namespace internal {

common::Status EncodeClauseForAttr(const AttributeInfo& attr,
                                   const Partitioner& partitioner,
                                   const ConjunctionOptions& opts, int budget,
                                   const query::ConjunctiveClause& clause,
                                   float* out, int n_a, double* selectivity) {
  std::fill(out, out + n_a, 1.0f);
  const float half = opts.use_half_values ? 0.5f : 1.0f;
  // Exact mode: every partition is a single integral value, so entries can
  // be decided exactly as 0/1 (Section 3.2, last paragraph).
  const bool exact = opts.exact_small_domains && attr.integral &&
                     (attr.max - attr.min + 1.0) <=
                         static_cast<double>(n_a) + 0.5;

  // Bookkeeping for the per-attribute selectivity estimate (gray lines of
  // Algorithm 1): tightest bounds plus excluded values.
  double min_a = attr.min;
  double max_a = attr.max;
  std::set<double> nots;

  for (const query::SimplePredicate& p : clause.preds) {
    const int idx = partitioner.IndexOf(attr, budget, p.value);
    const bool in_domain = p.value >= attr.min && p.value <= attr.max;
    if (!exact) {
      // Line 5: the partition containing the literal partially qualifies.
      if (in_domain && out[idx] == 1.0f) out[idx] = half;
    }
    switch (p.op) {
      case query::CmpOp::kEq:
        if (!in_domain) {
          // Literal outside the domain: nothing qualifies.
          std::fill(out, out + n_a, 0.0f);
        } else {
          for (int i = 0; i < n_a; ++i) {
            if (i != idx) out[i] = 0.0f;
          }
          if (exact) out[idx] = std::min(out[idx], 1.0f);
        }
        min_a = std::max(min_a, p.value);
        max_a = std::min(max_a, p.value);
        break;
      case query::CmpOp::kGt:
      case query::CmpOp::kGe: {
        // Line 9: partitions entirely below the literal cannot qualify.
        int zero_end = idx;  // exclusive
        if (exact && p.op == query::CmpOp::kGt && in_domain) {
          zero_end = idx + 1;  // the literal's own value is excluded
        }
        if (p.value > attr.max) zero_end = n_a;
        for (int i = 0; i < std::min(zero_end, n_a); ++i) out[i] = 0.0f;
        // Line 10 (gray).
        const double bound =
            (p.op == query::CmpOp::kGt && attr.integral) ? p.value + 1 : p.value;
        min_a = std::max(min_a, bound);
        break;
      }
      case query::CmpOp::kLt:
      case query::CmpOp::kLe: {
        // Line 12: partitions entirely above the literal cannot qualify.
        int zero_begin = idx + 1;
        if (exact && p.op == query::CmpOp::kLt && in_domain) {
          zero_begin = idx;
        }
        if (p.value < attr.min) zero_begin = 0;
        for (int i = std::max(zero_begin, 0); i < n_a; ++i) out[i] = 0.0f;
        // Line 13 (gray).
        const double bound =
            (p.op == query::CmpOp::kLt && attr.integral) ? p.value - 1 : p.value;
        max_a = std::min(max_a, bound);
        break;
      }
      case query::CmpOp::kNe:
        if (exact && in_domain) out[idx] = 0.0f;
        // Line 16 (gray).
        nots.insert(p.value);
        break;
    }
  }

  if (selectivity != nullptr) {
    // Lines 17-20 (gray): r_A = qualifying portion of the domain under the
    // uniformity assumption.
    double c_a = 0;
    for (const double v : nots) {
      if (v >= min_a && v <= max_a) c_a += 1.0;
    }
    const double width = attr.integral ? (max_a - min_a + 1.0 - c_a)
                                       : (max_a - min_a - c_a);
    const double r_a = std::max(width, 0.0);
    *selectivity = std::clamp(r_a / attr.DomainSize(), 0.0, 1.0);
  }
  return common::Status::Ok();
}

}  // namespace internal

ConjunctionEncoding::ConjunctionEncoding(FeatureSchema schema,
                                         ConjunctionOptions opts)
    : schema_(std::move(schema)), opts_(opts) {
  const Partitioner& part =
      opts_.partitioner != nullptr ? *opts_.partitioner
                                   : EquiWidthPartitioner::Get();
  offsets_.reserve(static_cast<size_t>(schema_.num_attributes()));
  n_a_.reserve(static_cast<size_t>(schema_.num_attributes()));
  budgets_.reserve(static_cast<size_t>(schema_.num_attributes()));
  const bool per_attr =
      static_cast<int>(opts_.per_attribute_partitions.size()) ==
      schema_.num_attributes();
  int offset = 0;
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    const int budget = per_attr
                           ? opts_.per_attribute_partitions[static_cast<size_t>(a)]
                           : opts_.max_partitions;
    const int n_a = part.NumPartitions(schema_.attr(a), budget);
    offsets_.push_back(offset);
    n_a_.push_back(n_a);
    budgets_.push_back(budget);
    offset += n_a + (opts_.append_attr_selectivity ? 1 : 0);
  }
  dim_ = offset;
}

common::Status ConjunctionEncoding::FeaturizeInto(const query::Query& q,
                                                  float* out) const {
  const Partitioner& part =
      opts_.partitioner != nullptr ? *opts_.partitioner
                                   : EquiWidthPartitioner::Get();
  // Line 1: attributes start all-one (no predicate -> full domain
  // qualifies); the selectivity appendix starts at 1.
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    float* block = out + AttrOffset(a);
    std::fill(block, block + AttrEntries(a), 1.0f);
    if (opts_.append_attr_selectivity) block[AttrEntries(a)] = 1.0f;
  }
  for (const query::CompoundPredicate& cp : q.predicates) {
    QFCARD_RETURN_IF_ERROR(schema_.CheckAttr(cp.col.column));
    if (cp.disjuncts.size() != 1) {
      return common::Status::InvalidArgument(
          "Universal Conjunction Encoding does not support disjunctions; "
          "use Limited Disjunction Encoding");
    }
    const int a = cp.col.column;
    float* block = out + AttrOffset(a);
    double sel = 1.0;
    QFCARD_RETURN_IF_ERROR(internal::EncodeClauseForAttr(
        schema_.attr(a), part, opts_, AttrBudget(a), cp.disjuncts[0], block,
        AttrEntries(a), opts_.append_attr_selectivity ? &sel : nullptr));
    if (opts_.append_attr_selectivity) {
      block[AttrEntries(a)] = static_cast<float>(sel);
    }
  }
  return common::Status::Ok();
}

}  // namespace qfcard::featurize
