#ifndef QFCARD_FEATURIZE_CONJUNCTION_H_
#define QFCARD_FEATURIZE_CONJUNCTION_H_

#include <vector>

#include "featurize/feature_schema.h"
#include "featurize/featurizer.h"
#include "featurize/partitioner.h"

namespace qfcard::featurize {

/// Configuration shared by Universal Conjunction Encoding and Limited
/// Disjunction Encoding.
struct ConjunctionOptions {
  /// The paper's n: maximum number of partitions (feature-vector entries)
  /// per attribute. The actual n_A is min(n, |domain(A)|) for integral
  /// attributes (Section 3.2).
  int max_partitions = 64;

  /// Appends the per-attribute selectivity estimate under the uniformity
  /// assumption (the gray lines of Algorithm 1). Evaluated in Table 3.
  bool append_attr_selectivity = true;

  /// When an attribute's integral domain fits in n_A entries (one entry per
  /// distinct value), encode entries exactly as 0/1 instead of 0/1/2/1
  /// (Section 3.2, last paragraph).
  bool exact_small_domains = true;

  /// Use the categorical value 1/2 for partially qualifying partitions.
  /// Disabling this (ablation) rounds partial partitions up to 1.
  bool use_half_values = true;

  /// Partitioning strategy; nullptr selects the paper's equi-width
  /// partitioner. Not owned; must outlive the featurizer.
  const Partitioner* partitioner = nullptr;

  /// Optional attribute-specific partition budgets (Section 3.2: "it is
  /// easy to extend our approach to choose an attribute-specific n"). When
  /// non-empty, entry a overrides max_partitions for attribute a; the size
  /// must equal the schema's attribute count. See SkewAwarePartitions().
  std::vector<int> per_attribute_partitions;
};

/// Universal Conjunction Encoding (Section 3.2, Algorithm 1), abbreviated
/// "conjunctive". The domain of each attribute is discretized into n_A
/// partitions; each partition owns one feature-vector entry valued 1 (all
/// values qualify), 1/2 (some qualify), or 0 (none qualify). Supports
/// arbitrarily many simple predicates per attribute connected by AND; by
/// Lemma 3.2 the encoding converges to a lossless featurization as n grows.
/// Disjunctions are rejected (use DisjunctionEncoding).
class ConjunctionEncoding : public Featurizer {
 public:
  ConjunctionEncoding(FeatureSchema schema, ConjunctionOptions opts = {});

  int dim() const override { return dim_; }
  std::string name() const override { return "conjunctive"; }
  common::Status FeaturizeInto(const query::Query& q,
                               float* out) const override;

  /// Offset of attribute `a`'s block within the feature vector.
  int AttrOffset(int a) const { return offsets_[static_cast<size_t>(a)]; }
  /// Number of partition entries n_A of attribute `a` (excluding the
  /// optional selectivity entry).
  int AttrEntries(int a) const { return n_a_[static_cast<size_t>(a)]; }

  const ConjunctionOptions& options() const { return opts_; }
  const FeatureSchema& schema() const { return schema_; }

  /// Partition budget of attribute `a` (max_partitions or the per-attribute
  /// override).
  int AttrBudget(int a) const { return budgets_[static_cast<size_t>(a)]; }

 private:
  FeatureSchema schema_;
  ConjunctionOptions opts_;
  std::vector<int> offsets_;
  std::vector<int> n_a_;
  std::vector<int> budgets_;
  int dim_ = 0;
};

namespace internal {

/// Encodes one conjunctive clause over `attr` into out[0 .. n_a), following
/// Algorithm 1 for a single attribute, and stores the per-attribute
/// uniformity selectivity estimate (Algorithm 1's gray lines) into
/// `*selectivity`. `budget` is the partition budget used to derive n_a
/// (n_a == partitioner.NumPartitions(attr, budget)). Shared by
/// ConjunctionEncoding, DisjunctionEncoding and the MSCN featurizer.
common::Status EncodeClauseForAttr(const AttributeInfo& attr,
                                   const Partitioner& partitioner,
                                   const ConjunctionOptions& opts, int budget,
                                   const query::ConjunctiveClause& clause,
                                   float* out, int n_a, double* selectivity);

}  // namespace internal

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_CONJUNCTION_H_
