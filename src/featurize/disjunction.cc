#include "featurize/disjunction.h"

#include <algorithm>
#include <vector>

namespace qfcard::featurize {

DisjunctionEncoding::DisjunctionEncoding(FeatureSchema schema,
                                         ConjunctionOptions opts)
    : conj_(std::move(schema), opts) {}

common::Status DisjunctionEncoding::FeaturizeInto(const query::Query& q,
                                                  float* out) const {
  const ConjunctionOptions& opts = conj_.options();
  const Partitioner& part = opts.partitioner != nullptr
                                ? *opts.partitioner
                                : EquiWidthPartitioner::Get();
  const FeatureSchema& schema = conj_.schema();
  // Attributes without predicates: all-one (full domain qualifies).
  for (int a = 0; a < schema.num_attributes(); ++a) {
    float* block = out + conj_.AttrOffset(a);
    std::fill(block, block + conj_.AttrEntries(a), 1.0f);
    if (opts.append_attr_selectivity) block[conj_.AttrEntries(a)] = 1.0f;
  }
  std::vector<float> scratch;
  for (const query::CompoundPredicate& cp : q.predicates) {
    QFCARD_RETURN_IF_ERROR(schema.CheckAttr(cp.col.column));
    const int a = cp.col.column;
    const int n_a = conj_.AttrEntries(a);
    float* block = out + conj_.AttrOffset(a);
    // Algorithm 2 line 3: V starts all-zero, then merges each clause by
    // entrywise max (line 6).
    std::fill(block, block + n_a, 0.0f);
    double merged_sel = 0.0;
    scratch.assign(static_cast<size_t>(n_a), 0.0f);
    for (const query::ConjunctiveClause& clause : cp.disjuncts) {
      double sel = 1.0;
      QFCARD_RETURN_IF_ERROR(internal::EncodeClauseForAttr(
          schema.attr(a), part, opts, conj_.AttrBudget(a), clause,
          scratch.data(), n_a,
          opts.append_attr_selectivity ? &sel : nullptr));
      for (int i = 0; i < n_a; ++i) block[i] = std::max(block[i], scratch[i]);
      merged_sel = std::max(merged_sel, sel);
    }
    if (opts.append_attr_selectivity) {
      block[n_a] = static_cast<float>(merged_sel);
    }
  }
  return common::Status::Ok();
}

}  // namespace qfcard::featurize
