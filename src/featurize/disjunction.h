#ifndef QFCARD_FEATURIZE_DISJUNCTION_H_
#define QFCARD_FEATURIZE_DISJUNCTION_H_

#include "featurize/conjunction.h"

namespace qfcard::featurize {

/// Limited Disjunction Encoding (Section 3.3, Algorithm 2), abbreviated
/// "complex": the first QFT designed for mixed queries (Definition 3.3),
/// i.e. conjunctions of per-attribute compound predicates where each
/// compound predicate may disjoin arbitrarily many conjunctive clauses.
///
/// Each clause of a compound predicate is featurized with Universal
/// Conjunction Encoding restricted to its attribute; the per-clause vectors
/// are merged by the entrywise maximum, capturing that additional
/// disjunctions only make a query less selective. On purely conjunctive
/// queries the output equals ConjunctionEncoding's (the paper relies on this
/// for JOB-light).
class DisjunctionEncoding : public Featurizer {
 public:
  DisjunctionEncoding(FeatureSchema schema, ConjunctionOptions opts = {});

  int dim() const override { return conj_.dim(); }
  std::string name() const override { return "complex"; }
  common::Status FeaturizeInto(const query::Query& q,
                               float* out) const override;

  /// Offset/size of attribute blocks (same layout as ConjunctionEncoding).
  int AttrOffset(int a) const { return conj_.AttrOffset(a); }
  int AttrEntries(int a) const { return conj_.AttrEntries(a); }

  const ConjunctionOptions& options() const { return conj_.options(); }
  const FeatureSchema& schema() const { return conj_.schema(); }

 private:
  ConjunctionEncoding conj_;  // reused for layout and clause encoding
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_DISJUNCTION_H_
