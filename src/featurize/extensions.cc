#include "featurize/extensions.h"

#include <algorithm>

#include "featurize/disjunction.h"
#include "featurize/range.h"
#include "featurize/singular.h"

namespace qfcard::featurize {

const char* QftKindToString(QftKind kind) {
  switch (kind) {
    case QftKind::kSimple:
      return "simple";
    case QftKind::kRange:
      return "range";
    case QftKind::kConjunctive:
      return "conjunctive";
    case QftKind::kComplex:
      return "complex";
  }
  return "unknown";
}

common::StatusOr<QftKind> QftKindFromString(const std::string& name) {
  if (name == "simple") return QftKind::kSimple;
  if (name == "range") return QftKind::kRange;
  if (name == "conjunctive") return QftKind::kConjunctive;
  if (name == "complex") return QftKind::kComplex;
  return common::Status::InvalidArgument("unknown QFT kind: " + name);
}

std::unique_ptr<Featurizer> MakeFeaturizer(QftKind kind, FeatureSchema schema,
                                           const ConjunctionOptions& opts) {
  switch (kind) {
    case QftKind::kSimple:
      return std::make_unique<SingularEncoding>(std::move(schema));
    case QftKind::kRange:
      return std::make_unique<RangeEncoding>(std::move(schema));
    case QftKind::kConjunctive:
      return std::make_unique<ConjunctionEncoding>(std::move(schema), opts);
    case QftKind::kComplex:
      return std::make_unique<DisjunctionEncoding>(std::move(schema), opts);
  }
  return nullptr;
}

common::Status GroupByAppendFeaturizer::FeaturizeInto(const query::Query& q,
                                                      float* out) const {
  QFCARD_RETURN_IF_ERROR(inner_->FeaturizeInto(q, out));
  float* bits = out + inner_->dim();
  std::fill(bits, bits + num_attributes_, 0.0f);
  for (const query::ColumnRef& g : q.group_by) {
    if (g.column < 0 || g.column >= num_attributes_) {
      return common::Status::OutOfRange("GROUP BY attribute out of range");
    }
    bits[g.column] = 1.0f;
  }
  return common::Status::Ok();
}

}  // namespace qfcard::featurize
