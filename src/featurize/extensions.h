#ifndef QFCARD_FEATURIZE_EXTENSIONS_H_
#define QFCARD_FEATURIZE_EXTENSIONS_H_

#include <memory>

#include "featurize/conjunction.h"
#include "featurize/featurizer.h"

namespace qfcard::featurize {

/// The four QFTs of the paper, by their abbreviations.
enum class QftKind {
  kSimple,       ///< Singular Predicate Encoding (Section 2.1.1)
  kRange,        ///< Range Predicate Encoding (Section 3.1)
  kConjunctive,  ///< Universal Conjunction Encoding (Section 3.2)
  kComplex,      ///< Limited Disjunction Encoding (Section 3.3)
};

const char* QftKindToString(QftKind kind);

/// Inverse of QftKindToString; accepts the featurizer name() abbreviations
/// ("simple", "range", "conjunctive", "complex"). Used by serve/ to restore
/// a featurizer from its persisted kind.
common::StatusOr<QftKind> QftKindFromString(const std::string& name);

/// Constructs a featurizer of the given kind over `schema`. `opts` applies
/// to the conjunctive/complex kinds.
std::unique_ptr<Featurizer> MakeFeaturizer(QftKind kind, FeatureSchema schema,
                                           const ConjunctionOptions& opts = {});

/// Section 6 extension: appends the GROUP BY bit vector — one binary entry
/// per attribute, set iff that attribute is grouped (e.g. 01010 for
/// GROUP BY A2, A4). Decorates any per-attribute QFT.
class GroupByAppendFeaturizer : public Featurizer {
 public:
  GroupByAppendFeaturizer(std::unique_ptr<Featurizer> inner,
                          int num_attributes)
      : inner_(std::move(inner)), num_attributes_(num_attributes) {}

  int dim() const override { return inner_->dim() + num_attributes_; }
  std::string name() const override { return inner_->name() + "+groupby"; }
  common::Status FeaturizeInto(const query::Query& q,
                               float* out) const override;

 private:
  std::unique_ptr<Featurizer> inner_;
  int num_attributes_;
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_EXTENSIONS_H_
