#include "featurize/feature_schema.h"

#include <algorithm>

#include "common/str_util.h"

namespace qfcard::featurize {

double AttributeInfo::DomainSize() const {
  const double width = integral ? (max - min + 1.0) : (max - min);
  return std::max(width, 1.0);
}

FeatureSchema FeatureSchema::FromTable(const storage::Table& table) {
  std::vector<AttributeInfo> attrs;
  attrs.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    const storage::Column& col = table.column(c);
    const storage::ColumnStats& stats = col.GetStats();
    AttributeInfo info;
    info.name = col.name();
    info.min = stats.min;
    info.max = stats.max;
    info.integral = col.integral();
    info.distinct = stats.distinct;
    attrs.push_back(std::move(info));
  }
  return FeatureSchema(std::move(attrs));
}

common::Status FeatureSchema::CheckAttr(int idx) const {
  if (idx < 0 || idx >= num_attributes()) {
    return common::Status::OutOfRange(
        common::StrFormat("attribute index %d out of range [0, %d)", idx,
                          num_attributes()));
  }
  return common::Status::Ok();
}

GlobalFeatureSchema GlobalFeatureSchema::FromCatalog(
    const storage::Catalog& catalog) {
  GlobalFeatureSchema out;
  std::vector<AttributeInfo> attrs;
  for (int t = 0; t < catalog.num_tables(); ++t) {
    const storage::Table& table = catalog.table(t);
    out.first_attr_.push_back(static_cast<int>(attrs.size()));
    out.num_columns_.push_back(table.num_columns());
    const FeatureSchema local = FeatureSchema::FromTable(table);
    for (int c = 0; c < local.num_attributes(); ++c) {
      AttributeInfo info = local.attr(c);
      info.name = table.name() + "." + info.name;
      attrs.push_back(std::move(info));
    }
  }
  out.schema_ = FeatureSchema(std::move(attrs));
  return out;
}

common::StatusOr<GlobalFeatureSchema> GlobalFeatureSchema::FromState(
    FeatureSchema schema, std::vector<int> first_attr,
    std::vector<int> num_columns) {
  if (first_attr.size() != num_columns.size()) {
    return common::Status::InvalidArgument(
        "global schema state: per-table arrays disagree in length");
  }
  int expected_first = 0;
  for (size_t t = 0; t < first_attr.size(); ++t) {
    if (num_columns[t] < 0 || first_attr[t] != expected_first) {
      return common::Status::InvalidArgument(
          "global schema state: inconsistent table layout");
    }
    expected_first += num_columns[t];
  }
  if (expected_first != schema.num_attributes()) {
    return common::Status::InvalidArgument(
        "global schema state: attribute count does not match table layout");
  }
  GlobalFeatureSchema out;
  out.schema_ = std::move(schema);
  out.first_attr_ = std::move(first_attr);
  out.num_columns_ = std::move(num_columns);
  return out;
}

common::StatusOr<int> GlobalFeatureSchema::GlobalIndex(int table_idx,
                                                       int column) const {
  if (table_idx < 0 || table_idx >= num_tables()) {
    return common::Status::OutOfRange(
        common::StrFormat("table index %d out of range", table_idx));
  }
  if (column < 0 || column >= num_columns_[static_cast<size_t>(table_idx)]) {
    return common::Status::OutOfRange(
        common::StrFormat("column index %d out of range", column));
  }
  return first_attr_[static_cast<size_t>(table_idx)] + column;
}

}  // namespace qfcard::featurize
