#ifndef QFCARD_FEATURIZE_FEATURE_SCHEMA_H_
#define QFCARD_FEATURIZE_FEATURE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace qfcard::featurize {

/// Domain description of one attribute, the information every QFT in the
/// paper relies on: min(A), max(A) (Section 2.1.1 normalization and the
/// Section 3.2 partition-index formula), integrality (open-range adjustment,
/// Section 3.1), and the distinct count (exact small-domain mode,
/// Section 3.2 last paragraph).
struct AttributeInfo {
  std::string name;
  double min = 0.0;
  double max = 0.0;
  bool integral = true;
  int64_t distinct = 0;

  /// Domain size in the sense of Algorithm 1: max - min + 1 for integral
  /// attributes, max - min for continuous ones (with a floor of 1 to keep
  /// normalization well-defined for constant columns).
  double DomainSize() const;
};

/// The ordered attribute list a featurizer is built against. For local
/// models this is one table (or one materialized sub-schema join); attribute
/// indices equal column indices of that table.
class FeatureSchema {
 public:
  FeatureSchema() = default;
  explicit FeatureSchema(std::vector<AttributeInfo> attrs)
      : attrs_(std::move(attrs)) {}

  /// Builds the schema from a table's column statistics.
  static FeatureSchema FromTable(const storage::Table& table);

  int num_attributes() const { return static_cast<int>(attrs_.size()); }
  const AttributeInfo& attr(int idx) const {
    return attrs_[static_cast<size_t>(idx)];
  }
  const std::vector<AttributeInfo>& attrs() const { return attrs_; }

  /// Verifies that `idx` is a valid attribute index.
  common::Status CheckAttr(int idx) const;

 private:
  std::vector<AttributeInfo> attrs_;
};

/// Flattened attribute list over all tables of a catalog, used by global
/// models (Section 2.1.2). Maps (table index, column index) pairs to global
/// attribute indices.
class GlobalFeatureSchema {
 public:
  /// Builds the global schema over all tables of `catalog` in catalog order.
  static GlobalFeatureSchema FromCatalog(const storage::Catalog& catalog);

  /// Rebuilds a schema from previously captured state (see accessors below);
  /// used by serve/ so a restored global featurizer keeps the exact attribute
  /// domains it was trained with, even if the live catalog has drifted.
  static common::StatusOr<GlobalFeatureSchema> FromState(
      FeatureSchema schema, std::vector<int> first_attr,
      std::vector<int> num_columns);

  const FeatureSchema& schema() const { return schema_; }
  int num_tables() const { return static_cast<int>(first_attr_.size()); }

  /// Returns the global attribute index of column `column` of catalog table
  /// `table_idx`.
  common::StatusOr<int> GlobalIndex(int table_idx, int column) const;

  const std::vector<int>& first_attr() const { return first_attr_; }
  const std::vector<int>& num_columns() const { return num_columns_; }

 private:
  FeatureSchema schema_;
  std::vector<int> first_attr_;   // per catalog table: first global attr index
  std::vector<int> num_columns_;  // per catalog table
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_FEATURE_SCHEMA_H_
