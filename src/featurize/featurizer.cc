#include "featurize/featurizer.h"

#include "common/thread_pool.h"

namespace qfcard::featurize {

common::Status Featurizer::FeaturizeBatch(
    std::span<const query::Query> queries, float* out) const {
  const int d = dim();
  return common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(queries.size()), [&](int64_t i) {
        return FeaturizeInto(queries[static_cast<size_t>(i)],
                             out + i * static_cast<int64_t>(d));
      });
}

}  // namespace qfcard::featurize
