#include "featurize/featurizer.h"

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfcard::featurize {

common::Status Featurizer::FeaturizeBatch(
    std::span<const query::Query> queries, float* out) const {
  obs::TraceSpan span("featurize.batch");
  obs::ScopedTimer timer("featurize.batch_seconds");
  obs::IncrementCounter("featurize.queries", /*labels=*/"",
                        static_cast<uint64_t>(queries.size()));
  const int d = dim();
  return common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(queries.size()), [&](int64_t i) {
        return FeaturizeInto(queries[static_cast<size_t>(i)],
                             out + i * static_cast<int64_t>(d));
      });
}

}  // namespace qfcard::featurize
