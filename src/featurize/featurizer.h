#ifndef QFCARD_FEATURIZE_FEATURIZER_H_
#define QFCARD_FEATURIZE_FEATURIZER_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace qfcard::featurize {

/// A query featurization technique (QFT): encodes a query into a fixed-size
/// numeric feature vector consumed by any input-agnostic ML model
/// (Section 3). Implementations are pure functions of the query and the
/// FeatureSchema they were constructed with; they are model-independent by
/// design, which is the paper's plug-in-layer claim.
///
/// Queries passed to a featurizer are single-table queries whose
/// ColumnRef::column values index the featurizer's FeatureSchema attributes
/// (for local models this is the base table or materialized sub-schema
/// join). Featurizers for global models wrap one of these (join_encoding.h).
class Featurizer {
 public:
  virtual ~Featurizer() = default;

  /// Length of the produced feature vector.
  virtual int dim() const = 0;

  /// Short label used in reports ("simple", "range", "conjunctive",
  /// "complex", ...), matching the paper's abbreviations.
  virtual std::string name() const = 0;

  /// Writes the feature vector for `q` into `out`, which must hold dim()
  /// floats. Returns kInvalidArgument when `q` is outside the QFT's
  /// supported query class (e.g. disjunctions passed to a
  /// conjunction-only QFT).
  virtual common::Status FeaturizeInto(const query::Query& q,
                                       float* out) const = 0;

  /// Featurizes `queries[i]` into row i of `out`, a row-major
  /// [queries.size() x dim()] float buffer. The default implementation runs
  /// FeaturizeInto per query on the global thread pool
  /// (common/thread_pool.h): each query writes only its own row, so the
  /// buffer is byte-identical for every QFCARD_THREADS setting. On failure
  /// returns the error of the smallest failing query index (the same error
  /// a serial loop would hit first); `out` contents are then unspecified.
  /// FeaturizeInto implementations must be const-thread-safe, which holds
  /// for every QFT here (pure functions of the query and the schema).
  virtual common::Status FeaturizeBatch(std::span<const query::Query> queries,
                                        float* out) const;

  /// Convenience wrapper allocating the output vector.
  common::StatusOr<std::vector<float>> Featurize(const query::Query& q) const {
    std::vector<float> out(static_cast<size_t>(dim()), 0.0f);
    QFCARD_RETURN_IF_ERROR(FeaturizeInto(q, out.data()));
    return out;
  }
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_FEATURIZER_H_
