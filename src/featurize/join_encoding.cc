#include "featurize/join_encoding.h"

#include <algorithm>

#include "featurize/feature_schema.h"

namespace qfcard::featurize {

GlobalFeaturizer::GlobalFeaturizer(const storage::Catalog* catalog,
                                   std::unique_ptr<Featurizer> inner)
    : catalog_(catalog), inner_(std::move(inner)) {
  int offset = 0;
  for (int t = 0; t < catalog_->num_tables(); ++t) {
    first_attr_.push_back(offset);
    offset += catalog_->table(t).num_columns();
  }
}

int GlobalFeaturizer::dim() const {
  return inner_->dim() + catalog_->num_tables();
}

common::Status GlobalFeaturizer::FeaturizeInto(const query::Query& q,
                                               float* out) const {
  // Rewrite predicates against the global attribute space: attribute index
  // = first_attr_[catalog table] + column.
  query::Query global;
  global.tables.push_back(query::TableRef{"<global>", "<global>"});
  std::vector<int> catalog_idx(q.tables.size(), -1);
  for (size_t t = 0; t < q.tables.size(); ++t) {
    QFCARD_ASSIGN_OR_RETURN(catalog_idx[t],
                            catalog_->TableIndex(q.tables[t].name));
  }
  for (const query::CompoundPredicate& cp : q.predicates) {
    query::CompoundPredicate rebased = cp;
    const int global_attr =
        first_attr_[static_cast<size_t>(
            catalog_idx[static_cast<size_t>(cp.col.table)])] +
        cp.col.column;
    rebased.col = query::ColumnRef{0, global_attr};
    for (query::ConjunctiveClause& clause : rebased.disjuncts) {
      for (query::SimplePredicate& p : clause.preds) {
        p.col = rebased.col;
      }
    }
    global.predicates.push_back(std::move(rebased));
  }
  QFCARD_RETURN_IF_ERROR(inner_->FeaturizeInto(global, out));

  // Table-presence bit vector (e.g. 1101 = tables 1, 2 and 4 joined).
  float* bits = out + inner_->dim();
  std::fill(bits, bits + catalog_->num_tables(), 0.0f);
  for (size_t t = 0; t < q.tables.size(); ++t) {
    bits[catalog_idx[t]] = 1.0f;
  }
  return common::Status::Ok();
}

}  // namespace qfcard::featurize
