#ifndef QFCARD_FEATURIZE_JOIN_ENCODING_H_
#define QFCARD_FEATURIZE_JOIN_ENCODING_H_

#include <memory>

#include "featurize/featurizer.h"
#include "storage/catalog.h"

namespace qfcard::featurize {

/// Adapts any per-attribute QFT to global models (Section 2.1.2): the inner
/// featurizer is built over the GlobalFeatureSchema spanning every table of
/// the catalog, and a binary table-presence vector is appended — entry t is
/// 1 iff catalog table t occurs in the query (tables are joined following
/// their key/foreign-key relationships, so the set of tables determines the
/// join).
class GlobalFeaturizer : public Featurizer {
 public:
  /// `inner` must be built over GlobalFeatureSchema::FromCatalog(*catalog)
  /// (attribute i == global attribute i). `catalog` is not owned and must
  /// outlive this object.
  GlobalFeaturizer(const storage::Catalog* catalog,
                   std::unique_ptr<Featurizer> inner);

  int dim() const override;
  std::string name() const override { return "global+" + inner_->name(); }
  common::Status FeaturizeInto(const query::Query& q,
                               float* out) const override;

 private:
  const storage::Catalog* catalog_;
  std::unique_ptr<Featurizer> inner_;
  // Cached per construction.
  std::vector<int> first_attr_;
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_JOIN_ENCODING_H_
