#include "featurize/mscn_featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "featurize/partitioner.h"

namespace qfcard::featurize {

MscnFeaturizer::MscnFeaturizer(const storage::Catalog* catalog,
                               const query::SchemaGraph* graph, PredMode mode,
                               ConjunctionOptions opts)
    : MscnFeaturizer(catalog, graph, mode, std::move(opts),
                     GlobalFeatureSchema::FromCatalog(*catalog)) {}

MscnFeaturizer::MscnFeaturizer(const storage::Catalog* catalog,
                               const query::SchemaGraph* graph, PredMode mode,
                               ConjunctionOptions opts,
                               GlobalFeatureSchema global)
    : catalog_(catalog),
      graph_(graph),
      mode_(mode),
      opts_(opts),
      global_(std::move(global)) {
  num_tables_ = global_.num_tables();
  num_edges_ = static_cast<int>(graph_->edges().size());
  num_attrs_ = global_.schema().num_attributes();
  const Partitioner& part = opts_.partitioner != nullptr
                                ? *opts_.partitioner
                                : EquiWidthPartitioner::Get();
  if (mode_ == PredMode::kPerPredicate) {
    block_dim_ = 4;  // op one-hot (3) + normalized literal
  } else if (mode_ == PredMode::kPerAttributeRange) {
    block_dim_ = 2;  // normalized [lo, hi]
  } else {
    int max_block = 0;
    for (int a = 0; a < num_attrs_; ++a) {
      const int n_a =
          part.NumPartitions(global_.schema().attr(a), opts_.max_partitions);
      attr_entries_.push_back(n_a);
      max_block = std::max(
          max_block, n_a + (opts_.append_attr_selectivity ? 1 : 0));
    }
    block_dim_ = max_block;
  }
  pred_dim_ = num_attrs_ + block_dim_;
}

common::StatusOr<int> MscnFeaturizer::EdgeIndexOf(
    const query::Query& q, const query::JoinPredicate& j) const {
  const auto resolve = [&](const query::ColumnRef& ref)
      -> common::StatusOr<std::pair<std::string, std::string>> {
    const std::string& tname = q.tables[static_cast<size_t>(ref.table)].name;
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t, catalog_->GetTable(tname));
    return std::make_pair(tname, t->column(ref.column).name());
  };
  QFCARD_ASSIGN_OR_RETURN(const auto left, resolve(j.left));
  QFCARD_ASSIGN_OR_RETURN(const auto right, resolve(j.right));
  const std::vector<query::FkEdge>& edges = graph_->edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    const query::FkEdge& edge = edges[e];
    const bool forward = edge.fk_table == left.first &&
                         edge.fk_column == left.second &&
                         edge.pk_table == right.first &&
                         edge.pk_column == right.second;
    const bool backward = edge.fk_table == right.first &&
                          edge.fk_column == right.second &&
                          edge.pk_table == left.first &&
                          edge.pk_column == left.second;
    if (forward || backward) return static_cast<int>(e);
  }
  return common::Status::NotFound(common::StrFormat(
      "join %s.%s = %s.%s does not match a key/foreign-key edge",
      left.first.c_str(), left.second.c_str(), right.first.c_str(),
      right.second.c_str()));
}

common::StatusOr<MscnSample> MscnFeaturizer::Featurize(
    const query::Query& q) const {
  MscnSample sample;
  // Table set: one-hot per participating table.
  for (const query::TableRef& ref : q.tables) {
    QFCARD_ASSIGN_OR_RETURN(const int t, catalog_->TableIndex(ref.name));
    std::vector<float> vec(static_cast<size_t>(num_tables_), 0.0f);
    vec[static_cast<size_t>(t)] = 1.0f;
    sample.table_vecs.push_back(std::move(vec));
  }
  // Join set: one-hot per key/foreign-key edge used.
  for (const query::JoinPredicate& j : q.joins) {
    QFCARD_ASSIGN_OR_RETURN(const int e, EdgeIndexOf(q, j));
    std::vector<float> vec(static_cast<size_t>(join_dim()), 0.0f);
    vec[static_cast<size_t>(e)] = 1.0f;
    sample.join_vecs.push_back(std::move(vec));
  }

  const Partitioner& part = opts_.partitioner != nullptr
                                ? *opts_.partitioner
                                : EquiWidthPartitioner::Get();
  if (mode_ == PredMode::kPerPredicate) {
    for (const query::CompoundPredicate& cp : q.predicates) {
      if (cp.disjuncts.size() != 1) {
        return common::Status::InvalidArgument(
            "original MSCN featurization does not support disjunctions");
      }
      QFCARD_ASSIGN_OR_RETURN(
          const int ga,
          global_.GlobalIndex(
              // map query table slot to catalog index
              [&]() -> int {
                const auto idx = catalog_->TableIndex(
                    q.tables[static_cast<size_t>(cp.col.table)].name);
                return idx.ok() ? idx.value() : -1;
              }(),
              cp.col.column));
      const AttributeInfo& attr = global_.schema().attr(ga);
      for (const query::SimplePredicate& p : cp.disjuncts[0].preds) {
        std::vector<float> vec(static_cast<size_t>(pred_dim_), 0.0f);
        vec[static_cast<size_t>(ga)] = 1.0f;
        float* payload = vec.data() + num_attrs_;
        switch (p.op) {
          case query::CmpOp::kEq:
            payload[0] = 1.0f;
            break;
          case query::CmpOp::kGt:
          case query::CmpOp::kGe:
            payload[1] = 1.0f;
            break;
          case query::CmpOp::kLt:
          case query::CmpOp::kLe:
            payload[2] = 1.0f;
            break;
          case query::CmpOp::kNe:
            payload[1] = 1.0f;
            payload[2] = 1.0f;
            break;
        }
        const double denom = std::max(attr.max - attr.min, 1e-12);
        payload[3] = static_cast<float>(
            std::clamp((p.value - attr.min) / denom, 0.0, 1.0));
        sample.pred_vecs.push_back(std::move(vec));
      }
    }
    return sample;
  }

  if (mode_ == PredMode::kPerAttributeRange) {
    // Range Predicate Encoding per attribute: intersect all point/range
    // predicates into one closed range; not-equals are dropped (lossy, as
    // in Section 3.1); disjunctions are unsupported.
    for (const query::CompoundPredicate& cp : q.predicates) {
      if (cp.disjuncts.size() != 1) {
        return common::Status::InvalidArgument(
            "per-attribute range MSCN featurization does not support "
            "disjunctions");
      }
      QFCARD_ASSIGN_OR_RETURN(
          const int cat_table,
          catalog_->TableIndex(q.tables[static_cast<size_t>(cp.col.table)].name));
      QFCARD_ASSIGN_OR_RETURN(const int ga,
                              global_.GlobalIndex(cat_table, cp.col.column));
      const AttributeInfo& attr = global_.schema().attr(ga);
      double lo = attr.min;
      double hi = attr.max;
      const double step =
          attr.integral ? 1.0 : std::max(attr.max - attr.min, 1e-12) * 1e-9;
      for (const query::SimplePredicate& p : cp.disjuncts[0].preds) {
        switch (p.op) {
          case query::CmpOp::kEq:
            lo = std::max(lo, p.value);
            hi = std::min(hi, p.value);
            break;
          case query::CmpOp::kGe:
            lo = std::max(lo, p.value);
            break;
          case query::CmpOp::kGt:
            lo = std::max(lo, p.value + step);
            break;
          case query::CmpOp::kLe:
            hi = std::min(hi, p.value);
            break;
          case query::CmpOp::kLt:
            hi = std::min(hi, p.value - step);
            break;
          case query::CmpOp::kNe:
            break;  // not representable
        }
      }
      const double denom = std::max(attr.max - attr.min, 1e-12);
      std::vector<float> vec(static_cast<size_t>(pred_dim_), 0.0f);
      vec[static_cast<size_t>(ga)] = 1.0f;
      vec[static_cast<size_t>(num_attrs_)] =
          static_cast<float>(std::clamp((lo - attr.min) / denom, 0.0, 1.0));
      vec[static_cast<size_t>(num_attrs_) + 1] =
          static_cast<float>(std::clamp((hi - attr.min) / denom, 0.0, 1.0));
      sample.pred_vecs.push_back(std::move(vec));
    }
    return sample;
  }

  // kPerAttributeQft (Section 4.2): one vector per referenced attribute,
  // holding the attribute id one-hot plus the merged per-attribute block
  // (Limited Disjunction Encoding semantics, so mixed queries work).
  for (const query::CompoundPredicate& cp : q.predicates) {
    QFCARD_ASSIGN_OR_RETURN(const int cat_table,
                            catalog_->TableIndex(
                                q.tables[static_cast<size_t>(cp.col.table)].name));
    QFCARD_ASSIGN_OR_RETURN(const int ga,
                            global_.GlobalIndex(cat_table, cp.col.column));
    const AttributeInfo& attr = global_.schema().attr(ga);
    const int n_a = attr_entries_[static_cast<size_t>(ga)];
    std::vector<float> vec(static_cast<size_t>(pred_dim_), 0.0f);
    vec[static_cast<size_t>(ga)] = 1.0f;
    float* block = vec.data() + num_attrs_;
    std::vector<float> scratch(static_cast<size_t>(n_a), 0.0f);
    double merged_sel = 0.0;
    for (const query::ConjunctiveClause& clause : cp.disjuncts) {
      double sel = 1.0;
      QFCARD_RETURN_IF_ERROR(internal::EncodeClauseForAttr(
          attr, part, opts_, opts_.max_partitions, clause, scratch.data(), n_a,
          opts_.append_attr_selectivity ? &sel : nullptr));
      for (int i = 0; i < n_a; ++i) block[i] = std::max(block[i], scratch[i]);
      merged_sel = std::max(merged_sel, sel);
    }
    if (opts_.append_attr_selectivity) {
      block[n_a] = static_cast<float>(merged_sel);
    }
    sample.pred_vecs.push_back(std::move(vec));
  }
  return sample;
}

}  // namespace qfcard::featurize
