#ifndef QFCARD_FEATURIZE_MSCN_FEATURIZER_H_
#define QFCARD_FEATURIZE_MSCN_FEATURIZER_H_

#include <vector>

#include "common/status.h"
#include "featurize/conjunction.h"
#include "featurize/feature_schema.h"
#include "query/query.h"
#include "query/schema_graph.h"
#include "storage/catalog.h"

namespace qfcard::featurize {

/// The three vector sets MSCN consumes (Section 2.1.2 / 4.2): tables, joins,
/// and predicates. Each inner vector has the fixed per-set dimension of the
/// producing MscnFeaturizer.
struct MscnSample {
  std::vector<std::vector<float>> table_vecs;
  std::vector<std::vector<float>> join_vecs;
  std::vector<std::vector<float>> pred_vecs;
};

/// Produces MSCN's set featurization. Two predicate modes:
///  - kPerPredicate reproduces the original MSCN ("MSCN w/o mods"): one
///    vector per simple predicate = [attribute one-hot | op 3-bit |
///    normalized literal]; disjunctions are unsupported (rejected), as in
///    the original implementation.
///  - kPerAttributeQft is the paper's modification (Section 4.2): all
///    predicates referencing one attribute become a single vector =
///    [attribute one-hot | per-attribute Universal-Conjunction/Limited-
///    Disjunction block, zero-padded]; supports mixed queries.
///  - kPerAttributeRange is the analogous adaptation of Range Predicate
///    Encoding: one vector per attribute = [attribute one-hot | normalized
///    lo | normalized hi]; conjunctions only.
class MscnFeaturizer {
 public:
  enum class PredMode { kPerPredicate, kPerAttributeQft, kPerAttributeRange };

  /// `catalog` and `graph` are not owned and must outlive this object.
  MscnFeaturizer(const storage::Catalog* catalog,
                 const query::SchemaGraph* graph, PredMode mode,
                 ConjunctionOptions opts = {});

  /// Like the primary constructor, but featurizes against a previously
  /// captured `global` schema instead of deriving one from the live catalog.
  /// serve/ uses this so a restored model featurizes byte-identically to the
  /// one that was saved even when the catalog's statistics have drifted
  /// (the catalog is still used for structural name lookups).
  MscnFeaturizer(const storage::Catalog* catalog,
                 const query::SchemaGraph* graph, PredMode mode,
                 ConjunctionOptions opts, GlobalFeatureSchema global);

  int table_dim() const { return num_tables_; }
  int join_dim() const { return num_edges_ == 0 ? 1 : num_edges_; }
  int pred_dim() const { return pred_dim_; }
  PredMode mode() const { return mode_; }
  const ConjunctionOptions& options() const { return opts_; }
  const GlobalFeatureSchema& global() const { return global_; }

  common::StatusOr<MscnSample> Featurize(const query::Query& q) const;

 private:
  const storage::Catalog* catalog_;
  const query::SchemaGraph* graph_;
  PredMode mode_;
  ConjunctionOptions opts_;
  GlobalFeatureSchema global_;
  int num_tables_ = 0;
  int num_edges_ = 0;
  int num_attrs_ = 0;
  int block_dim_ = 0;  // per-attribute payload width
  int pred_dim_ = 0;
  std::vector<int> attr_entries_;  // n_A per global attribute (QFT mode)

  common::StatusOr<int> EdgeIndexOf(const query::Query& q,
                                    const query::JoinPredicate& j) const;
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_MSCN_FEATURIZER_H_
