#include "featurize/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

namespace qfcard::featurize {

int EquiWidthPartitioner::NumPartitions(const AttributeInfo& attr,
                                        int max_partitions) const {
  if (attr.integral) {
    const double domain = attr.max - attr.min + 1.0;
    return static_cast<int>(
        std::max(1.0, std::min(static_cast<double>(max_partitions), domain)));
  }
  return std::max(1, max_partitions);
}

int EquiWidthPartitioner::IndexOf(const AttributeInfo& attr,
                                  int max_partitions, double value) const {
  const int n = NumPartitions(attr, max_partitions);
  // Zero-based index formula of Section 3.2:
  //   floor((val - min(A)) / (max(A) - min(A) + 1) * n_A)
  // with the continuous-domain variant using max - min as the denominator
  // (plus a tiny epsilon so value == max lands in the last partition).
  const double denom =
      attr.integral ? (attr.max - attr.min + 1.0)
                    : std::max(attr.max - attr.min, 1e-12) * (1.0 + 1e-9);
  const double rel = (value - attr.min) / denom;
  const int idx = static_cast<int>(std::floor(rel * n));
  return std::clamp(idx, 0, n - 1);
}

const EquiWidthPartitioner& EquiWidthPartitioner::Get() {
  static const EquiWidthPartitioner kInstance;
  return kInstance;
}

EquiDepthPartitioner EquiDepthPartitioner::FromTable(
    const storage::Table& table, int max_partitions) {
  EquiDepthPartitioner out;
  for (int c = 0; c < table.num_columns(); ++c) {
    const storage::Column& col = table.column(c);
    std::vector<double> values = col.data();
    std::sort(values.begin(), values.end());
    std::vector<double> bounds;
    if (!values.empty() && max_partitions > 1) {
      for (int k = 1; k < max_partitions; ++k) {
        const size_t pos = static_cast<size_t>(
            static_cast<double>(k) / max_partitions *
            static_cast<double>(values.size() - 1));
        bounds.push_back(values[pos]);
      }
      bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    }
    out.attr_names_.push_back(col.name());
    out.boundaries_.push_back(std::move(bounds));
  }
  return out;
}

EquiDepthPartitioner EquiDepthPartitioner::FromState(
    std::vector<std::string> attr_names,
    std::vector<std::vector<double>> boundaries) {
  EquiDepthPartitioner out;
  out.attr_names_ = std::move(attr_names);
  out.boundaries_ = std::move(boundaries);
  return out;
}

int EquiDepthPartitioner::AttrSlot(const AttributeInfo& attr) const {
  for (size_t i = 0; i < attr_names_.size(); ++i) {
    if (attr_names_[i] == attr.name) return static_cast<int>(i);
  }
  return -1;
}

int EquiDepthPartitioner::NumPartitions(const AttributeInfo& attr,
                                        int max_partitions) const {
  const int slot = AttrSlot(attr);
  if (slot < 0) {
    return EquiWidthPartitioner::Get().NumPartitions(attr, max_partitions);
  }
  return static_cast<int>(boundaries_[static_cast<size_t>(slot)].size()) + 1;
}

VOptimalPartitioner VOptimalPartitioner::FromTable(const storage::Table& table,
                                                   int max_partitions,
                                                   int max_candidates) {
  VOptimalPartitioner out;
  for (int c = 0; c < table.num_columns(); ++c) {
    const storage::Column& col = table.column(c);
    // Frequency per distinct value (pre-aggregated into at most
    // max_candidates equi-width cells when the domain is large).
    std::map<double, double> freq_map;
    for (const double v : col.data()) ++freq_map[v];
    std::vector<double> values;
    std::vector<double> freqs;
    if (static_cast<int>(freq_map.size()) <= max_candidates) {
      for (const auto& [v, f] : freq_map) {
        values.push_back(v);
        freqs.push_back(f);
      }
    } else {
      const storage::ColumnStats& stats = col.GetStats();
      const double width =
          std::max(stats.max - stats.min, 1e-12) / max_candidates;
      values.assign(static_cast<size_t>(max_candidates), 0.0);
      freqs.assign(static_cast<size_t>(max_candidates), 0.0);
      for (int i = 0; i < max_candidates; ++i) {
        values[static_cast<size_t>(i)] = stats.min + width * (i + 1);
      }
      for (const auto& [v, f] : freq_map) {
        int cell = static_cast<int>((v - stats.min) / width);
        cell = std::clamp(cell, 0, max_candidates - 1);
        freqs[static_cast<size_t>(cell)] += f;
      }
    }
    const int v_count = static_cast<int>(values.size());
    const int buckets = std::min(max_partitions, std::max(v_count, 1));

    // Prefix sums for O(1) within-bucket SSE: sse(l..r) over frequencies
    // = sum f^2 - (sum f)^2 / n.
    std::vector<double> pf(static_cast<size_t>(v_count) + 1, 0.0);
    std::vector<double> pf2(static_cast<size_t>(v_count) + 1, 0.0);
    for (int i = 0; i < v_count; ++i) {
      pf[static_cast<size_t>(i) + 1] = pf[static_cast<size_t>(i)] + freqs[static_cast<size_t>(i)];
      pf2[static_cast<size_t>(i) + 1] =
          pf2[static_cast<size_t>(i)] +
          freqs[static_cast<size_t>(i)] * freqs[static_cast<size_t>(i)];
    }
    const auto sse = [&](int l, int r) {  // inclusive 0-based range
      const double n = r - l + 1;
      const double s = pf[static_cast<size_t>(r) + 1] - pf[static_cast<size_t>(l)];
      const double s2 = pf2[static_cast<size_t>(r) + 1] - pf2[static_cast<size_t>(l)];
      return s2 - s * s / n;
    };

    // DP over (prefix length, bucket count).
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> err(
        static_cast<size_t>(v_count) + 1,
        std::vector<double>(static_cast<size_t>(buckets) + 1, kInf));
    std::vector<std::vector<int>> split(
        static_cast<size_t>(v_count) + 1,
        std::vector<int>(static_cast<size_t>(buckets) + 1, 0));
    err[0][0] = 0.0;
    for (int i = 1; i <= v_count; ++i) {
      const int max_b = std::min(i, buckets);
      for (int b = 1; b <= max_b; ++b) {
        for (int j = b - 1; j < i; ++j) {
          if (err[static_cast<size_t>(j)][static_cast<size_t>(b) - 1] == kInf) {
            continue;
          }
          const double cand =
              err[static_cast<size_t>(j)][static_cast<size_t>(b) - 1] +
              sse(j, i - 1);
          if (cand < err[static_cast<size_t>(i)][static_cast<size_t>(b)]) {
            err[static_cast<size_t>(i)][static_cast<size_t>(b)] = cand;
            split[static_cast<size_t>(i)][static_cast<size_t>(b)] = j;
          }
        }
      }
    }
    // Recover boundaries: each bucket's last value is an upper boundary
    // (except the final bucket).
    std::vector<double> bounds;
    int i = v_count;
    int b = buckets;
    std::vector<int> ends;
    while (b > 0 && i > 0) {
      ends.push_back(i - 1);
      i = split[static_cast<size_t>(i)][static_cast<size_t>(b)];
      --b;
    }
    std::reverse(ends.begin(), ends.end());
    for (size_t e = 0; e + 1 < ends.size(); ++e) {
      bounds.push_back(values[static_cast<size_t>(ends[e])]);
    }
    out.attr_names_.push_back(col.name());
    out.boundaries_.push_back(std::move(bounds));
  }
  return out;
}

VOptimalPartitioner VOptimalPartitioner::FromState(
    std::vector<std::string> attr_names,
    std::vector<std::vector<double>> boundaries) {
  VOptimalPartitioner out;
  out.attr_names_ = std::move(attr_names);
  out.boundaries_ = std::move(boundaries);
  return out;
}

int VOptimalPartitioner::AttrSlot(const AttributeInfo& attr) const {
  for (size_t i = 0; i < attr_names_.size(); ++i) {
    if (attr_names_[i] == attr.name) return static_cast<int>(i);
  }
  return -1;
}

int VOptimalPartitioner::NumPartitions(const AttributeInfo& attr,
                                       int max_partitions) const {
  const int slot = AttrSlot(attr);
  if (slot < 0) {
    return EquiWidthPartitioner::Get().NumPartitions(attr, max_partitions);
  }
  return static_cast<int>(boundaries_[static_cast<size_t>(slot)].size()) + 1;
}

int VOptimalPartitioner::IndexOf(const AttributeInfo& attr, int max_partitions,
                                 double value) const {
  const int slot = AttrSlot(attr);
  if (slot < 0) {
    return EquiWidthPartitioner::Get().IndexOf(attr, max_partitions, value);
  }
  const std::vector<double>& b = boundaries_[static_cast<size_t>(slot)];
  // Partition i covers values <= b[i]; lower_bound gives the first boundary
  // >= value.
  const auto it = std::lower_bound(b.begin(), b.end(), value);
  return static_cast<int>(it - b.begin());
}

std::vector<int> SkewAwarePartitions(const storage::Table& table, int base,
                                     int boost, double skew_threshold) {
  std::vector<int> budgets;
  budgets.reserve(static_cast<size_t>(table.num_columns()));
  // qfcard-lint: ok(unordered-container): counting only — the budget depends on the
  // max count, a commutative reduction; the map is never iterated.
  std::unordered_map<double, int64_t> freq;
  for (int c = 0; c < table.num_columns(); ++c) {
    const storage::Column& col = table.column(c);
    freq.clear();
    int64_t top = 0;
    for (const double v : col.data()) {
      top = std::max(top, ++freq[v]);
    }
    const double top_fraction =
        col.size() > 0 ? static_cast<double>(top) / col.size() : 0.0;
    const int budget =
        top_fraction > skew_threshold ? std::min(base * boost, 256) : base;
    budgets.push_back(budget);
  }
  return budgets;
}

int EquiDepthPartitioner::IndexOf(const AttributeInfo& attr,
                                  int max_partitions, double value) const {
  const int slot = AttrSlot(attr);
  if (slot < 0) {
    return EquiWidthPartitioner::Get().IndexOf(attr, max_partitions, value);
  }
  const std::vector<double>& b = boundaries_[static_cast<size_t>(slot)];
  // Partition i covers (b_{i-1}, b_i]; lower_bound gives the first boundary
  // >= value, i.e. the partition index.
  const auto it = std::lower_bound(b.begin(), b.end(), value);
  return static_cast<int>(it - b.begin());
}

}  // namespace qfcard::featurize
