#ifndef QFCARD_FEATURIZE_PARTITIONER_H_
#define QFCARD_FEATURIZE_PARTITIONER_H_

#include <memory>
#include <vector>

#include "featurize/feature_schema.h"
#include "storage/table.h"

namespace qfcard::featurize {

/// Maps attribute values to partition indices for Universal Conjunction /
/// Limited Disjunction Encoding (Section 3.2). The paper uses equi-width
/// partitioning; it also notes that "sophisticated partitioning techniques
/// from the field of histograms" can be plugged in, which EquiDepthPartitioner
/// provides as an extension.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Number of partitions n_A for attribute `attr` given the per-attribute
  /// budget `max_partitions` (the paper's n).
  virtual int NumPartitions(const AttributeInfo& attr,
                            int max_partitions) const = 0;

  /// Zero-based partition index of `value` within attribute `attr`; values
  /// outside [min, max] clamp to the first/last partition.
  virtual int IndexOf(const AttributeInfo& attr, int max_partitions,
                      double value) const = 0;
};

/// The paper's partitioning: n_A = min(n, max(A) - min(A) + 1) partitions of
/// consecutive values; index = floor((val - min) / domain_size * n_A).
class EquiWidthPartitioner : public Partitioner {
 public:
  int NumPartitions(const AttributeInfo& attr, int max_partitions) const override;
  int IndexOf(const AttributeInfo& attr, int max_partitions,
              double value) const override;

  /// Shared process-wide instance (stateless).
  static const EquiWidthPartitioner& Get();
};

/// Extension: quantile-based partitioning built from the data so every
/// partition covers roughly the same number of rows. Helps skewed
/// attributes, where equi-width wastes most entries on empty regions.
class EquiDepthPartitioner : public Partitioner {
 public:
  /// Builds per-attribute quantile boundaries from `table` (one column per
  /// FeatureSchema attribute) with `max_partitions` target partitions.
  static EquiDepthPartitioner FromTable(const storage::Table& table,
                                        int max_partitions);

  /// Rebuilds a partitioner from previously captured state (see accessors
  /// below); used by serve/ to restore a saved featurizer byte-identically.
  static EquiDepthPartitioner FromState(
      std::vector<std::string> attr_names,
      std::vector<std::vector<double>> boundaries);

  int NumPartitions(const AttributeInfo& attr, int max_partitions) const override;
  int IndexOf(const AttributeInfo& attr, int max_partitions,
              double value) const override;

  const std::vector<std::string>& attr_names() const { return attr_names_; }
  const std::vector<std::vector<double>>& boundaries() const {
    return boundaries_;
  }

 private:
  // boundaries_[a] holds ascending inner boundaries b_1 < ... < b_{k-1};
  // partition i = (b_i, b_{i+1}]. Keyed by attribute name.
  std::vector<std::string> attr_names_;
  std::vector<std::vector<double>> boundaries_;

  int AttrSlot(const AttributeInfo& attr) const;
};

/// Extension: v-optimal partitioning (Poosala et al., cited in Section 3.2
/// as a candidate "sophisticated partitioning technique from the field of
/// histograms"). Chooses bucket boundaries minimizing the total within-
/// bucket variance of value frequencies via dynamic programming, so regions
/// with uneven frequency get finer partitions.
class VOptimalPartitioner : public Partitioner {
 public:
  /// Builds per-attribute v-optimal boundaries from `table` with
  /// `max_partitions` buckets per attribute. Distinct-value lists are capped
  /// at `max_candidates` pre-aggregated cells to bound the O(B * V^2) DP.
  static VOptimalPartitioner FromTable(const storage::Table& table,
                                       int max_partitions,
                                       int max_candidates = 512);

  /// Rebuilds a partitioner from previously captured state (see accessors
  /// below); used by serve/ to restore a saved featurizer byte-identically.
  static VOptimalPartitioner FromState(
      std::vector<std::string> attr_names,
      std::vector<std::vector<double>> boundaries);

  int NumPartitions(const AttributeInfo& attr, int max_partitions) const override;
  int IndexOf(const AttributeInfo& attr, int max_partitions,
              double value) const override;

  const std::vector<std::string>& attr_names() const { return attr_names_; }
  const std::vector<std::vector<double>>& boundaries() const {
    return boundaries_;
  }

 private:
  // boundaries_[a]: ascending inner boundaries; partition i covers values
  // <= boundaries_[a][i] (and the last partition the rest). Keyed by name.
  std::vector<std::string> attr_names_;
  std::vector<std::vector<double>> boundaries_;

  int AttrSlot(const AttributeInfo& attr) const;
};

/// Attribute-specific partition budgets (Section 3.2: skewed attributes may
/// need a larger n). Columns whose most frequent value exceeds
/// `skew_threshold` of the rows get `base * boost` partitions (capped at
/// 256); all others get `base`. Feed the result into
/// ConjunctionOptions::per_attribute_partitions.
std::vector<int> SkewAwarePartitions(const storage::Table& table, int base,
                                     int boost = 2,
                                     double skew_threshold = 0.2);

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_PARTITIONER_H_
