#include "featurize/range.h"

#include <algorithm>
#include <cmath>

namespace qfcard::featurize {

namespace {

// Step used to close open ranges on continuous attributes (Section 3.1
// suggests "a small step size" for decimal attributes).
double OpenRangeStep(const AttributeInfo& attr) {
  if (attr.integral) return 1.0;
  return std::max(attr.max - attr.min, 1e-12) * 1e-9;
}

}  // namespace

common::Status RangeEncoding::FeaturizeInto(const query::Query& q,
                                            float* out) const {
  // Default: full domain for every attribute.
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    out[2 * a] = 0.0f;
    out[2 * a + 1] = 1.0f;
  }
  for (const query::CompoundPredicate& cp : q.predicates) {
    QFCARD_RETURN_IF_ERROR(schema_.CheckAttr(cp.col.column));
    if (cp.disjuncts.size() != 1) {
      return common::Status::InvalidArgument(
          "Range Predicate Encoding does not support disjunctions");
    }
    const AttributeInfo& attr = schema_.attr(cp.col.column);
    double lo = attr.min;
    double hi = attr.max;
    const double step = OpenRangeStep(attr);
    for (const query::SimplePredicate& p : cp.disjuncts[0].preds) {
      switch (p.op) {
        case query::CmpOp::kEq:
          lo = std::max(lo, p.value);
          hi = std::min(hi, p.value);
          break;
        case query::CmpOp::kGe:
          lo = std::max(lo, p.value);
          break;
        case query::CmpOp::kGt:
          lo = std::max(lo, p.value + step);
          break;
        case query::CmpOp::kLe:
          hi = std::min(hi, p.value);
          break;
        case query::CmpOp::kLt:
          hi = std::min(hi, p.value - step);
          break;
        case query::CmpOp::kNe:
          // Not representable as a closed range; dropped (lossy by design).
          break;
      }
    }
    const double denom = std::max(attr.max - attr.min, 1e-12);
    const double lo_norm = std::clamp((lo - attr.min) / denom, 0.0, 1.0);
    const double hi_norm = std::clamp((hi - attr.min) / denom, 0.0, 1.0);
    // An empty intersection (lo > hi) is encoded as a collapsed inverted
    // range, which no satisfiable query produces; the model can learn it
    // means cardinality ~0.
    out[2 * cp.col.column] = static_cast<float>(lo_norm);
    out[2 * cp.col.column + 1] = static_cast<float>(hi_norm);
  }
  return common::Status::Ok();
}

}  // namespace qfcard::featurize
