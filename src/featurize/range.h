#ifndef QFCARD_FEATURIZE_RANGE_H_
#define QFCARD_FEATURIZE_RANGE_H_

#include "featurize/feature_schema.h"
#include "featurize/featurizer.h"

namespace qfcard::featurize {

/// Range Predicate Encoding (Section 3.1), abbreviated "range". Every point
/// or range predicate is rewritten into a closed range: A = 5 becomes
/// [5, 5], A <= 5 becomes [min(A), 5], and for integral attributes A < 5
/// becomes [min(A), 4] (a small step is used for continuous attributes).
/// Each attribute occupies two entries: the normalized range endpoints
/// [lo, hi] in [0, 1]; attributes without predicates encode the full domain
/// [0, 1].
///
/// Multiple range/point predicates per attribute are intersected into one
/// closed range; not-equal predicates cannot be represented and are dropped
/// (the information loss visible in the paper's Figure 3 at three
/// predicates). Disjunctions are rejected.
class RangeEncoding : public Featurizer {
 public:
  explicit RangeEncoding(FeatureSchema schema) : schema_(std::move(schema)) {}

  int dim() const override { return 2 * schema_.num_attributes(); }
  std::string name() const override { return "range"; }
  common::Status FeaturizeInto(const query::Query& q,
                               float* out) const override;

  const FeatureSchema& schema() const { return schema_; }

 private:
  FeatureSchema schema_;
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_RANGE_H_
