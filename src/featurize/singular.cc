#include "featurize/singular.h"

#include <algorithm>

namespace qfcard::featurize {

common::Status SingularEncoding::FeaturizeInto(const query::Query& q,
                                               float* out) const {
  std::fill(out, out + dim(), 0.0f);
  for (const query::CompoundPredicate& cp : q.predicates) {
    QFCARD_RETURN_IF_ERROR(schema_.CheckAttr(cp.col.column));
    if (cp.disjuncts.size() != 1) {
      return common::Status::InvalidArgument(
          "Singular Predicate Encoding does not support disjunctions");
    }
    // Only the first predicate per attribute fits in the encoding; further
    // predicates on the same attribute are dropped (lossy by design).
    const query::SimplePredicate& p = cp.disjuncts[0].preds[0];
    const AttributeInfo& attr = schema_.attr(cp.col.column);
    float* slot = out + 4 * cp.col.column;
    switch (p.op) {
      case query::CmpOp::kEq:
        slot[0] = 1.0f;
        break;
      case query::CmpOp::kGt:
        slot[1] = 1.0f;
        break;
      case query::CmpOp::kLt:
        slot[2] = 1.0f;
        break;
      case query::CmpOp::kGe:
        slot[0] = 1.0f;
        slot[1] = 1.0f;
        break;
      case query::CmpOp::kLe:
        slot[0] = 1.0f;
        slot[2] = 1.0f;
        break;
      case query::CmpOp::kNe:
        slot[1] = 1.0f;
        slot[2] = 1.0f;
        break;
    }
    const double denom = std::max(attr.max - attr.min, 1e-12);
    const double norm = (p.value - attr.min) / denom;
    slot[3] = static_cast<float>(std::clamp(norm, 0.0, 1.0));
  }
  return common::Status::Ok();
}

}  // namespace qfcard::featurize
