#ifndef QFCARD_FEATURIZE_SINGULAR_H_
#define QFCARD_FEATURIZE_SINGULAR_H_

#include "featurize/feature_schema.h"
#include "featurize/featurizer.h"

namespace qfcard::featurize {

/// Singular Predicate Encoding (Section 2.1.1), the paper's baseline QFT,
/// abbreviated "simple". The feature vector has 4*m entries for m
/// attributes: per attribute a 3-entry operator indicator over {=, >, <}
/// (>= sets = and >, <= sets = and <, <> sets > and <) followed by the
/// min/max-normalized literal.
///
/// Only one predicate per attribute can be represented. When a query has
/// k > 1 predicates on an attribute, the first is kept and the remaining
/// k - 1 are dropped — exactly the information loss Section 3 analyzes.
/// Disjunctions are not representable and are rejected.
class SingularEncoding : public Featurizer {
 public:
  explicit SingularEncoding(FeatureSchema schema)
      : schema_(std::move(schema)) {}

  int dim() const override { return 4 * schema_.num_attributes(); }
  std::string name() const override { return "simple"; }
  common::Status FeaturizeInto(const query::Query& q,
                               float* out) const override;

  const FeatureSchema& schema() const { return schema_; }

 private:
  FeatureSchema schema_;
};

}  // namespace qfcard::featurize

#endif  // QFCARD_FEATURIZE_SINGULAR_H_
