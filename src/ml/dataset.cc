#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/str_util.h"
#include "common/thread_pool.h"

namespace qfcard::ml {

std::vector<float> Model::PredictBatch(const Matrix& x) const {
  std::vector<float> out(static_cast<size_t>(x.rows()));
  common::GlobalPool().ParallelFor(x.rows(), [&](int64_t i) {
    out[static_cast<size_t>(i)] = Predict(x.Row(static_cast<int>(i)));
  });
  return out;
}

common::StatusOr<Dataset> Dataset::FromVectors(
    const std::vector<std::vector<float>>& features,
    const std::vector<float>& labels) {
  if (features.size() != labels.size()) {
    return common::Status::InvalidArgument(common::StrFormat(
        "features (%zu) and labels (%zu) differ in length", features.size(),
        labels.size()));
  }
  Dataset out;
  if (features.empty()) return out;
  const int dim = static_cast<int>(features[0].size());
  out.x = Matrix(static_cast<int>(features.size()), dim);
  for (size_t i = 0; i < features.size(); ++i) {
    if (static_cast<int>(features[i].size()) != dim) {
      return common::Status::InvalidArgument(
          "feature vectors have inconsistent lengths");
    }
    std::memcpy(out.x.Row(static_cast<int>(i)), features[i].data(),
                static_cast<size_t>(dim) * sizeof(float));
  }
  out.y = labels;
  return out;
}

Dataset Dataset::Subset(const std::vector<int>& rows) const {
  Dataset out;
  out.x = Matrix(static_cast<int>(rows.size()), dim());
  out.y.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(out.x.Row(static_cast<int>(i)), x.Row(rows[i]),
                static_cast<size_t>(dim()) * sizeof(float));
    out.y[i] = y[static_cast<size_t>(rows[i])];
  }
  return out;
}

Dataset Dataset::Head(int n) const {
  n = std::min(n, num_rows());
  std::vector<int> rows(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
  return Subset(rows);
}

TrainTestSplit SplitTrainTest(const Dataset& data, double train_fraction,
                              common::Rng& rng) {
  std::vector<int> order(static_cast<size_t>(data.num_rows()));
  for (int i = 0; i < data.num_rows(); ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(order);
  const int n_train = static_cast<int>(
      std::llround(train_fraction * static_cast<double>(data.num_rows())));
  const std::vector<int> train_rows(order.begin(), order.begin() + n_train);
  const std::vector<int> test_rows(order.begin() + n_train, order.end());
  return TrainTestSplit{data.Subset(train_rows), data.Subset(test_rows)};
}

float CardToLabel(double card) {
  return static_cast<float>(std::log2(std::max(card, 1.0)));
}

double LabelToCard(float label) {
  return std::max(std::exp2(static_cast<double>(label)), 1.0);
}

}  // namespace qfcard::ml
