#ifndef QFCARD_ML_DATASET_H_
#define QFCARD_ML_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/matrix.h"

namespace qfcard::ml {

/// A supervised regression dataset: feature matrix X (one row per query's
/// feature vector) and labels y. Throughout qfcard, y holds log2 of the true
/// cardinality (models learn in log space; q-errors are computed in natural
/// space).
struct Dataset {
  Matrix x;
  std::vector<float> y;

  int num_rows() const { return x.rows(); }
  int dim() const { return x.cols(); }

  /// Builds a dataset from per-sample feature vectors (all the same length)
  /// and labels.
  static common::StatusOr<Dataset> FromVectors(
      const std::vector<std::vector<float>>& features,
      const std::vector<float>& labels);

  /// Returns the subset with the given row indices.
  Dataset Subset(const std::vector<int>& rows) const;

  /// Returns the first `n` rows (n clamped to num_rows()).
  Dataset Head(int n) const;
};

/// Shuffles row order deterministically, then splits into train (first
/// `train_fraction`) and test.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit SplitTrainTest(const Dataset& data, double train_fraction,
                              common::Rng& rng);

/// Converts a cardinality (>= 0) to the label space: log2(max(card, 1)).
float CardToLabel(double card);
/// Converts a label-space prediction back to a cardinality estimate,
/// clamped to >= 1 (as in the paper's evaluation: "all estimates are >= 1").
double LabelToCard(float label);

/// Base interface of every trainable regressor in the stack. Models are
/// input-agnostic (Section 2.2): for a fixed input length they accept any
/// numeric vector, which is what makes QFTs freely swappable.
class Model {
 public:
  virtual ~Model() = default;

  /// Trains on `train`; `valid` (optional) enables early stopping.
  virtual common::Status Fit(const Dataset& train, const Dataset* valid) = 0;

  /// Predicts the label for a feature vector of length dim(). Must be
  /// const-thread-safe: PredictBatch calls it concurrently for distinct
  /// rows (all models here are pure functions of frozen parameters).
  virtual float Predict(const float* x) const = 0;

  /// Approximate serialized model size, for the Section 5.7 comparison.
  virtual size_t SizeBytes() const = 0;

  virtual std::string name() const = 0;

  /// Serializes the trained model to bytes (same-machine persistence).
  virtual common::Status Serialize(std::vector<uint8_t>* out) const {
    (void)out;
    return common::Status::Unimplemented(name() + " has no serialization");
  }
  /// Restores a model serialized by Serialize(). Hyperparameters that only
  /// affect training need not match.
  virtual common::Status Deserialize(const std::vector<uint8_t>& data) {
    (void)data;
    return common::Status::Unimplemented(name() + " has no serialization");
  }

  /// Length of the feature vectors Predict expects, or -1 when unknown
  /// (untrained, or the model does not track it). Loaders cross-check this
  /// against the restored featurizer's dim() so a model bundle paired with
  /// the wrong featurizer fails cleanly instead of reading out of bounds.
  virtual int InputDim() const { return -1; }

  /// Predicts all rows of `x`, in row order, fanning Predict out over the
  /// global thread pool (QFCARD_THREADS). Each row writes its own output
  /// slot, so results are identical at every pool size.
  std::vector<float> PredictBatch(const Matrix& x) const;
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_DATASET_H_
