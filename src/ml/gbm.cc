#include "ml/gbm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/metrics.h"
#include "ml/serialize.h"

namespace qfcard::ml {

common::Status GradientBoosting::Fit(const Dataset& train,
                                     const Dataset* valid) {
  trees_.clear();
  if (train.num_rows() == 0) {
    return common::Status::InvalidArgument("empty training set");
  }
  num_features_ = train.dim();
  double sum = 0.0;
  for (const float v : train.y) sum += v;
  base_ = static_cast<float>(sum / train.num_rows());

  const BinnedFeatures binned = BinnedFeatures::Build(train.x, params_.max_bins);
  common::Rng rng(params_.seed);

  std::vector<float> residuals(train.y.size());
  std::vector<float> pred(train.y.size(), base_);
  std::vector<float> valid_pred;
  if (valid != nullptr) valid_pred.assign(valid->y.size(), base_);

  RegressionTree::Params tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = params_.min_samples_leaf;
  tree_params.colsample = params_.colsample;

  double best_valid_rmse = std::numeric_limits<double>::infinity();
  int best_size = 0;

  std::vector<int> rows;
  for (int t = 0; t < params_.num_trees; ++t) {
    for (size_t i = 0; i < residuals.size(); ++i) {
      residuals[i] = train.y[i] - pred[i];
    }
    rows.clear();
    if (params_.subsample >= 1.0) {
      rows.resize(static_cast<size_t>(train.num_rows()));
      for (int i = 0; i < train.num_rows(); ++i) rows[static_cast<size_t>(i)] = i;
    } else {
      for (int i = 0; i < train.num_rows(); ++i) {
        if (rng.Bernoulli(params_.subsample)) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(0);
    }
    RegressionTree tree;
    tree.Fit(binned, residuals, rows, tree_params, &rng);
    const float lr = static_cast<float>(params_.learning_rate);
    for (int i = 0; i < train.num_rows(); ++i) {
      pred[static_cast<size_t>(i)] += lr * tree.Predict(train.x.Row(i));
    }
    if (valid != nullptr) {
      for (int i = 0; i < valid->num_rows(); ++i) {
        valid_pred[static_cast<size_t>(i)] += lr * tree.Predict(valid->x.Row(i));
      }
    }
    trees_.push_back(std::move(tree));

    if (valid != nullptr && params_.early_stopping_rounds > 0) {
      const double rmse = Rmse(valid_pred, valid->y);
      if (rmse < best_valid_rmse - 1e-9) {
        best_valid_rmse = rmse;
        best_size = static_cast<int>(trees_.size());
      } else if (static_cast<int>(trees_.size()) - best_size >=
                 params_.early_stopping_rounds) {
        trees_.resize(static_cast<size_t>(best_size));
        break;
      }
    }
  }
  return common::Status::Ok();
}

float GradientBoosting::Predict(const float* x) const {
  double acc = base_;
  for (const RegressionTree& tree : trees_) {
    acc += params_.learning_rate * tree.Predict(x);
  }
  return static_cast<float>(acc);
}

size_t GradientBoosting::SizeBytes() const {
  size_t bytes = sizeof(*this);
  for (const RegressionTree& tree : trees_) bytes += tree.SizeBytes();
  return bytes;
}

namespace {

constexpr uint32_t kGbmMagic = 0x5147424d;  // "QGBM"

// A corrupt node list must not survive into Predict, which walks child
// indices and reads x[feature] unchecked. Trees are serialized in build
// order — children are always appended after their parent — so requiring
// child > parent both rejects cycles and guarantees Predict terminates.
common::Status ValidateTree(const std::vector<TreeNode>& nodes,
                            int num_features) {
  const int n = static_cast<int>(nodes.size());
  if (n == 0) {
    return common::Status::InvalidArgument("serialized GB tree is empty");
  }
  for (int i = 0; i < n; ++i) {
    const TreeNode& node = nodes[static_cast<size_t>(i)];
    const bool leaf = node.left < 0 && node.right < 0;
    if (leaf) continue;
    if (node.feature < 0 || node.feature >= num_features) {
      return common::Status::InvalidArgument(
          "serialized GB tree references a feature out of range");
    }
    if (node.left <= i || node.left >= n || node.right <= i ||
        node.right >= n) {
      return common::Status::InvalidArgument(
          "serialized GB tree has a child index out of range");
    }
  }
  return common::Status::Ok();
}

}  // namespace

common::Status GradientBoosting::Serialize(std::vector<uint8_t>* out) const {
  ByteWriter writer(out);
  writer.Write(kGbmMagic);
  writer.Write(base_);
  writer.Write(params_.learning_rate);  // needed at prediction time
  writer.Write<int32_t>(num_features_);
  writer.Write<uint32_t>(static_cast<uint32_t>(trees_.size()));
  for (const RegressionTree& tree : trees_) {
    writer.WriteVector(tree.nodes());
  }
  return common::Status::Ok();
}

common::Status GradientBoosting::Deserialize(const std::vector<uint8_t>& data) {
  ByteReader reader(data);
  uint32_t magic = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic != kGbmMagic) {
    return common::Status::InvalidArgument("not a serialized GB model");
  }
  float base = 0.0f;
  double learning_rate = 0.0;
  int32_t num_features = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&base));
  QFCARD_RETURN_IF_ERROR(reader.Read(&learning_rate));
  QFCARD_RETURN_IF_ERROR(reader.Read(&num_features));
  if (num_features <= 0 ||
      !(learning_rate > 0.0 && learning_rate <= 1e6)) {
    return common::Status::InvalidArgument(
        "serialized GB model has a corrupt header");
  }
  uint32_t num_trees = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&num_trees));
  // Each tree costs at least its 8-byte node-count prefix; a count claiming
  // more trees than the input can hold is corrupt (and would otherwise drive
  // a huge reserve below).
  if (num_trees > reader.remaining() / sizeof(uint64_t)) {
    return common::Status::OutOfRange(
        "serialized GB tree count exceeds remaining input");
  }
  std::vector<RegressionTree> trees;
  trees.reserve(num_trees);
  for (uint32_t t = 0; t < num_trees; ++t) {
    std::vector<TreeNode> nodes;
    QFCARD_RETURN_IF_ERROR(reader.ReadVector(&nodes));
    QFCARD_RETURN_IF_ERROR(ValidateTree(nodes, num_features));
    RegressionTree tree;
    tree.SetNodes(std::move(nodes));
    trees.push_back(std::move(tree));
  }
  base_ = base;
  params_.learning_rate = learning_rate;
  num_features_ = num_features;
  trees_ = std::move(trees);
  return common::Status::Ok();
}

}  // namespace qfcard::ml
