#ifndef QFCARD_ML_GBM_H_
#define QFCARD_ML_GBM_H_

#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/tree.h"

namespace qfcard::ml {

/// Hyperparameters of GradientBoosting. Defaults are the configuration the
/// repository's grid search (grid_search.h) selects on the forest workloads.
struct GbmParams {
  int num_trees = 150;
  double learning_rate = 0.1;
  int max_depth = 6;
  int min_samples_leaf = 20;
  int max_bins = 64;
  double subsample = 1.0;   ///< row fraction per tree (stochastic GB)
  double colsample = 1.0;   ///< feature fraction per node
  int early_stopping_rounds = 20;  ///< 0 disables; needs a valid set
  uint64_t seed = 17;
};

/// Gradient boosting with L2 loss on log-cardinality labels
/// (Section 2.2.2): \hat f(x) = sum_p lambda_p F_p(x) + c, where every F_p
/// is a histogram regression tree fit to the residuals of the preceding
/// ensemble and lambda_p is the learning rate.
class GradientBoosting : public Model {
 public:
  explicit GradientBoosting(GbmParams params = {}) : params_(params) {}

  common::Status Fit(const Dataset& train, const Dataset* valid) override;
  float Predict(const float* x) const override;
  size_t SizeBytes() const override;
  std::string name() const override { return "GB"; }
  common::Status Serialize(std::vector<uint8_t>* out) const override;
  common::Status Deserialize(const std::vector<uint8_t>& data) override;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const GbmParams& params() const { return params_; }
  /// Feature-vector length seen by Fit (and persisted by Serialize); -1
  /// before training.
  int InputDim() const override { return num_features_; }

 private:
  GbmParams params_;
  float base_ = 0.0f;
  int num_features_ = -1;
  std::vector<RegressionTree> trees_;
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_GBM_H_
