#include "ml/grid_search.h"

#include <limits>

#include "common/thread_pool.h"
#include "ml/metrics.h"

namespace qfcard::ml {

common::StatusOr<GbmTuneResult> TuneGbm(const Dataset& train,
                                        const Dataset& valid,
                                        const GbmGrid& grid,
                                        const GbmParams& base) {
  if (train.num_rows() == 0 || valid.num_rows() == 0) {
    return common::Status::InvalidArgument(
        "grid search needs non-empty train and valid sets");
  }
  // Materialize the grid in nested-loop order, then train/score every
  // configuration in parallel (each owns its model; train/valid are only
  // read). The serial argmin below keeps the selected config identical to
  // the historical nested-loop scan at every thread count.
  std::vector<GbmParams> configs;
  for (const int depth : grid.max_depth) {
    for (const double lr : grid.learning_rate) {
      for (const int trees : grid.num_trees) {
        for (const int min_leaf : grid.min_samples_leaf) {
          GbmParams params = base;
          params.max_depth = depth;
          params.learning_rate = lr;
          params.num_trees = trees;
          params.min_samples_leaf = min_leaf;
          configs.push_back(params);
        }
      }
    }
  }
  std::vector<double> mean_qerror(configs.size(), 0.0);
  QFCARD_RETURN_IF_ERROR(common::GlobalPool().ParallelForStatus(
      static_cast<int64_t>(configs.size()), [&](int64_t i) {
        const size_t idx = static_cast<size_t>(i);
        GradientBoosting model(configs[idx]);
        QFCARD_RETURN_IF_ERROR(model.Fit(train, &valid));
        double sum = 0.0;
        for (int r = 0; r < valid.num_rows(); ++r) {
          const double truth = LabelToCard(valid.y[static_cast<size_t>(r)]);
          const double est = LabelToCard(model.Predict(valid.x.Row(r)));
          sum += QError(truth, est);
        }
        mean_qerror[idx] = sum / valid.num_rows();
        return common::Status::Ok();
      }));
  GbmTuneResult result;
  result.valid_mean_qerror = std::numeric_limits<double>::infinity();
  result.configs_tried = static_cast<int>(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    if (mean_qerror[i] < result.valid_mean_qerror) {
      result.valid_mean_qerror = mean_qerror[i];
      result.params = configs[i];
    }
  }
  return result;
}

}  // namespace qfcard::ml
