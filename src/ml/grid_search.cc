#include "ml/grid_search.h"

#include <limits>

#include "ml/metrics.h"

namespace qfcard::ml {

common::StatusOr<GbmTuneResult> TuneGbm(const Dataset& train,
                                        const Dataset& valid,
                                        const GbmGrid& grid,
                                        const GbmParams& base) {
  if (train.num_rows() == 0 || valid.num_rows() == 0) {
    return common::Status::InvalidArgument(
        "grid search needs non-empty train and valid sets");
  }
  GbmTuneResult result;
  result.valid_mean_qerror = std::numeric_limits<double>::infinity();
  for (const int depth : grid.max_depth) {
    for (const double lr : grid.learning_rate) {
      for (const int trees : grid.num_trees) {
        for (const int min_leaf : grid.min_samples_leaf) {
          GbmParams params = base;
          params.max_depth = depth;
          params.learning_rate = lr;
          params.num_trees = trees;
          params.min_samples_leaf = min_leaf;
          GradientBoosting model(params);
          QFCARD_RETURN_IF_ERROR(model.Fit(train, &valid));
          double sum = 0.0;
          for (int i = 0; i < valid.num_rows(); ++i) {
            const double truth = LabelToCard(valid.y[static_cast<size_t>(i)]);
            const double est = LabelToCard(model.Predict(valid.x.Row(i)));
            sum += QError(truth, est);
          }
          const double mean = sum / valid.num_rows();
          ++result.configs_tried;
          if (mean < result.valid_mean_qerror) {
            result.valid_mean_qerror = mean;
            result.params = params;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace qfcard::ml
