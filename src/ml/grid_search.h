#ifndef QFCARD_ML_GRID_SEARCH_H_
#define QFCARD_ML_GRID_SEARCH_H_

#include <vector>

#include "common/status.h"
#include "ml/gbm.h"

namespace qfcard::ml {

/// Hyperparameter grid for GradientBoosting. The paper trains GB "with full
/// hyperparameter tuning" (Section 5, experimental setup); this grid search
/// reproduces that step, selecting by mean q-error on the validation split.
struct GbmGrid {
  std::vector<int> max_depth{4, 6, 8};
  std::vector<double> learning_rate{0.05, 0.1};
  std::vector<int> num_trees{100, 200};
  std::vector<int> min_samples_leaf{10, 20};
};

/// Result of a grid search: the best parameters and their validation score.
struct GbmTuneResult {
  GbmParams params;
  double valid_mean_qerror = 0.0;
  int configs_tried = 0;
};

/// Exhaustively evaluates `grid` (all other params taken from `base`),
/// training on `train` and scoring mean q-error on `valid`.
common::StatusOr<GbmTuneResult> TuneGbm(const Dataset& train,
                                        const Dataset& valid,
                                        const GbmGrid& grid,
                                        const GbmParams& base = {});

}  // namespace qfcard::ml

#endif  // QFCARD_ML_GRID_SEARCH_H_
