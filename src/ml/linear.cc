#include "ml/linear.h"

#include <cmath>

#include "ml/serialize.h"

namespace qfcard::ml {

namespace {

// In-place Cholesky solve of A x = b for symmetric positive-definite A
// (row-major d x d). Returns false if A is not positive definite.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, int d) {
  // Decompose A = L L^T (lower triangle stored in a).
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[static_cast<size_t>(i) * d + j];
      for (int k = 0; k < j; ++k) {
        sum -= a[static_cast<size_t>(i) * d + k] * a[static_cast<size_t>(j) * d + k];
      }
      if (i == j) {
        if (sum <= 0.0) return false;
        a[static_cast<size_t>(i) * d + j] = std::sqrt(sum);
      } else {
        a[static_cast<size_t>(i) * d + j] = sum / a[static_cast<size_t>(j) * d + j];
      }
    }
  }
  // Forward substitution L y = b.
  for (int i = 0; i < d; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) sum -= a[static_cast<size_t>(i) * d + k] * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i) * d + i];
  }
  // Back substitution L^T x = y.
  for (int i = d - 1; i >= 0; --i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = i + 1; k < d; ++k) sum -= a[static_cast<size_t>(k) * d + i] * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i) * d + i];
  }
  return true;
}

}  // namespace

common::Status LinearRegression::Fit(const Dataset& train,
                                     const Dataset* valid) {
  (void)valid;  // no early stopping for the closed-form solver
  if (train.num_rows() == 0) {
    return common::Status::InvalidArgument("empty training set");
  }
  const int d = train.dim() + 1;  // + bias
  std::vector<double> xtx(static_cast<size_t>(d) * static_cast<size_t>(d), 0.0);
  std::vector<double> xty(static_cast<size_t>(d), 0.0);
  std::vector<double> row(static_cast<size_t>(d), 1.0);
  for (int r = 0; r < train.num_rows(); ++r) {
    const float* x = train.x.Row(r);
    for (int i = 0; i < train.dim(); ++i) row[static_cast<size_t>(i)] = x[i];
    row[static_cast<size_t>(train.dim())] = 1.0;
    const double y = train.y[static_cast<size_t>(r)];
    for (int i = 0; i < d; ++i) {
      const double xi = row[static_cast<size_t>(i)];
      if (xi == 0.0) continue;
      xty[static_cast<size_t>(i)] += xi * y;
      double* out = xtx.data() + static_cast<size_t>(i) * d;
      for (int j = 0; j <= i; ++j) out[j] += xi * row[static_cast<size_t>(j)];
    }
  }
  // Mirror the lower triangle and regularize.
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) {
      xtx[static_cast<size_t>(i) * d + j] = xtx[static_cast<size_t>(j) * d + i];
    }
  }
  double lambda = l2_;
  for (int attempt = 0; attempt < 6; ++attempt) {
    std::vector<double> a = xtx;
    std::vector<double> b = xty;
    for (int i = 0; i < d; ++i) a[static_cast<size_t>(i) * d + i] += lambda;
    if (CholeskySolve(a, b, d)) {
      weights_ = std::move(b);
      return common::Status::Ok();
    }
    lambda = std::max(lambda, 1e-6) * 10.0;
  }
  return common::Status::Internal("normal equations not positive definite");
}

common::Status LinearRegression::Serialize(std::vector<uint8_t>* out) const {
  ByteWriter writer(out);
  writer.Write<uint32_t>(0x514c4e31);  // "QLN1"
  writer.WriteVector(weights_);
  return common::Status::Ok();
}

common::Status LinearRegression::Deserialize(const std::vector<uint8_t>& data) {
  ByteReader reader(data);
  uint32_t magic = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic != 0x514c4e31) {
    return common::Status::InvalidArgument("not a serialized linear model");
  }
  return reader.ReadVector(&weights_);
}

float LinearRegression::Predict(const float* x) const {
  if (weights_.empty()) return 0.0f;
  double acc = weights_.back();  // bias
  for (size_t i = 0; i + 1 < weights_.size(); ++i) {
    acc += weights_[i] * x[i];
  }
  return static_cast<float>(acc);
}

}  // namespace qfcard::ml
