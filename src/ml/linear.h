#ifndef QFCARD_ML_LINEAR_H_
#define QFCARD_ML_LINEAR_H_

#include <string>
#include <vector>

#include "ml/dataset.h"

namespace qfcard::ml {

/// Ridge regression via the normal equations (Cholesky). The paper notes it
/// also tested linear models but excluded them because "their estimates are
/// worse by a significant factor" — this implementation exists to reproduce
/// that observation and as the simplest Model for tests.
class LinearRegression : public Model {
 public:
  explicit LinearRegression(double l2 = 1.0) : l2_(l2) {}

  common::Status Fit(const Dataset& train, const Dataset* valid) override;
  float Predict(const float* x) const override;
  size_t SizeBytes() const override {
    return weights_.size() * sizeof(double);
  }
  std::string name() const override { return "Linear"; }
  common::Status Serialize(std::vector<uint8_t>* out) const override;
  common::Status Deserialize(const std::vector<uint8_t>& data) override;
  int InputDim() const override {
    return weights_.empty() ? -1 : static_cast<int>(weights_.size()) - 1;
  }

 private:
  double l2_;
  std::vector<double> weights_;  // last entry = bias
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_LINEAR_H_
