#include "ml/matrix.h"

namespace qfcard::ml {

void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  // out[m x n] += a[m x k] * b[k x n]; i-k-j order keeps b row-contiguous.
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* ai = a.Row(i);
    float* oi = out.Row(i);
    for (int kk = 0; kk < k; ++kk) {
      const float av = ai[kk];
      if (av == 0.0f) continue;
      const float* bk = b.Row(kk);
      for (int j = 0; j < n; ++j) oi[j] += av * bk[j];
    }
  }
}

void GemmBTAccumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  // out[m x k] += a[m x n] * b^T, b is [k x n]; dot products of rows.
  const int m = a.rows();
  const int n = a.cols();
  const int k = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* ai = a.Row(i);
    float* oi = out.Row(i);
    for (int j = 0; j < k; ++j) {
      const float* bj = b.Row(j);
      float acc = 0.0f;
      for (int t = 0; t < n; ++t) acc += ai[t] * bj[t];
      oi[j] += acc;
    }
  }
}

void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  // out[n x k] += a^T * b, a is [m x n], b is [m x k].
  const int m = a.rows();
  const int n = a.cols();
  const int k = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* ai = a.Row(i);
    const float* bi = b.Row(i);
    for (int t = 0; t < n; ++t) {
      const float av = ai[t];
      if (av == 0.0f) continue;
      float* ot = out.Row(t);
      for (int j = 0; j < k; ++j) ot[j] += av * bi[j];
    }
  }
}

}  // namespace qfcard::ml
