#ifndef QFCARD_ML_MATRIX_H_
#define QFCARD_ML_MATRIX_H_

#include <cstddef>
#include <vector>

namespace qfcard::ml {

/// Dense row-major float matrix; the only tensor type the from-scratch ML
/// stack needs.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  float& At(int r, int c) {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  float At(int r, int c) const {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  float* Row(int r) {
    return data_.data() + static_cast<size_t>(r) * static_cast<size_t>(cols_);
  }
  const float* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * static_cast<size_t>(cols_);
  }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  size_t SizeBytes() const { return data_.size() * sizeof(float); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// out[m x n] += a[m x k] * b[k x n]. Plain blocked loops; sized for the
/// small dense layers used here.
void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// out[m x k] += a[m x n] * b^T where b is [k x n] (i.e. multiply by the
/// transpose). Used for backpropagation.
void GemmBTAccumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// out[n x k] += a^T * b where a is [m x n], b is [m x k]. Weight gradients.
void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace qfcard::ml

#endif  // QFCARD_ML_MATRIX_H_
