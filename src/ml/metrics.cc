#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace qfcard::ml {

double QError(double truth, double estimate) {
  const double x = std::max(truth, 1.0);
  const double e = std::max(estimate, 1.0);
  return std::max(x / e, e / x);
}

QErrorSummary QErrorSummary::FromErrors(std::vector<double> errors) {
  QErrorSummary s;
  s.count = errors.size();
  if (errors.empty()) return s;
  std::sort(errors.begin(), errors.end());
  double sum = 0.0;
  for (const double e : errors) sum += e;
  s.mean = sum / static_cast<double>(errors.size());
  s.p01 = QuantileSorted(errors, 0.01);
  s.p25 = QuantileSorted(errors, 0.25);
  s.median = QuantileSorted(errors, 0.50);
  s.p75 = QuantileSorted(errors, 0.75);
  s.p90 = QuantileSorted(errors, 0.90);
  s.p95 = QuantileSorted(errors, 0.95);
  s.p99 = QuantileSorted(errors, 0.99);
  s.max = errors.back();
  return s;
}

std::string QErrorSummary::ToString() const {
  return common::StrFormat(
      "n=%zu mean=%.2f median=%.2f p25=%.2f p75=%.2f p99=%.2f max=%.2f",
      count, mean, median, p25, p75, p99, max);
}

std::vector<double> QErrors(const std::vector<double>& truths,
                            const std::vector<double>& estimates) {
  std::vector<double> out;
  const size_t n = std::min(truths.size(), estimates.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(QError(truths[i], estimates[i]));
  return out;
}

double Rmse(const std::vector<float>& a, const std::vector<float>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace qfcard::ml
