#ifndef QFCARD_ML_METRICS_H_
#define QFCARD_ML_METRICS_H_

#include <string>
#include <vector>

#include "common/stats.h"

namespace qfcard::ml {

/// The q-error metric (Moerkotte et al.): max(x/e, e/x) for true cardinality
/// x and estimate e, both clamped to >= 1 (the paper considers only
/// non-empty results and estimates >= 1). Relative, symmetric, and >= 1.
double QError(double truth, double estimate);

/// Distribution summary of a q-error sample, matching the statistics the
/// paper reports: mean, median, box-plot quantiles (25/75), whiskers
/// (1/99), 90/95, and max.
struct QErrorSummary {
  size_t count = 0;
  double mean = 0.0;
  double p01 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// Computes the summary; `errors` is consumed (sorted in place).
  static QErrorSummary FromErrors(std::vector<double> errors);

  /// "mean=3.2 median=1.5 p99=20.1 max=45.5" style line.
  std::string ToString() const;
};

/// Convenience: q-errors for paired truths/estimates.
std::vector<double> QErrors(const std::vector<double>& truths,
                            const std::vector<double>& estimates);

/// Linear-interpolated quantile of a sorted sample, q in [0, 1]. The
/// implementation lives in common/stats.h (obs/ needs it below ml/ in the
/// layer order); this alias keeps the historical ml:: spelling working.
inline double QuantileSorted(const std::vector<double>& sorted, double q) {
  return common::QuantileSorted(sorted, q);
}

/// Root mean squared error between paired vectors (label space).
double Rmse(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace qfcard::ml

#endif  // QFCARD_ML_METRICS_H_
