#include "ml/mscn.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace qfcard::ml {

namespace {

// Copies a set into a [set_size x dim] matrix.
Matrix SetToMatrix(const std::vector<std::vector<float>>& set, int dim) {
  Matrix m(static_cast<int>(set.size()), dim);
  for (size_t i = 0; i < set.size(); ++i) {
    std::memcpy(m.Row(static_cast<int>(i)), set[i].data(),
                static_cast<size_t>(dim) * sizeof(float));
  }
  return m;
}

}  // namespace

Mscn::Mscn(int table_dim, int join_dim, int pred_dim, MscnParams params)
    : params_(params),
      table_dim_(table_dim),
      join_dim_(join_dim),
      pred_dim_(pred_dim) {
  common::Rng rng(params_.seed);
  const int h = params_.hidden;
  table_mlp_.Init({table_dim_, h, h}, /*relu_last=*/true, rng);
  join_mlp_.Init({join_dim_, h, h}, /*relu_last=*/true, rng);
  pred_mlp_.Init({pred_dim_, h, h}, /*relu_last=*/true, rng);
  out_mlp_.Init({3 * h, h, 1}, /*relu_last=*/false, rng);
}

void Mscn::PoolPredict(const internal::Mlp& mlp,
                       const std::vector<std::vector<float>>& set,
                       float* out) const {
  const int h = params_.hidden;
  std::fill(out, out + h, 0.0f);
  if (set.empty()) return;
  std::vector<float> tmp(static_cast<size_t>(h), 0.0f);
  for (const std::vector<float>& elem : set) {
    mlp.PredictOne(elem.data(), tmp.data());
    for (int i = 0; i < h; ++i) out[i] += tmp[static_cast<size_t>(i)];
  }
  const float inv = 1.0f / static_cast<float>(set.size());
  for (int i = 0; i < h; ++i) out[i] *= inv;
}

float Mscn::Predict(const featurize::MscnSample& sample) const {
  const int h = params_.hidden;
  std::vector<float> concat(static_cast<size_t>(3 * h), 0.0f);
  PoolPredict(table_mlp_, sample.table_vecs, concat.data());
  PoolPredict(join_mlp_, sample.join_vecs, concat.data() + h);
  PoolPredict(pred_mlp_, sample.pred_vecs, concat.data() + 2 * h);
  float out = 0.0f;
  out_mlp_.PredictOne(concat.data(), &out);
  return out;
}

common::Status Mscn::Fit(
    const std::vector<featurize::MscnSample>& samples,
    const std::vector<float>& labels,
    const std::vector<featurize::MscnSample>* valid_samples,
    const std::vector<float>* valid_labels) {
  if (samples.size() != labels.size()) {
    return common::Status::InvalidArgument("samples/labels length mismatch");
  }
  if (samples.empty()) {
    return common::Status::InvalidArgument("empty training set");
  }
  common::Rng rng(params_.seed + 1);
  const int h = params_.hidden;
  std::vector<int> order(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) order[i] = static_cast<int>(i);

  double best_valid = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  int steps = 0;
  const int n = static_cast<int>(samples.size());

  for (int epoch = 0; epoch < params_.max_epochs && steps < params_.max_steps;
       ++epoch) {
    rng.Shuffle(order);
    for (int start = 0; start < n && steps < params_.max_steps;
         start += params_.batch_size) {
      const int bs = std::min(params_.batch_size, n - start);
      for (int bi = 0; bi < bs; ++bi) {
        const featurize::MscnSample& s =
            samples[static_cast<size_t>(order[static_cast<size_t>(start + bi)])];
        const float y =
            labels[static_cast<size_t>(order[static_cast<size_t>(start + bi)])];

        // Forward: per-set MLPs over set elements, average pool, concat.
        Matrix concat(1, 3 * h);
        struct SetState {
          internal::Mlp* mlp;
          const std::vector<std::vector<float>>* set;
          int dim;
          bool active = false;
        };
        SetState states[3] = {
            {&table_mlp_, &s.table_vecs, table_dim_, false},
            {&join_mlp_, &s.join_vecs, join_dim_, false},
            {&pred_mlp_, &s.pred_vecs, pred_dim_, false},
        };
        for (int k = 0; k < 3; ++k) {
          if (states[k].set->empty()) continue;
          states[k].active = true;
          const Matrix& out =
              states[k].mlp->Forward(SetToMatrix(*states[k].set, states[k].dim));
          const float inv = 1.0f / static_cast<float>(out.rows());
          for (int r = 0; r < out.rows(); ++r) {
            const float* row = out.Row(r);
            for (int c = 0; c < h; ++c) concat.At(0, k * h + c) += row[c] * inv;
          }
          // Backward for this set happens after the output MLP's backward;
          // its activation cache stays valid because each Mlp caches its own.
        }
        const Matrix& yhat = out_mlp_.Forward(concat);
        Matrix grad(1, 1);
        grad.At(0, 0) = 2.0f * (yhat.At(0, 0) - y);
        const Matrix grad_concat =
            out_mlp_.Backward(grad, /*need_input_grad=*/true);
        for (int k = 0; k < 3; ++k) {
          if (!states[k].active) continue;
          const int set_size = static_cast<int>(states[k].set->size());
          Matrix gset(set_size, h);
          const float inv = 1.0f / static_cast<float>(set_size);
          for (int r = 0; r < set_size; ++r) {
            for (int c = 0; c < h; ++c) {
              gset.At(r, c) = grad_concat.At(0, k * h + c) * inv;
            }
          }
          states[k].mlp->Backward(gset, /*need_input_grad=*/false);
        }
      }
      table_mlp_.AdamStep(params_.learning_rate, bs);
      join_mlp_.AdamStep(params_.learning_rate, bs);
      pred_mlp_.AdamStep(params_.learning_rate, bs);
      out_mlp_.AdamStep(params_.learning_rate, bs);
      ++steps;
    }
    if (valid_samples != nullptr && valid_labels != nullptr &&
        params_.early_stopping_rounds > 0 && !valid_samples->empty()) {
      double se = 0.0;
      for (size_t i = 0; i < valid_samples->size(); ++i) {
        const double d = Predict((*valid_samples)[i]) - (*valid_labels)[i];
        se += d * d;
      }
      const double rmse = std::sqrt(se / static_cast<double>(valid_samples->size()));
      if (rmse < best_valid - 1e-9) {
        best_valid = rmse;
        epochs_since_best = 0;
      } else if (++epochs_since_best >= params_.early_stopping_rounds) {
        break;
      }
    }
  }
  return common::Status::Ok();
}

common::Status Mscn::Serialize(std::vector<uint8_t>* out) const {
  ByteWriter writer(out);
  writer.Write<uint32_t>(0x514d534e);  // "QMSN"
  table_mlp_.Serialize(writer);
  join_mlp_.Serialize(writer);
  pred_mlp_.Serialize(writer);
  out_mlp_.Serialize(writer);
  return common::Status::Ok();
}

common::Status Mscn::Deserialize(const std::vector<uint8_t>& data) {
  ByteReader reader(data);
  uint32_t magic = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic != 0x514d534e) {
    return common::Status::InvalidArgument("not a serialized MSCN model");
  }
  QFCARD_RETURN_IF_ERROR(table_mlp_.Deserialize(reader));
  QFCARD_RETURN_IF_ERROR(join_mlp_.Deserialize(reader));
  QFCARD_RETURN_IF_ERROR(pred_mlp_.Deserialize(reader));
  QFCARD_RETURN_IF_ERROR(out_mlp_.Deserialize(reader));
  if (table_mlp_.input_dim() != table_dim_ ||
      join_mlp_.input_dim() != join_dim_ ||
      pred_mlp_.input_dim() != pred_dim_) {
    return common::Status::InvalidArgument(
        "serialized MSCN dimensions do not match this featurizer");
  }
  // Predict pools into params_.hidden-wide slots, so the restored hidden
  // width must match the constructed architecture, not just the input dims.
  const int h = params_.hidden;
  if (table_mlp_.output_dim() != h || join_mlp_.output_dim() != h ||
      pred_mlp_.output_dim() != h || out_mlp_.input_dim() != 3 * h ||
      out_mlp_.output_dim() != 1) {
    return common::Status::InvalidArgument(
        "serialized MSCN hidden width does not match this instance");
  }
  return common::Status::Ok();
}

size_t Mscn::SizeBytes() const {
  return (table_mlp_.NumParams() + join_mlp_.NumParams() +
          pred_mlp_.NumParams() + out_mlp_.NumParams()) *
         sizeof(float);
}

}  // namespace qfcard::ml
