#ifndef QFCARD_ML_MSCN_H_
#define QFCARD_ML_MSCN_H_

#include <vector>

#include "common/status.h"
#include "featurize/mscn_featurizer.h"
#include "ml/nn.h"

namespace qfcard::ml {

/// Hyperparameters for Mscn.
struct MscnParams {
  int hidden = 32;
  int batch_size = 64;
  int max_epochs = 60;
  int max_steps = 2500;
  double learning_rate = 1e-3;
  int early_stopping_rounds = 8;  ///< epochs; 0 disables (needs valid set)
  uint64_t seed = 29;
};

/// Multi-Set Convolutional Network (Kipf et al., Section 2.2.1): the global
/// model of the paper's evaluation. Three per-set MLPs (tables, joins,
/// predicates) are applied to every element of their set and average-pooled;
/// the pooled representations are concatenated and fed to an output MLP that
/// regresses the log2 cardinality.
class Mscn {
 public:
  /// Set-element dimensions must match the producing MscnFeaturizer.
  Mscn(int table_dim, int join_dim, int pred_dim, MscnParams params = {});

  /// Trains on featurized samples with log2-cardinality labels. The
  /// optional validation set drives early stopping.
  common::Status Fit(const std::vector<featurize::MscnSample>& samples,
                     const std::vector<float>& labels,
                     const std::vector<featurize::MscnSample>* valid_samples,
                     const std::vector<float>* valid_labels);

  /// Predicted label (log2 cardinality).
  float Predict(const featurize::MscnSample& sample) const;

  size_t SizeBytes() const;

  const MscnParams& params() const { return params_; }

  /// Serializes all four MLPs (architecture + parameters).
  common::Status Serialize(std::vector<uint8_t>* out) const;
  /// Restores a model serialized by Serialize(); set-element dimensions
  /// must match this instance's.
  common::Status Deserialize(const std::vector<uint8_t>& data);

 private:
  // Pooled representation of one set through `mlp` (average of per-element
  // outputs; zero vector for an empty set). Inference-only path.
  void PoolPredict(const internal::Mlp& mlp,
                   const std::vector<std::vector<float>>& set,
                   float* out) const;

  MscnParams params_;
  int table_dim_;
  int join_dim_;
  int pred_dim_;
  internal::Mlp table_mlp_;
  internal::Mlp join_mlp_;
  internal::Mlp pred_mlp_;
  internal::Mlp out_mlp_;
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_MSCN_H_
