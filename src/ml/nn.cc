#include "ml/nn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/metrics.h"

namespace qfcard::ml {

namespace internal {

namespace {
constexpr double kBeta1 = 0.9;
constexpr double kBeta2 = 0.999;
constexpr double kEps = 1e-8;
}  // namespace

void Mlp::Init(const std::vector<int>& dims, bool relu_last,
               common::Rng& rng) {
  dims_ = dims;
  relu_last_ = relu_last;
  layers_.clear();
  adam_t_ = 0;
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    const int in = dims[l];
    const int out = dims[l + 1];
    layer.w = Matrix(in, out);
    // He initialization for ReLU stacks.
    const double scale = std::sqrt(2.0 / in);
    for (float& v : layer.w.data()) {
      v = static_cast<float>(rng.Normal(0.0, scale));
    }
    layer.b.assign(static_cast<size_t>(out), 0.0f);
    layer.dw = Matrix(in, out);
    layer.db.assign(static_cast<size_t>(out), 0.0f);
    layer.mw = Matrix(in, out);
    layer.vw = Matrix(in, out);
    layer.mb.assign(static_cast<size_t>(out), 0.0f);
    layer.vb.assign(static_cast<size_t>(out), 0.0f);
    layers_.push_back(std::move(layer));
  }
}

const Matrix& Mlp::Forward(const Matrix& x) {
  acts_.assign(layers_.size() + 1, Matrix());
  acts_[0] = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    Matrix z(acts_[l].rows(), layer.w.cols());
    for (int r = 0; r < z.rows(); ++r) {
      float* zr = z.Row(r);
      for (int c = 0; c < z.cols(); ++c) zr[c] = layer.b[static_cast<size_t>(c)];
    }
    GemmAccumulate(acts_[l], layer.w, z);
    const bool relu = (l + 1 < layers_.size()) || relu_last_;
    if (relu) {
      for (float& v : z.data()) v = std::max(v, 0.0f);
    }
    acts_[l + 1] = std::move(z);
  }
  return acts_.back();
}

Matrix Mlp::Backward(const Matrix& grad_out, bool need_input_grad) {
  Matrix grad = grad_out;
  for (size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const Matrix& input = acts_[li];
    const Matrix& output = acts_[li + 1];
    const bool relu = (li + 1 < layers_.size()) || relu_last_;
    if (relu) {
      // dReLU: zero where the (post-activation) output was clipped.
      for (int r = 0; r < grad.rows(); ++r) {
        float* gr = grad.Row(r);
        const float* orow = output.Row(r);
        for (int c = 0; c < grad.cols(); ++c) {
          if (orow[c] <= 0.0f) gr[c] = 0.0f;
        }
      }
    }
    // Parameter gradients.
    GemmATAccumulate(input, grad, layer.dw);
    for (int r = 0; r < grad.rows(); ++r) {
      const float* gr = grad.Row(r);
      for (int c = 0; c < grad.cols(); ++c) layer.db[static_cast<size_t>(c)] += gr[c];
    }
    // Input gradient.
    if (li > 0 || need_input_grad) {
      Matrix gin(grad.rows(), layer.w.rows());
      GemmBTAccumulate(grad, layer.w, gin);
      grad = std::move(gin);
    }
  }
  return grad;
}

void Mlp::AdamStep(double lr, double batch_divisor) {
  ++adam_t_;
  const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));
  const double inv = 1.0 / batch_divisor;
  for (Layer& layer : layers_) {
    for (size_t i = 0; i < layer.w.data().size(); ++i) {
      const double g = layer.dw.data()[i] * inv;
      layer.mw.data()[i] = static_cast<float>(kBeta1 * layer.mw.data()[i] +
                                              (1.0 - kBeta1) * g);
      layer.vw.data()[i] = static_cast<float>(kBeta2 * layer.vw.data()[i] +
                                              (1.0 - kBeta2) * g * g);
      const double mhat = layer.mw.data()[i] / bc1;
      const double vhat = layer.vw.data()[i] / bc2;
      layer.w.data()[i] -=
          static_cast<float>(lr * mhat / (std::sqrt(vhat) + kEps));
      layer.dw.data()[i] = 0.0f;
    }
    for (size_t i = 0; i < layer.b.size(); ++i) {
      const double g = layer.db[i] * inv;
      layer.mb[i] = static_cast<float>(kBeta1 * layer.mb[i] + (1.0 - kBeta1) * g);
      layer.vb[i] = static_cast<float>(kBeta2 * layer.vb[i] + (1.0 - kBeta2) * g * g);
      const double mhat = layer.mb[i] / bc1;
      const double vhat = layer.vb[i] / bc2;
      layer.b[i] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + kEps));
      layer.db[i] = 0.0f;
    }
  }
}

void Mlp::PredictOne(const float* x, float* out) const {
  std::vector<float> cur(x, x + dims_.front());
  std::vector<float> next;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    next.assign(layer.b.begin(), layer.b.end());
    for (int i = 0; i < layer.w.rows(); ++i) {
      const float v = cur[static_cast<size_t>(i)];
      if (v == 0.0f) continue;
      const float* wrow = layer.w.Row(i);
      for (int j = 0; j < layer.w.cols(); ++j) next[static_cast<size_t>(j)] += v * wrow[j];
    }
    const bool relu = (l + 1 < layers_.size()) || relu_last_;
    if (relu) {
      for (float& v : next) v = std::max(v, 0.0f);
    }
    cur.swap(next);
  }
  std::copy(cur.begin(), cur.end(), out);
}

size_t Mlp::NumParams() const {
  size_t n = 0;
  for (const Layer& layer : layers_) {
    n += layer.w.data().size() + layer.b.size();
  }
  return n;
}

void Mlp::Serialize(ByteWriter& writer) const {
  writer.WriteVector(dims_);
  writer.Write<uint8_t>(relu_last_ ? 1 : 0);
  for (const Layer& layer : layers_) {
    writer.WriteVector(layer.w.data());
    writer.WriteVector(layer.b);
  }
}

common::Status Mlp::Deserialize(ByteReader& reader) {
  std::vector<int> dims;
  QFCARD_RETURN_IF_ERROR(reader.ReadVector(&dims));
  uint8_t relu_last = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&relu_last));
  if (dims.size() < 2 || dims.size() > 64) {
    return common::Status::InvalidArgument(
        "serialized MLP has an implausible layer count");
  }
  // Init allocates O(sum dims[l] * dims[l+1]) before any weight bytes are
  // read, so a corrupt dims vector is an allocation bomb unless the claimed
  // parameter count is first checked against the bytes actually present.
  uint64_t expected_params = 0;
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    if (dims[l] < 1 || dims[l] > (1 << 20) || dims[l + 1] < 1 ||
        dims[l + 1] > (1 << 20)) {
      return common::Status::InvalidArgument(
          "serialized MLP has a layer dim out of range");
    }
    expected_params += static_cast<uint64_t>(dims[l]) *
                           static_cast<uint64_t>(dims[l + 1]) +
                       static_cast<uint64_t>(dims[l + 1]);
  }
  if (expected_params > reader.remaining() / sizeof(float)) {
    return common::Status::OutOfRange(
        "serialized MLP parameter count exceeds remaining input");
  }
  common::Rng rng(0);  // weights are overwritten below
  Init(dims, relu_last != 0, rng);
  for (Layer& layer : layers_) {
    std::vector<float> w;
    QFCARD_RETURN_IF_ERROR(reader.ReadVector(&w));
    if (w.size() != layer.w.data().size()) {
      return common::Status::InvalidArgument("serialized MLP weight mismatch");
    }
    layer.w.data() = std::move(w);
    std::vector<float> b;
    QFCARD_RETURN_IF_ERROR(reader.ReadVector(&b));
    if (b.size() != layer.b.size()) {
      return common::Status::InvalidArgument("serialized MLP bias mismatch");
    }
    layer.b = std::move(b);
  }
  return common::Status::Ok();
}

}  // namespace internal

common::Status FeedForwardNet::Fit(const Dataset& train, const Dataset* valid) {
  if (train.num_rows() == 0) {
    return common::Status::InvalidArgument("empty training set");
  }
  common::Rng rng(params_.seed);
  std::vector<int> dims{train.dim()};
  dims.insert(dims.end(), params_.hidden.begin(), params_.hidden.end());
  dims.push_back(1);
  mlp_.Init(dims, /*relu_last=*/false, rng);

  std::vector<int> order(static_cast<size_t>(train.num_rows()));
  for (int i = 0; i < train.num_rows(); ++i) order[static_cast<size_t>(i)] = i;

  double best_valid = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  int steps = 0;
  for (int epoch = 0; epoch < params_.max_epochs && steps < params_.max_steps;
       ++epoch) {
    rng.Shuffle(order);
    for (int start = 0; start < train.num_rows() && steps < params_.max_steps;
         start += params_.batch_size) {
      const int bs = std::min(params_.batch_size, train.num_rows() - start);
      Matrix xb(bs, train.dim());
      std::vector<float> yb(static_cast<size_t>(bs));
      for (int i = 0; i < bs; ++i) {
        const int r = order[static_cast<size_t>(start + i)];
        std::copy(train.x.Row(r), train.x.Row(r) + train.dim(), xb.Row(i));
        yb[static_cast<size_t>(i)] = train.y[static_cast<size_t>(r)];
      }
      const Matrix& out = mlp_.Forward(xb);
      // L = mean (out - y)^2 ; dL/dout = 2 (out - y) / bs (divisor applied
      // in AdamStep).
      Matrix grad(bs, 1);
      for (int i = 0; i < bs; ++i) {
        grad.At(i, 0) = 2.0f * (out.At(i, 0) - yb[static_cast<size_t>(i)]);
      }
      mlp_.Backward(grad, /*need_input_grad=*/false);
      mlp_.AdamStep(params_.learning_rate, bs);
      ++steps;
    }
    if (valid != nullptr && params_.early_stopping_rounds > 0 &&
        valid->num_rows() > 0) {
      double se = 0.0;
      float out = 0.0f;
      for (int i = 0; i < valid->num_rows(); ++i) {
        mlp_.PredictOne(valid->x.Row(i), &out);
        const double d = out - valid->y[static_cast<size_t>(i)];
        se += d * d;
      }
      const double rmse = std::sqrt(se / valid->num_rows());
      if (rmse < best_valid - 1e-9) {
        best_valid = rmse;
        epochs_since_best = 0;
      } else if (++epochs_since_best >= params_.early_stopping_rounds) {
        break;
      }
    }
  }
  return common::Status::Ok();
}

float FeedForwardNet::Predict(const float* x) const {
  float out = 0.0f;
  mlp_.PredictOne(x, &out);
  return out;
}

size_t FeedForwardNet::SizeBytes() const {
  return mlp_.NumParams() * sizeof(float);
}

namespace {
constexpr uint32_t kNnMagic = 0x514e4e31;  // "QNN1"
}  // namespace

common::Status FeedForwardNet::Serialize(std::vector<uint8_t>* out) const {
  ByteWriter writer(out);
  writer.Write(kNnMagic);
  mlp_.Serialize(writer);
  return common::Status::Ok();
}

common::Status FeedForwardNet::Deserialize(const std::vector<uint8_t>& data) {
  ByteReader reader(data);
  uint32_t magic = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic != kNnMagic) {
    return common::Status::InvalidArgument("not a serialized NN model");
  }
  return mlp_.Deserialize(reader);
}

}  // namespace qfcard::ml
