#ifndef QFCARD_ML_NN_H_
#define QFCARD_ML_NN_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/dataset.h"
#include "ml/matrix.h"
#include "ml/serialize.h"

namespace qfcard::ml {

namespace internal {

/// A stack of dense layers with ReLU activations (optionally linear on the
/// last layer) trained with Adam. Shared by FeedForwardNet and Mscn.
class Mlp {
 public:
  /// `dims` = [input, hidden..., output]. When `relu_last` is false the last
  /// layer is linear (regression head).
  void Init(const std::vector<int>& dims, bool relu_last, common::Rng& rng);

  /// Forward pass for a batch; caches activations for Backward. Returns the
  /// output activations [batch x output_dim].
  const Matrix& Forward(const Matrix& x);

  /// Backpropagates dL/d(output); accumulates parameter gradients. Returns
  /// dL/d(input) when `need_input_grad`.
  Matrix Backward(const Matrix& grad_out, bool need_input_grad);

  /// Applies one Adam update with the accumulated gradients (scaled by
  /// 1/batch_divisor) and clears them.
  void AdamStep(double lr, double batch_divisor);

  /// Stateless single-vector forward (no caching); for inference.
  void PredictOne(const float* x, float* out) const;

  /// Serializes architecture and parameters (not optimizer state).
  void Serialize(ByteWriter& writer) const;
  common::Status Deserialize(ByteReader& reader);

  /// Input width, or -1 before Init/Deserialize.
  int input_dim() const { return dims_.empty() ? -1 : dims_.front(); }
  int output_dim() const { return dims_.back(); }
  size_t NumParams() const;

  // Test hooks: direct access to parameters and accumulated gradients,
  // used by the numerical gradient check in nn_test.
  int num_layers() const { return static_cast<int>(layers_.size()); }
  Matrix& weight(int l) { return layers_[static_cast<size_t>(l)].w; }
  const Matrix& weight_grad(int l) const {
    return layers_[static_cast<size_t>(l)].dw;
  }
  std::vector<float>& bias(int l) { return layers_[static_cast<size_t>(l)].b; }
  const std::vector<float>& bias_grad(int l) const {
    return layers_[static_cast<size_t>(l)].db;
  }

 private:
  struct Layer {
    Matrix w;  // [in x out]
    std::vector<float> b;
    Matrix dw;
    std::vector<float> db;
    Matrix mw, vw;  // Adam first/second moments
    std::vector<float> mb, vb;
  };

  std::vector<int> dims_;
  bool relu_last_ = false;
  std::vector<Layer> layers_;
  // Cached activations: acts_[0] = input, acts_[i+1] = output of layer i
  // (post-activation).
  std::vector<Matrix> acts_;
  long adam_t_ = 0;
};

}  // namespace internal

/// Hyperparameters for FeedForwardNet. `max_steps` bounds the total number
/// of minibatch updates so training time is independent of dataset size.
struct NnParams {
  std::vector<int> hidden = {64, 32};
  int batch_size = 128;
  int max_epochs = 80;
  int max_steps = 4000;
  double learning_rate = 1e-3;
  int early_stopping_rounds = 10;  ///< epochs; 0 disables (needs valid set)
  uint64_t seed = 23;
};

/// Multi-layer perceptron regressor (the paper's "NN", Section 2.2.1): the
/// local-model architecture of Woltmann et al., trained on log2-cardinality
/// labels with MSE loss and Adam.
class FeedForwardNet : public Model {
 public:
  explicit FeedForwardNet(NnParams params = {}) : params_(params) {}

  common::Status Fit(const Dataset& train, const Dataset* valid) override;
  float Predict(const float* x) const override;
  size_t SizeBytes() const override;
  std::string name() const override { return "NN"; }
  common::Status Serialize(std::vector<uint8_t>* out) const override;
  common::Status Deserialize(const std::vector<uint8_t>& data) override;
  int InputDim() const override { return mlp_.input_dim(); }

 private:
  NnParams params_;
  internal::Mlp mlp_;
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_NN_H_
