#ifndef QFCARD_ML_SERIALIZE_H_
#define QFCARD_ML_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace qfcard::ml {

/// Appends POD values and vectors to a byte buffer. Fixed little-endian-ish
/// host layout; qfcard models serialize/deserialize on the same machine
/// (persistence across restarts, not a wire format).
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    const size_t offset = out_->size();
    out_->resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(out_->data() + offset, values.data(),
                  values.size() * sizeof(T));
    }
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Reads values written by ByteWriter, with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& data) : data_(data) {}

  template <typename T>
  common::Status Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > data_.size()) {
      return common::Status::OutOfRange("serialized model truncated");
    }
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return common::Status::Ok();
  }

  template <typename T>
  common::Status ReadVector(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    QFCARD_RETURN_IF_ERROR(Read(&size));
    if (pos_ + size * sizeof(T) > data_.size()) {
      return common::Status::OutOfRange("serialized model truncated");
    }
    values->resize(size);
    if (size > 0) {
      std::memcpy(values->data(), data_.data() + pos_, size * sizeof(T));
    }
    pos_ += size * sizeof(T);
    return common::Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_SERIALIZE_H_
