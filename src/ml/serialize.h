#ifndef QFCARD_ML_SERIALIZE_H_
#define QFCARD_ML_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace qfcard::ml {

/// Appends POD values, vectors, and strings to a byte buffer. Fixed
/// little-endian-ish host layout; qfcard models serialize/deserialize on the
/// same machine (persistence across restarts, not a wire format).
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    const size_t offset = out_->size();
    out_->resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(out_->data() + offset, values.data(),
                  values.size() * sizeof(T));
    }
  }

  /// Length-prefixed string (uint64 size + raw bytes, no terminator).
  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    const size_t offset = out_->size();
    out_->resize(offset + s.size());
    if (!s.empty()) std::memcpy(out_->data() + offset, s.data(), s.size());
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Reads values written by ByteWriter. Every read is bounds-checked against
/// the remaining input and surfaces truncation/corruption as common::Status —
/// adversarial bundles (bit flips, truncations, hostile size prefixes) must
/// come back as clean errors, never UB or unbounded allocation (the loader
/// fuzz round in src/testing/ asserts this under ASan/UBSan).
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& data) : data_(data) {}

  template <typename T>
  common::Status Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > remaining()) {
      return common::Status::OutOfRange("serialized data truncated");
    }
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return common::Status::Ok();
  }

  template <typename T>
  common::Status ReadVector(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    QFCARD_RETURN_IF_ERROR(Read(&size));
    // Divide instead of multiplying: size * sizeof(T) can wrap uint64 for a
    // hostile size prefix, silently passing a `pos_ + bytes > data_.size()`
    // check and reading out of bounds.
    if (size > remaining() / sizeof(T)) {
      return common::Status::OutOfRange(
          "serialized vector longer than remaining input");
    }
    values->resize(size);
    if (size > 0) {
      std::memcpy(values->data(), data_.data() + pos_, size * sizeof(T));
    }
    pos_ += size * sizeof(T);
    return common::Status::Ok();
  }

  /// Reads a string written by ByteWriter::WriteString.
  common::Status ReadString(std::string* s) {
    uint64_t size = 0;
    QFCARD_RETURN_IF_ERROR(Read(&size));
    if (size > remaining()) {
      return common::Status::OutOfRange(
          "serialized string longer than remaining input");
    }
    s->assign(reinterpret_cast<const char*>(data_.data() + pos_),
              static_cast<size_t>(size));
    pos_ += size;
    return common::Status::Ok();
  }

  /// Bytes left to read; size prefixes claiming more than this are corrupt.
  size_t remaining() const { return data_.size() - pos_; }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_SERIALIZE_H_
