#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qfcard::ml {

BinnedFeatures BinnedFeatures::Build(const Matrix& x, int max_bins) {
  max_bins = std::clamp(max_bins, 2, 256);
  BinnedFeatures out;
  out.num_rows_ = x.rows();
  out.num_features_ = x.cols();
  out.codes_.assign(
      static_cast<size_t>(x.rows()) * static_cast<size_t>(x.cols()), 0);
  out.thresholds_.resize(static_cast<size_t>(x.cols()));

  std::vector<float> values(static_cast<size_t>(x.rows()));
  for (int f = 0; f < x.cols(); ++f) {
    for (int r = 0; r < x.rows(); ++r) values[static_cast<size_t>(r)] = x.At(r, f);
    std::vector<float> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    // Candidate boundaries at quantile positions; deduplicated. A boundary
    // b means "x <= b goes left". The last distinct value never becomes a
    // boundary (nothing would go right).
    std::vector<float>& th = out.thresholds_[static_cast<size_t>(f)];
    for (int b = 1; b < max_bins; ++b) {
      const size_t pos = static_cast<size_t>(
          static_cast<double>(b) / max_bins * static_cast<double>(sorted.size() - 1));
      const float v = sorted[pos];
      if (v < sorted.back() && (th.empty() || v > th.back())) th.push_back(v);
    }
    // Assign codes by binary search over thresholds.
    for (int r = 0; r < x.rows(); ++r) {
      const float v = values[static_cast<size_t>(r)];
      const auto it = std::lower_bound(th.begin(), th.end(), v);
      // bin = number of thresholds < v  (v <= th[i] -> bin i).
      out.codes_[static_cast<size_t>(f) * static_cast<size_t>(x.rows()) +
                 static_cast<size_t>(r)] =
          static_cast<uint8_t>(it - th.begin());
    }
  }
  return out;
}

namespace {

struct NodeTask {
  int node = 0;
  int begin = 0;
  int end = 0;
  int depth = 0;
  double sum = 0.0;
};

}  // namespace

void RegressionTree::Fit(const BinnedFeatures& data,
                         const std::vector<float>& targets,
                         std::vector<int>& rows, const Params& params,
                         common::Rng* rng) {
  nodes_.clear();
  if (rows.empty()) {
    nodes_.push_back(TreeNode{});
    return;
  }
  double root_sum = 0.0;
  for (const int r : rows) root_sum += targets[static_cast<size_t>(r)];
  nodes_.push_back(TreeNode{});
  std::vector<NodeTask> stack{
      NodeTask{0, 0, static_cast<int>(rows.size()), 0, root_sum}};

  std::vector<double> hist_sum;
  std::vector<int> hist_cnt;
  std::vector<int> feature_order(static_cast<size_t>(data.num_features()));
  for (int f = 0; f < data.num_features(); ++f) {
    feature_order[static_cast<size_t>(f)] = f;
  }
  const int features_per_node =
      params.colsample >= 1.0
          ? data.num_features()
          : std::max(1, static_cast<int>(params.colsample *
                                         data.num_features()));

  while (!stack.empty()) {
    const NodeTask task = stack.back();
    stack.pop_back();
    const int n = task.end - task.begin;
    const double mean = task.sum / n;

    TreeNode& node = nodes_[static_cast<size_t>(task.node)];
    node.value = static_cast<float>(mean);
    if (task.depth >= params.max_depth || n < 2 * params.min_samples_leaf) {
      continue;
    }

    // Best split over (sub-sampled) features via per-bin histograms.
    if (features_per_node < data.num_features() && rng != nullptr) {
      rng->Shuffle(feature_order);
    }
    int best_feature = -1;
    int best_bin = -1;
    double best_gain = params.min_gain;
    const double parent_score = task.sum * task.sum / n;
    for (int fi = 0; fi < features_per_node; ++fi) {
      const int f = feature_order[static_cast<size_t>(fi)];
      const int bins = data.NumBins(f);
      if (bins < 2) continue;
      hist_sum.assign(static_cast<size_t>(bins), 0.0);
      hist_cnt.assign(static_cast<size_t>(bins), 0);
      for (int i = task.begin; i < task.end; ++i) {
        const int r = rows[static_cast<size_t>(i)];
        const uint8_t code = data.Code(f, r);
        hist_sum[code] += targets[static_cast<size_t>(r)];
        ++hist_cnt[code];
      }
      double left_sum = 0.0;
      int left_cnt = 0;
      for (int b = 0; b < bins - 1; ++b) {
        left_sum += hist_sum[static_cast<size_t>(b)];
        left_cnt += hist_cnt[static_cast<size_t>(b)];
        const int right_cnt = n - left_cnt;
        if (left_cnt < params.min_samples_leaf ||
            right_cnt < params.min_samples_leaf) {
          continue;
        }
        const double right_sum = task.sum - left_sum;
        const double gain = left_sum * left_sum / left_cnt +
                            right_sum * right_sum / right_cnt - parent_score;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_bin = b;
        }
      }
    }
    if (best_feature < 0) continue;

    // Partition rows in place: codes <= best_bin go left.
    int mid = task.begin;
    double left_sum = 0.0;
    for (int i = task.begin; i < task.end; ++i) {
      const int r = rows[static_cast<size_t>(i)];
      if (data.Code(best_feature, r) <= best_bin) {
        std::swap(rows[static_cast<size_t>(i)], rows[static_cast<size_t>(mid)]);
        left_sum += targets[static_cast<size_t>(r)];
        ++mid;
      }
    }

    const int left_id = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{});
    const int right_id = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{});
    // `node` reference may be dangling after push_back; reindex.
    TreeNode& parent = nodes_[static_cast<size_t>(task.node)];
    parent.feature = best_feature;
    parent.threshold = data.Threshold(best_feature, best_bin);
    parent.left = left_id;
    parent.right = right_id;

    stack.push_back(NodeTask{right_id, mid, task.end, task.depth + 1,
                             task.sum - left_sum});
    stack.push_back(NodeTask{left_id, task.begin, mid, task.depth + 1,
                             left_sum});
  }
}

float RegressionTree::Predict(const float* x) const {
  if (nodes_.empty()) return 0.0f;
  int cur = 0;
  while (nodes_[static_cast<size_t>(cur)].feature >= 0) {
    const TreeNode& node = nodes_[static_cast<size_t>(cur)];
    cur = (x[node.feature] <= node.threshold) ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(cur)].value;
}

}  // namespace qfcard::ml
