#ifndef QFCARD_ML_TREE_H_
#define QFCARD_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "ml/matrix.h"

namespace qfcard::ml {

/// Quantile-binned feature codes (LightGBM-style). Built once per training
/// set; trees find splits by scanning per-bin histograms instead of sorting.
/// Codes are stored column-major so per-feature accumulation over a node's
/// rows is cache-friendly.
class BinnedFeatures {
 public:
  /// Bins every column of `x` into at most `max_bins` quantile bins
  /// (max_bins <= 256).
  static BinnedFeatures Build(const Matrix& x, int max_bins);

  int num_rows() const { return num_rows_; }
  int num_features() const { return num_features_; }
  int NumBins(int f) const {
    return static_cast<int>(thresholds_[static_cast<size_t>(f)].size()) + 1;
  }
  uint8_t Code(int f, int r) const {
    return codes_[static_cast<size_t>(f) * static_cast<size_t>(num_rows_) +
                  static_cast<size_t>(r)];
  }
  /// Raw threshold value of bin boundary `b` of feature `f`: rows with
  /// x[f] <= Threshold(f, b) fall in bins [0, b].
  float Threshold(int f, int b) const {
    return thresholds_[static_cast<size_t>(f)][static_cast<size_t>(b)];
  }

 private:
  int num_rows_ = 0;
  int num_features_ = 0;
  std::vector<uint8_t> codes_;
  std::vector<std::vector<float>> thresholds_;
};

/// One node of a regression tree. Leaf iff feature < 0.
struct TreeNode {
  int feature = -1;
  float threshold = 0.0f;  ///< go left iff x[feature] <= threshold
  int left = -1;
  int right = -1;
  float value = 0.0f;  ///< leaf prediction
};

/// Histogram-based regression tree: the weak learner of GradientBoosting
/// (Section 2.2.2's decision trees F_p). Split gain is variance reduction
/// (equivalently the squared-sum gain for L2 residuals).
class RegressionTree {
 public:
  struct Params {
    int max_depth = 6;
    int min_samples_leaf = 20;
    double min_gain = 1e-10;
    /// Fraction of features considered per node (column subsampling);
    /// 1.0 = all.
    double colsample = 1.0;
  };

  /// Fits the tree to `targets` over the rows listed in `rows` (reordered in
  /// place during partitioning). `rng` is used only when colsample < 1.
  void Fit(const BinnedFeatures& data, const std::vector<float>& targets,
           std::vector<int>& rows, const Params& params, common::Rng* rng);

  /// Predicts from a raw (un-binned) feature vector.
  float Predict(const float* x) const;

  size_t SizeBytes() const { return nodes_.size() * sizeof(TreeNode); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  /// Restores a tree from its node list (deserialization).
  void SetNodes(std::vector<TreeNode> nodes) { nodes_ = std::move(nodes); }

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace qfcard::ml

#endif  // QFCARD_ML_TREE_H_
