#ifndef QFCARD_OBS_CLOCK_H_
#define QFCARD_OBS_CLOCK_H_

#include <chrono>

namespace qfcard::obs {

/// The telemetry clock. This header is the ONLY place in src/ allowed to
/// call std::chrono::steady_clock::now() — tools/qfcard_lint.py's
/// raw-steady-clock rule rejects direct calls everywhere else, so every
/// duration in the repo (bench timings, runtime telemetry, plan execution
/// cost) flows through one clock path and can be reasoned about (and, if
/// ever needed, faked) in one place. steady_clock is monotonic, so readings
/// never leak wall-clock state into reports (see the wall-clock lint rule).
using Clock = std::chrono::steady_clock;

/// Current reading of the telemetry clock.
inline Clock::time_point Now() { return Clock::now(); }

/// Seconds between two readings.
inline double SecondsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace qfcard::obs

#endif  // QFCARD_OBS_CLOCK_H_
