#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/env.h"
#include "common/str_util.h"

namespace qfcard::obs {

namespace internal {

std::atomic<int> g_metrics_mode{-1};

bool ResolveMetricsMode() {
  const bool on = common::GetEnvInt("QFCARD_METRICS", 0) != 0;
  int expected = -1;
  g_metrics_mode.compare_exchange_strong(expected, on ? 1 : 0,
                                         std::memory_order_relaxed);
  // On a lost race another thread resolved (or SetMetricsEnabled won);
  // either way the stored mode is authoritative.
  return g_metrics_mode.load(std::memory_order_relaxed) != 0;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_mode.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

int Counter::ThisThreadShard() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const int shard = static_cast<int>(
      next_thread.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kShards));
  return shard;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

// CAS loops instead of std::atomic<double>::fetch_add/fetch_max: portable
// across the GCC/Clang versions in CI and still lock-free.
void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) { return common::StrFormat("%.9g", v); }

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicMaxDouble(max_, v);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      if (i == counts.size() - 1) return Max();  // overflow bucket
      if (i == 0) return bounds_[0];  // first bucket reports its upper edge
      const double lo = bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - cum) / static_cast<double>(counts[i]);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cum = next;
  }
  return Max();
}

const std::vector<double>& LatencyBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
      5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
      0.25, 0.5,    1.0,  2.5,  5.0,  10.0,  25.0, 50.0};
  return *bounds;
}

const std::vector<double>& QErrorBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1.0, 1.05, 1.1, 1.2, 1.3,  1.5,  1.75, 2.0,  2.5,   3.0,   4.0,  5.0,
      7.0, 10.0, 15.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0, 2e4,
      1e5, 1e6};
  return *bounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: outlives
  return *registry;                                          // static dtors
}

namespace {

std::string MetricKey(std::string_view name, std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

}  // namespace

Counter* MetricsRegistry::CounterNamed(std::string_view name,
                                       std::string_view labels) {
  const std::string key = MetricKey(name, labels);
  common::MutexLock lock(&mu_);
  std::unique_ptr<Named<Counter>>& slot = counters_[key];
  if (!slot) {
    slot = std::make_unique<Named<Counter>>(std::string(name),
                                            std::string(labels));
  }
  return &slot->metric;
}

Gauge* MetricsRegistry::GaugeNamed(std::string_view name,
                                   std::string_view labels) {
  const std::string key = MetricKey(name, labels);
  common::MutexLock lock(&mu_);
  std::unique_ptr<Named<Gauge>>& slot = gauges_[key];
  if (!slot) {
    slot = std::make_unique<Named<Gauge>>(std::string(name),
                                          std::string(labels));
  }
  return &slot->metric;
}

Histogram* MetricsRegistry::HistogramNamed(std::string_view name,
                                           const std::vector<double>& bounds,
                                           std::string_view labels) {
  const std::string key = MetricKey(name, labels);
  common::MutexLock lock(&mu_);
  std::unique_ptr<Named<Histogram>>& slot = histograms_[key];
  if (!slot) {
    slot = std::make_unique<Named<Histogram>>(std::string(name),
                                              std::string(labels), bounds);
  }
  return &slot->metric;
}

void MetricsRegistry::ResetForTest() {
  common::MutexLock lock(&mu_);
  for (auto& [key, entry] : counters_) entry->metric.Reset();
  for (auto& [key, entry] : gauges_) entry->metric.Reset();
  for (auto& [key, entry] : histograms_) entry->metric.Reset();
}

std::vector<MetricsRegistry::CounterRow> MetricsRegistry::CounterRows() const {
  common::MutexLock lock(&mu_);
  std::vector<CounterRow> out;
  out.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    out.push_back({entry->name, entry->labels, entry->metric.Value()});
  }
  return out;
}

std::vector<MetricsRegistry::HistogramRow> MetricsRegistry::HistogramRows()
    const {
  common::MutexLock lock(&mu_);
  std::vector<HistogramRow> out;
  out.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = entry->metric;
    out.push_back({entry->name, entry->labels, h.Count(), h.Mean(), h.P50(),
                   h.P95(), h.Max()});
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  using internal::JsonEscape;
  std::ostringstream out;
  common::MutexLock lock(&mu_);
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, entry] : counters_) {
    if (!std::exchange(first, false)) out << ",";
    out << "{\"name\":\"" << JsonEscape(entry->name) << "\",\"labels\":\""
        << JsonEscape(entry->labels) << "\",\"value\":" << entry->metric.Value()
        << "}";
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, entry] : gauges_) {
    if (!std::exchange(first, false)) out << ",";
    out << "{\"name\":\"" << JsonEscape(entry->name) << "\",\"labels\":\""
        << JsonEscape(entry->labels) << "\",\"value\":" << entry->metric.Value()
        << "}";
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, entry] : histograms_) {
    if (!std::exchange(first, false)) out << ",";
    const Histogram& h = entry->metric;
    out << "{\"name\":\"" << JsonEscape(entry->name) << "\",\"labels\":\""
        << JsonEscape(entry->labels) << "\",\"count\":" << h.Count()
        << ",\"sum\":" << FormatDouble(h.Sum())
        << ",\"mean\":" << FormatDouble(h.Mean())
        << ",\"max\":" << FormatDouble(h.Max())
        << ",\"p50\":" << FormatDouble(h.P50())
        << ",\"p90\":" << FormatDouble(h.P90())
        << ",\"p95\":" << FormatDouble(h.P95()) << ",\"buckets\":[";
    const std::vector<uint64_t> counts = h.BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"le\":";
      if (i < h.bounds().size()) {
        out << FormatDouble(h.bounds()[i]);
      } else {
        out << "\"+Inf\"";
      }
      out << ",\"count\":" << counts[i] << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string PromName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

std::string PromLabels(std::string_view labels, std::string_view extra = "") {
  // Registry labels are "key=value[,key=value]"; Prometheus wants
  // key="value". Values here are metric-ish strings (backend names, QFT
  // labels) without embedded commas or quotes.
  std::string body;
  const auto append = [&body](std::string_view part) {
    for (const std::string& kv :
         common::Split(part, ',')) {
      if (kv.empty()) continue;
      if (!body.empty()) body += ',';
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        body += kv + "=\"\"";
      } else {
        body += kv.substr(0, eq) + "=\"" + kv.substr(eq + 1) + "\"";
      }
    }
  };
  append(labels);
  if (!extra.empty()) {
    if (!body.empty()) body += ',';
    body += extra;
  }
  if (body.empty()) return "";
  return "{" + body + "}";
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::ostringstream out;
  common::MutexLock lock(&mu_);
  for (const auto& [key, entry] : counters_) {
    const std::string name = PromName(entry->name);
    out << "# TYPE " << name << " counter\n"
        << name << PromLabels(entry->labels) << " " << entry->metric.Value()
        << "\n";
  }
  for (const auto& [key, entry] : gauges_) {
    const std::string name = PromName(entry->name);
    out << "# TYPE " << name << " gauge\n"
        << name << PromLabels(entry->labels) << " " << entry->metric.Value()
        << "\n";
  }
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = entry->metric;
    const std::string name = PromName(entry->name);
    out << "# TYPE " << name << " histogram\n";
    const std::vector<uint64_t> counts = h.BucketCounts();
    uint64_t cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const std::string le =
          i < h.bounds().size() ? FormatDouble(h.bounds()[i]) : "+Inf";
      out << name << "_bucket"
          << PromLabels(entry->labels, "le=\"" + le + "\"") << " " << cum
          << "\n";
    }
    out << name << "_sum" << PromLabels(entry->labels) << " "
        << FormatDouble(h.Sum()) << "\n"
        << name << "_count" << PromLabels(entry->labels) << " " << cum << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Convenience paths
// ---------------------------------------------------------------------------

void IncrementCounter(std::string_view name, std::string_view labels,
                      uint64_t n) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().CounterNamed(name, labels)->Add(n);
}

void ObserveLatency(std::string_view name, double seconds,
                    std::string_view labels) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global()
      .HistogramNamed(name, LatencyBounds(), labels)
      ->Observe(seconds);
}

double ScopedTimer::Stop() {
  const double s = Seconds();
  if (!stopped_) {
    stopped_ = true;
    if (name_ != nullptr && MetricsEnabled()) {
      MetricsRegistry::Global()
          .HistogramNamed(name_, LatencyBounds(), labels_)
          ->Observe(s);
    }
  }
  return s;
}

}  // namespace qfcard::obs
