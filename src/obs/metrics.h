#ifndef QFCARD_OBS_METRICS_H_
#define QFCARD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace qfcard::obs {

// ---------------------------------------------------------------------------
// Runtime toggles
// ---------------------------------------------------------------------------

namespace internal {
// Tri-state: -1 = not yet resolved from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_metrics_mode;
// Resolves the QFCARD_METRICS environment variable (first call only).
bool ResolveMetricsMode();
}  // namespace internal

/// Whether metric recording is on. Defaults to the QFCARD_METRICS
/// environment variable (unset/0 = off); SetMetricsEnabled overrides. The
/// check is one relaxed atomic load once resolved, so instrumented hot paths
/// are ~free when telemetry is off — instrumentation is compiled in
/// unconditionally and gated here at runtime.
inline bool MetricsEnabled() {
  const int mode = internal::g_metrics_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  return internal::ResolveMetricsMode();
}

/// Programmatic override of QFCARD_METRICS (used by qfcard_cli
/// --metrics-out and by tests).
void SetMetricsEnabled(bool enabled);

// ---------------------------------------------------------------------------
// Metric types
// ---------------------------------------------------------------------------

/// Monotonic counter. Add() is lock-free and sharded: each writing thread
/// lands on one of kShards cache-line-padded atomics (assigned round-robin
/// per thread), so ParallelFor workers bumping the same hot counter never
/// contend on a single cache line. Value() sums the shards; it is exact once
/// writers quiesce and never under-counts finished Add()s.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard. Test hook; not safe against concurrent Add().
  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  static int ThisThreadShard();
  Shard shards_[kShards];
};

/// Last-written value (e.g. configured pool size, queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over doubles (latencies in seconds, q-errors).
/// `bounds` are ascending inclusive upper bucket edges; one implicit
/// overflow bucket covers (bounds.back(), +inf). Observe() is lock-free:
/// relaxed fetch_add on the bucket, atomic fetch_add on the sum, CAS loop on
/// the max. Quantile() linearly interpolates inside the winning bucket (the
/// overflow bucket reports the exact observed max), matching the fixed
/// per-bucket resolution trade-off of Prometheus-style histograms.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  uint64_t Count() const;
  double Sum() const;
  /// Exact largest observed value (0 when empty).
  double Max() const;
  double Mean() const;

  /// Interpolated quantile, q in [0, 1]; 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P90() const { return Quantile(0.90); }
  double P95() const { return Quantile(0.95); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts (bounds().size() + 1 entries, the
  /// last being the overflow bucket).
  std::vector<uint64_t> BucketCounts() const;

  /// Zeroes buckets, sum, and max. Test hook; not safe against concurrent
  /// Observe().
  void Reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Standard latency bucket edges in seconds: 1-2.5-5 per decade from 1us to
/// 50s. Shared by every *_seconds histogram so exported pages line up.
const std::vector<double>& LatencyBounds();

/// Standard q-error bucket edges: dense near 1 (where medians live),
/// log-spaced out to 1e6. Shared by every q-error histogram.
const std::vector<double>& QErrorBounds();

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Process-wide named-metric registry. Lookup is mutex-guarded (a map walk,
/// fine per batch/stage); the returned pointers are stable for the process
/// lifetime, so hot paths resolve once and then update lock-free. `labels`
/// is a free-form "key=value[,key=value]" string kept separate from the name
/// so exporters can render Prometheus-style `name{labels}` series.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* CounterNamed(std::string_view name, std::string_view labels = "");
  Gauge* GaugeNamed(std::string_view name, std::string_view labels = "");
  /// `bounds` applies on first creation only; later calls with the same
  /// name/labels return the existing histogram regardless of bounds.
  Histogram* HistogramNamed(std::string_view name,
                            const std::vector<double>& bounds,
                            std::string_view labels = "");

  /// Point-in-time rows for report embedding (eval::PrintTelemetrySnapshot).
  struct CounterRow {
    std::string name;
    std::string labels;
    uint64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::string labels;
    uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
  };
  std::vector<CounterRow> CounterRows() const;
  std::vector<HistogramRow> HistogramRows() const;

  /// JSON object with "counters"/"gauges"/"histograms" arrays; see
  /// docs/observability.md for the exact shape (validated in CI by
  /// tools/validate_metrics.py against tools/metrics_schema.json).
  std::string ToJson() const;
  /// Prometheus text exposition ("name{labels} value" lines, histograms as
  /// cumulative _bucket/_sum/_count series).
  std::string ToPrometheus() const;

  /// Zeroes every registered metric IN PLACE: registrations — and therefore
  /// every Counter*/Gauge*/Histogram* handed out — stay valid, which matters
  /// because instrumented code (thread pool, estimators) caches those
  /// pointers in function-local statics. Test hook; not safe against
  /// concurrent writers.
  void ResetForTest();

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::string labels;
    T metric;
    template <typename... Args>
    explicit Named(std::string n, std::string l, Args&&... args)
        : name(std::move(n)), labels(std::move(l)),
          metric(std::forward<Args>(args)...) {}
  };

  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Named<Counter>>> counters_
      QFCARD_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Named<Gauge>>> gauges_
      QFCARD_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Named<Histogram>>> histograms_
      QFCARD_GUARDED_BY(mu_);
};

/// Counter bump through the global registry, gated on MetricsEnabled().
/// For cold paths (error returns, shrink loops) where caching the Counter*
/// is not worth the plumbing.
void IncrementCounter(std::string_view name, std::string_view labels = "",
                      uint64_t n = 1);

/// Histogram observation through the global registry (LatencyBounds), gated
/// on MetricsEnabled().
void ObserveLatency(std::string_view name, double seconds,
                    std::string_view labels = "");

// ---------------------------------------------------------------------------
// ScopedTimer
// ---------------------------------------------------------------------------

/// Stopwatch on the telemetry clock, optionally bound to a latency
/// histogram. This is the one sanctioned way to time anything outside
/// src/obs/ (see clock.h): benches and library stages construct one, read
/// Seconds() for reporting, and — when a metric name is given and metrics
/// are on — the elapsed time is recorded into
/// `<name>{labels}` (LatencyBounds) exactly once, at Stop() or destruction.
class ScopedTimer {
 public:
  /// Plain stopwatch; records nothing.
  ScopedTimer() : start_(Now()) {}
  /// Records into histogram `name` on destruction/Stop when metrics are on.
  explicit ScopedTimer(const char* name, std::string labels = "")
      : start_(Now()), name_(name), labels_(std::move(labels)) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (keeps ticking until Stop()).
  double Seconds() const { return SecondsBetween(start_, Now()); }

  /// Records (once) and detaches; returns the elapsed seconds.
  double Stop();

 private:
  Clock::time_point start_;
  const char* name_ = nullptr;
  std::string labels_;
  bool stopped_ = false;
};

namespace internal {
/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view s);
}  // namespace internal

}  // namespace qfcard::obs

#endif  // QFCARD_OBS_METRICS_H_
