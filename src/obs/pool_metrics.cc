// ThreadPool telemetry sink: bridges common::PoolStatsSink (the pool's
// obs-free stats hook, see common/pool_stats.h) into the threadpool.*
// series of the global MetricsRegistry. Kept out of obs/metrics.cc so the
// analyzer's telemetry pass inventories these registration sites like any
// other instrumentation (obs/metrics.cc itself is exempt — it defines the
// registration helpers the pass greps for).

#include <cstdint>

#include "common/pool_stats.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace qfcard::obs {
namespace {

// Pool series, resolved once from the registry so the pool's hot path
// updates metrics lock-free. Eagerly creates every threadpool.* series on
// first use — including queue_wait_seconds, which a 1-thread pool never
// observes — so snapshots have the same shape at every thread count (the CI
// schema check runs at QFCARD_THREADS=1 and 4).
struct PoolSeries {
  Counter* calls;
  Counter* inline_calls;
  Counter* indices;
  Counter* chunks;
  Histogram* queue_wait;
  Histogram* task_run;
  Gauge* size;
};

PoolSeries& GetPoolSeries() {
  static PoolSeries* series = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* s = new PoolSeries;  // leaked: outlives static dtors
    s->calls = reg.CounterNamed("threadpool.parallel_for_calls");
    s->inline_calls = reg.CounterNamed("threadpool.inline_calls");
    s->indices = reg.CounterNamed("threadpool.indices");
    s->chunks = reg.CounterNamed("threadpool.chunks");
    s->queue_wait =
        reg.HistogramNamed("threadpool.queue_wait_seconds", LatencyBounds());
    s->task_run =
        reg.HistogramNamed("threadpool.task_run_seconds", LatencyBounds());
    s->size = reg.GaugeNamed("threadpool.size");
    return s;
  }();
  return *series;
}

// common::ThreadPool cannot include obs/ (layer order, tools/layers.json),
// so this sink carries its stats into the threadpool.* series. Installed at
// static-initialization time by any binary that links obs/; installation
// only stores a pointer, the registry is not touched until the first
// callback with metrics enabled.
class PoolStatsToMetrics final : public common::PoolStatsSink {
 public:
  bool Enabled() const override { return MetricsEnabled(); }

  double NowSeconds() const override {
    static const Clock::time_point epoch = Now();
    return SecondsBetween(epoch, Now());
  }

  void OnParallelFor(int64_t indices, int pool_size) override {
    PoolSeries& s = GetPoolSeries();
    s.calls->Add();
    s.indices->Add(static_cast<uint64_t>(indices));
    s.size->Set(pool_size);
  }

  void OnInlineRun() override { GetPoolSeries().inline_calls->Add(); }

  void OnJobRun(uint64_t chunks, double run_seconds) override {
    PoolSeries& s = GetPoolSeries();
    s.chunks->Add(chunks);
    s.task_run->Observe(run_seconds);
  }

  void OnQueueWait(double wait_seconds) override {
    GetPoolSeries().queue_wait->Observe(wait_seconds);
  }
};

struct PoolStatsInstaller {
  PoolStatsToMetrics sink;
  PoolStatsInstaller() { common::SetPoolStatsSink(&sink); }
};

PoolStatsInstaller g_pool_stats_installer;

}  // namespace
}  // namespace qfcard::obs
