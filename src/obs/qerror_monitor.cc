#include "obs/qerror_monitor.h"

#include <algorithm>
#include <sstream>

#include "common/env.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace qfcard::obs {

QErrorDriftMonitor& QErrorDriftMonitor::Global() {
  static QErrorDriftMonitor* monitor = [] {
    DriftMonitorOptions opts;
    opts.window = static_cast<size_t>(std::max<int64_t>(
        1, common::GetEnvInt("QFCARD_DRIFT_WINDOW",
                             static_cast<int64_t>(opts.window))));
    // Integer env knob: threshold in thousandths (10.0 -> 10000).
    opts.p95_threshold =
        static_cast<double>(common::GetEnvInt(
            "QFCARD_DRIFT_P95",
            static_cast<int64_t>(opts.p95_threshold * 1000.0))) /
        1000.0;
    opts.min_samples = static_cast<size_t>(std::max<int64_t>(
        1, common::GetEnvInt("QFCARD_DRIFT_MIN_SAMPLES",
                             static_cast<int64_t>(opts.min_samples))));
    return new QErrorDriftMonitor(opts);  // leaked: outlives static dtors
  }();
  return *monitor;
}

QErrorDriftMonitor::QErrorDriftMonitor(DriftMonitorOptions options) {
  common::MutexLock lock(&mu_);
  opts_ = options;
  if (opts_.window == 0) opts_.window = 1;
  window_.reserve(opts_.window);
}

void QErrorDriftMonitor::Observe(double qerror) {
  bool flipped = false;
  State flip_state;
  {
    common::MutexLock lock(&mu_);
    ++observed_;
    max_qerror_ = std::max(max_qerror_, qerror);
    if (window_.size() < opts_.window) {
      window_.push_back(qerror);
    } else {
      window_[next_slot_] = qerror;
      next_slot_ = (next_slot_ + 1) % opts_.window;
    }
    RecomputeLocked();
    const bool now_degraded =
        window_.size() >= opts_.min_samples && p95_ > opts_.p95_threshold;
    if (now_degraded && !degraded_) {
      ++flips_;
      flipped = true;
      flip_state.observed = observed_;
      flip_state.window_fill = window_.size();
      flip_state.window_size = opts_.window;
      flip_state.p50 = p50_;
      flip_state.p95 = p95_;
      flip_state.max_qerror = max_qerror_;
      flip_state.threshold = opts_.p95_threshold;
      flip_state.degraded = true;
      flip_state.flips = flips_;
    }
    degraded_ = now_degraded;
  }
  // Counters outside the monitor lock (registry takes its own).
  IncrementCounter("drift.observed");
  if (flipped) {
    IncrementCounter("drift.flips");
    // Listeners run under listeners_mu_ only (mu_ already released), so a
    // listener may read GetState(); it must not Add/RemoveFlipListener.
    common::MutexLock lock(&listeners_mu_);
    for (const auto& [id, listener] : listeners_) listener(flip_state);
  }
}

uint64_t QErrorDriftMonitor::AddFlipListener(FlipListener listener) {
  common::MutexLock lock(&listeners_mu_);
  const uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void QErrorDriftMonitor::RemoveFlipListener(uint64_t id) {
  // Taking listeners_mu_ blocks until any in-flight Observe notification has
  // finished with the listener, making removal a safe destruction point.
  common::MutexLock lock(&listeners_mu_);
  for (size_t i = 0; i < listeners_.size(); ++i) {
    if (listeners_[i].first == id) {
      listeners_.erase(listeners_.begin() + static_cast<long>(i));
      return;
    }
  }
}

void QErrorDriftMonitor::RecomputeLocked() {
  // Exact window quantiles by sorting a copy: the window is small (hundreds)
  // and Observe runs on labeled feedback, not the estimation hot path.
  std::vector<double> sorted = window_;
  std::sort(sorted.begin(), sorted.end());
  p50_ = common::QuantileSorted(sorted, 0.50);
  p95_ = common::QuantileSorted(sorted, 0.95);
}

QErrorDriftMonitor::State QErrorDriftMonitor::GetState() const {
  common::MutexLock lock(&mu_);
  State s;
  s.observed = observed_;
  s.window_fill = window_.size();
  s.window_size = opts_.window;
  s.p50 = p50_;
  s.p95 = p95_;
  s.max_qerror = max_qerror_;
  s.threshold = opts_.p95_threshold;
  s.degraded = degraded_;
  s.flips = flips_;
  return s;
}

bool QErrorDriftMonitor::degraded() const {
  common::MutexLock lock(&mu_);
  return degraded_;
}

std::string QErrorDriftMonitor::ToJson() const {
  const State s = GetState();
  std::ostringstream out;
  out << "{\"observed\":" << s.observed
      << ",\"window_fill\":" << s.window_fill
      << ",\"window_size\":" << s.window_size << ",\"p50\":"
      << common::StrFormat("%.9g", s.p50) << ",\"p95\":"
      << common::StrFormat("%.9g", s.p95) << ",\"max_qerror\":"
      << common::StrFormat("%.9g", s.max_qerror) << ",\"threshold\":"
      << common::StrFormat("%.9g", s.threshold) << ",\"degraded\":"
      << (s.degraded ? "true" : "false") << ",\"flips\":" << s.flips << "}";
  return out.str();
}

void QErrorDriftMonitor::Reset(const DriftMonitorOptions* options) {
  common::MutexLock lock(&mu_);
  if (options != nullptr) {
    opts_ = *options;
    if (opts_.window == 0) opts_.window = 1;
  }
  window_.clear();
  window_.reserve(opts_.window);
  next_slot_ = 0;
  observed_ = 0;
  max_qerror_ = 0.0;
  degraded_ = false;
  flips_ = 0;
  p50_ = 0.0;
  p95_ = 0.0;
}

}  // namespace qfcard::obs
