#ifndef QFCARD_OBS_QERROR_MONITOR_H_
#define QFCARD_OBS_QERROR_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qfcard::obs {

/// Knobs for QErrorDriftMonitor. Defaults follow the drift experiment
/// (Fig. 5 / bench_fig5_query_drift): a learned estimator whose rolling p95
/// q-error exceeds 10 on in-distribution-sized windows has left its training
/// distribution and needs retraining.
struct DriftMonitorOptions {
  size_t window = 256;        ///< labeled q-errors kept in the rolling window
  double p95_threshold = 10.0;///< degradation flips when window p95 crosses
  size_t min_samples = 30;    ///< no verdict before this many observations
};

/// Always-on runtime drift detector: maintains a rolling window of
/// labeled-query q-errors (queries where the true cardinality became known —
/// feedback from executed plans, eval harness truths, CLI truth checks) and
/// flips a degradation flag while the window's p95 exceeds the threshold.
/// This is the paper's Figure 5 observation operationalized: means hide
/// drift, the p95 tail does not. Thread-safe; Observe is mutex-guarded and
/// O(window log window), intended for labeled feedback (rare) not the
/// estimation hot path.
class QErrorDriftMonitor {
 public:
  /// Shared process-wide monitor, configured from the environment on first
  /// use: QFCARD_DRIFT_WINDOW, QFCARD_DRIFT_P95 (x1000, integer env),
  /// QFCARD_DRIFT_MIN_SAMPLES. Exported in every telemetry snapshot.
  static QErrorDriftMonitor& Global();

  explicit QErrorDriftMonitor(DriftMonitorOptions options = {});
  QErrorDriftMonitor(const QErrorDriftMonitor&) = delete;
  QErrorDriftMonitor& operator=(const QErrorDriftMonitor&) = delete;

  /// Feeds one labeled q-error (>= 1) and re-evaluates the window p95.
  void Observe(double qerror);

  /// Point-in-time state of the monitor.
  struct State {
    uint64_t observed = 0;     ///< total q-errors ever fed
    size_t window_fill = 0;    ///< q-errors currently in the window
    size_t window_size = 0;    ///< configured window capacity
    double p50 = 0.0;          ///< window median
    double p95 = 0.0;          ///< window p95 (the alert statistic)
    double max_qerror = 0.0;   ///< largest q-error ever fed
    double threshold = 0.0;
    bool degraded = false;     ///< p95 > threshold (with >= min_samples)
    uint64_t flips = 0;        ///< healthy->degraded transitions so far
  };
  State GetState() const;

  bool degraded() const;

  /// JSON object for the telemetry snapshot (docs/observability.md).
  std::string ToJson() const;

  /// Clears the window, counters, and the flag. Reconfigures when `options`
  /// is non-null.
  void Reset(const DriftMonitorOptions* options = nullptr);

  /// Called on every healthy->degraded flip with the state that triggered
  /// it, from the Observe thread. Listeners must be fast and must not call
  /// back into this monitor (the listener lock is held during the call);
  /// hand heavy work off to another thread (serve::Retrainer does).
  using FlipListener = std::function<void(const State&)>;

  /// Registers a flip listener; returns an id for RemoveFlipListener.
  uint64_t AddFlipListener(FlipListener listener);

  /// Unregisters a listener. Blocks until any in-flight invocation of it has
  /// returned, so the listener's captures can be destroyed safely afterward.
  void RemoveFlipListener(uint64_t id);

 private:
  mutable common::Mutex mu_;
  DriftMonitorOptions opts_ QFCARD_GUARDED_BY(mu_);
  std::vector<double> window_ QFCARD_GUARDED_BY(mu_);  // ring, oldest evicted
  size_t next_slot_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t observed_ QFCARD_GUARDED_BY(mu_) = 0;
  double max_qerror_ QFCARD_GUARDED_BY(mu_) = 0.0;
  bool degraded_ QFCARD_GUARDED_BY(mu_) = false;
  uint64_t flips_ QFCARD_GUARDED_BY(mu_) = 0;

  void RecomputeLocked() QFCARD_REQUIRES(mu_);
  double p50_ QFCARD_GUARDED_BY(mu_) = 0.0;
  double p95_ QFCARD_GUARDED_BY(mu_) = 0.0;

  // Listener registry under its own lock so registration never contends
  // with the window math, and so RemoveFlipListener can block on in-flight
  // callbacks without holding mu_. Lock order: mu_ is never held while
  // listeners_mu_ is taken with callbacks running (Observe releases mu_
  // before notifying).
  mutable common::Mutex listeners_mu_;
  std::vector<std::pair<uint64_t, FlipListener>> listeners_
      QFCARD_GUARDED_BY(listeners_mu_);
  uint64_t next_listener_id_ QFCARD_GUARDED_BY(listeners_mu_) = 1;
};

}  // namespace qfcard::obs

#endif  // QFCARD_OBS_QERROR_MONITOR_H_
