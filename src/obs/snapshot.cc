#include "obs/snapshot.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/qerror_monitor.h"
#include "obs/trace.h"

namespace qfcard::obs {

std::string SnapshotJson() {
  const TraceBuffer& trace = TraceBuffer::Global();
  std::ostringstream out;
  out << "{\"version\":1,\"metrics\":"
      << MetricsRegistry::Global().ToJson() << ",\"drift_monitor\":"
      << QErrorDriftMonitor::Global().ToJson() << ",\"trace\":{\"capacity\":"
      << trace.capacity() << ",\"recorded\":" << trace.Recorded()
      << ",\"dropped\":" << trace.Dropped()
      << ",\"retained\":" << trace.RetainedSpans()
      << ",\"tail_sampled\":" << trace.TailSampledTraces()
      << ",\"tail_dropped\":" << trace.TailDroppedSpans() << "}}";
  return out.str();
}

bool WriteSnapshotJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << SnapshotJson() << "\n";
  return static_cast<bool>(out);
}

std::string SnapshotPrometheus() {
  const QErrorDriftMonitor::State s = QErrorDriftMonitor::Global().GetState();
  std::ostringstream out;
  out << MetricsRegistry::Global().ToPrometheus();
  out << "# TYPE qfcard_drift_p95 gauge\nqfcard_drift_p95 "
      << common::StrFormat("%.9g", s.p95) << "\n"
      << "# TYPE qfcard_drift_degraded gauge\nqfcard_drift_degraded "
      << (s.degraded ? 1 : 0) << "\n"
      << "# TYPE qfcard_drift_observed counter\nqfcard_drift_observed "
      << s.observed << "\n";
  return out.str();
}

}  // namespace qfcard::obs
