#ifndef QFCARD_OBS_SNAPSHOT_H_
#define QFCARD_OBS_SNAPSHOT_H_

#include <string>

namespace qfcard::obs {

/// One JSON document capturing the full telemetry state: the metrics
/// registry (counters/gauges/histograms), the global q-error drift monitor,
/// and trace-buffer occupancy. This is what `qfcard_cli --metrics-out`
/// writes and what tools/validate_metrics.py checks against
/// tools/metrics_schema.json in CI. Shape documented in
/// docs/observability.md.
std::string SnapshotJson();

/// Writes SnapshotJson() to `path`; false on I/O failure.
bool WriteSnapshotJson(const std::string& path);

/// Prometheus text exposition of the metrics registry plus the drift
/// monitor rendered as gauges (qfcard_drift_p95, qfcard_drift_degraded, ...).
std::string SnapshotPrometheus();

}  // namespace qfcard::obs

#endif  // QFCARD_OBS_SNAPSHOT_H_
