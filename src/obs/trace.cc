#include "obs/trace.h"

#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/env.h"
#include "common/pool_stats.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace qfcard::obs {

namespace internal {

std::atomic<int> g_trace_mode{-1};

bool ResolveTraceMode() {
  const bool on = common::GetEnvInt("QFCARD_TRACE", 0) != 0;
  int expected = -1;
  g_trace_mode.compare_exchange_strong(expected, on ? 1 : 0,
                                       std::memory_order_relaxed);
  return g_trace_mode.load(std::memory_order_relaxed) != 0;
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_mode.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Per-thread state
// ---------------------------------------------------------------------------

namespace {

// Innermost open span on this thread and the trace it belongs to; new spans
// parent under the pair. Spans are strictly scope-nested per thread (RAII),
// so plain per-thread variables suffice — no synchronization needed. A
// cross-thread re-attach (TraceSpan(name, ctx), PoolTraceBridge::Adopt)
// saves and restores both.
thread_local uint64_t tls_current_span = 0;
thread_local uint64_t tls_current_trace = 0;

std::atomic<uint32_t> g_next_thread_index{0};
thread_local uint32_t tls_thread_index = ~0u;

}  // namespace

uint32_t CurrentThreadIndex() {
  if (tls_thread_index == ~0u) {
    tls_thread_index = g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_index;
}

TraceContext CurrentTraceContext() {
  return TraceContext{tls_current_trace, tls_current_span};
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked: outlives statics
  return *buffer;
}

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_(Now()) {
  common::MutexLock lock(&mu_);
  ring_.reserve(capacity_);
}

bool TraceBuffer::IsKept(uint64_t trace_id) const {
  return kept_traces_.count(trace_id) != 0;
}

void TraceBuffer::KeepTrace(uint64_t trace_id) {
  if (kept_traces_.count(trace_id) != 0) return;
  kept_traces_.insert(trace_id);
  kept_order_.push_back(trace_id);
  ++tail_sampled_;
  // Bounded memory of kept traces: forget the oldest. Its spans already in
  // the side store stay there; it just loses future eviction protection.
  while (kept_traces_.size() > tail_.max_kept_traces && !kept_order_.empty()) {
    kept_traces_.erase(kept_order_.front());
    kept_order_.pop_front();
  }
}

void TraceBuffer::Record(SpanRecord span) {
  common::MutexLock lock(&mu_);
  ++recorded_;
  // Keep-decision at trace-root close (the root is recorded last, after its
  // children): a slow or errored request marks its whole trace kept, so the
  // eviction path below rescues the trace's spans from the ring.
  if (tail_.enabled && span.trace_id != 0 && span.id == span.trace_id) {
    const bool slow = span.duration_s >= tail_.latency_threshold_seconds;
    const bool errored = tail_.keep_errors && span.error;
    if (slow || errored) KeepTrace(span.trace_id);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  // Full: overwrite the oldest slot (next_slot_ walks the ring), rescuing
  // victims that belong to a tail-sampled trace into the bounded side store.
  SpanRecord& victim = ring_[next_slot_];
  if (tail_.enabled && victim.trace_id != 0 && IsKept(victim.trace_id)) {
    if (retained_.size() < tail_.retained_capacity) {
      retained_.push_back(std::move(victim));
    } else {
      ++tail_dropped_;
    }
  }
  ring_[next_slot_] = std::move(span);
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceBuffer::SnapshotLocked() const {
  std::vector<SpanRecord> out;
  out.reserve(retained_.size() + ring_.size());
  // Retainees were evicted from the ring, so they predate everything in it.
  out.insert(out.end(), retained_.begin(), retained_.end());
  // Ring oldest first: from next_slot_ (the overwrite cursor) around.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  common::MutexLock lock(&mu_);
  return SnapshotLocked();
}

uint64_t TraceBuffer::Dropped() const {
  common::MutexLock lock(&mu_);
  const uint64_t held = ring_.size() + retained_.size();
  return recorded_ > held ? recorded_ - held : 0;
}

uint64_t TraceBuffer::Recorded() const {
  common::MutexLock lock(&mu_);
  return recorded_;
}

size_t TraceBuffer::capacity() const {
  common::MutexLock lock(&mu_);
  return capacity_;
}

void TraceBuffer::SetTailSampling(const TailSamplingOptions& options) {
  common::MutexLock lock(&mu_);
  tail_ = options;
  if (tail_.max_kept_traces == 0) tail_.max_kept_traces = 1;
}

TailSamplingOptions TraceBuffer::tail_sampling() const {
  common::MutexLock lock(&mu_);
  return tail_;
}

uint64_t TraceBuffer::TailSampledTraces() const {
  common::MutexLock lock(&mu_);
  return tail_sampled_;
}

uint64_t TraceBuffer::TailDroppedSpans() const {
  common::MutexLock lock(&mu_);
  return tail_dropped_;
}

size_t TraceBuffer::RetainedSpans() const {
  common::MutexLock lock(&mu_);
  return retained_.size();
}

void TraceBuffer::Reset() {
  common::MutexLock lock(&mu_);
  ring_.clear();
  next_slot_ = 0;
  recorded_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
  epoch_ = Now();
  retained_.clear();
  kept_traces_.clear();
  kept_order_.clear();
  tail_sampled_ = 0;
  tail_dropped_ = 0;
}

void TraceBuffer::ResetWithCapacity(size_t capacity) {
  Reset();
  common::MutexLock lock(&mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.reserve(capacity_);
}

namespace {

void AppendSpanJson(std::ostringstream& out, const SpanRecord& s) {
  out << "{\"id\":" << s.id << ",\"parent\":" << s.parent_id
      << ",\"trace\":" << s.trace_id << ",\"route\":" << s.route
      << ",\"tid\":" << s.thread_index
      << ",\"error\":" << (s.error ? "true" : "false") << ",\"name\":\""
      << internal::JsonEscape(s.name) << "\",\"start_s\":"
      << common::StrFormat("%.9f", s.start_s) << ",\"duration_s\":"
      << common::StrFormat("%.9f", s.duration_s);
  if (!s.links.empty()) {
    out << ",\"links\":[";
    for (size_t i = 0; i < s.links.size(); ++i) {
      if (i > 0) out << ",";
      out << s.links[i];
    }
    out << "]";
  }
  out << "}";
}

}  // namespace

std::string TraceBuffer::ToJson() const {
  std::ostringstream out;
  std::vector<SpanRecord> spans;
  uint64_t recorded = 0;
  size_t capacity = 0;
  size_t retained = 0;
  uint64_t tail_sampled = 0;
  uint64_t tail_dropped = 0;
  {
    common::MutexLock lock(&mu_);
    spans = SnapshotLocked();
    recorded = recorded_;
    capacity = capacity_;
    retained = retained_.size();
    tail_sampled = tail_sampled_;
    tail_dropped = tail_dropped_;
  }
  const uint64_t dropped =
      recorded > spans.size() ? recorded - spans.size() : 0;
  out << "{\"capacity\":" << capacity << ",\"recorded\":" << recorded
      << ",\"dropped\":" << dropped << ",\"retained\":" << retained
      << ",\"tail_sampled\":" << tail_sampled
      << ",\"tail_dropped\":" << tail_dropped << ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out << ",";
    AppendSpanJson(out, spans[i]);
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

void TraceSpan::Open(const char* name, uint64_t parent, uint64_t trace) {
  name_ = name;
  TraceBuffer& buffer = TraceBuffer::Global();
  id_ = buffer.NextId();
  parent_id_ = parent;
  // A span opening with no surrounding trace starts one: the trace id IS
  // the root span's id, so links to a trace resolve to a concrete span.
  trace_id_ = trace == 0 ? id_ : trace;
  prev_span_ = tls_current_span;
  prev_trace_ = tls_current_trace;
  tls_current_span = id_;
  tls_current_trace = trace_id_;
  owner_thread_ = CurrentThreadIndex();
  start_ = Now();
  active_ = true;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!TraceEnabled()) return;
  Open(name, tls_current_span, tls_current_trace);
}

TraceSpan::TraceSpan(const char* name, const TraceContext& ctx) : name_(name) {
  if (!TraceEnabled()) return;
  if (ctx.valid()) {
    Open(name, ctx.parent_span_id, ctx.trace_id);
  } else {
    Open(name, tls_current_span, tls_current_trace);
  }
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::AddLink(uint64_t trace_id) {
  if (!active_ || trace_id == 0 || trace_id == trace_id_) return;
  links_.push_back(trace_id);
}

void TraceSpan::MarkError() {
  if (active_) error_ = true;
}

void TraceSpan::SetRoute(uint64_t route) {
  if (active_) route_ = route;
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  // Restore the chain only on the thread that opened the span: if the span
  // object migrated (e.g. destroyed by whoever joined a worker), writing the
  // saved values into the destroyer's thread-locals would corrupt ITS chain.
  if (CurrentThreadIndex() == owner_thread_) {
    tls_current_span = prev_span_;
    tls_current_trace = prev_trace_;
  }
  TraceBuffer& buffer = TraceBuffer::Global();
  SpanRecord span;
  span.id = id_;
  span.parent_id = parent_id_;
  span.trace_id = trace_id_;
  span.route = route_;
  span.thread_index = owner_thread_;
  span.error = error_;
  span.name = name_;
  span.start_s = buffer.SinceEpoch(start_);
  span.duration_s = SecondsBetween(start_, Now());
  span.links = std::move(links_);
  buffer.Record(std::move(span));
}

uint64_t RecordSpan(const char* name, const TraceContext& ctx,
                    Clock::time_point start, Clock::time_point end,
                    uint64_t route) {
  if (!TraceEnabled()) return 0;
  TraceBuffer& buffer = TraceBuffer::Global();
  SpanRecord span;
  span.id = buffer.NextId();
  span.parent_id = ctx.parent_span_id;
  span.trace_id = ctx.trace_id;
  span.route = route;
  span.thread_index = CurrentThreadIndex();
  span.name = name;
  span.start_s = buffer.SinceEpoch(start);
  span.duration_s = SecondsBetween(start, end);
  buffer.Record(std::move(span));
  return span.id;
}

void RecordTraceRoot(const char* name, uint64_t trace_id,
                     Clock::time_point start, Clock::time_point end,
                     uint64_t route, bool error) {
  if (!TraceEnabled() || trace_id == 0) return;
  TraceBuffer& buffer = TraceBuffer::Global();
  SpanRecord span;
  span.id = trace_id;
  span.parent_id = 0;
  span.trace_id = trace_id;
  span.route = route;
  span.thread_index = CurrentThreadIndex();
  span.error = error;
  span.name = name;
  span.start_s = buffer.SinceEpoch(start);
  span.duration_s = SecondsBetween(start, end);
  buffer.Record(std::move(span));
}

uint64_t MintTraceId() {
  if (!TraceEnabled()) return 0;
  return TraceBuffer::Global().NextId();
}

// ---------------------------------------------------------------------------
// StageCapture
// ---------------------------------------------------------------------------

namespace {
thread_local StageCapture* tls_stage_capture = nullptr;
}  // namespace

StageCapture::StageCapture() : prev_(tls_stage_capture) {
  tls_stage_capture = this;
}

StageCapture::~StageCapture() { tls_stage_capture = prev_; }

void StageCapture::Report(Stage stage, double seconds) {
  StageCapture* capture = tls_stage_capture;
  if (capture == nullptr) return;
  capture->seconds_[static_cast<int>(stage)] += seconds;
}

// ---------------------------------------------------------------------------
// ThreadPool context handoff (common::PoolTraceBridge)
// ---------------------------------------------------------------------------

namespace {

// Saved (trace, span) pairs for nested Adopt/Release on this thread.
thread_local std::vector<std::pair<uint64_t, uint64_t>> tls_adopt_stack;

// The one real bridge: lets common::ThreadPool capture the submitting
// thread's context and re-install it on workers without common/ including
// obs/ (same inversion as PoolStatsSink; see obs/pool_metrics.cc).
class PoolTraceBridgeImpl final : public common::PoolTraceBridge {
 public:
  bool Enabled() const override { return TraceEnabled(); }

  common::PoolTraceToken Capture() const override {
    return common::PoolTraceToken{tls_current_trace, tls_current_span};
  }

  void Adopt(const common::PoolTraceToken& token) override {
    tls_adopt_stack.emplace_back(tls_current_trace, tls_current_span);
    tls_current_trace = token.trace_id;
    tls_current_span = token.span_id;
  }

  void Release() override {
    // Restoring (rather than leaving whatever the task set) is the fix for
    // leaked unclosed spans corrupting every later task on this worker.
    if (tls_adopt_stack.empty()) {
      tls_current_trace = 0;
      tls_current_span = 0;
      return;
    }
    tls_current_trace = tls_adopt_stack.back().first;
    tls_current_span = tls_adopt_stack.back().second;
    tls_adopt_stack.pop_back();
  }
};

struct PoolTraceInstaller {
  PoolTraceInstaller() { common::SetPoolTraceBridge(&bridge); }
  PoolTraceBridgeImpl bridge;
};

PoolTraceInstaller g_pool_trace_installer;

}  // namespace

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

bool WriteTraceJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << TraceBuffer::Global().ToJson() << "\n";
  return static_cast<bool>(out);
}

namespace {

// Dense pid lane per serving route: Perfetto groups tracks by process, so
// each route renders as its own swim-lane group. Route 0 (spans recorded
// outside any serving route) gets pid 1.
std::map<uint64_t, int> RoutePids(const std::vector<SpanRecord>& spans) {
  std::map<uint64_t, int> pids;
  pids[0] = 1;
  for (const SpanRecord& s : spans) pids.emplace(s.route, 0);
  int next = 1;
  for (auto& entry : pids) entry.second = next++;
  return pids;
}

}  // namespace

bool WriteTraceEventJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot();
  const std::map<uint64_t, int> pids = RoutePids(spans);
  // Root spans by trace id, for drawing follow-from flow arrows.
  std::map<uint64_t, const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    if (s.trace_id != 0 && s.id == s.trace_id) roots[s.id] = &s;
  }
  std::ostringstream events;
  bool first = true;
  auto comma = [&events, &first]() {
    if (!first) events << ",\n";
    first = false;
  };
  // Process metadata: name each route lane.
  for (const auto& [route, pid] : pids) {
    comma();
    const std::string label =
        route == 0 ? std::string("qfcard (unrouted)")
                   : "route 0x" + common::StrFormat(
                         "%016llx", static_cast<unsigned long long>(route));
    events << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\""
           << internal::JsonEscape(label) << "\"}}";
  }
  // Thread metadata: one per (route lane, thread) pair that recorded spans.
  std::set<std::pair<int, uint32_t>> named_threads;
  for (const SpanRecord& s : spans) {
    const int pid = pids.at(s.route);
    if (!named_threads.insert({pid, s.thread_index}).second) continue;
    comma();
    events << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << s.thread_index << ",\"args\":{\"name\":\"thread "
           << s.thread_index << "\"}}";
  }
  for (const SpanRecord& s : spans) {
    const int pid = pids.at(s.route);
    comma();
    events << "{\"name\":\"" << internal::JsonEscape(s.name)
           << "\",\"cat\":\"qfcard\",\"ph\":\"X\",\"ts\":"
           << common::StrFormat("%.3f", s.start_s * 1e6)
           << ",\"dur\":" << common::StrFormat("%.3f", s.duration_s * 1e6)
           << ",\"pid\":" << pid << ",\"tid\":" << s.thread_index
           << ",\"args\":{\"span\":" << s.id << ",\"parent\":" << s.parent_id
           << ",\"trace\":" << s.trace_id
           << ",\"error\":" << (s.error ? "true" : "false");
    if (!s.links.empty()) {
      events << ",\"links\":[";
      for (size_t i = 0; i < s.links.size(); ++i) {
        if (i > 0) events << ",";
        events << s.links[i];
      }
      events << "]";
    }
    events << "}}";
    // Follow-from links render as flow arrows: linked trace root -> here.
    for (const uint64_t link : s.links) {
      const auto root_it = roots.find(link);
      if (root_it == roots.end()) continue;
      const SpanRecord& r = *root_it->second;
      comma();
      events << "{\"name\":\"request\",\"cat\":\"qfcard.flow\",\"ph\":\"s\","
             << "\"id\":" << link << ",\"pid\":" << pids.at(r.route)
             << ",\"tid\":" << r.thread_index
             << ",\"ts\":" << common::StrFormat("%.3f", r.start_s * 1e6)
             << "}";
      comma();
      events << "{\"name\":\"request\",\"cat\":\"qfcard.flow\",\"ph\":\"f\","
             << "\"bp\":\"e\",\"id\":" << link << ",\"pid\":" << pid
             << ",\"tid\":" << s.thread_index
             << ",\"ts\":" << common::StrFormat("%.3f", s.start_s * 1e6)
             << "}";
    }
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      << events.str() << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace qfcard::obs
