#include "obs/trace.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/env.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace qfcard::obs {

namespace internal {

std::atomic<int> g_trace_mode{-1};

bool ResolveTraceMode() {
  const bool on = common::GetEnvInt("QFCARD_TRACE", 0) != 0;
  int expected = -1;
  g_trace_mode.compare_exchange_strong(expected, on ? 1 : 0,
                                       std::memory_order_relaxed);
  return g_trace_mode.load(std::memory_order_relaxed) != 0;
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_mode.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked: outlives statics
  return *buffer;
}

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_(Now()) {
  common::MutexLock lock(&mu_);
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(SpanRecord span) {
  common::MutexLock lock(&mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  // Full: overwrite the oldest slot (next_slot_ walks the ring).
  ring_[next_slot_] = std::move(span);
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  common::MutexLock lock(&mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: from next_slot_ (the overwrite cursor) around the ring.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceBuffer::Dropped() const {
  common::MutexLock lock(&mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

uint64_t TraceBuffer::Recorded() const {
  common::MutexLock lock(&mu_);
  return recorded_;
}

size_t TraceBuffer::capacity() const {
  common::MutexLock lock(&mu_);
  return capacity_;
}

void TraceBuffer::Reset() {
  common::MutexLock lock(&mu_);
  ring_.clear();
  next_slot_ = 0;
  recorded_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
  epoch_ = Now();
}

void TraceBuffer::ResetWithCapacity(size_t capacity) {
  common::MutexLock lock(&mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_slot_ = 0;
  recorded_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
  epoch_ = Now();
}

std::string TraceBuffer::ToJson() const {
  std::ostringstream out;
  const std::vector<SpanRecord> spans = Snapshot();
  uint64_t recorded = 0;
  size_t capacity = 0;
  {
    common::MutexLock lock(&mu_);
    recorded = recorded_;
    capacity = capacity_;
  }
  const uint64_t dropped =
      recorded > spans.size() ? recorded - spans.size() : 0;
  out << "{\"capacity\":" << capacity << ",\"recorded\":" << recorded
      << ",\"dropped\":" << dropped << ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out << ",";
    const SpanRecord& s = spans[i];
    out << "{\"id\":" << s.id << ",\"parent\":" << s.parent_id
        << ",\"name\":\"" << internal::JsonEscape(s.name) << "\",\"start_s\":"
        << common::StrFormat("%.9f", s.start_s) << ",\"duration_s\":"
        << common::StrFormat("%.9f", s.duration_s) << "}";
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

namespace {

// Innermost open span on this thread; new spans parent under it. Spans are
// strictly scope-nested per thread (RAII), so a plain stack variable per
// thread suffices — no synchronization needed.
thread_local uint64_t tls_current_span = 0;

}  // namespace

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!TraceEnabled()) return;
  TraceBuffer& buffer = TraceBuffer::Global();
  id_ = buffer.NextId();
  parent_id_ = tls_current_span;
  tls_current_span = id_;
  start_ = Now();
  active_ = true;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  tls_current_span = parent_id_;
  TraceBuffer& buffer = TraceBuffer::Global();
  SpanRecord span;
  span.id = id_;
  span.parent_id = parent_id_;
  span.name = name_;
  span.start_s = buffer.SinceEpoch(start_);
  span.duration_s = SecondsBetween(start_, Now());
  buffer.Record(std::move(span));
}

bool WriteTraceJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << TraceBuffer::Global().ToJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace qfcard::obs
