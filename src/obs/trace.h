#ifndef QFCARD_OBS_TRACE_H_
#define QFCARD_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace qfcard::obs {

// ---------------------------------------------------------------------------
// Runtime toggle (mirrors QFCARD_METRICS; see metrics.h)
// ---------------------------------------------------------------------------

namespace internal {
extern std::atomic<int> g_trace_mode;  // -1 unresolved, 0 off, 1 on
bool ResolveTraceMode();
}  // namespace internal

/// Whether span recording is on: the QFCARD_TRACE environment variable
/// (default off), overridable via SetTraceEnabled. One relaxed load once
/// resolved, so TraceSpan construction is ~free when tracing is off.
inline bool TraceEnabled() {
  const int mode = internal::g_trace_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  return internal::ResolveTraceMode();
}

/// Programmatic override of QFCARD_TRACE (qfcard_cli --trace-out, tests).
void SetTraceEnabled(bool enabled);

// ---------------------------------------------------------------------------
// Request-scoped trace context
// ---------------------------------------------------------------------------

/// Explicit trace identity for crossing thread boundaries (docs/
/// observability.md, "Context propagation"). A request's life starts on the
/// client thread (serve.submit), waits in a queue, and finishes inside a
/// worker's micro-batch — the per-thread parent chain cannot follow it, so
/// the submit span mints a TraceContext, the queue entry carries it, and
/// TraceSpan(name, ctx) re-attaches on the worker. trace_id is the id of the
/// trace's root span (the span that started the trace), so a link to a
/// trace is also an edge to a concrete span.
struct TraceContext {
  uint64_t trace_id = 0;       ///< root span id of the request's trace
  uint64_t parent_span_id = 0; ///< span to parent under (0 = root)

  bool valid() const { return trace_id != 0; }
};

/// The calling thread's current context: the innermost open span and its
/// trace. {0, 0} when tracing is off or no span is open. This is what
/// ThreadPool captures at ParallelFor submission and re-installs on its
/// workers (common/pool_stats.h, PoolTraceBridge).
TraceContext CurrentTraceContext();

/// Dense id of the calling thread (assigned on first use, starting at 0 for
/// the first thread that records). Exported as the tid lane in the
/// trace-event dump; NOT stable across runs (threads wake in OS order).
uint32_t CurrentThreadIndex();

// ---------------------------------------------------------------------------
// Span records and the bounded ring buffer
// ---------------------------------------------------------------------------

/// One finished span. `start_s` is relative to the buffer's epoch (process
/// start or the last Reset), so dumps from one run line up on a common
/// timeline.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span
  uint64_t trace_id = 0;   ///< request trace this span belongs to (0 = none)
  uint64_t route = 0;      ///< serving route (fss) if known; pid lane in exports
  uint32_t thread_index = 0;  ///< recording thread; tid lane in exports
  bool error = false;      ///< the spanned operation failed
  std::string name;
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Follow-from links: trace ids whose work this span performed on their
  /// behalf (a micro-batch span links every member request's trace).
  std::vector<uint64_t> links;
};

/// Tail-sampling keep-policy for the ring (docs/observability.md): when
/// enabled, a trace whose ROOT span closed slower than the latency threshold
/// (or closed with the error flag) is marked "kept", and spans of kept
/// traces are moved into a bounded side store instead of being destroyed
/// when the ring overwrites them — the bounded ring stops evicting exactly
/// the spans a tail-latency investigation needs.
struct TailSamplingOptions {
  bool enabled = false;
  /// Root spans at least this slow mark their trace kept.
  double latency_threshold_seconds = 0.010;
  /// Roots that closed with MarkError() mark their trace kept.
  bool keep_errors = true;
  /// Bound on the side store (spans). Beyond it, evicted spans of kept
  /// traces are counted in TailDroppedSpans() and destroyed.
  size_t retained_capacity = 16384;
  /// Bound on remembered kept-trace ids (oldest forgotten first).
  size_t max_kept_traces = 4096;
};

/// Bounded ring of finished spans: constant memory no matter how long the
/// process runs, overwriting the oldest record when full (the newest spans
/// are the ones a drift alert investigation needs). Span ids are assigned
/// from a monotonically increasing sequence starting at 1, so with a
/// deterministic workload (serial pool, fixed seed) ids are stable across
/// runs — reproducers can reference "span 17" meaningfully.
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Next span id (also bumps the sequence).
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Seconds since the buffer epoch. Takes the buffer lock: Reset()
  /// re-anchors the epoch, and a span closing concurrently with a reset
  /// must not read a torn time_point.
  double SinceEpoch(Clock::time_point t) const {
    common::MutexLock lock(&mu_);
    return SecondsBetween(epoch_, t);
  }

  void Record(SpanRecord span);

  /// Finished spans: tail-sampling retainees first (they are the oldest),
  /// then the ring oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans evicted and destroyed so far (does not count retainees).
  uint64_t Dropped() const;
  uint64_t Recorded() const;
  size_t capacity() const;

  /// Installs/replaces the tail-sampling keep-policy. Keep decisions apply
  /// to roots recorded after the call; the side store survives until the
  /// next Reset.
  void SetTailSampling(const TailSamplingOptions& options);
  TailSamplingOptions tail_sampling() const;
  /// Traces marked kept so far.
  uint64_t TailSampledTraces() const;
  /// Spans of kept traces lost because the side store was full.
  uint64_t TailDroppedSpans() const;
  /// Spans currently in the side store.
  size_t RetainedSpans() const;

  /// Clears the ring, restarts the id sequence at 1, and re-anchors the
  /// epoch. With the same workload afterwards, span ids and nesting repeat
  /// exactly (tests/trace_test.cc pins this). The tail-sampling policy
  /// persists; its side store and counters clear.
  void Reset();

  /// Reset + resize (test hook for exercising overflow cheaply).
  void ResetWithCapacity(size_t capacity);

  /// JSON object: {"capacity":..,"recorded":..,"dropped":..,"retained":..,
  /// "tail_sampled":..,"tail_dropped":..,"spans":[...]}.
  std::string ToJson() const;

 private:
  static constexpr size_t kDefaultCapacity = 4096;

  std::vector<SpanRecord> SnapshotLocked() const QFCARD_REQUIRES(mu_);
  /// True when `trace_id` was marked kept by the tail-sampling policy.
  bool IsKept(uint64_t trace_id) const QFCARD_REQUIRES(mu_);
  /// Marks `trace_id` kept (bounded; forgets the oldest beyond the cap).
  void KeepTrace(uint64_t trace_id) QFCARD_REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::vector<SpanRecord> ring_ QFCARD_GUARDED_BY(mu_);
  size_t capacity_ QFCARD_GUARDED_BY(mu_);
  size_t next_slot_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t recorded_ QFCARD_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> next_id_{1};
  Clock::time_point epoch_ QFCARD_GUARDED_BY(mu_);

  TailSamplingOptions tail_ QFCARD_GUARDED_BY(mu_);
  std::vector<SpanRecord> retained_ QFCARD_GUARDED_BY(mu_);
  std::set<uint64_t> kept_traces_ QFCARD_GUARDED_BY(mu_);
  std::deque<uint64_t> kept_order_ QFCARD_GUARDED_BY(mu_);
  uint64_t tail_sampled_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t tail_dropped_ QFCARD_GUARDED_BY(mu_) = 0;
};

/// RAII trace span: records one SpanRecord into TraceBuffer::Global() on
/// destruction when tracing is enabled, and maintains the per-thread parent
/// chain so nested spans (estimate.batch > featurize.batch) link up. `name`
/// must be a string literal (stored by pointer until the span closes).
///
/// The two-argument constructor re-attaches a cross-thread context instead
/// of the thread-local chain: the span parents under ctx.parent_span_id and
/// joins ctx.trace_id, and spans opened on this thread while it is alive
/// nest under it as usual — this is how a worker's micro-batch execution
/// lands in the client request's trace (docs/observability.md).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, const TraceContext& ctx);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's id; 0 when tracing is off.
  uint64_t id() const { return id_; }

  /// Context for handing this span's subtree to another thread:
  /// {trace_id, this span}. Invalid (all zero) when tracing is off.
  TraceContext context() const { return TraceContext{trace_id_, id_}; }

  /// Follow-from annotation: this span performed work on behalf of
  /// `trace_id` (a micro-batch serving many requests links each one).
  void AddLink(uint64_t trace_id);

  /// Marks the spanned operation failed; tail sampling keeps errored roots.
  void MarkError();

  /// Serving route (fss) this span worked for; the pid lane in exports.
  void SetRoute(uint64_t route);

  /// Closes the span now (records it and pops the parent chain); the
  /// destructor then does nothing. Idempotent. Lets a long-lived span (e.g.
  /// cli.main) land in a trace dump written before scope exit.
  void End();

 private:
  void Open(const char* name, uint64_t parent, uint64_t trace);

  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t route_ = 0;
  /// Thread-local chain state to restore at End(), captured at open. For a
  /// plain nested span prev_span_ == parent_id_; for a re-attached span
  /// they differ (the parent lives on another thread).
  uint64_t prev_span_ = 0;
  uint64_t prev_trace_ = 0;
  uint32_t owner_thread_ = 0;
  Clock::time_point start_;
  bool active_ = false;
  bool error_ = false;
  std::vector<uint64_t> links_;
};

/// Records one already-measured span directly (no RAII): parented under
/// `ctx`, spanning [start, end]. Used where the duration is known only
/// after the fact — e.g. the server records each request's queue wait when
/// its micro-batch flushes. Returns the span id (0 when tracing is off).
/// `name` must be a string literal.
uint64_t RecordSpan(const char* name, const TraceContext& ctx,
                    Clock::time_point start, Clock::time_point end,
                    uint64_t route = 0);

/// Records a trace's ROOT span with a previously minted id (MintTraceId):
/// id = trace_id, parent 0, spanning [start, end]. The estimation server
/// mints a request's trace id at admission and records this root when the
/// request completes, so the root's duration is the request's full latency —
/// exactly what the tail-sampling keep-policy evaluates. No-op when tracing
/// is off or trace_id is 0. `name` must be a string literal.
void RecordTraceRoot(const char* name, uint64_t trace_id,
                     Clock::time_point start, Clock::time_point end,
                     uint64_t route, bool error);

/// Reserves a fresh trace id (the future root span's id) without recording
/// anything yet; 0 when tracing is off. Children attach meanwhile via
/// TraceContext{id, id}; RecordTraceRoot closes the trace out.
uint64_t MintTraceId();

// ---------------------------------------------------------------------------
// Stage capture (per-request latency attribution)
// ---------------------------------------------------------------------------

/// Pipeline stages an estimator reports for latency attribution.
enum class Stage { kFeaturize = 0, kPredict = 1 };

/// Thread-local scoped accumulator for stage seconds: the estimation server
/// installs one around a micro-batch execution, estimator backends call
/// Report() from their stage blocks, and the server reads the split back to
/// stamp EstimateResponse::stages. Captures nest per thread (innermost
/// wins); Report() with no capture active is a no-op, so backends pay one
/// thread-local load when nobody is attributing.
class StageCapture {
 public:
  StageCapture();
  ~StageCapture();

  StageCapture(const StageCapture&) = delete;
  StageCapture& operator=(const StageCapture&) = delete;

  double seconds(Stage stage) const {
    return seconds_[static_cast<int>(stage)];
  }

  /// Adds `seconds` to `stage` of the innermost capture on this thread.
  static void Report(Stage stage, double seconds);

 private:
  StageCapture* prev_;
  double seconds_[2] = {0.0, 0.0};
};

/// Writes TraceBuffer::Global().ToJson() to `path`; false on I/O failure.
bool WriteTraceJson(const std::string& path);

/// Writes the buffer as Chrome trace-event JSON (the format Perfetto and
/// chrome://tracing load): one "X" complete event per span with pid = a
/// dense id per serving route, tid = recording thread, plus process_name
/// metadata naming each route and "s"/"f" flow events for follow-from
/// links. tools/analyze_trace.py validates the structure in CI; false on
/// I/O failure.
bool WriteTraceEventJson(const std::string& path);

}  // namespace qfcard::obs

#endif  // QFCARD_OBS_TRACE_H_
