#ifndef QFCARD_OBS_TRACE_H_
#define QFCARD_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace qfcard::obs {

// ---------------------------------------------------------------------------
// Runtime toggle (mirrors QFCARD_METRICS; see metrics.h)
// ---------------------------------------------------------------------------

namespace internal {
extern std::atomic<int> g_trace_mode;  // -1 unresolved, 0 off, 1 on
bool ResolveTraceMode();
}  // namespace internal

/// Whether span recording is on: the QFCARD_TRACE environment variable
/// (default off), overridable via SetTraceEnabled. One relaxed load once
/// resolved, so TraceSpan construction is ~free when tracing is off.
inline bool TraceEnabled() {
  const int mode = internal::g_trace_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  return internal::ResolveTraceMode();
}

/// Programmatic override of QFCARD_TRACE (qfcard_cli --trace-out, tests).
void SetTraceEnabled(bool enabled);

// ---------------------------------------------------------------------------
// Span records and the bounded ring buffer
// ---------------------------------------------------------------------------

/// One finished span. `start_s` is relative to the buffer's epoch (process
/// start or the last Reset), so dumps from one run line up on a common
/// timeline.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span
  std::string name;
  double start_s = 0.0;
  double duration_s = 0.0;
};

/// Bounded ring of finished spans: constant memory no matter how long the
/// process runs, overwriting the oldest record when full (the newest spans
/// are the ones a drift alert investigation needs). Span ids are assigned
/// from a monotonically increasing sequence starting at 1, so with a
/// deterministic workload (serial pool, fixed seed) ids are stable across
/// runs — reproducers can reference "span 17" meaningfully.
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Next span id (also bumps the sequence).
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Seconds since the buffer epoch. Takes the buffer lock: Reset()
  /// re-anchors the epoch, and a span closing concurrently with a reset
  /// must not read a torn time_point.
  double SinceEpoch(Clock::time_point t) const {
    common::MutexLock lock(&mu_);
    return SecondsBetween(epoch_, t);
  }

  void Record(SpanRecord span);

  /// Finished spans, oldest first (at most capacity()).
  std::vector<SpanRecord> Snapshot() const;

  /// Spans evicted by the ring so far.
  uint64_t Dropped() const;
  uint64_t Recorded() const;
  size_t capacity() const;

  /// Clears the ring, restarts the id sequence at 1, and re-anchors the
  /// epoch. With the same workload afterwards, span ids and nesting repeat
  /// exactly (tests/trace_test.cc pins this).
  void Reset();

  /// Reset + resize (test hook for exercising overflow cheaply).
  void ResetWithCapacity(size_t capacity);

  /// JSON object: {"capacity":..,"recorded":..,"dropped":..,"spans":[...]}.
  std::string ToJson() const;

 private:
  static constexpr size_t kDefaultCapacity = 4096;

  mutable common::Mutex mu_;
  std::vector<SpanRecord> ring_ QFCARD_GUARDED_BY(mu_);
  size_t capacity_ QFCARD_GUARDED_BY(mu_);
  size_t next_slot_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t recorded_ QFCARD_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> next_id_{1};
  Clock::time_point epoch_ QFCARD_GUARDED_BY(mu_);
};

/// RAII trace span: records one SpanRecord into TraceBuffer::Global() on
/// destruction when tracing is enabled, and maintains the per-thread parent
/// chain so nested spans (estimate.batch > featurize.batch) link up. `name`
/// must be a string literal (stored by pointer until the span closes).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's id; 0 when tracing is off.
  uint64_t id() const { return id_; }

  /// Closes the span now (records it and pops the parent chain); the
  /// destructor then does nothing. Idempotent. Lets a long-lived span (e.g.
  /// cli.main) land in a trace dump written before scope exit.
  void End();

 private:
  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  Clock::time_point start_;
  bool active_ = false;
};

/// Writes TraceBuffer::Global().ToJson() to `path`; false on I/O failure.
bool WriteTraceJson(const std::string& path);

}  // namespace qfcard::obs

#endif  // QFCARD_OBS_TRACE_H_
