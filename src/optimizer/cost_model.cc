#include "optimizer/cost_model.h"

namespace qfcard::opt {

double PlanCost(const JoinPlan& plan, CostModelKind kind) {
  double cost = 0.0;
  for (const JoinPlan::Node& node : plan.nodes) {
    if (node.table >= 0) continue;  // leaves are free in both models
    switch (kind) {
      case CostModelKind::kCout:
        cost += node.est_rows;
        break;
      case CostModelKind::kHash: {
        const JoinPlan::Node& left = plan.nodes[static_cast<size_t>(node.left)];
        const JoinPlan::Node& right =
            plan.nodes[static_cast<size_t>(node.right)];
        cost += left.est_rows + right.est_rows + node.est_rows;
        break;
      }
    }
  }
  return cost;
}

double PlanCostCout(const JoinPlan& plan) {
  return PlanCost(plan, CostModelKind::kCout);
}

common::StatusOr<JoinPlan> ReannotatePlan(const JoinPlan& plan,
                                          const SubsetCardFn& card_of) {
  JoinPlan out = plan;
  for (JoinPlan::Node& node : out.nodes) {
    QFCARD_ASSIGN_OR_RETURN(node.est_rows, card_of(node.mask));
  }
  return out;
}

}  // namespace qfcard::opt
