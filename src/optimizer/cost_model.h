#ifndef QFCARD_OPTIMIZER_COST_MODEL_H_
#define QFCARD_OPTIMIZER_COST_MODEL_H_

#include "optimizer/join_order.h"

namespace qfcard::opt {

/// Plan cost functions over an annotated JoinPlan.
enum class CostModelKind {
  /// C_out: sum of (estimated) intermediate join result sizes. The standard
  /// cost model for studying the impact of cardinality estimates.
  kCout,
  /// Hash-join cost: per join, build-side rows + probe-side rows + output
  /// rows. A closer proxy for actual executor work.
  kHash,
};

/// Cost of `plan` under `kind`, using the plan's `est_rows` annotations.
double PlanCost(const JoinPlan& plan, CostModelKind kind);

/// Shorthand for PlanCost(plan, kCout).
double PlanCostCout(const JoinPlan& plan);

/// Re-costs `plan` under a different cardinality source: replaces every
/// node's `est_rows` with `card_of(node.mask)` and returns the re-annotated
/// plan. Used to compute the *true* cost of a plan chosen with estimated
/// cardinalities (Table 4's methodology).
common::StatusOr<JoinPlan> ReannotatePlan(const JoinPlan& plan,
                                          const SubsetCardFn& card_of);

}  // namespace qfcard::opt

#endif  // QFCARD_OPTIMIZER_COST_MODEL_H_
