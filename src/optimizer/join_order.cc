#include "optimizer/join_order.h"

#include <limits>
#include <map>

#include "common/str_util.h"

namespace qfcard::opt {

namespace {

// Bitmask of a join predicate's two table slots.
uint32_t JoinMask(const query::JoinPredicate& j) {
  return (1u << j.left.table) | (1u << j.right.table);
}

// True if some join predicate connects a table in `a` with a table in `b`.
bool Connected(const query::Query& q, uint32_t a, uint32_t b) {
  for (const query::JoinPredicate& j : q.joins) {
    const uint32_t m = JoinMask(j);
    if ((m & a) != 0 && (m & b) != 0 && (m & a) != m && (m & b) != m) {
      return true;
    }
  }
  return false;
}

}  // namespace

common::StatusOr<query::Query> InducedSubQuery(const query::Query& q,
                                               uint32_t mask) {
  query::Query sub;
  std::vector<int> slot_map(q.tables.size(), -1);
  for (size_t t = 0; t < q.tables.size(); ++t) {
    if (mask & (1u << t)) {
      slot_map[t] = static_cast<int>(sub.tables.size());
      sub.tables.push_back(q.tables[t]);
    }
  }
  if (sub.tables.empty()) {
    return common::Status::InvalidArgument("empty table subset");
  }
  for (const query::JoinPredicate& j : q.joins) {
    if ((JoinMask(j) & mask) == JoinMask(j)) {
      query::JoinPredicate rj = j;
      rj.left.table = slot_map[static_cast<size_t>(j.left.table)];
      rj.right.table = slot_map[static_cast<size_t>(j.right.table)];
      sub.joins.push_back(rj);
    }
  }
  for (const query::CompoundPredicate& cp : q.predicates) {
    if ((mask & (1u << cp.col.table)) == 0) continue;
    query::CompoundPredicate rp = cp;
    rp.col.table = slot_map[static_cast<size_t>(cp.col.table)];
    for (query::ConjunctiveClause& clause : rp.disjuncts) {
      for (query::SimplePredicate& p : clause.preds) {
        p.col.table = rp.col.table;
      }
    }
    sub.predicates.push_back(std::move(rp));
  }
  return sub;
}

common::StatusOr<JoinPlan> JoinOrderOptimizer::Optimize(
    const query::Query& q, const SubsetCardFn& card_of) {
  const int n = static_cast<int>(q.tables.size());
  if (n < 1 || n > 20) {
    return common::Status::InvalidArgument(
        "optimizer supports 1..20 tables");
  }
  const uint32_t full = (n == 32) ? 0xffffffffu : ((1u << n) - 1u);

  struct Best {
    double cost = std::numeric_limits<double>::infinity();
    double rows = 0.0;
    uint32_t left = 0;  // 0 => leaf
    int node_id = -1;
  };
  std::map<uint32_t, Best> best;

  JoinPlan plan;
  // Leaves: cost 0 (C_out counts join outputs only).
  for (int t = 0; t < n; ++t) {
    const uint32_t mask = 1u << t;
    QFCARD_ASSIGN_OR_RETURN(const double rows, card_of(mask));
    Best b;
    b.cost = 0.0;
    b.rows = rows;
    b.left = 0;
    b.node_id = static_cast<int>(plan.nodes.size());
    JoinPlan::Node node;
    node.table = t;
    node.mask = mask;
    node.est_rows = rows;
    plan.nodes.push_back(node);
    best[mask] = b;
  }

  // DPsize: grow subsets by popcount.
  for (int size = 2; size <= n; ++size) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (__builtin_popcount(mask) != size) continue;
      Best candidate;
      bool rows_known = false;
      // Enumerate proper subsets as the left side.
      for (uint32_t left = (mask - 1) & mask; left != 0;
           left = (left - 1) & mask) {
        const uint32_t right = mask & ~left;
        if (left > right) continue;  // symmetric
        const auto lit = best.find(left);
        const auto rit = best.find(right);
        if (lit == best.end() || rit == best.end()) continue;
        if (!Connected(q, left, right)) continue;  // no cross products
        if (!rows_known) {
          // Cardinality of the joined subset is split-independent;
          // compute it once per mask.
          QFCARD_ASSIGN_OR_RETURN(candidate.rows, card_of(mask));
          rows_known = true;
        }
        const double cost =
            lit->second.cost + rit->second.cost + candidate.rows;
        if (cost < candidate.cost) {
          candidate.cost = cost;
          candidate.left = left;
        }
      }
      if (candidate.left != 0) best[mask] = candidate;
    }
  }

  const auto it = best.find(full);
  if (it == best.end()) {
    return common::Status::InvalidArgument(
        "join graph is disconnected; no plan without cross products");
  }

  // Materialize the plan tree top-down.
  std::function<common::StatusOr<int>(uint32_t)> build =
      [&](uint32_t mask) -> common::StatusOr<int> {
    Best& b = best[mask];
    if (b.node_id >= 0) return b.node_id;
    QFCARD_ASSIGN_OR_RETURN(const int left_id, build(b.left));
    QFCARD_ASSIGN_OR_RETURN(const int right_id, build(mask & ~b.left));
    JoinPlan::Node node;
    node.left = left_id;
    node.right = right_id;
    node.mask = mask;
    node.est_rows = b.rows;
    b.node_id = static_cast<int>(plan.nodes.size());
    plan.nodes.push_back(node);
    return b.node_id;
  };
  QFCARD_ASSIGN_OR_RETURN(plan.root, build(full));
  return plan;
}

std::string JoinPlan::ToString(const query::Query& q) const {
  std::function<std::string(int)> render = [&](int id) -> std::string {
    const Node& node = nodes[static_cast<size_t>(id)];
    if (node.table >= 0) {
      return q.tables[static_cast<size_t>(node.table)].name;
    }
    return "(" + render(node.left) + " ⋈ " + render(node.right) + ")";
  };
  if (root < 0) return "<empty>";
  return render(root);
}

}  // namespace qfcard::opt
