#ifndef QFCARD_OPTIMIZER_JOIN_ORDER_H_
#define QFCARD_OPTIMIZER_JOIN_ORDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace qfcard::opt {

/// A bushy join plan over the tables of one query. Nodes are stored in a
/// flat vector; leaves carry a table slot, internal nodes join their
/// children. `est_rows` is the optimizer's cardinality estimate for the
/// node's output (the quantity the C_out cost model sums).
struct JoinPlan {
  struct Node {
    int left = -1;
    int right = -1;
    int table = -1;  ///< leaf: slot into Query::tables
    uint32_t mask = 0;  ///< bitmask of covered table slots
    double est_rows = 0.0;
  };
  std::vector<Node> nodes;
  int root = -1;

  /// Parenthesized join order, e.g. "((t2 ⋈ t1) ⋈ t3)".
  std::string ToString(const query::Query& q) const;
};

/// Produces a cardinality estimate for the sub-query induced by a subset of
/// the query's tables (bitmask over Query::tables slots).
using SubsetCardFn =
    std::function<common::StatusOr<double>(uint32_t mask)>;

/// Builds the sub-query induced by `mask`: the masked tables, the join
/// predicates among them, and the selection predicates on them. This is
/// what optimizers feed to a cardinality estimator per DP subset.
common::StatusOr<query::Query> InducedSubQuery(const query::Query& q,
                                               uint32_t mask);

/// Dynamic-programming join-order optimizer (DPsize over connected
/// subsets, bushy plans, no cross products) minimizing the C_out cost:
/// the sum of estimated intermediate result sizes. Mirrors the defensive,
/// small-search-space optimizer discussed around Table 4.
class JoinOrderOptimizer {
 public:
  /// Optimizes `q` using `card_of` for subset cardinalities. `q` must have
  /// a connected join graph.
  static common::StatusOr<JoinPlan> Optimize(const query::Query& q,
                                             const SubsetCardFn& card_of);
};

}  // namespace qfcard::opt

#endif  // QFCARD_OPTIMIZER_JOIN_ORDER_H_
