#include "optimizer/plan_executor.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/exec_feedback.h"
#include "query/executor.h"

namespace qfcard::opt {

namespace {

// Intermediate result: tuples of base-table row ids, flat with stride =
// slots.size(); slots[i] is the Query::tables slot of tuple position i.
struct TupleSet {
  std::vector<int> slots;
  std::vector<int32_t> rows;

  size_t stride() const { return slots.size(); }
  size_t count() const { return slots.empty() ? 0 : rows.size() / stride(); }
  int PosOf(int slot) const {
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i] == slot) return static_cast<int>(i);
    }
    return -1;
  }
};

struct ExecContext {
  const storage::Catalog* catalog;
  const query::Query* q;
  std::vector<const storage::Table*> tables;  // per query slot
  double intermediate_rows = 0.0;
};

common::StatusOr<TupleSet> ExecNode(ExecContext& ctx, const JoinPlan& plan,
                                    int node_id);

common::StatusOr<TupleSet> ExecLeaf(ExecContext& ctx, int slot) {
  // Push the selections on this table below the join.
  query::Query local;
  local.tables.push_back(ctx.q->tables[static_cast<size_t>(slot)]);
  for (const query::CompoundPredicate& cp : ctx.q->predicates) {
    if (cp.col.table != slot) continue;
    query::CompoundPredicate rebased = cp;
    rebased.col.table = 0;
    for (query::ConjunctiveClause& clause : rebased.disjuncts) {
      for (query::SimplePredicate& p : clause.preds) p.col.table = 0;
    }
    local.predicates.push_back(std::move(rebased));
  }
  QFCARD_ASSIGN_OR_RETURN(
      std::vector<int32_t> rows,
      query::Executor::Filter(*ctx.tables[static_cast<size_t>(slot)], local));
  TupleSet out;
  out.slots.push_back(slot);
  out.rows = std::move(rows);
  return out;
}

common::StatusOr<TupleSet> ExecJoin(ExecContext& ctx, TupleSet left,
                                    TupleSet right) {
  // Join keys: all query join predicates with one endpoint on each side.
  struct Key {
    int pos_left;
    int col_left;
    int pos_right;
    int col_right;
  };
  std::vector<Key> keys;
  for (const query::JoinPredicate& j : ctx.q->joins) {
    const int pl = left.PosOf(j.left.table);
    const int pr = right.PosOf(j.right.table);
    if (pl >= 0 && pr >= 0) {
      keys.push_back({pl, j.left.column, pr, j.right.column});
      continue;
    }
    const int pl2 = left.PosOf(j.right.table);
    const int pr2 = right.PosOf(j.left.table);
    if (pl2 >= 0 && pr2 >= 0) {
      keys.push_back({pl2, j.right.column, pr2, j.left.column});
    }
  }
  if (keys.empty()) {
    return common::Status::InvalidArgument(
        "plan joins disconnected sub-plans (cross product)");
  }

  // Build on the smaller side.
  const bool build_left = left.count() <= right.count();
  TupleSet& build = build_left ? left : right;
  TupleSet& probe = build_left ? right : left;

  const auto key_value = [&](const TupleSet& side, size_t tuple_begin,
                             int pos, int col) {
    const int slot = side.slots[static_cast<size_t>(pos)];
    const int32_t row = side.rows[tuple_begin + static_cast<size_t>(pos)];
    return ctx.tables[static_cast<size_t>(slot)]->column(col).Get(row);
  };

  // qfcard-lint: ok(unordered-container): lookup-only hash-join build side. Output
  // order is probe-side scan order; per-key match lists append in build scan
  // order; the map itself is never iterated.
  std::unordered_map<double, std::vector<int32_t>> table;  // key -> tuple begins
  const size_t bstride = build.stride();
  for (size_t i = 0; i < build.rows.size(); i += bstride) {
    const double k = build_left
                         ? key_value(build, i, keys[0].pos_left, keys[0].col_left)
                         : key_value(build, i, keys[0].pos_right, keys[0].col_right);
    table[k].push_back(static_cast<int32_t>(i));
  }

  TupleSet out;
  out.slots = probe.slots;
  out.slots.insert(out.slots.end(), build.slots.begin(), build.slots.end());
  const size_t pstride = probe.stride();
  for (size_t i = 0; i < probe.rows.size(); i += pstride) {
    const double k = build_left
                         ? key_value(probe, i, keys[0].pos_right, keys[0].col_right)
                         : key_value(probe, i, keys[0].pos_left, keys[0].col_left);
    const auto it = table.find(k);
    if (it == table.end()) continue;
    for (const int32_t bbegin : it->second) {
      bool ok = true;
      for (size_t ki = 1; ki < keys.size(); ++ki) {
        const Key& key = keys[ki];
        const double lv = build_left
                              ? key_value(build, static_cast<size_t>(bbegin),
                                          key.pos_left, key.col_left)
                              : key_value(probe, i, key.pos_left, key.col_left);
        const double rv = build_left
                              ? key_value(probe, i, key.pos_right, key.col_right)
                              : key_value(build, static_cast<size_t>(bbegin),
                                          key.pos_right, key.col_right);
        if (lv != rv) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      out.rows.insert(out.rows.end(), probe.rows.begin() + static_cast<long>(i),
                      probe.rows.begin() + static_cast<long>(i + pstride));
      out.rows.insert(out.rows.end(),
                      build.rows.begin() + bbegin,
                      build.rows.begin() + bbegin + static_cast<long>(bstride));
    }
  }
  ctx.intermediate_rows += static_cast<double>(out.count());
  return out;
}

common::StatusOr<TupleSet> ExecNode(ExecContext& ctx, const JoinPlan& plan,
                                    int node_id) {
  const JoinPlan::Node& node = plan.nodes[static_cast<size_t>(node_id)];
  if (node.table >= 0) return ExecLeaf(ctx, node.table);
  QFCARD_ASSIGN_OR_RETURN(TupleSet left, ExecNode(ctx, plan, node.left));
  QFCARD_ASSIGN_OR_RETURN(TupleSet right, ExecNode(ctx, plan, node.right));
  return ExecJoin(ctx, std::move(left), std::move(right));
}

}  // namespace

common::StatusOr<ExecResult> ExecutePlan(const storage::Catalog& catalog,
                                         const query::Query& q,
                                         const JoinPlan& plan) {
  ExecContext ctx;
  ctx.catalog = &catalog;
  ctx.q = &q;
  for (const query::TableRef& ref : q.tables) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t, catalog.GetTable(ref.name));
    ctx.tables.push_back(t);
  }
  obs::TraceSpan span("plan.execute");
  obs::ScopedTimer timer("plan.execute_seconds");
  QFCARD_ASSIGN_OR_RETURN(const TupleSet result, ExecNode(ctx, plan, plan.root));
  ExecResult out;
  out.result_rows = static_cast<int64_t>(result.count());
  out.seconds = timer.Stop();
  out.intermediate_rows = ctx.intermediate_rows;
  query::PublishExecutionFeedback(q, static_cast<double>(out.result_rows));
  return out;
}

}  // namespace qfcard::opt
