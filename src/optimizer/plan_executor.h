#ifndef QFCARD_OPTIMIZER_PLAN_EXECUTOR_H_
#define QFCARD_OPTIMIZER_PLAN_EXECUTOR_H_

#include "optimizer/join_order.h"
#include "storage/catalog.h"

namespace qfcard::opt {

/// Result of executing one plan in the in-process engine.
struct ExecResult {
  int64_t result_rows = 0;
  double seconds = 0.0;
  /// Sum of actual intermediate join result sizes (the realized C_out).
  double intermediate_rows = 0.0;
};

/// Executes `plan` for `q` against real data: selections are pushed to the
/// leaves, every internal node is a hash join (build on the smaller input).
/// Wall time depends on the plan's true intermediate sizes, which is exactly
/// how bad cardinality estimates become bad run times (Table 4's
/// end-to-end measurement).
common::StatusOr<ExecResult> ExecutePlan(const storage::Catalog& catalog,
                                         const query::Query& q,
                                         const JoinPlan& plan);

}  // namespace qfcard::opt

#endif  // QFCARD_OPTIMIZER_PLAN_EXECUTOR_H_
