#ifndef QFCARD_QFCARD_H_
#define QFCARD_QFCARD_H_

/// \mainpage qfcard
///
/// qfcard is a C++20 reproduction of "Enhanced Featurization of Queries
/// with Mixed Combinations of Predicates for ML-based Cardinality
/// Estimation" (Müller, Woltmann, Lehner; EDBT 2023).
///
/// Layering (bottom-up):
///  - common/   : Status/StatusOr, deterministic RNG, env knobs
///  - obs/      : telemetry — metrics registry, stage tracing, drift monitor
///  - storage/  : columnar tables, dictionaries, catalog, CSV I/O
///  - query/    : mixed-query AST, SQL parser, executors, schema graph
///  - featurize/: the paper's four query featurization techniques
///  - ml/       : gradient boosting, feed-forward nets, MSCN, metrics
///  - estimators/: Postgres-style, sampling, QFT x model, local models
///  - optimizer/: DP join ordering + plan execution (end-to-end experiment)
///  - workload/ : synthetic forest/IMDb data and workload generators
///  - eval/     : experiment harness and reporting
///  - serve/    : model lifecycle and the estimation server — versioned
///                bundles on disk, hot-swap serving, drift-triggered
///                retraining, feature-space routing, cross-request
///                micro-batching (docs/serving.md)
///  - adapt/    : online adaptive estimation — execution-feedback bus,
///                per-route kNN and residual-correction tiers, and the
///                q-error-driven tier arbiter in front of the ML path
///                (docs/adaptive.md)
///
/// Estimation is batch-first: prefer est::CardinalityEstimator::EstimateBatch
/// and featurize::Featurizer::FeaturizeBatch over per-query calls; both fan
/// out over a process-wide thread pool sized by the QFCARD_THREADS
/// environment variable and return results byte-identical to the serial
/// path at every thread count. Estimators are constructed by name through
/// est::MakeEstimator (estimators/registry.h). See docs/batch_api.md.
///
/// The pipeline is observable end to end: obs::MetricsRegistry collects
/// counters/gauges/histograms (per-stage latency, per-backend q-error),
/// obs::TraceSpan records nested stage spans into a bounded ring buffer,
/// and obs::QErrorDriftMonitor watches the rolling p95 q-error of labeled
/// queries. Telemetry is off by default and ~free when off; enable with
/// QFCARD_METRICS=1 / QFCARD_TRACE=1. See docs/observability.md.
///
/// This umbrella header pulls in the full public API.

#include "adapt/adaptive_estimator.h"
#include "adapt/arbiter.h"
#include "adapt/feedback_bus.h"
#include "adapt/online_knn.h"
#include "adapt/residual.h"
#include "common/env.h"
#include "common/random.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "estimators/estimator.h"
#include "estimators/iep.h"
#include "estimators/local_models.h"
#include "estimators/ml_estimator.h"
#include "estimators/postgres.h"
#include "estimators/registry.h"
#include "estimators/request.h"
#include "estimators/sampling.h"
#include "estimators/true_card.h"
#include "eval/harness.h"
#include "eval/matrix.h"
#include "eval/report.h"
#include "eval/summary.h"
#include "featurize/conjunction.h"
#include "featurize/disjunction.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "featurize/featurizer.h"
#include "featurize/join_encoding.h"
#include "featurize/mscn_featurizer.h"
#include "featurize/partitioner.h"
#include "featurize/range.h"
#include "featurize/singular.h"
#include "ml/dataset.h"
#include "ml/gbm.h"
#include "ml/grid_search.h"
#include "ml/linear.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/mscn.h"
#include "ml/nn.h"
#include "ml/tree.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/qerror_monitor.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_order.h"
#include "optimizer/plan_executor.h"
#include "query/exec_feedback.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "query/query.h"
#include "query/schema_graph.h"
#include "serve/bundle.h"
#include "serve/fss.h"
#include "serve/model_store.h"
#include "serve/retrainer.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/serving_estimator.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/csv.h"
#include "storage/table.h"
#include "workload/families.h"
#include "workload/forest.h"
#include "workload/imdb.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"
#include "workload/strings.h"

#endif  // QFCARD_QFCARD_H_
