#include "query/exec_feedback.h"

#include <atomic>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qfcard::query {

namespace {

common::Mutex& HookMutex() {
  static common::Mutex mu;
  return mu;
}

ExecutionFeedbackHook& HookSlot() {
  static ExecutionFeedbackHook hook;
  return hook;
}

// Lock-free fast path: executors check this flag on every Count, so the
// common no-hook case must not take the mutex.
std::atomic<bool>& HookInstalledFlag() {
  static std::atomic<bool> installed{false};
  return installed;
}

}  // namespace

void SetExecutionFeedbackHook(ExecutionFeedbackHook hook) {
  common::MutexLock lock(&HookMutex());
  HookInstalledFlag().store(static_cast<bool>(hook),
                            std::memory_order_release);
  HookSlot() = std::move(hook);
}

bool ExecutionFeedbackHookInstalled() {
  return HookInstalledFlag().load(std::memory_order_acquire);
}

void PublishExecutionFeedback(const Query& q, double true_card) {
  if (!ExecutionFeedbackHookInstalled()) return;
  // Copy under the lock, invoke outside it, so a slow subscriber (the
  // feedback bus fanning out to learners) never serializes against
  // SetExecutionFeedbackHook longer than the copy.
  ExecutionFeedbackHook hook;
  {
    common::MutexLock lock(&HookMutex());
    hook = HookSlot();
  }
  if (hook) hook(q, true_card);
}

}  // namespace qfcard::query
