#ifndef QFCARD_QUERY_EXEC_FEEDBACK_H_
#define QFCARD_QUERY_EXEC_FEEDBACK_H_

#include <functional>

#include "query/query.h"

namespace qfcard::query {

/// Process-wide execution-feedback hook (docs/adaptive.md): when installed,
/// every count(*) the engine executes — query::Executor::Count and the
/// optimizer's plan executor — reports (query, true cardinality) through it,
/// giving the online-learning subsystem one ingestion point without the
/// executors knowing anything above their layer. The hook must be fast and
/// const-thread-safe: executors run on worker threads, and labeling
/// workloads (workload::LabelOnTable) execute counts in parallel, so a hook
/// that needs a fixed feedback order should only be installed around
/// serially-executed traffic (the CLI truth checks, the drift-stream bench
/// ticks) — adapt::ExecutionFeedbackConnection does exactly that.
using ExecutionFeedbackHook = std::function<void(const Query& q,
                                                 double true_card)>;

/// Installs (or, with an empty function, removes) the hook. Not intended to
/// be raced with in-flight executions of the *previous* hook: swap while the
/// engine is quiescent. Thread-safe against concurrent PublishExecutionFeedback.
void SetExecutionFeedbackHook(ExecutionFeedbackHook hook);

/// True when a hook is currently installed (cheap, lock-free).
bool ExecutionFeedbackHookInstalled();

/// Invokes the installed hook with one executed count; no-op when none is
/// installed. Called by the executors after every successful Count.
void PublishExecutionFeedback(const Query& q, double true_card);

}  // namespace qfcard::query

#endif  // QFCARD_QUERY_EXEC_FEEDBACK_H_
