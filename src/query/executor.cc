#include "query/executor.h"

#include <algorithm>

#include "common/str_util.h"
#include "query/exec_feedback.h"

namespace qfcard::query {

namespace {

common::Status CheckSingleTable(const storage::Table& table, const Query& q) {
  if (q.tables.size() != 1 || !q.joins.empty()) {
    return common::Status::InvalidArgument(
        "Executor handles single-table queries; use JoinExecutor for joins");
  }
  for (const CompoundPredicate& cp : q.predicates) {
    if (cp.col.table != 0 || cp.col.column < 0 ||
        cp.col.column >= table.num_columns()) {
      return common::Status::OutOfRange("predicate column out of range");
    }
  }
  return common::Status::Ok();
}

// Evaluates one conjunctive clause over `rows`, keeping survivors.
void FilterClause(const storage::Table& table, const ConjunctiveClause& clause,
                  const std::vector<int32_t>& rows,
                  std::vector<int32_t>& survivors) {
  survivors.clear();
  for (const int32_t r : rows) {
    bool ok = true;
    for (const SimplePredicate& p : clause.preds) {
      if (!EvalCmp(p.op, table.column(p.col.column).Get(r), p.value)) {
        ok = false;
        break;
      }
    }
    if (ok) survivors.push_back(r);
  }
}

}  // namespace

common::StatusOr<std::vector<int32_t>> Executor::Filter(
    const storage::Table& table, const Query& q) {
  QFCARD_RETURN_IF_ERROR(CheckSingleTable(table, q));
  std::vector<int32_t> rows(static_cast<size_t>(table.num_rows()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  std::vector<int32_t> next;
  next.reserve(rows.size());
  for (const CompoundPredicate& cp : q.predicates) {
    if (cp.disjuncts.size() == 1) {
      // Common fast path: plain conjunction.
      FilterClause(table, cp.disjuncts[0], rows, next);
    } else {
      next.clear();
      for (const int32_t r : rows) {
        if (EvalCompoundOnRow(table, r, cp)) next.push_back(r);
      }
    }
    rows.swap(next);
    if (rows.empty()) break;
  }
  return rows;
}

common::StatusOr<int64_t> Executor::Count(const storage::Table& table,
                                          const Query& q) {
  QFCARD_ASSIGN_OR_RETURN(const std::vector<int32_t> rows, Filter(table, q));
  if (q.group_by.empty()) {
    const int64_t count = static_cast<int64_t>(rows.size());
    PublishExecutionFeedback(q, static_cast<double>(count));
    return count;
  }
  // GROUP BY: the result size is the number of distinct grouping-key
  // combinations among qualifying rows (Section 6). Keys are compared
  // exactly — counting distinct 64-bit hashes instead undercounts whenever
  // two keys collide (the fuzzer finds such collisions in practice).
  std::vector<std::vector<double>> keys;
  keys.reserve(rows.size());
  for (const int32_t r : rows) {
    std::vector<double> key;
    key.reserve(q.group_by.size());
    for (const ColumnRef& g : q.group_by) {
      key.push_back(table.column(g.column).Get(r));
    }
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const int64_t groups = static_cast<int64_t>(keys.size());
  PublishExecutionFeedback(q, static_cast<double>(groups));
  return groups;
}

}  // namespace qfcard::query
