#ifndef QFCARD_QUERY_EXECUTOR_H_
#define QFCARD_QUERY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "storage/table.h"

namespace qfcard::query {

/// Single-table selection executor. Produces exact counts; serves as the
/// ground-truth oracle that labels training/test queries (the paper's
/// "query -> cardinality" function for fixed data).
class Executor {
 public:
  /// Returns the row ids of `table` satisfying all compound predicates of
  /// `q`. `q` must be a single-table query whose ColumnRefs point into
  /// `table`.
  static common::StatusOr<std::vector<int32_t>> Filter(
      const storage::Table& table, const Query& q);

  /// Returns count(*) of `q` over `table`. If the query has a GROUP BY
  /// clause, returns the number of groups (the result size of the grouped
  /// count query, per Section 6).
  static common::StatusOr<int64_t> Count(const storage::Table& table,
                                         const Query& q);
};

}  // namespace qfcard::query

#endif  // QFCARD_QUERY_EXECUTOR_H_
