#include "query/join_executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/str_util.h"
#include "query/executor.h"

namespace qfcard::query {

namespace {

// Joined intermediate: row-id tuples, flat with stride = joined table count.
struct TupleSet {
  std::vector<int> table_indices;  // which Query::tables slots are joined
  std::vector<int32_t> rows;       // flat tuples, stride = table_indices.size()

  size_t stride() const { return table_indices.size(); }
  size_t count() const {
    return table_indices.empty() ? 0 : rows.size() / stride();
  }
  int SlotOf(int table_idx) const {
    for (size_t i = 0; i < table_indices.size(); ++i) {
      if (table_indices[i] == table_idx) return static_cast<int>(i);
    }
    return -1;
  }
};

// Applies the single-table compound predicates of `q` that reference table
// slot `t`, returning qualifying row ids.
common::StatusOr<std::vector<int32_t>> FilterTable(
    const storage::Table& table, const Query& q, int t) {
  Query local;
  local.tables.push_back(q.tables[static_cast<size_t>(t)]);
  for (const CompoundPredicate& cp : q.predicates) {
    if (cp.col.table != t) continue;
    CompoundPredicate rebased = cp;
    rebased.col.table = 0;
    for (ConjunctiveClause& clause : rebased.disjuncts) {
      for (SimplePredicate& p : clause.preds) p.col.table = 0;
    }
    local.predicates.push_back(std::move(rebased));
  }
  return Executor::Filter(table, local);
}

struct JoinStep {
  int hash_col_new = -1;    // column of the new table used as hash key
  int hash_slot_old = -1;   // tuple slot of the existing side
  int hash_col_old = -1;    // column of the existing side
  // Additional join predicates between the new table and existing slots,
  // verified after the hash probe.
  struct Verify {
    int col_new;
    int slot_old;
    int col_old;
  };
  std::vector<Verify> verify;
};

}  // namespace

common::StatusOr<int64_t> JoinExecutor::Count(const storage::Catalog& catalog,
                                              const Query& q) {
  QFCARD_RETURN_IF_ERROR(ValidateQuery(q, catalog));
  std::vector<const storage::Table*> tables;
  for (const TableRef& ref : q.tables) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t, catalog.GetTable(ref.name));
    tables.push_back(t);
  }
  if (tables.size() == 1) {
    QFCARD_ASSIGN_OR_RETURN(const std::vector<int32_t> rows,
                            FilterTable(*tables[0], q, 0));
    return static_cast<int64_t>(rows.size());
  }

  // Push selections below the joins.
  std::vector<std::vector<int32_t>> filtered(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    QFCARD_ASSIGN_OR_RETURN(filtered[t],
                            FilterTable(*tables[t], q, static_cast<int>(t)));
    if (filtered[t].empty()) return 0;
  }

  TupleSet tuples;
  tuples.table_indices.push_back(0);
  tuples.rows = filtered[0];

  std::vector<bool> joined(tables.size(), false);
  joined[0] = true;
  for (size_t joined_count = 1; joined_count < tables.size(); ++joined_count) {
    // Pick the next unjoined table connected to the current tuple set.
    int next = -1;
    JoinStep step;
    for (size_t t = 0; t < tables.size() && next < 0; ++t) {
      if (joined[t]) continue;
      step = JoinStep{};
      for (const JoinPredicate& j : q.joins) {
        int col_new = -1;
        int other_table = -1;
        int col_old = -1;
        if (j.left.table == static_cast<int>(t) && joined[static_cast<size_t>(j.right.table)]) {
          col_new = j.left.column;
          other_table = j.right.table;
          col_old = j.right.column;
        } else if (j.right.table == static_cast<int>(t) &&
                   joined[static_cast<size_t>(j.left.table)]) {
          col_new = j.right.column;
          other_table = j.left.table;
          col_old = j.left.column;
        } else {
          continue;
        }
        const int slot_old = tuples.SlotOf(other_table);
        if (step.hash_col_new < 0) {
          step.hash_col_new = col_new;
          step.hash_slot_old = slot_old;
          step.hash_col_old = col_old;
        } else {
          step.verify.push_back({col_new, slot_old, col_old});
        }
      }
      if (step.hash_col_new >= 0) next = static_cast<int>(t);
    }
    if (next < 0) {
      return common::Status::InvalidArgument(
          "join graph is disconnected (cross products unsupported)");
    }

    // Build: hash the new table's filtered rows on the join key.
    const storage::Table& new_tab = *tables[static_cast<size_t>(next)];
    // qfcard-lint: ok(unordered-container): lookup-only hash-join build side; output
    // tuple order is probe order, per-key lists keep build scan order, and
    // the map is never iterated.
    std::unordered_map<double, std::vector<int32_t>> build;
    build.reserve(filtered[static_cast<size_t>(next)].size());
    for (const int32_t r : filtered[static_cast<size_t>(next)]) {
      build[new_tab.column(step.hash_col_new).Get(r)].push_back(r);
    }

    // Probe with existing tuples.
    const size_t stride = tuples.stride();
    TupleSet out;
    out.table_indices = tuples.table_indices;
    out.table_indices.push_back(next);
    const bool last = joined_count + 1 == tables.size();
    int64_t match_count = 0;
    for (size_t i = 0; i < tuples.rows.size(); i += stride) {
      const int32_t old_row =
          tuples.rows[i + static_cast<size_t>(step.hash_slot_old)];
      const double key = tables[static_cast<size_t>(
                                    tuples.table_indices[static_cast<size_t>(
                                        step.hash_slot_old)])]
                             ->column(step.hash_col_old)
                             .Get(old_row);
      const auto it = build.find(key);
      if (it == build.end()) continue;
      for (const int32_t new_row : it->second) {
        bool ok = true;
        for (const JoinStep::Verify& v : step.verify) {
          const int32_t vs_row = tuples.rows[i + static_cast<size_t>(v.slot_old)];
          const double lhs = new_tab.column(v.col_new).Get(new_row);
          const double rhs =
              tables[static_cast<size_t>(
                         tuples.table_indices[static_cast<size_t>(v.slot_old)])]
                  ->column(v.col_old)
                  .Get(vs_row);
          if (lhs != rhs) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (last) {
          ++match_count;
        } else {
          out.rows.insert(out.rows.end(), tuples.rows.begin() + static_cast<long>(i),
                          tuples.rows.begin() + static_cast<long>(i + stride));
          out.rows.push_back(new_row);
        }
      }
    }
    if (last) return match_count;
    joined[static_cast<size_t>(next)] = true;
    tuples = std::move(out);
    if (tuples.rows.empty()) return 0;
  }
  return static_cast<int64_t>(tuples.count());
}

common::StatusOr<storage::Table> JoinExecutor::Materialize(
    const storage::Catalog& catalog,
    const std::vector<std::string>& table_names, const SchemaGraph& graph) {
  if (table_names.empty()) {
    return common::Status::InvalidArgument("no tables to materialize");
  }
  if (!graph.IsConnected(table_names) && table_names.size() > 1) {
    return common::Status::InvalidArgument(
        "tables are not connected by key/foreign-key edges");
  }
  Query q;
  for (const std::string& name : table_names) {
    q.tables.push_back(TableRef{name, name});
  }
  QFCARD_RETURN_IF_ERROR(graph.PopulateJoins(catalog, q));

  std::vector<const storage::Table*> tables;
  for (const TableRef& ref : q.tables) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t, catalog.GetTable(ref.name));
    tables.push_back(t);
  }

  // Join all tables, materializing full tuples (same machinery as Count but
  // without the last-step shortcut and without selections).
  TupleSet tuples;
  tuples.table_indices.push_back(0);
  tuples.rows.resize(static_cast<size_t>(tables[0]->num_rows()));
  for (int64_t i = 0; i < tables[0]->num_rows(); ++i) {
    tuples.rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }

  std::vector<bool> joined(tables.size(), false);
  joined[0] = true;
  for (size_t joined_count = 1; joined_count < tables.size(); ++joined_count) {
    int next = -1;
    int hash_col_new = -1;
    int hash_slot_old = -1;
    int hash_col_old = -1;
    for (size_t t = 0; t < tables.size() && next < 0; ++t) {
      if (joined[t]) continue;
      for (const JoinPredicate& j : q.joins) {
        if (j.left.table == static_cast<int>(t) &&
            joined[static_cast<size_t>(j.right.table)]) {
          next = static_cast<int>(t);
          hash_col_new = j.left.column;
          hash_slot_old = tuples.SlotOf(j.right.table);
          hash_col_old = j.right.column;
          break;
        }
        if (j.right.table == static_cast<int>(t) &&
            joined[static_cast<size_t>(j.left.table)]) {
          next = static_cast<int>(t);
          hash_col_new = j.right.column;
          hash_slot_old = tuples.SlotOf(j.left.table);
          hash_col_old = j.left.column;
          break;
        }
      }
    }
    if (next < 0) {
      return common::Status::InvalidArgument(
          "join graph is disconnected (cross products unsupported)");
    }
    const storage::Table& new_tab = *tables[static_cast<size_t>(next)];
    // qfcard-lint: ok(unordered-container): lookup-only hash-join build side, as in
    // Count above; materialized row order follows the probe scan.
    std::unordered_map<double, std::vector<int32_t>> build;
    for (int64_t r = 0; r < new_tab.num_rows(); ++r) {
      build[new_tab.column(hash_col_new).Get(r)].push_back(
          static_cast<int32_t>(r));
    }
    const size_t stride = tuples.stride();
    TupleSet out;
    out.table_indices = tuples.table_indices;
    out.table_indices.push_back(next);
    for (size_t i = 0; i < tuples.rows.size(); i += stride) {
      const int32_t old_row =
          tuples.rows[i + static_cast<size_t>(hash_slot_old)];
      const double key =
          tables[static_cast<size_t>(tuples.table_indices[static_cast<size_t>(
                     hash_slot_old)])]
              ->column(hash_col_old)
              .Get(old_row);
      const auto it = build.find(key);
      if (it == build.end()) continue;
      for (const int32_t new_row : it->second) {
        out.rows.insert(out.rows.end(), tuples.rows.begin() + static_cast<long>(i),
                        tuples.rows.begin() + static_cast<long>(i + stride));
        out.rows.push_back(new_row);
      }
    }
    joined[static_cast<size_t>(next)] = true;
    tuples = std::move(out);
  }

  // Gather columns. Output column order follows table_names; names are
  // "<table>.<column>".
  storage::Table result(SubSchemaKey(table_names));
  const size_t stride = tuples.stride();
  const size_t n_out = tuples.count();
  for (size_t t = 0; t < table_names.size(); ++t) {
    // slot of this table in the tuple layout
    int slot = -1;
    for (size_t s = 0; s < tuples.table_indices.size(); ++s) {
      if (q.tables[static_cast<size_t>(tuples.table_indices[s])].name ==
          table_names[t]) {
        slot = static_cast<int>(s);
        break;
      }
    }
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* src,
                            catalog.GetTable(table_names[t]));
    for (int c = 0; c < src->num_columns(); ++c) {
      const storage::Column& src_col = src->column(c);
      storage::Column col(table_names[t] + "." + src_col.name(),
                          src_col.type());
      col.Reserve(n_out);
      for (size_t i = 0; i < tuples.rows.size(); i += stride) {
        col.Append(src_col.Get(tuples.rows[i + static_cast<size_t>(slot)]));
      }
      if (src_col.has_dictionary()) col.SetDictionary(src_col.dictionary());
      QFCARD_RETURN_IF_ERROR(result.AddColumn(std::move(col)));
    }
  }
  QFCARD_RETURN_IF_ERROR(result.Validate());
  return result;
}

}  // namespace qfcard::query
