#ifndef QFCARD_QUERY_JOIN_EXECUTOR_H_
#define QFCARD_QUERY_JOIN_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "query/schema_graph.h"
#include "storage/catalog.h"

namespace qfcard::query {

/// Multi-table execution: exact counts for join queries and materialization
/// of sub-schema joins for local models (Section 2.1.2 / 4.1).
class JoinExecutor {
 public:
  /// Returns the exact count(*) of the (possibly joined) query `q` against
  /// `catalog`. Selections are pushed below the joins; joins are executed as
  /// hash joins in the order tables appear in `q.tables` (each table must
  /// join with at least one earlier table).
  static common::StatusOr<int64_t> Count(const storage::Catalog& catalog,
                                         const Query& q);

  /// Materializes the join of `table_names` along the key/foreign-key edges
  /// of `graph`. The result's columns are named `<table>.<column>` for every
  /// column of every input table, so the result can be queried as a single
  /// table by Executor. Local models train on such materializations.
  static common::StatusOr<storage::Table> Materialize(
      const storage::Catalog& catalog,
      const std::vector<std::string>& table_names, const SchemaGraph& graph);
};

}  // namespace qfcard::query

#endif  // QFCARD_QUERY_JOIN_EXECUTOR_H_
