#include "query/normalize.h"

#include <map>
#include <set>

#include "common/str_util.h"

namespace qfcard::query {

namespace {

// Upper bound on the number of conjunctive clauses a single compound
// predicate may expand to during DNF rewriting. Mixed queries in the paper
// have at most a handful of disjuncts per attribute; the cap only guards
// against adversarial inputs.
constexpr size_t kMaxDisjuncts = 256;

struct Binder {
  const storage::Catalog* catalog;
  const RawQuery* raw;
  std::vector<const storage::Table*> tables;

  common::StatusOr<ColumnRef> ResolveColumn(const std::string& name) const {
    const size_t dot = name.find('.');
    if (dot != std::string::npos) {
      const std::string alias = name.substr(0, dot);
      const std::string col = name.substr(dot + 1);
      for (size_t t = 0; t < raw->tables.size(); ++t) {
        if (common::EqualsIgnoreCase(raw->tables[t].alias, alias) ||
            common::EqualsIgnoreCase(raw->tables[t].name, alias)) {
          QFCARD_ASSIGN_OR_RETURN(const int c, tables[t]->ColumnIndex(col));
          return ColumnRef{static_cast<int>(t), c};
        }
      }
      return common::Status::NotFound(
          common::StrFormat("unknown table alias '%s'", alias.c_str()));
    }
    // Unqualified: must be unique across the query's tables.
    int found_table = -1;
    int found_col = -1;
    for (size_t t = 0; t < tables.size(); ++t) {
      const auto idx = tables[t]->ColumnIndex(name);
      if (idx.ok()) {
        if (found_table >= 0) {
          return common::Status::InvalidArgument(common::StrFormat(
              "ambiguous column '%s'; qualify with a table alias",
              name.c_str()));
        }
        found_table = static_cast<int>(t);
        found_col = idx.value();
      }
    }
    if (found_table < 0) {
      return common::Status::NotFound(
          common::StrFormat("unknown column '%s'", name.c_str()));
    }
    return ColumnRef{found_table, found_col};
  }

  // Binds a raw predicate, translating string literals into dictionary-code
  // comparisons that preserve predicate semantics (lexicographic order maps
  // to code order because the dictionary is sorted).
  common::StatusOr<SimplePredicate> BindPredicate(const RawPredicate& p) const {
    QFCARD_ASSIGN_OR_RETURN(const ColumnRef ref, ResolveColumn(p.column));
    const storage::Column& col =
        tables[static_cast<size_t>(ref.table)]->column(ref.column);
    SimplePredicate out;
    out.col = ref;
    if (!p.is_string) {
      out.op = p.op;
      out.value = p.num;
      return out;
    }
    if (!col.has_dictionary()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "string literal compared to non-string column '%s'",
          col.name().c_str()));
    }
    const storage::Dictionary& dict = col.dictionary();
    const auto exact = dict.Code(p.str);
    const int64_t lb = dict.LowerBoundCode(p.str);
    switch (p.op) {
      case CmpOp::kEq:
        out.op = CmpOp::kEq;
        out.value = exact.ok() ? static_cast<double>(exact.value()) : -1.0;
        break;
      case CmpOp::kNe:
        out.op = CmpOp::kNe;
        out.value = exact.ok() ? static_cast<double>(exact.value()) : -1.0;
        break;
      case CmpOp::kLt:
        // codes < lb  <=>  value < str (dictionary is sorted).
        out.op = CmpOp::kLt;
        out.value = static_cast<double>(lb);
        break;
      case CmpOp::kLe:
        if (exact.ok()) {
          out.op = CmpOp::kLe;
          out.value = static_cast<double>(exact.value());
        } else {
          out.op = CmpOp::kLt;
          out.value = static_cast<double>(lb);
        }
        break;
      case CmpOp::kGt:
        if (exact.ok()) {
          out.op = CmpOp::kGt;
          out.value = static_cast<double>(exact.value());
        } else {
          out.op = CmpOp::kGe;
          out.value = static_cast<double>(lb);
        }
        break;
      case CmpOp::kGe:
        out.op = CmpOp::kGe;
        out.value = static_cast<double>(lb);
        break;
    }
    return out;
  }

  // Binds a prefix LIKE pattern ('abc%') to a dictionary-code range clause
  // (Section 6: with a sorted dictionary, the rows matching a prefix form a
  // contiguous code interval). Patterns without '%' bind as equality.
  common::StatusOr<query::ConjunctiveClause> BindLikePredicate(
      const RawPredicate& p) const {
    QFCARD_ASSIGN_OR_RETURN(const ColumnRef ref, ResolveColumn(p.column));
    const storage::Column& col =
        tables[static_cast<size_t>(ref.table)]->column(ref.column);
    if (!col.has_dictionary()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "LIKE on non-string column '%s'", col.name().c_str()));
    }
    const std::string& pattern = p.str;
    if (pattern.find('_') != std::string::npos) {
      return common::Status::Unimplemented(
          "LIKE '_' wildcards are not supported");
    }
    const size_t pct = pattern.find('%');
    query::ConjunctiveClause clause;
    if (pct == std::string::npos) {
      // No wildcard: plain equality.
      RawPredicate eq = p;
      eq.is_like = false;
      eq.op = CmpOp::kEq;
      QFCARD_ASSIGN_OR_RETURN(const SimplePredicate sp, BindPredicate(eq));
      clause.preds.push_back(sp);
      return clause;
    }
    if (pct != pattern.size() - 1 || pattern.rfind('%') != pct) {
      return common::Status::Unimplemented(
          "only prefix LIKE patterns ('abc%') are supported");
    }
    const std::string prefix = pattern.substr(0, pct);
    const storage::Dictionary& dict = col.dictionary();
    if (prefix.empty()) {
      // LIKE '%' matches everything.
      clause.preds.push_back(
          SimplePredicate{ref, CmpOp::kGe, 0.0});
      return clause;
    }
    const storage::PrefixRange range = dict.PrefixCodeRange(prefix);
    clause.preds.push_back(
        SimplePredicate{ref, CmpOp::kGe, static_cast<double>(range.lo)});
    if (range.bounded) {
      clause.preds.push_back(
          SimplePredicate{ref, CmpOp::kLt, static_cast<double>(range.hi)});
    }
    return clause;
  }
};

// Flattens nested ANDs so the top level becomes a plain conjunct list.
void CollectConjuncts(const BoolExpr& expr, std::vector<const BoolExpr*>& out) {
  if (expr.kind == BoolExpr::Kind::kAnd) {
    for (const BoolExpr& child : expr.children) CollectConjuncts(child, out);
  } else {
    out.push_back(&expr);
  }
}

common::Status CollectAttributes(const BoolExpr& expr, const Binder& binder,
                                 std::set<std::pair<int, int>>& attrs) {
  switch (expr.kind) {
    case BoolExpr::Kind::kLeaf: {
      QFCARD_ASSIGN_OR_RETURN(const ColumnRef ref,
                              binder.ResolveColumn(expr.leaf.column));
      attrs.insert({ref.table, ref.column});
      return common::Status::Ok();
    }
    case BoolExpr::Kind::kJoin:
      return common::Status::InvalidArgument(
          "join predicate nested inside a disjunction");
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr:
      for (const BoolExpr& child : expr.children) {
        QFCARD_RETURN_IF_ERROR(CollectAttributes(child, binder, attrs));
      }
      return common::Status::Ok();
  }
  return common::Status::Internal("corrupt BoolExpr");
}

// Rewrites a single-attribute boolean subtree into DNF.
common::StatusOr<std::vector<ConjunctiveClause>> ToDnf(const BoolExpr& expr,
                                                       const Binder& binder) {
  switch (expr.kind) {
    case BoolExpr::Kind::kLeaf: {
      if (expr.leaf.is_like) {
        QFCARD_ASSIGN_OR_RETURN(ConjunctiveClause clause,
                                binder.BindLikePredicate(expr.leaf));
        return std::vector<ConjunctiveClause>{std::move(clause)};
      }
      QFCARD_ASSIGN_OR_RETURN(SimplePredicate p,
                              binder.BindPredicate(expr.leaf));
      ConjunctiveClause clause;
      clause.preds.push_back(p);
      return std::vector<ConjunctiveClause>{std::move(clause)};
    }
    case BoolExpr::Kind::kJoin:
      return common::Status::InvalidArgument(
          "join predicate inside a compound predicate");
    case BoolExpr::Kind::kOr: {
      std::vector<ConjunctiveClause> out;
      for (const BoolExpr& child : expr.children) {
        QFCARD_ASSIGN_OR_RETURN(std::vector<ConjunctiveClause> sub,
                                ToDnf(child, binder));
        for (auto& clause : sub) out.push_back(std::move(clause));
        if (out.size() > kMaxDisjuncts) {
          return common::Status::OutOfRange("DNF expansion too large");
        }
      }
      return out;
    }
    case BoolExpr::Kind::kAnd: {
      std::vector<ConjunctiveClause> acc{ConjunctiveClause{}};
      for (const BoolExpr& child : expr.children) {
        QFCARD_ASSIGN_OR_RETURN(std::vector<ConjunctiveClause> sub,
                                ToDnf(child, binder));
        std::vector<ConjunctiveClause> next;
        next.reserve(acc.size() * sub.size());
        for (const ConjunctiveClause& a : acc) {
          for (const ConjunctiveClause& b : sub) {
            ConjunctiveClause merged = a;
            merged.preds.insert(merged.preds.end(), b.preds.begin(),
                                b.preds.end());
            next.push_back(std::move(merged));
          }
        }
        if (next.size() > kMaxDisjuncts) {
          return common::Status::OutOfRange("DNF expansion too large");
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  return common::Status::Internal("corrupt BoolExpr");
}

// Conjunction of two per-attribute DNFs -> cross-product DNF.
common::StatusOr<std::vector<ConjunctiveClause>> AndDnf(
    const std::vector<ConjunctiveClause>& a,
    const std::vector<ConjunctiveClause>& b) {
  std::vector<ConjunctiveClause> out;
  out.reserve(a.size() * b.size());
  for (const ConjunctiveClause& x : a) {
    for (const ConjunctiveClause& y : b) {
      ConjunctiveClause merged = x;
      merged.preds.insert(merged.preds.end(), y.preds.begin(), y.preds.end());
      out.push_back(std::move(merged));
    }
  }
  if (out.size() > kMaxDisjuncts) {
    return common::Status::OutOfRange("DNF expansion too large");
  }
  return out;
}

}  // namespace

common::StatusOr<Query> BindAndNormalize(const RawQuery& raw,
                                         const storage::Catalog& catalog) {
  if (raw.tables.empty()) {
    return common::Status::InvalidArgument("query has no tables");
  }
  Binder binder;
  binder.catalog = &catalog;
  binder.raw = &raw;
  for (const TableRef& ref : raw.tables) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t, catalog.GetTable(ref.name));
    binder.tables.push_back(t);
  }

  Query q;
  q.tables = raw.tables;

  // keyed by attribute -> accumulated DNF; preserves first-seen order.
  std::map<std::pair<int, int>, size_t> compound_of_attr;

  if (raw.has_where) {
    std::vector<const BoolExpr*> conjuncts;
    CollectConjuncts(raw.where, conjuncts);
    for (const BoolExpr* conj : conjuncts) {
      if (conj->kind == BoolExpr::Kind::kJoin) {
        JoinPredicate j;
        QFCARD_ASSIGN_OR_RETURN(j.left, binder.ResolveColumn(conj->join.left));
        QFCARD_ASSIGN_OR_RETURN(j.right,
                                binder.ResolveColumn(conj->join.right));
        q.joins.push_back(j);
        continue;
      }
      std::set<std::pair<int, int>> attrs;
      QFCARD_RETURN_IF_ERROR(CollectAttributes(*conj, binder, attrs));
      if (attrs.size() != 1) {
        return common::Status::InvalidArgument(
            "WHERE clause disjoins predicates over different attributes; "
            "not a mixed query (Definition 3.3)");
      }
      QFCARD_ASSIGN_OR_RETURN(std::vector<ConjunctiveClause> dnf,
                              ToDnf(*conj, binder));
      const std::pair<int, int> attr = *attrs.begin();
      const auto it = compound_of_attr.find(attr);
      if (it == compound_of_attr.end()) {
        CompoundPredicate cp;
        cp.col = ColumnRef{attr.first, attr.second};
        cp.disjuncts = std::move(dnf);
        compound_of_attr.emplace(attr, q.predicates.size());
        q.predicates.push_back(std::move(cp));
      } else {
        CompoundPredicate& cp = q.predicates[it->second];
        QFCARD_ASSIGN_OR_RETURN(cp.disjuncts, AndDnf(cp.disjuncts, dnf));
      }
    }
  }

  for (const std::string& g : raw.group_by) {
    QFCARD_ASSIGN_OR_RETURN(const ColumnRef ref, binder.ResolveColumn(g));
    q.group_by.push_back(ref);
  }

  QFCARD_RETURN_IF_ERROR(ValidateQuery(q, catalog));
  return q;
}

common::StatusOr<Query> ParseQuery(std::string_view sql,
                                   const storage::Catalog& catalog) {
  QFCARD_ASSIGN_OR_RETURN(const RawQuery raw, ParseSql(sql));
  return BindAndNormalize(raw, catalog);
}

}  // namespace qfcard::query
