#ifndef QFCARD_QUERY_NORMALIZE_H_
#define QFCARD_QUERY_NORMALIZE_H_

#include <string_view>

#include "common/status.h"
#include "query/parser.h"
#include "query/query.h"

namespace qfcard::query {

/// Binds a parsed RawQuery against `catalog` (resolving table aliases,
/// column names, and string literals to dictionary codes) and normalizes the
/// WHERE tree into the mixed-query form of Definition 3.3:
///   - the top level must be a conjunction of join predicates and
///     per-attribute subtrees;
///   - each per-attribute subtree is rewritten into a disjunction of
///     conjunctive clauses (DNF over one attribute);
///   - multiple compound predicates over the same attribute are merged
///     (conjunction of DNFs -> cross-product DNF).
/// Queries whose WHERE clause disjoins predicates over *different*
/// attributes are not mixed queries and are rejected with
/// kInvalidArgument, matching the paper's scope.
common::StatusOr<Query> BindAndNormalize(const RawQuery& raw,
                                         const storage::Catalog& catalog);

/// Convenience: ParseSql + BindAndNormalize.
common::StatusOr<Query> ParseQuery(std::string_view sql,
                                   const storage::Catalog& catalog);

}  // namespace qfcard::query

#endif  // QFCARD_QUERY_NORMALIZE_H_
