#include "query/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfcard::query {

namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kOp,     // = != <> < <= > >=
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kSemicolon,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double num = 0.0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  common::StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < sql_.size()) {
      const char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < sql_.size() &&
                  std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])) &&
                  NumberMayFollow(out))) {
        QFCARD_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
      } else if (c == '\'') {
        QFCARD_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else {
        QFCARD_ASSIGN_OR_RETURN(Token t, LexSymbol());
        out.push_back(std::move(t));
      }
    }
    out.push_back(Token{TokKind::kEnd, "", 0.0});
    return out;
  }

 private:
  // A leading '-' starts a number only where a value is expected, i.e. after
  // a comparison operator, '(' or ','.
  static bool NumberMayFollow(const std::vector<Token>& toks) {
    if (toks.empty()) return false;
    const TokKind k = toks.back().kind;
    return k == TokKind::kOp || k == TokKind::kLParen || k == TokKind::kComma;
  }

  Token LexIdent() {
    const size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokKind::kIdent, std::string(sql_.substr(start, pos_ - start)),
                 0.0};
  }

  common::StatusOr<Token> LexNumber() {
    const size_t start = pos_;
    if (sql_[pos_] == '-') ++pos_;
    bool seen_dot = false;
    bool seen_exp = false;
    while (pos_ < sql_.size()) {
      const char c = sql_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !seen_dot && !seen_exp) {
        seen_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !seen_exp) {
        seen_exp = true;
        ++pos_;
        if (pos_ < sql_.size() && (sql_[pos_] == '+' || sql_[pos_] == '-')) ++pos_;
      } else {
        break;
      }
    }
    const std::string text(sql_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      return common::Status::InvalidArgument(
          common::StrFormat("bad number literal '%s'", text.c_str()));
    }
    return Token{TokKind::kNumber, text, v};
  }

  common::StatusOr<Token> LexString() {
    ++pos_;  // consume opening quote
    std::string value;
    while (pos_ < sql_.size() && sql_[pos_] != '\'') {
      value += sql_[pos_++];
    }
    if (pos_ >= sql_.size()) {
      return common::Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(value), 0.0};
  }

  common::StatusOr<Token> LexSymbol() {
    const char c = sql_[pos_];
    const char next = pos_ + 1 < sql_.size() ? sql_[pos_ + 1] : '\0';
    switch (c) {
      case '(':
        ++pos_;
        return Token{TokKind::kLParen, "(", 0.0};
      case ')':
        ++pos_;
        return Token{TokKind::kRParen, ")", 0.0};
      case ',':
        ++pos_;
        return Token{TokKind::kComma, ",", 0.0};
      case '.':
        ++pos_;
        return Token{TokKind::kDot, ".", 0.0};
      case '*':
        ++pos_;
        return Token{TokKind::kStar, "*", 0.0};
      case ';':
        ++pos_;
        return Token{TokKind::kSemicolon, ";", 0.0};
      case '=':
        ++pos_;
        return Token{TokKind::kOp, "=", 0.0};
      case '!':
        if (next == '=') {
          pos_ += 2;
          return Token{TokKind::kOp, "!=", 0.0};
        }
        break;
      case '<':
        if (next == '=') {
          pos_ += 2;
          return Token{TokKind::kOp, "<=", 0.0};
        }
        if (next == '>') {
          pos_ += 2;
          return Token{TokKind::kOp, "<>", 0.0};
        }
        ++pos_;
        return Token{TokKind::kOp, "<", 0.0};
      case '>':
        if (next == '=') {
          pos_ += 2;
          return Token{TokKind::kOp, ">=", 0.0};
        }
        ++pos_;
        return Token{TokKind::kOp, ">", 0.0};
      default:
        break;
    }
    return common::Status::InvalidArgument(
        common::StrFormat("unexpected character '%c'", c));
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

common::StatusOr<CmpOp> OpFromText(const std::string& text) {
  if (text == "=") return CmpOp::kEq;
  if (text == "!=" || text == "<>") return CmpOp::kNe;
  if (text == "<") return CmpOp::kLt;
  if (text == "<=") return CmpOp::kLe;
  if (text == ">") return CmpOp::kGt;
  if (text == ">=") return CmpOp::kGe;
  return common::Status::InvalidArgument(
      common::StrFormat("unknown operator '%s'", text.c_str()));
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  common::StatusOr<RawQuery> Parse() {
    RawQuery q;
    QFCARD_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    QFCARD_RETURN_IF_ERROR(ExpectKeyword("COUNT"));
    QFCARD_RETURN_IF_ERROR(Expect(TokKind::kLParen));
    QFCARD_RETURN_IF_ERROR(Expect(TokKind::kStar));
    QFCARD_RETURN_IF_ERROR(Expect(TokKind::kRParen));
    QFCARD_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    QFCARD_ASSIGN_OR_RETURN(q.tables, ParseTableList());
    if (PeekKeyword("WHERE")) {
      Advance();
      QFCARD_ASSIGN_OR_RETURN(q.where, ParseOrExpr());
      q.has_where = true;
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      QFCARD_RETURN_IF_ERROR(ExpectKeyword("BY"));
      QFCARD_ASSIGN_OR_RETURN(q.group_by, ParseColumnList());
    }
    if (Peek().kind == TokKind::kSemicolon) Advance();
    if (Peek().kind != TokKind::kEnd) {
      return common::Status::InvalidArgument(common::StrFormat(
          "trailing tokens starting at '%s'", Peek().text.c_str()));
    }
    return q;
  }

 private:
  const Token& Peek(size_t off = 0) const {
    const size_t i = std::min(pos_ + off, toks_.size() - 1);
    return toks_[i];
  }
  void Advance() { if (pos_ + 1 < toks_.size()) ++pos_; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent &&
           common::EqualsIgnoreCase(Peek().text, kw);
  }

  common::Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return common::Status::InvalidArgument(common::StrFormat(
          "expected keyword '%s', found '%s'", kw, Peek().text.c_str()));
    }
    Advance();
    return common::Status::Ok();
  }

  common::Status Expect(TokKind kind) {
    if (Peek().kind != kind) {
      return common::Status::InvalidArgument(
          common::StrFormat("unexpected token '%s'", Peek().text.c_str()));
    }
    Advance();
    return common::Status::Ok();
  }

  static bool IsReserved(const std::string& s) {
    return common::EqualsIgnoreCase(s, "WHERE") ||
           common::EqualsIgnoreCase(s, "GROUP") ||
           common::EqualsIgnoreCase(s, "AND") ||
           common::EqualsIgnoreCase(s, "OR") ||
           common::EqualsIgnoreCase(s, "AS") ||
           common::EqualsIgnoreCase(s, "BY");
  }

  common::StatusOr<std::vector<TableRef>> ParseTableList() {
    std::vector<TableRef> tables;
    while (true) {
      if (Peek().kind != TokKind::kIdent) {
        return common::Status::InvalidArgument("expected table name");
      }
      TableRef ref;
      ref.name = Peek().text;
      ref.alias = ref.name;
      Advance();
      if (PeekKeyword("AS")) {
        Advance();
        if (Peek().kind != TokKind::kIdent) {
          return common::Status::InvalidArgument("expected alias after AS");
        }
        ref.alias = Peek().text;
        Advance();
      } else if (Peek().kind == TokKind::kIdent && !IsReserved(Peek().text)) {
        ref.alias = Peek().text;
        Advance();
      }
      tables.push_back(std::move(ref));
      if (Peek().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return tables;
  }

  common::StatusOr<std::string> ParseColumnRef() {
    if (Peek().kind != TokKind::kIdent) {
      return common::Status::InvalidArgument(common::StrFormat(
          "expected column reference, found '%s'", Peek().text.c_str()));
    }
    std::string name = Peek().text;
    Advance();
    if (Peek().kind == TokKind::kDot) {
      Advance();
      if (Peek().kind != TokKind::kIdent) {
        return common::Status::InvalidArgument("expected column after '.'");
      }
      name += ".";
      name += Peek().text;
      Advance();
    }
    return name;
  }

  common::StatusOr<std::vector<std::string>> ParseColumnList() {
    std::vector<std::string> cols;
    while (true) {
      QFCARD_ASSIGN_OR_RETURN(std::string c, ParseColumnRef());
      cols.push_back(std::move(c));
      if (Peek().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return cols;
  }

  common::StatusOr<BoolExpr> ParseOrExpr() {
    QFCARD_ASSIGN_OR_RETURN(BoolExpr first, ParseAndExpr());
    if (!PeekKeyword("OR")) return first;
    BoolExpr node;
    node.kind = BoolExpr::Kind::kOr;
    node.children.push_back(std::move(first));
    while (PeekKeyword("OR")) {
      Advance();
      QFCARD_ASSIGN_OR_RETURN(BoolExpr next, ParseAndExpr());
      node.children.push_back(std::move(next));
    }
    return node;
  }

  common::StatusOr<BoolExpr> ParseAndExpr() {
    QFCARD_ASSIGN_OR_RETURN(BoolExpr first, ParsePrimary());
    if (!PeekKeyword("AND")) return first;
    BoolExpr node;
    node.kind = BoolExpr::Kind::kAnd;
    node.children.push_back(std::move(first));
    while (PeekKeyword("AND")) {
      Advance();
      QFCARD_ASSIGN_OR_RETURN(BoolExpr next, ParsePrimary());
      node.children.push_back(std::move(next));
    }
    return node;
  }

  common::StatusOr<BoolExpr> ParsePrimary() {
    if (Peek().kind == TokKind::kLParen) {
      Advance();
      QFCARD_ASSIGN_OR_RETURN(BoolExpr inner, ParseOrExpr());
      QFCARD_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      return inner;
    }
    return ParseComparison();
  }

  common::StatusOr<BoolExpr> ParseComparison() {
    QFCARD_ASSIGN_OR_RETURN(std::string lhs, ParseColumnRef());
    if (PeekKeyword("LIKE")) {
      Advance();
      if (Peek().kind != TokKind::kString) {
        return common::Status::InvalidArgument(
            "expected string pattern after LIKE");
      }
      BoolExpr node;
      node.kind = BoolExpr::Kind::kLeaf;
      node.leaf.column = std::move(lhs);
      node.leaf.is_string = true;
      node.leaf.is_like = true;
      node.leaf.str = Peek().text;
      Advance();
      return node;
    }
    if (Peek().kind != TokKind::kOp) {
      return common::Status::InvalidArgument(common::StrFormat(
          "expected comparison operator, found '%s'", Peek().text.c_str()));
    }
    QFCARD_ASSIGN_OR_RETURN(const CmpOp op, OpFromText(Peek().text));
    Advance();

    BoolExpr node;
    if (Peek().kind == TokKind::kIdent) {
      // Column-to-column comparison: equi-join predicate.
      if (op != CmpOp::kEq) {
        return common::Status::Unimplemented(
            "only equality joins are supported");
      }
      QFCARD_ASSIGN_OR_RETURN(std::string rhs, ParseColumnRef());
      node.kind = BoolExpr::Kind::kJoin;
      node.join.left = std::move(lhs);
      node.join.right = std::move(rhs);
      return node;
    }
    node.kind = BoolExpr::Kind::kLeaf;
    node.leaf.column = std::move(lhs);
    node.leaf.op = op;
    if (Peek().kind == TokKind::kNumber) {
      node.leaf.is_string = false;
      node.leaf.num = Peek().num;
      Advance();
      return node;
    }
    if (Peek().kind == TokKind::kString) {
      node.leaf.is_string = true;
      node.leaf.str = Peek().text;
      Advance();
      return node;
    }
    return common::Status::InvalidArgument(common::StrFormat(
        "expected literal, found '%s'", Peek().text.c_str()));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

common::StatusOr<RawQuery> ParseSql(std::string_view sql) {
  obs::TraceSpan span("parse.sql");
  obs::ScopedTimer timer("parse.sql_seconds");
  obs::IncrementCounter("parse.queries");
  Lexer lexer(sql);
  QFCARD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  common::StatusOr<RawQuery> parsed = parser.Parse();
  if (!parsed.ok()) obs::IncrementCounter("parse.errors");
  return parsed;
}

}  // namespace qfcard::query
