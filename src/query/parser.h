#ifndef QFCARD_QUERY_PARSER_H_
#define QFCARD_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace qfcard::query {

/// An unresolved comparison `column op literal` as written in SQL text.
/// When `is_like` is set, `str` holds the LIKE pattern (prefix patterns
/// like 'abc%' are supported per the paper's Section 6 extension) and `op`
/// is meaningless.
struct RawPredicate {
  std::string column;  ///< possibly qualified, e.g. "t.a"
  CmpOp op = CmpOp::kEq;
  bool is_string = false;
  bool is_like = false;
  double num = 0.0;
  std::string str;
};

/// An unresolved equi-join `left = right` between two column references.
struct RawJoin {
  std::string left;
  std::string right;
};

/// Boolean expression tree over raw predicates, as parsed (before
/// normalization into the mixed-query form).
struct BoolExpr {
  enum class Kind { kLeaf, kJoin, kAnd, kOr };
  Kind kind = Kind::kLeaf;
  RawPredicate leaf;            ///< when kind == kLeaf
  RawJoin join;                 ///< when kind == kJoin
  std::vector<BoolExpr> children;  ///< when kind is kAnd / kOr
};

/// Parse result of `SELECT count(*) FROM ... [WHERE ...] [GROUP BY ...]`.
struct RawQuery {
  std::vector<TableRef> tables;
  bool has_where = false;
  BoolExpr where;
  std::vector<std::string> group_by;
};

/// Parses the SQL subset used throughout the paper:
///   SELECT count(*) FROM t1 [a1], t2 [a2], ...
///   [WHERE <boolean expression over simple predicates and equi-joins>]
///   [GROUP BY col, ...] [;]
/// Comparison operators: = != <> < <= > >=. Literals: numbers and
/// single-quoted strings. AND binds tighter than OR; parentheses supported.
common::StatusOr<RawQuery> ParseSql(std::string_view sql);

}  // namespace qfcard::query

#endif  // QFCARD_QUERY_PARSER_H_
