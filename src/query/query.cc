#include "query/query.h"

#include <set>
#include <sstream>

#include "common/str_util.h"

namespace qfcard::query {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, double value, double literal) {
  switch (op) {
    case CmpOp::kEq:
      return value == literal;
    case CmpOp::kNe:
      return value != literal;
    case CmpOp::kLt:
      return value < literal;
    case CmpOp::kLe:
      return value <= literal;
    case CmpOp::kGt:
      return value > literal;
    case CmpOp::kGe:
      return value >= literal;
  }
  return false;
}

int Query::NumSimplePredicates() const {
  int n = 0;
  for (const CompoundPredicate& cp : predicates) {
    for (const ConjunctiveClause& clause : cp.disjuncts) {
      n += static_cast<int>(clause.preds.size());
    }
  }
  return n;
}

bool Query::IsConjunctive() const {
  for (const CompoundPredicate& cp : predicates) {
    if (cp.disjuncts.size() != 1) return false;
  }
  return true;
}

bool EvalCompoundOnRow(const storage::Table& table, int64_t row,
                       const CompoundPredicate& cp) {
  for (const ConjunctiveClause& clause : cp.disjuncts) {
    bool clause_ok = true;
    for (const SimplePredicate& p : clause.preds) {
      const double v = table.column(p.col.column).Get(row);
      if (!EvalCmp(p.op, v, p.value)) {
        clause_ok = false;
        break;
      }
    }
    if (clause_ok) return true;
  }
  return false;
}

namespace {

// Formats a literal for column `col`: dictionary values as quoted strings,
// integral values without decimals.
std::string FormatLiteral(const storage::Column& col, double value) {
  if (col.has_dictionary()) {
    const int64_t code = static_cast<int64_t>(value);
    if (code >= 0 && code < col.dictionary().size()) {
      return "'" + col.dictionary().Value(code) + "'";
    }
    return common::StrFormat("'<code %lld>'", static_cast<long long>(code));
  }
  if (col.type() == storage::ColumnType::kInt64) {
    return common::StrFormat("%lld", static_cast<long long>(value));
  }
  return common::StrFormat("%g", value);
}

}  // namespace

common::StatusOr<std::string> QueryToSql(const Query& q,
                                         const storage::Catalog& catalog) {
  QFCARD_RETURN_IF_ERROR(ValidateQuery(q, catalog));
  std::ostringstream out;
  out << "SELECT count(*) FROM ";
  std::vector<const storage::Table*> tables;
  for (size_t i = 0; i < q.tables.size(); ++i) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t,
                            catalog.GetTable(q.tables[i].name));
    tables.push_back(t);
    if (i > 0) out << ", ";
    out << q.tables[i].name;
    if (!q.tables[i].alias.empty() && q.tables[i].alias != q.tables[i].name) {
      out << " " << q.tables[i].alias;
    }
  }
  const auto col_name = [&](const ColumnRef& ref) {
    const std::string& prefix = q.tables[static_cast<size_t>(ref.table)].alias.empty()
                                    ? q.tables[static_cast<size_t>(ref.table)].name
                                    : q.tables[static_cast<size_t>(ref.table)].alias;
    const std::string base =
        tables[static_cast<size_t>(ref.table)]->column(ref.column).name();
    if (q.tables.size() == 1) return base;
    return prefix + "." + base;
  };

  bool have_where = false;
  const auto begin_term = [&]() {
    out << (have_where ? " AND " : " WHERE ");
    have_where = true;
  };
  for (const JoinPredicate& j : q.joins) {
    begin_term();
    out << col_name(j.left) << " = " << col_name(j.right);
  }
  for (const CompoundPredicate& cp : q.predicates) {
    begin_term();
    const storage::Column& col =
        tables[static_cast<size_t>(cp.col.table)]->column(cp.col.column);
    const bool parens = cp.disjuncts.size() > 1 ||
                        (cp.disjuncts.size() == 1 && q.predicates.size() > 1 &&
                         cp.disjuncts[0].preds.size() > 1);
    if (parens) out << "(";
    for (size_t d = 0; d < cp.disjuncts.size(); ++d) {
      if (d > 0) out << " OR ";
      const ConjunctiveClause& clause = cp.disjuncts[d];
      for (size_t i = 0; i < clause.preds.size(); ++i) {
        if (i > 0) out << " AND ";
        out << col_name(cp.col) << " " << CmpOpToString(clause.preds[i].op)
            << " " << FormatLiteral(col, clause.preds[i].value);
      }
    }
    if (parens) out << ")";
  }
  if (!q.group_by.empty()) {
    out << " GROUP BY ";
    for (size_t i = 0; i < q.group_by.size(); ++i) {
      if (i > 0) out << ", ";
      out << col_name(q.group_by[i]);
    }
  }
  out << ";";
  return out.str();
}

common::Status ValidateQuery(const Query& q, const storage::Catalog& catalog) {
  if (q.tables.empty()) {
    return common::Status::InvalidArgument("query has no tables");
  }
  std::vector<const storage::Table*> tables;
  for (const TableRef& ref : q.tables) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t, catalog.GetTable(ref.name));
    tables.push_back(t);
  }
  const auto check_ref = [&](const ColumnRef& ref) -> common::Status {
    if (ref.table < 0 || ref.table >= static_cast<int>(q.tables.size())) {
      return common::Status::OutOfRange(
          common::StrFormat("table index %d out of range", ref.table));
    }
    const storage::Table* t = tables[static_cast<size_t>(ref.table)];
    if (ref.column < 0 || ref.column >= t->num_columns()) {
      return common::Status::OutOfRange(common::StrFormat(
          "column index %d out of range for table '%s'", ref.column,
          t->name().c_str()));
    }
    return common::Status::Ok();
  };
  std::set<std::pair<int, int>> seen_attrs;
  for (const CompoundPredicate& cp : q.predicates) {
    QFCARD_RETURN_IF_ERROR(check_ref(cp.col));
    if (cp.disjuncts.empty()) {
      return common::Status::InvalidArgument(
          "compound predicate has no disjuncts");
    }
    for (const ConjunctiveClause& clause : cp.disjuncts) {
      if (clause.preds.empty()) {
        return common::Status::InvalidArgument(
            "conjunctive clause has no predicates");
      }
      for (const SimplePredicate& p : clause.preds) {
        if (!(p.col == cp.col)) {
          return common::Status::InvalidArgument(
              "compound predicate mixes attributes; not a mixed query "
              "(Definition 3.3)");
        }
      }
    }
    if (!seen_attrs.insert({cp.col.table, cp.col.column}).second) {
      return common::Status::InvalidArgument(
          "multiple compound predicates on one attribute; merge them first");
    }
  }
  for (const JoinPredicate& j : q.joins) {
    QFCARD_RETURN_IF_ERROR(check_ref(j.left));
    QFCARD_RETURN_IF_ERROR(check_ref(j.right));
    if (j.left.table == j.right.table) {
      return common::Status::InvalidArgument("self-join predicates unsupported");
    }
  }
  for (const ColumnRef& g : q.group_by) {
    QFCARD_RETURN_IF_ERROR(check_ref(g));
  }
  return common::Status::Ok();
}

}  // namespace qfcard::query
