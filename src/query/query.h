#ifndef QFCARD_QUERY_QUERY_H_
#define QFCARD_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"

namespace qfcard::query {

/// Comparison operators of a simple predicate (Section 3: {=, >, <, >=, <=, <>}).
enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CmpOpToString(CmpOp op);

/// Evaluates `value <op> literal`.
bool EvalCmp(CmpOp op, double value, double literal);

/// Reference to a column of one of the query's tables: `table` indexes
/// Query::tables, `column` indexes that table's schema.
struct ColumnRef {
  int table = 0;
  int column = 0;

  bool operator==(const ColumnRef& other) const {
    return table == other.table && column == other.column;
  }
};

/// A simple predicate `A op literal` (Section 3).
struct SimplePredicate {
  ColumnRef col;
  CmpOp op = CmpOp::kEq;
  double value = 0.0;

  bool operator==(const SimplePredicate&) const = default;
};

/// A conjunction of simple predicates over one attribute
/// (e.g. `A > 3 AND A <= 9 AND A <> 5`).
struct ConjunctiveClause {
  std::vector<SimplePredicate> preds;

  bool operator==(const ConjunctiveClause&) const = default;
};

/// A compound predicate per Definition 3.3: a disjunction of conjunctive
/// clauses of simple predicates, all over the same attribute `col`.
struct CompoundPredicate {
  ColumnRef col;
  std::vector<ConjunctiveClause> disjuncts;

  bool operator==(const CompoundPredicate&) const = default;
};

/// A table occurrence in the FROM clause.
struct TableRef {
  std::string name;   ///< catalog table name
  std::string alias;  ///< alias used in the query text (may equal name)

  bool operator==(const TableRef&) const = default;
};

/// An equi-join predicate `left = right` between two tables of the query.
struct JoinPredicate {
  ColumnRef left;
  ColumnRef right;

  bool operator==(const JoinPredicate&) const = default;
};

/// A mixed query (Definition 3.3): a conjunction of per-attribute compound
/// predicates over a (possibly joined) set of tables, optionally grouped.
/// Purely conjunctive queries are the special case where every compound
/// predicate has exactly one disjunct.
struct Query {
  std::vector<TableRef> tables;
  std::vector<JoinPredicate> joins;
  std::vector<CompoundPredicate> predicates;
  std::vector<ColumnRef> group_by;  ///< Section 6 extension; empty = plain count

  /// Number of simple predicates summed over all compound predicates.
  int NumSimplePredicates() const;
  /// Number of distinct attributes mentioned (== predicates.size(); compound
  /// predicates are per-attribute by construction).
  int NumAttributes() const { return static_cast<int>(predicates.size()); }
  /// True if every compound predicate has a single disjunct (pure AND query).
  bool IsConjunctive() const;

  /// Structural equality: same tables, joins, predicates (in order, with
  /// exact literal values) and grouping. The testing subsystem's parser
  /// round-trip checks rely on this (src/testing/query_fuzzer.h).
  bool operator==(const Query&) const = default;
};

/// Evaluates a compound predicate against a row of a table. The compound's
/// ColumnRefs must reference columns of `table`.
bool EvalCompoundOnRow(const storage::Table& table, int64_t row,
                       const CompoundPredicate& cp);

/// Renders a query back to SQL text (against `catalog` for table/column
/// names). Inverse of the parser up to whitespace and parenthesization.
common::StatusOr<std::string> QueryToSql(const Query& q,
                                         const storage::Catalog& catalog);

/// Validates structural invariants: table indices in range, compound
/// predicates reference a single attribute each, at most one compound per
/// attribute, join refs in range.
common::Status ValidateQuery(const Query& q, const storage::Catalog& catalog);

}  // namespace qfcard::query

#endif  // QFCARD_QUERY_QUERY_H_
