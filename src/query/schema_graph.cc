#include "query/schema_graph.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace qfcard::query {

namespace {

int IndexOf(const std::vector<std::string>& names, const std::string& name) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::vector<FkEdge> SchemaGraph::EdgesWithin(
    const std::vector<std::string>& table_names) const {
  std::vector<FkEdge> out;
  for (const FkEdge& e : edges_) {
    if (IndexOf(table_names, e.fk_table) >= 0 &&
        IndexOf(table_names, e.pk_table) >= 0) {
      out.push_back(e);
    }
  }
  return out;
}

bool SchemaGraph::IsConnected(
    const std::vector<std::string>& table_names) const {
  if (table_names.empty()) return false;
  if (table_names.size() == 1) return true;
  const std::vector<FkEdge> local = EdgesWithin(table_names);
  std::vector<bool> visited(table_names.size(), false);
  std::vector<int> stack{0};
  visited[0] = true;
  size_t seen = 1;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    for (const FkEdge& e : local) {
      const int a = IndexOf(table_names, e.fk_table);
      const int b = IndexOf(table_names, e.pk_table);
      int next = -1;
      if (a == cur && !visited[static_cast<size_t>(b)]) next = b;
      if (b == cur && !visited[static_cast<size_t>(a)]) next = a;
      if (next >= 0) {
        visited[static_cast<size_t>(next)] = true;
        ++seen;
        stack.push_back(next);
      }
    }
  }
  return seen == table_names.size();
}

common::Status SchemaGraph::PopulateJoins(const storage::Catalog& catalog,
                                          Query& q) const {
  q.joins.clear();
  std::vector<std::string> names;
  names.reserve(q.tables.size());
  for (const TableRef& t : q.tables) names.push_back(t.name);
  if (names.size() > 1 && !IsConnected(names)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "tables are not connected by key/foreign-key edges"));
  }
  for (const FkEdge& e : EdgesWithin(names)) {
    const int ft = IndexOf(names, e.fk_table);
    const int pt = IndexOf(names, e.pk_table);
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* fk_tab,
                            catalog.GetTable(e.fk_table));
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* pk_tab,
                            catalog.GetTable(e.pk_table));
    QFCARD_ASSIGN_OR_RETURN(const int fc, fk_tab->ColumnIndex(e.fk_column));
    QFCARD_ASSIGN_OR_RETURN(const int pc, pk_tab->ColumnIndex(e.pk_column));
    JoinPredicate j;
    j.left = ColumnRef{ft, fc};
    j.right = ColumnRef{pt, pc};
    q.joins.push_back(j);
  }
  return common::Status::Ok();
}

std::vector<std::vector<std::string>> SchemaGraph::EnumerateSubSchemas(
    const std::vector<std::string>& all_tables, int min_tables,
    int max_tables) const {
  std::vector<std::vector<std::string>> out;
  const size_t n = all_tables.size();
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const int bits = __builtin_popcountll(mask);
    if (bits < min_tables || bits > max_tables) continue;
    std::vector<std::string> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) subset.push_back(all_tables[i]);
    }
    if (IsConnected(subset)) out.push_back(std::move(subset));
  }
  return out;
}

std::string SubSchemaKey(std::vector<std::string> table_names) {
  std::sort(table_names.begin(), table_names.end());
  return common::Join(table_names, "+");
}

}  // namespace qfcard::query
