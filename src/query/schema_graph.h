#ifndef QFCARD_QUERY_SCHEMA_GRAPH_H_
#define QFCARD_QUERY_SCHEMA_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace qfcard::query {

/// A key/foreign-key relationship: `fk_table.fk_column` references
/// `pk_table.pk_column`. The paper assumes tables are joined following their
/// key/foreign-key relationships (Section 2.1.2).
struct FkEdge {
  std::string fk_table;
  std::string fk_column;
  std::string pk_table;
  std::string pk_column;
};

/// The key/foreign-key graph of a schema. Used to derive join predicates for
/// a set of tables and to enumerate sub-schemata for local models.
class SchemaGraph {
 public:
  void AddEdge(FkEdge edge) { edges_.push_back(std::move(edge)); }
  const std::vector<FkEdge>& edges() const { return edges_; }

  /// Returns the edges connecting tables within `table_names` (both
  /// endpoints in the set).
  std::vector<FkEdge> EdgesWithin(
      const std::vector<std::string>& table_names) const;

  /// True if `table_names` induces a connected subgraph (joinable without
  /// cross products).
  bool IsConnected(const std::vector<std::string>& table_names) const;

  /// Builds the join predicates for a query over `q.tables`, following the
  /// key/foreign-key edges, and stores them into `q.joins`. Fails if the
  /// tables are not connected.
  common::Status PopulateJoins(const storage::Catalog& catalog, Query& q) const;

  /// Enumerates all connected sub-schemata (as sorted lists of table names)
  /// with between `min_tables` and `max_tables` tables, out of `all_tables`.
  std::vector<std::vector<std::string>> EnumerateSubSchemas(
      const std::vector<std::string>& all_tables, int min_tables,
      int max_tables) const;

 private:
  std::vector<FkEdge> edges_;
};

/// Canonical string key for a sub-schema (sorted table names joined by '+').
std::string SubSchemaKey(std::vector<std::string> table_names);

}  // namespace qfcard::query

#endif  // QFCARD_QUERY_SCHEMA_GRAPH_H_
