#include "serve/bundle.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstring>
#include <utility>

#include "estimators/ml_estimator.h"
#include "featurize/conjunction.h"
#include "featurize/disjunction.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "featurize/mscn_featurizer.h"
#include "featurize/range.h"
#include "featurize/singular.h"
#include "ml/gbm.h"
#include "ml/linear.h"
#include "ml/mscn.h"
#include "ml/nn.h"
#include "ml/serialize.h"

namespace qfcard::serve {

namespace {

constexpr uint32_t kBundleMagic = 0x5142444c;   // "QBDL"
constexpr uint32_t kBundleVersion = 1;
constexpr uint32_t kLocalQftMagic = 0x51465a31; // "QFZ1"
constexpr uint32_t kMscnMagic = 0x514d4631;     // "QMF1"

// Partitioner state tags inside featurizer blobs.
constexpr uint8_t kPartEquiWidth = 0;  // stateless; also "no partitioner set"
constexpr uint8_t kPartEquiDepth = 1;
constexpr uint8_t kPartVOptimal = 2;

std::string Lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// MSCN needs a non-null schema graph for its featurizer's lifetime; bundles
// loaded without one share an empty graph (no join edges), matching the
// registry's behavior for single-table catalogs.
const query::SchemaGraph& EmptyGraph() {
  static const query::SchemaGraph* graph = new query::SchemaGraph();
  return *graph;
}

// ---------------------------------------------------------------------------
// Shared sub-encodings: schema, options, partitioner state
// ---------------------------------------------------------------------------

void WriteSchema(ml::ByteWriter& writer, const featurize::FeatureSchema& s) {
  writer.Write<uint32_t>(static_cast<uint32_t>(s.num_attributes()));
  for (const featurize::AttributeInfo& a : s.attrs()) {
    writer.WriteString(a.name);
    writer.Write<double>(a.min);
    writer.Write<double>(a.max);
    writer.Write<uint8_t>(a.integral ? 1 : 0);
    writer.Write<int64_t>(a.distinct);
  }
}

common::Status ReadSchema(ml::ByteReader& reader,
                          featurize::FeatureSchema* out) {
  uint32_t count = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&count));
  // Each attribute costs at least 33 bytes (8 name length + 8 + 8 + 1 + 8).
  if (count > reader.remaining() / 33) {
    return common::Status::OutOfRange(
        "bundle schema attribute count exceeds remaining input");
  }
  std::vector<featurize::AttributeInfo> attrs;
  attrs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    featurize::AttributeInfo info;
    uint8_t integral = 0;
    QFCARD_RETURN_IF_ERROR(reader.ReadString(&info.name));
    QFCARD_RETURN_IF_ERROR(reader.Read(&info.min));
    QFCARD_RETURN_IF_ERROR(reader.Read(&info.max));
    QFCARD_RETURN_IF_ERROR(reader.Read(&integral));
    QFCARD_RETURN_IF_ERROR(reader.Read(&info.distinct));
    info.integral = integral != 0;
    if (!(info.min <= info.max)) {  // also rejects NaN
      return common::Status::InvalidArgument(
          "bundle schema attribute has a corrupt [min, max] domain");
    }
    attrs.push_back(std::move(info));
  }
  *out = featurize::FeatureSchema(std::move(attrs));
  return common::Status::Ok();
}

void WriteBoundaries(ml::ByteWriter& writer,
                     const std::vector<std::string>& names,
                     const std::vector<std::vector<double>>& boundaries) {
  writer.Write<uint32_t>(static_cast<uint32_t>(names.size()));
  for (size_t i = 0; i < names.size(); ++i) {
    writer.WriteString(names[i]);
    writer.WriteVector(boundaries[i]);
  }
}

common::Status ReadBoundaries(ml::ByteReader& reader,
                              std::vector<std::string>* names,
                              std::vector<std::vector<double>>* boundaries) {
  uint32_t count = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&count));
  if (count > reader.remaining() / 16) {  // 8 name length + 8 vector length
    return common::Status::OutOfRange(
        "bundle partitioner attribute count exceeds remaining input");
  }
  names->clear();
  boundaries->clear();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::vector<double> bounds;
    QFCARD_RETURN_IF_ERROR(reader.ReadString(&name));
    QFCARD_RETURN_IF_ERROR(reader.ReadVector(&bounds));
    if (!std::is_sorted(bounds.begin(), bounds.end())) {
      return common::Status::InvalidArgument(
          "bundle partitioner boundaries are not ascending");
    }
    names->push_back(std::move(name));
    boundaries->push_back(std::move(bounds));
  }
  return common::Status::Ok();
}

common::Status WriteOptions(ml::ByteWriter& writer,
                            const featurize::ConjunctionOptions& opts) {
  writer.Write<int32_t>(opts.max_partitions);
  writer.Write<uint8_t>(opts.append_attr_selectivity ? 1 : 0);
  writer.Write<uint8_t>(opts.exact_small_domains ? 1 : 0);
  writer.Write<uint8_t>(opts.use_half_values ? 1 : 0);
  writer.WriteVector(opts.per_attribute_partitions);
  const featurize::Partitioner* p = opts.partitioner;
  if (p == nullptr ||
      dynamic_cast<const featurize::EquiWidthPartitioner*>(p) != nullptr) {
    writer.Write<uint8_t>(kPartEquiWidth);
    return common::Status::Ok();
  }
  if (const auto* ed = dynamic_cast<const featurize::EquiDepthPartitioner*>(p)) {
    writer.Write<uint8_t>(kPartEquiDepth);
    WriteBoundaries(writer, ed->attr_names(), ed->boundaries());
    return common::Status::Ok();
  }
  if (const auto* vo = dynamic_cast<const featurize::VOptimalPartitioner*>(p)) {
    writer.Write<uint8_t>(kPartVOptimal);
    WriteBoundaries(writer, vo->attr_names(), vo->boundaries());
    return common::Status::Ok();
  }
  return common::Status::Unimplemented(
      "bundle: unknown Partitioner subclass cannot be persisted");
}

// Decoded options plus the restored partitioner backing opts.partitioner
// (null when the blob used the stateless equi-width default).
struct DecodedOptions {
  featurize::ConjunctionOptions opts;
  std::unique_ptr<const featurize::Partitioner> partitioner;
};

common::Status ReadOptions(ml::ByteReader& reader, int num_attributes,
                           DecodedOptions* out) {
  int32_t max_partitions = 0;
  uint8_t append_sel = 0;
  uint8_t exact_small = 0;
  uint8_t half_values = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&max_partitions));
  QFCARD_RETURN_IF_ERROR(reader.Read(&append_sel));
  QFCARD_RETURN_IF_ERROR(reader.Read(&exact_small));
  QFCARD_RETURN_IF_ERROR(reader.Read(&half_values));
  if (max_partitions < 1 || max_partitions > (1 << 20)) {
    return common::Status::InvalidArgument(
        "bundle options: max_partitions out of range");
  }
  out->opts.max_partitions = max_partitions;
  out->opts.append_attr_selectivity = append_sel != 0;
  out->opts.exact_small_domains = exact_small != 0;
  out->opts.use_half_values = half_values != 0;
  QFCARD_RETURN_IF_ERROR(reader.ReadVector(&out->opts.per_attribute_partitions));
  if (!out->opts.per_attribute_partitions.empty() &&
      static_cast<int>(out->opts.per_attribute_partitions.size()) !=
          num_attributes) {
    return common::Status::InvalidArgument(
        "bundle options: per-attribute budgets disagree with the schema");
  }
  for (const int b : out->opts.per_attribute_partitions) {
    if (b < 1 || b > (1 << 20)) {
      return common::Status::InvalidArgument(
          "bundle options: per-attribute budget out of range");
    }
  }
  uint8_t tag = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&tag));
  if (tag == kPartEquiWidth) {
    out->partitioner = nullptr;
    out->opts.partitioner = nullptr;
    return common::Status::Ok();
  }
  std::vector<std::string> names;
  std::vector<std::vector<double>> boundaries;
  QFCARD_RETURN_IF_ERROR(ReadBoundaries(reader, &names, &boundaries));
  if (tag == kPartEquiDepth) {
    out->partitioner = std::make_unique<featurize::EquiDepthPartitioner>(
        featurize::EquiDepthPartitioner::FromState(std::move(names),
                                                   std::move(boundaries)));
  } else if (tag == kPartVOptimal) {
    out->partitioner = std::make_unique<featurize::VOptimalPartitioner>(
        featurize::VOptimalPartitioner::FromState(std::move(names),
                                                  std::move(boundaries)));
  } else {
    return common::Status::InvalidArgument(
        "bundle options: unknown partitioner tag");
  }
  out->opts.partitioner = out->partitioner.get();
  return common::Status::Ok();
}

// ---------------------------------------------------------------------------
// Featurizer blobs
// ---------------------------------------------------------------------------

common::Status EncodeLocalFeaturizer(featurize::QftKind kind,
                                     const featurize::FeatureSchema& schema,
                                     const featurize::ConjunctionOptions& opts,
                                     std::vector<uint8_t>* out) {
  ml::ByteWriter writer(out);
  writer.Write(kLocalQftMagic);
  writer.Write<uint8_t>(static_cast<uint8_t>(kind));
  WriteSchema(writer, schema);
  return WriteOptions(writer, opts);
}

common::Status EncodeMscnFeaturizer(const featurize::MscnFeaturizer& f,
                                    int hidden, std::vector<uint8_t>* out) {
  ml::ByteWriter writer(out);
  writer.Write(kMscnMagic);
  writer.Write<uint8_t>(static_cast<uint8_t>(f.mode()));
  writer.Write<int32_t>(hidden);
  const featurize::GlobalFeatureSchema& global = f.global();
  WriteSchema(writer, global.schema());
  writer.WriteVector(global.first_attr());
  writer.WriteVector(global.num_columns());
  return WriteOptions(writer, f.options());
}

common::StatusOr<std::unique_ptr<est::CardinalityEstimator>> LoadLocal(
    ml::ByteReader& reader, const ModelBundle& bundle) {
  uint8_t kind_raw = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&kind_raw));
  if (kind_raw > static_cast<uint8_t>(featurize::QftKind::kComplex)) {
    return common::Status::InvalidArgument("bundle: unknown QFT kind tag");
  }
  const auto kind = static_cast<featurize::QftKind>(kind_raw);
  featurize::FeatureSchema schema;
  QFCARD_RETURN_IF_ERROR(ReadSchema(reader, &schema));
  DecodedOptions decoded;
  QFCARD_RETURN_IF_ERROR(
      ReadOptions(reader, schema.num_attributes(), &decoded));
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument(
        "bundle: trailing bytes after featurizer state");
  }
  std::unique_ptr<featurize::Featurizer> featurizer =
      featurize::MakeFeaturizer(kind, std::move(schema), decoded.opts);

  // "<model>+<qft>" — only the model half matters here (the QFT was decoded
  // from the blob); hyperparameters affect training only.
  const std::string key = Lowered(bundle.estimator);
  const size_t plus = key.find('+');
  const std::string model_key =
      plus == std::string::npos ? key : key.substr(0, plus);
  std::unique_ptr<ml::Model> model;
  if (model_key == "gb") {
    model = std::make_unique<ml::GradientBoosting>();
  } else if (model_key == "nn") {
    model = std::make_unique<ml::FeedForwardNet>();
  } else if (model_key == "linear") {
    model = std::make_unique<ml::LinearRegression>();
  } else {
    return common::Status::InvalidArgument(
        "bundle: estimator name \"" + bundle.estimator +
        "\" names no known model (expected gb/nn/linear)");
  }
  QFCARD_RETURN_IF_ERROR(model->Deserialize(bundle.model));
  if (model->InputDim() != featurizer->dim()) {
    return common::Status::InvalidArgument(
        "bundle: model input dimension does not match the restored "
        "featurizer");
  }
  auto inner = std::make_unique<est::MlEstimator>(std::move(featurizer),
                                                  std::move(model));
  return std::unique_ptr<est::CardinalityEstimator>(
      std::make_unique<LoadedEstimator>(std::move(decoded.partitioner),
                                        std::move(inner)));
}

common::StatusOr<std::unique_ptr<est::CardinalityEstimator>> LoadMscn(
    ml::ByteReader& reader, const ModelBundle& bundle,
    const storage::Catalog& catalog, const query::SchemaGraph* graph) {
  uint8_t mode_raw = 0;
  int32_t hidden = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&mode_raw));
  QFCARD_RETURN_IF_ERROR(reader.Read(&hidden));
  if (mode_raw > static_cast<uint8_t>(
                     featurize::MscnFeaturizer::PredMode::kPerAttributeRange)) {
    return common::Status::InvalidArgument(
        "bundle: unknown MSCN predicate mode tag");
  }
  if (hidden < 1 || hidden > (1 << 16)) {
    return common::Status::InvalidArgument(
        "bundle: MSCN hidden width out of range");
  }
  featurize::FeatureSchema schema;
  std::vector<int> first_attr;
  std::vector<int> num_columns;
  QFCARD_RETURN_IF_ERROR(ReadSchema(reader, &schema));
  QFCARD_RETURN_IF_ERROR(reader.ReadVector(&first_attr));
  QFCARD_RETURN_IF_ERROR(reader.ReadVector(&num_columns));
  const int num_attributes = schema.num_attributes();
  QFCARD_ASSIGN_OR_RETURN(featurize::GlobalFeatureSchema global,
                          featurize::GlobalFeatureSchema::FromState(
                              std::move(schema), std::move(first_attr),
                              std::move(num_columns)));
  DecodedOptions decoded;
  QFCARD_RETURN_IF_ERROR(ReadOptions(reader, num_attributes, &decoded));
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument(
        "bundle: trailing bytes after featurizer state");
  }
  featurize::MscnFeaturizer featurizer(
      &catalog, graph != nullptr ? graph : &EmptyGraph(),
      static_cast<featurize::MscnFeaturizer::PredMode>(mode_raw), decoded.opts,
      std::move(global));
  ml::MscnParams params;
  params.hidden = hidden;
  auto inner =
      std::make_unique<est::MscnEstimator>(std::move(featurizer), params);
  QFCARD_RETURN_IF_ERROR(inner->DeserializeModel(bundle.model));
  return std::unique_ptr<est::CardinalityEstimator>(
      std::make_unique<LoadedEstimator>(std::move(decoded.partitioner),
                                        std::move(inner)));
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256>& kTable = *[] {
    auto* table = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      (*table)[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeBundle(const ModelBundle& bundle, std::vector<uint8_t>* out) {
  out->clear();
  ml::ByteWriter writer(out);
  writer.Write(kBundleMagic);
  writer.Write(kBundleVersion);
  writer.WriteString(bundle.estimator);
  writer.WriteVector(bundle.featurizer);
  writer.WriteVector(bundle.model);
  writer.Write<uint32_t>(Crc32(out->data(), out->size()));
}

common::StatusOr<ModelBundle> DecodeBundle(const std::vector<uint8_t>& data) {
  if (data.size() < sizeof(uint32_t)) {
    return common::Status::OutOfRange("bundle shorter than its checksum");
  }
  const size_t body = data.size() - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, data.data() + body, sizeof(stored));
  if (Crc32(data.data(), body) != stored) {
    return common::Status::InvalidArgument("bundle checksum mismatch");
  }
  ml::ByteReader reader(data);
  uint32_t magic = 0;
  uint32_t version = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic != kBundleMagic) {
    return common::Status::InvalidArgument("not a qfcard model bundle");
  }
  QFCARD_RETURN_IF_ERROR(reader.Read(&version));
  if (version != kBundleVersion) {
    return common::Status::InvalidArgument("unsupported bundle version");
  }
  ModelBundle bundle;
  QFCARD_RETURN_IF_ERROR(reader.ReadString(&bundle.estimator));
  QFCARD_RETURN_IF_ERROR(reader.ReadVector(&bundle.featurizer));
  QFCARD_RETURN_IF_ERROR(reader.ReadVector(&bundle.model));
  if (reader.remaining() != sizeof(uint32_t)) {
    return common::Status::InvalidArgument(
        "bundle has trailing bytes before its checksum");
  }
  return bundle;
}

common::StatusOr<ModelBundle> BundleFromEstimator(
    const est::CardinalityEstimator& estimator,
    const std::string& registry_name) {
  const est::CardinalityEstimator* target = &estimator;
  while (const auto* loaded = dynamic_cast<const LoadedEstimator*>(target)) {
    target = &loaded->inner();
  }

  ModelBundle bundle;
  bundle.estimator = registry_name;
  if (const auto* ml_est = dynamic_cast<const est::MlEstimator*>(target)) {
    const featurize::Featurizer& f = ml_est->featurizer();
    QFCARD_ASSIGN_OR_RETURN(const featurize::QftKind kind,
                            featurize::QftKindFromString(f.name()));
    const featurize::FeatureSchema* schema = nullptr;
    featurize::ConjunctionOptions opts;  // simple/range ignore these
    switch (kind) {
      case featurize::QftKind::kSimple:
        schema = &dynamic_cast<const featurize::SingularEncoding&>(f).schema();
        break;
      case featurize::QftKind::kRange:
        schema = &dynamic_cast<const featurize::RangeEncoding&>(f).schema();
        break;
      case featurize::QftKind::kConjunctive: {
        const auto& conj = dynamic_cast<const featurize::ConjunctionEncoding&>(f);
        schema = &conj.schema();
        opts = conj.options();
        break;
      }
      case featurize::QftKind::kComplex: {
        const auto& disj = dynamic_cast<const featurize::DisjunctionEncoding&>(f);
        schema = &disj.schema();
        opts = disj.options();
        break;
      }
    }
    QFCARD_RETURN_IF_ERROR(
        EncodeLocalFeaturizer(kind, *schema, opts, &bundle.featurizer));
    QFCARD_RETURN_IF_ERROR(ml_est->SerializeModel(&bundle.model));
    return bundle;
  }
  if (const auto* mscn = dynamic_cast<const est::MscnEstimator*>(target)) {
    QFCARD_RETURN_IF_ERROR(EncodeMscnFeaturizer(
        mscn->featurizer(), mscn->model().params().hidden, &bundle.featurizer));
    QFCARD_RETURN_IF_ERROR(mscn->SerializeModel(&bundle.model));
    return bundle;
  }
  return common::Status::Unimplemented(
      "estimator \"" + target->name() +
      "\" has no persistable learned state (only ML estimators bundle)");
}

common::StatusOr<std::unique_ptr<est::CardinalityEstimator>>
EstimatorFromBundle(const ModelBundle& bundle, const storage::Catalog& catalog,
                    const query::SchemaGraph* graph) {
  ml::ByteReader reader(bundle.featurizer);
  uint32_t magic = 0;
  QFCARD_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic == kLocalQftMagic) return LoadLocal(reader, bundle);
  if (magic == kMscnMagic) return LoadMscn(reader, bundle, catalog, graph);
  return common::Status::InvalidArgument(
      "bundle: unrecognized featurizer blob magic");
}

}  // namespace qfcard::serve
