#ifndef QFCARD_SERVE_BUNDLE_H_
#define QFCARD_SERVE_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "estimators/estimator.h"
#include "featurize/partitioner.h"
#include "query/schema_graph.h"
#include "storage/catalog.h"

namespace qfcard::serve {

/// Everything needed to reconstruct a trained ML estimator: the registry
/// name it was built from, the featurizer's captured state (schema domains,
/// partitioner boundaries, options — so a restored model featurizes
/// byte-identically even when the live catalog's statistics have drifted),
/// and the model parameters. See docs/serving.md for the byte layout.
struct ModelBundle {
  std::string estimator;            ///< est::MakeEstimator name, e.g. "gb+conjunctive"
  std::vector<uint8_t> featurizer;  ///< featurizer state blob
  std::vector<uint8_t> model;       ///< model parameter blob (ml Serialize format)
};

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Encodes the bundle container: magic, format version, the three payloads,
/// and a trailing CRC32 over everything before it.
void EncodeBundle(const ModelBundle& bundle, std::vector<uint8_t>* out);

/// Decodes an EncodeBundle container, verifying the checksum first. Corrupt
/// or truncated input comes back as a clean Status error, never UB.
common::StatusOr<ModelBundle> DecodeBundle(const std::vector<uint8_t>& data);

/// Captures a trained estimator into a bundle. Supported: MlEstimator over
/// the four paper QFTs and MscnEstimator (any predicate mode); everything
/// else (statistics estimators have no learned state worth versioning)
/// returns Unimplemented. `registry_name` is the est::MakeEstimator key the
/// estimator was built from and is stored verbatim.
common::StatusOr<ModelBundle> BundleFromEstimator(
    const est::CardinalityEstimator& estimator,
    const std::string& registry_name);

/// Reconstructs an estimator from a bundle against `catalog` (used for
/// structural name lookups only; attribute domains come from the bundle).
/// `graph` is MSCN's join-edge source; nullptr means no join edges. The
/// returned estimator owns any restored partitioner state; the bundle's
/// model input dimension is cross-checked against the restored featurizer
/// so a mismatched pairing fails cleanly instead of reading out of bounds.
common::StatusOr<std::unique_ptr<est::CardinalityEstimator>>
EstimatorFromBundle(const ModelBundle& bundle, const storage::Catalog& catalog,
                    const query::SchemaGraph* graph = nullptr);

/// The wrapper EstimatorFromBundle returns: forwards everything to the
/// reconstructed estimator while owning the restored partitioner (declared
/// before the estimator so it outlives the featurizer referencing it).
class LoadedEstimator : public est::CardinalityEstimator {
 public:
  LoadedEstimator(std::unique_ptr<const featurize::Partitioner> partitioner,
                  std::unique_ptr<est::CardinalityEstimator> inner)
      : partitioner_(std::move(partitioner)), inner_(std::move(inner)) {}

  common::StatusOr<double> EstimateCard(const query::Query& q) const override {
    return inner_->EstimateCard(q);
  }
  common::StatusOr<std::vector<double>> EstimateBatch(
      const std::vector<query::Query>& queries) const override {
    return inner_->EstimateBatch(queries);
  }
  common::Status Train(const std::vector<query::Query>& queries,
                       const std::vector<double>& cards, double valid_fraction,
                       uint64_t seed) override {
    return inner_->Train(queries, cards, valid_fraction, seed);
  }
  std::string name() const override { return inner_->name(); }
  size_t SizeBytes() const override { return inner_->SizeBytes(); }

  /// The reconstructed estimator, for re-bundling a loaded model.
  const est::CardinalityEstimator& inner() const { return *inner_; }

 private:
  std::unique_ptr<const featurize::Partitioner> partitioner_;
  std::unique_ptr<est::CardinalityEstimator> inner_;
};

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_BUNDLE_H_
