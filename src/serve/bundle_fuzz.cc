#include "serve/bundle_fuzz.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/str_util.h"
#include "estimators/registry.h"
#include "query/query.h"
#include "serve/bundle.h"
#include "storage/catalog.h"
#include "testing/query_fuzzer.h"
#include "workload/forest.h"
#include "workload/labeler.h"
#include "workload/query_gen.h"

namespace qfcard::serve {

namespace {

using est::CardinalityEstimator;

// Loader fuzzing (docs/serving.md): train every saveable model family on a
// tiny workload, round-trip each through the serve bundle container, and
// then feed the loaders systematically damaged bytes. The container layer
// must reject every mutation of the encoded bundle (the CRC sees all of
// them), and the payload parsers — reached directly, as if a store payload
// rotted after its manifest check — must come back with a clean Status or
// a still-working estimator, never a crash (the sanitizer jobs turn memory
// errors here into failures).
void LoaderRound(const testing::FuzzRoundContext& ctx) {
  const int round = ctx.round;
  common::Rng rng(common::MixSeed(ctx.options->seed, static_cast<uint64_t>(round)));

  workload::ForestOptions fo;
  fo.num_rows = rng.UniformInt(150, 400);
  fo.num_attributes = static_cast<int>(rng.UniformInt(2, 5));
  fo.seed = rng.Next();
  storage::Catalog catalog;
  QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fo)));
  const storage::Table& table = catalog.table(0);

  workload::PredicateGenOptions go;
  go.max_attrs = fo.num_attributes;
  go.max_not_equals = 2;
  const std::vector<query::Query> raw = workload::GeneratePredicateWorkload(
      table, 48, go, rng);
  const common::StatusOr<std::vector<workload::LabeledQuery>> labeled =
      workload::LabelOnTable(table, raw, /*drop_empty=*/true);
  if (!labeled.ok()) {
    ctx.record_failure("loader-label", labeled.status().ToString());
    return;
  }
  if (labeled.value().size() < 12) return;  // too sparse to train on
  std::vector<query::Query> queries;
  std::vector<double> cards;
  for (const auto& lq : labeled.value()) {
    queries.push_back(lq.query);
    cards.push_back(lq.card);
  }
  const std::vector<query::Query> probe(queries.begin(),
                                        queries.begin() + 8);

  est::EstimatorOptions eo;
  eo.gbm.num_trees = 6;
  eo.gbm.max_depth = 3;
  eo.nn.hidden = {6};
  eo.nn.max_epochs = 3;
  eo.nn.max_steps = 60;
  eo.mscn.hidden = 6;
  eo.mscn.max_epochs = 3;
  eo.mscn.max_steps = 60;
  eo.conj.max_partitions = static_cast<int>(rng.UniformInt(4, 16));

  for (const char* const name :
       {"linear+simple", "gb+conj", "nn+range", "mscn+conj"}) {
    if (ctx.full()) return;
    auto built = est::MakeEstimator(name, catalog, eo);
    if (!built.ok()) {
      ctx.record_failure("loader-make", built.status().ToString());
      continue;
    }
    std::unique_ptr<CardinalityEstimator> estimator =
        std::move(built).value();
    const common::Status trained =
        estimator->Train(queries, cards, 0.2, rng.Next());
    if (!trained.ok()) {
      ctx.record_failure("loader-train:" + std::string(name),
                         trained.ToString());
      continue;
    }

    // Clean round trip: encode -> decode -> load -> identical predictions.
    ctx.count_check();
    auto bundle = serve::BundleFromEstimator(*estimator, name);
    if (!bundle.ok()) {
      ctx.record_failure("loader-bundle:" + std::string(name),
                         bundle.status().ToString());
      continue;
    }
    std::vector<uint8_t> bytes;
    serve::EncodeBundle(*bundle, &bytes);
    auto decoded = serve::DecodeBundle(bytes);
    auto loaded = decoded.ok()
                      ? serve::EstimatorFromBundle(*decoded, catalog)
                      : decoded.status();
    if (!loaded.ok()) {
      ctx.record_failure("loader-load:" + std::string(name),
                         loaded.status().ToString());
      continue;
    }
    const auto before = estimator->EstimateBatch(probe);
    const auto after = loaded.value()->EstimateBatch(probe);
    if (!before.ok() || !after.ok() || before.value() != after.value()) {
      ctx.record_failure(
          "loader-roundtrip:" + std::string(name),
          "predictions changed across save/load");
      continue;
    }

    // Container mutations: bit flips and truncations must all be rejected.
    for (int m = 0; m < 12; ++m) {
      if (ctx.full()) return;
      ctx.count_check();
      std::vector<uint8_t> corrupt = bytes;
      const size_t pos = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(corrupt.size()) - 1));
      corrupt[pos] =
          static_cast<uint8_t>(corrupt[pos] ^ (1u << rng.UniformInt(0, 7)));
      if (serve::DecodeBundle(corrupt).ok()) {
        ctx.record_failure(
            "loader-bitflip:" + std::string(name),
            common::StrFormat("bit flip at byte %llu went undetected",
                              static_cast<unsigned long long>(pos)));
      }
      ctx.count_check();
      const size_t cut = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(bytes.size()) - 1));
      const std::vector<uint8_t> prefix(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<long>(cut));
      if (serve::DecodeBundle(prefix).ok()) {
        ctx.record_failure(
            "loader-truncate:" + std::string(name),
            common::StrFormat("truncation to %llu bytes went undetected",
                              static_cast<unsigned long long>(cut)));
      }
    }

    // Payload mutations past the checksum: whatever the parsers return,
    // it must be a Status or a usable estimator (ASan/UBSan arbitrate).
    for (int m = 0; m < 8; ++m) {
      if (ctx.full()) return;
      ctx.count_check();
      serve::ModelBundle mutated = *decoded;
      std::vector<uint8_t>& target =
          m % 2 == 0 ? mutated.model : mutated.featurizer;
      if (target.empty()) continue;
      if (rng.Bernoulli(0.3)) {
        target.resize(static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(target.size()) - 1)));
      } else {
        const size_t pos = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(target.size()) - 1));
        target[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      auto survivor = serve::EstimatorFromBundle(mutated, catalog);
      if (survivor.ok()) {
        // Parsed despite the damage (e.g. a flipped weight bit): it must
        // still estimate without tripping the sanitizers.
        (void)survivor.value()->EstimateBatch(probe);
      }
    }
  }
}

}  // namespace

void RegisterLoaderFuzzRound() { testing::SetLoaderRound(LoaderRound); }

}  // namespace qfcard::serve
