#ifndef QFCARD_SERVE_BUNDLE_FUZZ_H_
#define QFCARD_SERVE_BUNDLE_FUZZ_H_

namespace qfcard::serve {

/// Installs the serve/ model-loader fuzz round into the differential fuzzer
/// (testing::SetLoaderRound). testing/ sits below serve/ in the layer order
/// (tools/layers.json), so the fuzzer cannot include serve/ itself; entry
/// points that want loader coverage (qfcard_fuzz, fuzz_smoke_test) call
/// this before testing::RunFuzzer. Idempotent; not thread-safe against a
/// concurrently running fuzzer.
void RegisterLoaderFuzzRound();

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_BUNDLE_FUZZ_H_
