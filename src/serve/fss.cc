#include "serve/fss.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace qfcard::serve {

namespace {

// FNV-1a over bytes, the platform-independent workhorse; splitmix64's
// finalizer adds avalanche so structurally close queries (one extra
// predicate, one operator changed) land far apart.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvString(uint64_t h, const std::string& s) {
  return FnvBytes(h, s.data(), s.size());
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Domain separators so e.g. a join edge can never collide with a predicate
// that happens to hash to the same bytes.
enum Tag : uint64_t {
  kTagRelation = 1,
  kTagJoin = 2,
  kTagPredicate = 3,
  kTagClause = 4,
  kTagOp = 5,
  kTagGroupBy = 6,
};

/// Position-independent identity of a column: the table's *name* (two
/// queries listing the same tables in a different FROM order renumber their
/// ColumnRef.table indices but keep the same feature space) plus the column
/// index within that table.
uint64_t ColumnIdentity(const query::Query& q, const query::ColumnRef& col) {
  uint64_t h = kFnvOffset;
  if (col.table >= 0 && static_cast<size_t>(col.table) < q.tables.size()) {
    h = FnvString(h, q.tables[col.table].name);
  } else {
    h = FnvU64(h, static_cast<uint64_t>(col.table));  // malformed: still hash
  }
  h = FnvU64(h, static_cast<uint64_t>(col.column));
  return Mix64(h);
}

/// One conjunctive clause: the multiset of its comparison operators.
/// Commutative sum over per-op hashes, so `A > 3 AND A <= 9` and
/// `A <= 9 AND A > 3` are the same clause shape.
uint64_t ClauseShape(const query::ConjunctiveClause& clause) {
  uint64_t acc = 0;
  for (const query::SimplePredicate& pred : clause.preds) {
    acc += Mix64(FnvU64(FnvU64(kFnvOffset, kTagOp),
                        static_cast<uint64_t>(pred.op)));
  }
  return Mix64(FnvU64(FnvU64(kFnvOffset, kTagClause), acc));
}

}  // namespace

uint64_t FeatureSpaceHash(const query::Query& q) {
  // Each component class is reduced with a commutative sum of per-item
  // mixed hashes (order-invariant, multiset-sensitive), then the class
  // accumulators are folded in a fixed order.
  uint64_t relations = 0;
  for (const query::TableRef& table : q.tables) {
    relations += Mix64(FnvString(FnvU64(kFnvOffset, kTagRelation), table.name));
  }

  uint64_t joins = 0;
  for (const query::JoinPredicate& join : q.joins) {
    const uint64_t left = ColumnIdentity(q, join.left);
    const uint64_t right = ColumnIdentity(q, join.right);
    // Symmetric endpoint pair: a = b and b = a are the same edge.
    uint64_t h = FnvU64(kFnvOffset, kTagJoin);
    h = FnvU64(h, std::min(left, right));
    h = FnvU64(h, std::max(left, right));
    joins += Mix64(h);
  }

  uint64_t predicates = 0;
  for (const query::CompoundPredicate& cp : q.predicates) {
    uint64_t disjuncts = 0;  // multiset of clause shapes
    for (const query::ConjunctiveClause& clause : cp.disjuncts) {
      disjuncts += ClauseShape(clause);
    }
    uint64_t h = FnvU64(kFnvOffset, kTagPredicate);
    h = FnvU64(h, ColumnIdentity(q, cp.col));
    h = FnvU64(h, disjuncts);
    predicates += Mix64(h);
  }

  uint64_t group_by = 0;
  for (const query::ColumnRef& col : q.group_by) {
    group_by +=
        Mix64(FnvU64(FnvU64(kFnvOffset, kTagGroupBy), ColumnIdentity(q, col)));
  }

  uint64_t h = kFnvOffset;
  h = FnvU64(h, relations);
  h = FnvU64(h, joins);
  h = FnvU64(h, predicates);
  h = FnvU64(h, group_by);
  const uint64_t fss = Mix64(h);
  // 0 is reserved as the "no route / compute it yourself" sentinel in
  // EstimateRequest::route_hint and as the forced-mode default route id.
  return fss == 0 ? 1 : fss;
}

std::string FeatureSpaceSignature(const query::Query& q) {
  std::vector<std::string> tables;
  for (const query::TableRef& table : q.tables) tables.push_back(table.name);
  std::sort(tables.begin(), tables.end());

  auto column_name = [&q](const query::ColumnRef& col) {
    std::string name = "t?";
    if (col.table >= 0 && static_cast<size_t>(col.table) < q.tables.size()) {
      name = q.tables[col.table].name;
    }
    return name + ".c" + std::to_string(col.column);
  };

  std::vector<std::string> parts;
  for (const query::CompoundPredicate& cp : q.predicates) {
    std::vector<std::string> clauses;
    for (const query::ConjunctiveClause& clause : cp.disjuncts) {
      std::vector<std::string> ops;
      for (const query::SimplePredicate& pred : clause.preds) {
        ops.push_back(query::CmpOpToString(pred.op));
      }
      std::sort(ops.begin(), ops.end());
      clauses.push_back("{" + common::Join(ops, ",") + "}");
    }
    std::sort(clauses.begin(), clauses.end());
    parts.push_back(column_name(cp.col) + ":" + common::Join(clauses, "+"));
  }
  for (const query::JoinPredicate& join : q.joins) {
    std::string left = column_name(join.left);
    std::string right = column_name(join.right);
    if (right < left) std::swap(left, right);
    parts.push_back(left + "=" + right);
  }
  for (const query::ColumnRef& col : q.group_by) {
    parts.push_back("g{" + column_name(col) + "}");
  }
  std::sort(parts.begin(), parts.end());

  std::string out = common::Join(tables, ",");
  if (!parts.empty()) out += "|" + common::Join(parts, "|");
  return out;
}

std::string FormatFss(uint64_t fss) {
  return common::StrFormat("%016llx", static_cast<unsigned long long>(fss));
}

}  // namespace qfcard::serve
