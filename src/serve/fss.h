#ifndef QFCARD_SERVE_FSS_H_
#define QFCARD_SERVE_FSS_H_

#include <cstdint>
#include <string>

#include "query/query.h"

namespace qfcard::serve {

/// 64-bit structural hash of a query's feature space, mirroring AQO's
/// `get_fss_for_object(clauses, relids)`: two queries land in the same
/// feature space iff they are equal up to their literal constants. The hash
/// covers
///   - the set of relations (table names, not FROM-clause positions),
///   - the join predicate set (as unordered table/column endpoint pairs),
///   - per compound predicate: the referenced (table, column) and the
///     disjunct structure — for each conjunctive clause, the multiset of
///     comparison operators,
///   - the GROUP BY column set,
/// and deliberately ignores every literal value, so `A1 >= 10 AND A1 <= 20`
/// and `A1 >= 500 AND A1 <= 501` share a route while `A1 >= 10` and
/// `A1 = 10` do not.
///
/// All combining is commutative at every level (predicates, disjuncts,
/// predicates within a clause, joins, relations), so the hash is invariant
/// under clause reordering — a query and any clause-permuted equivalent
/// route to the same model (pinned by tests/fss_test.cc). The function is a
/// pure byte computation (FNV-1a + splitmix64 finalizers, no std::hash), so
/// values are stable across platforms, standard libraries, and processes —
/// route ids can be persisted and compared between runs.
uint64_t FeatureSpaceHash(const query::Query& q);

/// Human-readable signature of the same structure, for route labels and
/// logs: e.g. "forest|c1:{>=,<=}|c3:{=}+{=}|g{c2}". Deterministic: components
/// are emitted in sorted order, matching the hash's order-invariance.
std::string FeatureSpaceSignature(const query::Query& q);

/// Formats a feature-space hash the way metrics labels and logs spell it:
/// 16 lowercase hex digits (e.g. "3f62a91c0b44d17e").
std::string FormatFss(uint64_t fss);

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_FSS_H_
