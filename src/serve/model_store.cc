#include "serve/model_store.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "obs/metrics.h"

namespace qfcard::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestHeader = "qfcard-model-store 1";
constexpr const char* kFeaturizerFile = "featurizer.bin";
constexpr const char* kModelFile = "model.bin";

std::string VersionDirName(uint64_t version) {
  return common::StrFormat("v%06llu",
                           static_cast<unsigned long long>(version));
}

// Parses "vNNN..." directory names; returns 0 for anything else (0 is never
// a published version).
uint64_t ParseVersionDirName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'v') return 0;
  uint64_t v = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return v;
}

common::Status WriteFileBytes(const fs::path& path,
                              const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Status::Internal("model store: cannot open " +
                                    path.string() + " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return common::Status::Internal("model store: short write to " +
                                    path.string());
  }
  return common::Status::Ok();
}

common::Status ReadFileBytes(const fs::path& path,
                             std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::Status::NotFound("model store: cannot open " +
                                    path.string());
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return common::Status::Internal("model store: cannot size " +
                                    path.string());
  }
  in.seekg(0, std::ios::beg);
  bytes->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes->data()),
          static_cast<std::streamsize>(bytes->size()));
  if (!in) {
    return common::Status::Internal("model store: short read from " +
                                    path.string());
  }
  return common::Status::Ok();
}

struct ManifestPayload {
  std::string file;
  uint64_t size = 0;
  uint32_t crc32 = 0;
};

struct Manifest {
  std::string estimator;
  uint64_t version = 0;
  std::vector<ManifestPayload> payloads;
};

std::string RenderManifest(const Manifest& m) {
  std::ostringstream out;
  out << kManifestHeader << "\n";
  out << "estimator " << m.estimator << "\n";
  out << "version " << m.version << "\n";
  for (const ManifestPayload& p : m.payloads) {
    out << "payload " << p.file << " " << p.size << " "
        << common::StrFormat("%08x", p.crc32) << "\n";
  }
  return out.str();
}

// Overflow-checked digit parsers (std::stoull throws on corrupt manifests).
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseHex32(const std::string& s, uint32_t* out) {
  if (s.empty() || s.size() > 8) return false;
  uint32_t v = 0;
  for (const char c : s) {
    uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

common::StatusOr<Manifest> ParseManifest(const std::string& text) {
  Manifest m;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return common::Status::InvalidArgument(
        "model store: manifest header mismatch");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = common::Split(line, ' ');
    if (fields.size() == 2 && fields[0] == "estimator") {
      m.estimator = fields[1];
    } else if (fields.size() == 2 && fields[0] == "version") {
      if (!ParseU64(fields[1], &m.version)) {
        return common::Status::InvalidArgument(
            "model store: corrupt manifest version");
      }
    } else if (fields.size() == 4 && fields[0] == "payload") {
      ManifestPayload p;
      p.file = fields[1];
      if (!ParseU64(fields[2], &p.size) || !ParseHex32(fields[3], &p.crc32)) {
        return common::Status::InvalidArgument(
            "model store: corrupt manifest payload line");
      }
      m.payloads.push_back(std::move(p));
    } else {
      return common::Status::InvalidArgument(
          "model store: unrecognized manifest line: " + line);
    }
  }
  if (m.estimator.empty() || m.payloads.empty()) {
    return common::Status::InvalidArgument(
        "model store: manifest missing estimator or payloads");
  }
  return m;
}

common::Status LoadPayload(const fs::path& dir, const Manifest& manifest,
                           const std::string& file,
                           std::vector<uint8_t>* bytes) {
  const ManifestPayload* entry = nullptr;
  for (const ManifestPayload& p : manifest.payloads) {
    if (p.file == file) {
      entry = &p;
      break;
    }
  }
  if (entry == nullptr) {
    return common::Status::InvalidArgument(
        "model store: manifest lists no payload " + file);
  }
  QFCARD_RETURN_IF_ERROR(ReadFileBytes(dir / file, bytes));
  if (bytes->size() != entry->size) {
    return common::Status::InvalidArgument(
        "model store: payload " + file + " size disagrees with manifest");
  }
  if (Crc32(bytes->data(), bytes->size()) != entry->crc32) {
    return common::Status::InvalidArgument(
        "model store: payload " + file + " checksum mismatch");
  }
  return common::Status::Ok();
}

}  // namespace

ModelStore::ModelStore(std::string root) : root_(std::move(root)) {}

common::StatusOr<std::vector<uint64_t>> ModelStore::ListVersions() const {
  std::vector<uint64_t> versions;
  std::error_code ec;
  fs::directory_iterator it(root_, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) return versions;
    return common::Status::Internal("model store: cannot list " + root_ +
                                    ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    const uint64_t v = ParseVersionDirName(entry.path().filename().string());
    if (v > 0) versions.push_back(v);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

common::Status ModelStore::PublishLocked(const ModelBundle& bundle,
                                         uint64_t version) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    return common::Status::Internal("model store: cannot create " + root_ +
                                    ": " + ec.message());
  }
  const fs::path final_dir = fs::path(root_) / VersionDirName(version);
  const fs::path tmp_dir =
      fs::path(root_) / ("." + VersionDirName(version) + ".tmp");
  fs::remove_all(tmp_dir, ec);  // leftover from a crashed publish
  fs::create_directory(tmp_dir, ec);
  if (ec) {
    return common::Status::Internal("model store: cannot create temp dir: " +
                                    ec.message());
  }

  Manifest manifest;
  manifest.estimator = bundle.estimator;
  manifest.version = version;
  manifest.payloads.push_back(
      {kFeaturizerFile, bundle.featurizer.size(),
       Crc32(bundle.featurizer.data(), bundle.featurizer.size())});
  manifest.payloads.push_back({kModelFile, bundle.model.size(),
                               Crc32(bundle.model.data(),
                                     bundle.model.size())});

  QFCARD_RETURN_IF_ERROR(
      WriteFileBytes(tmp_dir / kFeaturizerFile, bundle.featurizer));
  QFCARD_RETURN_IF_ERROR(WriteFileBytes(tmp_dir / kModelFile, bundle.model));
  const std::string manifest_text = RenderManifest(manifest);
  {
    std::ofstream out(tmp_dir / "MANIFEST", std::ios::trunc);
    out << manifest_text;
    out.flush();
    if (!out) {
      return common::Status::Internal("model store: cannot write manifest");
    }
  }

  // Atomic publish: the version directory appears fully formed or not at
  // all.
  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    fs::remove_all(tmp_dir, ec);
    return common::Status::Internal("model store: cannot publish version " +
                                    VersionDirName(version));
  }
  return common::Status::Ok();
}

common::StatusOr<uint64_t> ModelStore::Publish(const ModelBundle& bundle) {
  if (bundle.estimator.empty() ||
      bundle.estimator.find_first_of(" \t\n") != std::string::npos) {
    return common::Status::InvalidArgument(
        "model store: estimator name must be a non-empty single token");
  }
  common::MutexLock lock(&mu_);
  QFCARD_ASSIGN_OR_RETURN(const std::vector<uint64_t> versions,
                          ListVersions());
  const uint64_t on_disk = versions.empty() ? 0 : versions.back();
  const uint64_t version = std::max(last_allocated_, on_disk) + 1;
  QFCARD_RETURN_IF_ERROR(PublishLocked(bundle, version));
  last_allocated_ = version;
  obs::IncrementCounter("serve.store.publishes");
  return version;
}

common::StatusOr<ModelBundle> ModelStore::Load(uint64_t version) const {
  const fs::path dir = fs::path(root_) / VersionDirName(version);
  std::vector<uint8_t> manifest_bytes;
  common::Status read = ReadFileBytes(dir / "MANIFEST", &manifest_bytes);
  if (!read.ok()) {
    return common::Status::NotFound("model store: version " +
                                    VersionDirName(version) +
                                    " is not published under " + root_);
  }
  QFCARD_ASSIGN_OR_RETURN(
      const Manifest manifest,
      ParseManifest(std::string(manifest_bytes.begin(),
                                manifest_bytes.end())));
  if (manifest.version != version) {
    return common::Status::InvalidArgument(
        "model store: manifest version disagrees with its directory");
  }
  ModelBundle bundle;
  bundle.estimator = manifest.estimator;
  QFCARD_RETURN_IF_ERROR(
      LoadPayload(dir, manifest, kFeaturizerFile, &bundle.featurizer));
  QFCARD_RETURN_IF_ERROR(LoadPayload(dir, manifest, kModelFile, &bundle.model));
  obs::IncrementCounter("serve.store.loads");
  return bundle;
}

common::StatusOr<std::pair<uint64_t, ModelBundle>> ModelStore::LoadLatest()
    const {
  QFCARD_ASSIGN_OR_RETURN(const std::vector<uint64_t> versions,
                          ListVersions());
  if (versions.empty()) {
    return common::Status::NotFound("model store: no published versions in " +
                                    root_);
  }
  QFCARD_ASSIGN_OR_RETURN(ModelBundle bundle, Load(versions.back()));
  return std::make_pair(versions.back(), std::move(bundle));
}

common::StatusOr<int> ModelStore::RetainLatest(size_t keep) {
  common::MutexLock lock(&mu_);
  QFCARD_ASSIGN_OR_RETURN(const std::vector<uint64_t> versions,
                          ListVersions());
  int removed = 0;
  if (versions.size() <= keep) return removed;
  const size_t drop = versions.size() - keep;
  for (size_t i = 0; i < drop; ++i) {
    std::error_code ec;
    fs::remove_all(fs::path(root_) / VersionDirName(versions[i]), ec);
    if (ec) {
      return common::Status::Internal(
          "model store: cannot remove version " +
          VersionDirName(versions[i]) + ": " + ec.message());
    }
    ++removed;
  }
  obs::IncrementCounter("serve.store.gc_removed", "",
                        static_cast<uint64_t>(removed));
  return removed;
}

}  // namespace qfcard::serve
