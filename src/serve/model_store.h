#ifndef QFCARD_SERVE_MODEL_STORE_H_
#define QFCARD_SERVE_MODEL_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/bundle.h"

namespace qfcard::serve {

/// Versioned on-disk store of model bundles. Layout under the root:
///
///   <root>/v000001/MANIFEST         text manifest (see docs/serving.md)
///   <root>/v000001/featurizer.bin   featurizer state blob
///   <root>/v000001/model.bin        model parameter blob
///
/// Publish writes the new version into a hidden temp directory and renames
/// it into place, so readers never observe a half-written version (rename
/// within one filesystem is atomic on POSIX). Every payload's size and CRC32
/// are recorded in the manifest and re-verified on load. Version numbers are
/// dense-by-allocation (max existing + 1) and never reused while the store
/// object lives; no wall-clock timestamps are recorded anywhere, keeping
/// store contents deterministic for a given publish sequence.
///
/// Thread-safe: version allocation and publish are serialized on an internal
/// mutex; loads only read published (immutable) directories.
class ModelStore {
 public:
  explicit ModelStore(std::string root);

  /// Writes `bundle` as the next version; returns the version number.
  common::StatusOr<uint64_t> Publish(const ModelBundle& bundle);

  /// Loads one published version, verifying manifest sizes and checksums.
  common::StatusOr<ModelBundle> Load(uint64_t version) const;

  /// Loads the highest published version; NotFound when the store is empty.
  common::StatusOr<std::pair<uint64_t, ModelBundle>> LoadLatest() const;

  /// Published versions in ascending order (empty vector for an empty or
  /// not-yet-created root).
  common::StatusOr<std::vector<uint64_t>> ListVersions() const;

  /// Retention GC: deletes all but the `keep` highest versions. Returns how
  /// many versions were removed.
  common::StatusOr<int> RetainLatest(size_t keep);

  const std::string& root() const { return root_; }

 private:
  common::Status PublishLocked(const ModelBundle& bundle, uint64_t version)
      QFCARD_REQUIRES(mu_);

  const std::string root_;
  common::Mutex mu_;
  /// Highest version this store has allocated; 0 before the first Publish
  /// (re-seeded from disk at each allocation so concurrent stores on the
  /// same root do not collide with already-published versions).
  uint64_t last_allocated_ QFCARD_GUARDED_BY(mu_) = 0;
};

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_MODEL_STORE_H_
