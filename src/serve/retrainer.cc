#include "serve/retrainer.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/str_util.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "serve/bundle.h"

namespace qfcard::serve {

Retrainer::Retrainer(ServingEstimator* serving, const storage::Catalog* catalog,
                     RetrainerOptions options)
    : serving_(serving), catalog_(catalog), opts_([&options] {
        // Degenerate knobs are clamped instead of rejected: the retrainer is
        // a background subsystem and must stay constructible.
        options.max_feedback = std::max<size_t>(2, options.max_feedback);
        options.min_feedback =
            std::min(std::max<size_t>(2, options.min_feedback),
                     options.max_feedback);
        return std::move(options);
      }()) {}

Retrainer::~Retrainer() { Stop(); }

void Retrainer::AddFeedback(const query::Query& q, double true_card) {
  const double truth = std::max(1.0, true_card);
  {
    common::MutexLock lock(&mu_);
    if (feedback_.size() < opts_.max_feedback) {
      feedback_.emplace_back(q, truth);
    } else {
      feedback_[next_slot_] = {q, truth};
      next_slot_ = (next_slot_ + 1) % opts_.max_feedback;
    }
  }
  obs::IncrementCounter("serve.feedback.observed");
}

void Retrainer::Start() {
  common::MutexLock lifecycle(&lifecycle_mu_);
  if (worker_.joinable()) return;
  {
    common::MutexLock lock(&mu_);
    stop_ = false;
    retrain_requested_ = false;
  }
  worker_ = std::thread([this] { WorkerLoop(); });
  if (opts_.monitor != nullptr && listener_id_ == 0) {
    // The listener only flags the request and notifies — the monitor's
    // contract forbids heavy work (and calls back into the monitor) from
    // the Observe thread; the worker does the actual retrain.
    listener_id_ = opts_.monitor->AddFlipListener(
        [this](const obs::QErrorDriftMonitor::State&) { TriggerRetrain(); });
  }
}

void Retrainer::Stop() {
  common::MutexLock lifecycle(&lifecycle_mu_);
  if (opts_.monitor != nullptr && listener_id_ != 0) {
    // Remove first: blocks until in-flight flip callbacks return, so no
    // TriggerRetrain can race the join below.
    opts_.monitor->RemoveFlipListener(listener_id_);
    listener_id_ = 0;
  }
  if (!worker_.joinable()) return;
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
}

void Retrainer::TriggerRetrain() {
  {
    common::MutexLock lock(&mu_);
    retrain_requested_ = true;
  }
  cv_.NotifyAll();
}

void Retrainer::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (!stop_ && !retrain_requested_) cv_.Wait(&mu_);
    if (stop_) break;
    retrain_requested_ = false;
    mu_.Unlock();
    // Outcome and metrics are recorded by RetrainNow itself; a failed
    // background run leaves the active model serving and the error in
    // last_result().detail.
    (void)RetrainNow();
    mu_.Lock();
  }
  mu_.Unlock();
}

void Retrainer::RecordResult(const RetrainResult& result) {
  common::MutexLock lock(&mu_);
  last_ = result;
}

common::StatusOr<RetrainResult> Retrainer::RetrainNow() {
  common::MutexLock retrain_lock(&retrain_mu_);
  RetrainResult result;
  std::vector<std::pair<query::Query, double>> sample;
  uint64_t run = 0;
  {
    common::MutexLock lock(&mu_);
    sample = feedback_;
    run = runs_++;
  }
  obs::IncrementCounter("serve.retrain.runs");
  result.version = serving_->ActiveVersion();
  result.feedback_used = sample.size();

  if (sample.size() < opts_.min_feedback) {
    result.detail = common::StrFormat(
        "insufficient feedback (%llu < %llu)",
        static_cast<unsigned long long>(sample.size()),
        static_cast<unsigned long long>(opts_.min_feedback));
    RecordResult(result);
    return result;
  }
  result.attempted = true;

  // Deterministic per-run shuffle, then carve the holdout off the front; the
  // candidate never trains on holdout queries and both models are scored on
  // the same holdout.
  common::Rng rng(common::MixSeed(opts_.seed, run));
  rng.Shuffle(sample);
  const size_t n = sample.size();
  const size_t holdout_n = std::clamp<size_t>(
      static_cast<size_t>(opts_.holdout_fraction * static_cast<double>(n)), 1,
      n - 1);

  std::vector<query::Query> holdout_queries, train_queries;
  std::vector<double> holdout_truths, train_truths;
  holdout_queries.reserve(holdout_n);
  holdout_truths.reserve(holdout_n);
  train_queries.reserve(n - holdout_n);
  train_truths.reserve(n - holdout_n);
  for (size_t i = 0; i < n; ++i) {
    if (i < holdout_n) {
      holdout_queries.push_back(sample[i].first);
      holdout_truths.push_back(sample[i].second);
    } else {
      train_queries.push_back(sample[i].first);
      train_truths.push_back(sample[i].second);
    }
  }

  const auto fail = [&](common::Status status) -> common::Status {
    result.detail = status.ToString();
    RecordResult(result);
    obs::IncrementCounter("serve.retrain.errors");
    return status;
  };

  const std::shared_ptr<const est::CardinalityEstimator> active =
      serving_->Active();
  common::StatusOr<std::vector<double>> stale_or =
      active->EstimateBatch(holdout_queries);
  if (!stale_or.ok()) return fail(stale_or.status());
  result.stale_p95 =
      ml::QErrorSummary::FromErrors(ml::QErrors(holdout_truths, *stale_or)).p95;

  common::StatusOr<std::unique_ptr<est::CardinalityEstimator>> candidate_or =
      est::MakeEstimator(opts_.estimator_name, *catalog_, opts_.estimator_opts);
  if (!candidate_or.ok()) return fail(candidate_or.status());
  std::unique_ptr<est::CardinalityEstimator> candidate =
      std::move(candidate_or).value();
  common::Status train_status =
      candidate->Train(train_queries, train_truths, opts_.valid_fraction,
                       common::MixSeed(opts_.seed, run * 2 + 1));
  if (!train_status.ok()) return fail(train_status);

  common::StatusOr<std::vector<double>> cand_or =
      candidate->EstimateBatch(holdout_queries);
  if (!cand_or.ok()) return fail(cand_or.status());
  result.candidate_p95 =
      ml::QErrorSummary::FromErrors(ml::QErrors(holdout_truths, *cand_or)).p95;

  if (result.candidate_p95 < result.stale_p95) {
    uint64_t version = serving_->ActiveVersion() + 1;
    if (opts_.store != nullptr) {
      common::StatusOr<ModelBundle> bundle =
          BundleFromEstimator(*candidate, opts_.estimator_name);
      if (!bundle.ok()) return fail(bundle.status());
      common::StatusOr<uint64_t> published = opts_.store->Publish(*bundle);
      if (!published.ok()) return fail(published.status());
      version = *published;
    }
    serving_->Swap(std::shared_ptr<const est::CardinalityEstimator>(
                       std::move(candidate)),
                   version);
    result.promoted = true;
    result.version = version;
    result.detail = common::StrFormat(
        "promoted: holdout p95 %.3f -> %.3f", result.stale_p95,
        result.candidate_p95);
    obs::IncrementCounter("serve.retrain.promoted");
  } else {
    result.detail = common::StrFormat(
        "rejected: candidate holdout p95 %.3f did not improve on %.3f",
        result.candidate_p95, result.stale_p95);
    obs::IncrementCounter("serve.retrain.rejected");
  }
  RecordResult(result);
  return result;
}

uint64_t Retrainer::runs() const {
  common::MutexLock lock(&mu_);
  return runs_;
}

RetrainResult Retrainer::last_result() const {
  common::MutexLock lock(&mu_);
  return last_;
}

size_t Retrainer::feedback_size() const {
  common::MutexLock lock(&mu_);
  return feedback_.size();
}

}  // namespace qfcard::serve
