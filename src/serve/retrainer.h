#ifndef QFCARD_SERVE_RETRAINER_H_
#define QFCARD_SERVE_RETRAINER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "estimators/registry.h"
#include "obs/qerror_monitor.h"
#include "query/query.h"
#include "serve/model_store.h"
#include "serve/serving_estimator.h"

namespace qfcard::serve {

/// Knobs for Retrainer. Defaults retrain the paper's strongest single-table
/// combination (gradient boosting over the complex QFT) on up to 4096 pieces
/// of feedback, holding out 20% to score promotion.
struct RetrainerOptions {
  /// Registry key (est::MakeEstimator) used to build each candidate.
  std::string estimator_name = "gb+complex";
  est::EstimatorOptions estimator_opts;
  /// A retrain run becomes a no-op below this much feedback.
  size_t min_feedback = 64;
  /// Ring capacity: oldest feedback is overwritten beyond this.
  size_t max_feedback = 4096;
  /// Fraction of the feedback window held out (never trained on) to score
  /// the stale model against the candidate. Clamped so both splits are
  /// non-empty.
  double holdout_fraction = 0.2;
  /// Passed through to CardinalityEstimator::Train for early stopping.
  double valid_fraction = 0.1;
  /// Base seed; each run r shuffles with MixSeed(seed, r) so runs are
  /// deterministic yet draw distinct splits.
  uint64_t seed = 20260806;
  /// When set, Start() subscribes to healthy->degraded flips and schedules a
  /// retrain on each one. Not owned; must outlive the retrainer.
  obs::QErrorDriftMonitor* monitor = nullptr;
  /// When set, promoted candidates are published here before the swap, and
  /// the store's version number becomes the serving version. Not owned.
  ModelStore* store = nullptr;
};

/// Outcome of one retrain run, also kept as last_result().
struct RetrainResult {
  bool attempted = false;   ///< false when feedback was insufficient
  bool promoted = false;    ///< candidate beat the stale model and swapped in
  size_t feedback_used = 0; ///< window size the run saw
  double stale_p95 = 0.0;     ///< holdout p95 q-error of the active model
  double candidate_p95 = 0.0; ///< holdout p95 q-error of the candidate
  uint64_t version = 0;     ///< serving version after the run
  std::string detail;       ///< human-readable reason (promoted/rejected/...)
};

/// Closes the drift loop (docs/serving.md): ingests true-cardinality
/// feedback, listens for QErrorDriftMonitor healthy->degraded flips, and on
/// each flip retrains a candidate on the feedback window in a background
/// thread. The candidate is promoted — published to the store and hot-swapped
/// into the ServingEstimator — only when its holdout p95 q-error strictly
/// improves on the active model's; otherwise the active model keeps serving.
///
/// Promotion policy: p95, not mean, is the gate (the paper's Figure 5
/// observation — drift shows in the tail). The holdout is carved from the
/// feedback window before training, so the candidate is never scored on
/// queries it trained on, and the stale model is scored on the same holdout.
///
/// Thread-safety: AddFeedback/TriggerRetrain/RetrainNow and the accessors
/// are safe from any thread; retrain runs themselves are serialized on an
/// internal mutex. Start/Stop manage the worker and must be externally
/// serialized with each other (one owner); the destructor calls Stop().
class Retrainer {
 public:
  /// `serving` and `catalog` are not owned and must outlive the retrainer
  /// (as must options.monitor/options.store when set).
  Retrainer(ServingEstimator* serving, const storage::Catalog* catalog,
            RetrainerOptions options);
  ~Retrainer();

  Retrainer(const Retrainer&) = delete;
  Retrainer& operator=(const Retrainer&) = delete;

  /// Records one executed query with its observed true cardinality
  /// (clamped to >= 1). Cheap; safe from the serving path.
  void AddFeedback(const query::Query& q, double true_card);

  /// Spawns the background worker and subscribes to the drift monitor's
  /// flip notifications (when a monitor is configured). Idempotent.
  void Start();

  /// Unsubscribes from the monitor and joins the worker. Idempotent; safe
  /// without a prior Start().
  void Stop();

  /// Asks the background worker to run a retrain soon (what the flip
  /// listener calls). No-op unless Start()ed.
  void TriggerRetrain();

  /// Runs one retrain synchronously on the calling thread and returns its
  /// outcome. Errors (estimator construction, training, store publish)
  /// surface as a Status; "not enough feedback" is a successful result with
  /// attempted == false.
  common::StatusOr<RetrainResult> RetrainNow();

  /// Retrain runs started so far (including insufficient-feedback no-ops).
  uint64_t runs() const;

  /// Outcome of the most recent run (default-constructed before any run).
  RetrainResult last_result() const;

  /// Feedback entries currently in the window.
  size_t feedback_size() const;

 private:
  void WorkerLoop();
  void RecordResult(const RetrainResult& result);

  ServingEstimator* const serving_;
  const storage::Catalog* const catalog_;
  const RetrainerOptions opts_;

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::vector<std::pair<query::Query, double>> feedback_ QFCARD_GUARDED_BY(mu_);
  size_t next_slot_ QFCARD_GUARDED_BY(mu_) = 0;  // ring cursor once full
  bool stop_ QFCARD_GUARDED_BY(mu_) = false;
  bool retrain_requested_ QFCARD_GUARDED_BY(mu_) = false;
  uint64_t runs_ QFCARD_GUARDED_BY(mu_) = 0;
  RetrainResult last_ QFCARD_GUARDED_BY(mu_);

  /// Serializes whole retrain runs (held across training, which is slow);
  /// never held while mu_-guarded waits happen. Lock order: retrain_mu_
  /// before mu_.
  common::Mutex retrain_mu_;

  /// Worker/listener lifecycle, touched only under lifecycle_mu_ (which the
  /// worker itself never takes, so Stop can join while holding it).
  common::Mutex lifecycle_mu_;
  std::thread worker_ QFCARD_GUARDED_BY(lifecycle_mu_);
  uint64_t listener_id_ QFCARD_GUARDED_BY(lifecycle_mu_) = 0;
};

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_RETRAINER_H_
