#include "serve/router.h"

#include <utility>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfcard::serve {

namespace {

void CountRejected(const char* reason) {
  obs::IncrementCounter("serve.route.rejected", std::string("reason=") + reason);
}

}  // namespace

const char* RoutePolicyToString(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kIntelligent:
      return "intelligent";
    case RoutePolicy::kForced:
      return "forced";
    case RoutePolicy::kControlled:
      return "controlled";
  }
  return "?";
}

common::StatusOr<RoutePolicy> ParseRoutePolicy(std::string_view name) {
  if (common::EqualsIgnoreCase(name, "intelligent")) {
    return RoutePolicy::kIntelligent;
  }
  if (common::EqualsIgnoreCase(name, "forced")) return RoutePolicy::kForced;
  if (common::EqualsIgnoreCase(name, "controlled")) {
    return RoutePolicy::kControlled;
  }
  return common::Status::InvalidArgument(
      "unknown routing policy \"" + std::string(name) +
      "\" (expected intelligent/forced/controlled)");
}

ModelRouter::ModelRouter(ModelRouterOptions options)
    : options_(std::move(options)) {
  common::MutexLock lock(&mu_);
  ExportRouteCount();
}

void ModelRouter::ExportRouteCount() const {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry::Global().GaugeNamed("serve.routes")->Set(
      static_cast<int64_t>(routes_.size()));
}

common::Status ModelRouter::AddRoute(uint64_t fss,
                                     std::shared_ptr<ServingEstimator> serving,
                                     std::string label) {
  if (fss == 0) {
    return common::Status::InvalidArgument(
        "router: route id 0 is reserved for the forced-mode default route "
        "(SetDefaultRoute)");
  }
  if (serving == nullptr) {
    return common::Status::InvalidArgument("router: route model is null");
  }
  common::MutexLock lock(&mu_);
  const auto [it, inserted] =
      routes_.emplace(fss, Route{std::move(serving), std::move(label)});
  (void)it;
  if (!inserted) {
    return common::Status::FailedPrecondition(
        "router: route " + FormatFss(fss) +
                                         " already registered");
  }
  ExportRouteCount();
  return common::Status::Ok();
}

void ModelRouter::SetDefaultRoute(std::shared_ptr<ServingEstimator> serving) {
  common::MutexLock lock(&mu_);
  default_route_ = std::move(serving);
}

common::StatusOr<ModelRouter::Resolution> ModelRouter::Resolve(
    const query::Query& q, const est::EstimateOptions& options,
    uint64_t route_hint) {
  obs::TraceSpan span("serve.route.resolve");
  Resolution resolution;
  resolution.fss = route_hint != 0 ? route_hint : FeatureSpaceHash(q);
  resolution.route_id = resolution.fss;

  common::MutexLock lock(&mu_);
  const auto it = routes_.find(resolution.fss);
  if (it != routes_.end()) {
    resolution.serving = it->second.serving;
    return resolution;
  }

  // Miss: admission policy decides.
  switch (options_.policy) {
    case RoutePolicy::kIntelligent: {
      if (!options.allow_route_creation) {
        CountRejected("creation-disallowed");
        return common::Status::FailedPrecondition(
            "router: unseen feature space " + FormatFss(resolution.fss) +
            " and the request disallows route creation");
      }
      if (options_.factory == nullptr) {
        CountRejected("no-factory");
        return common::Status::FailedPrecondition(
            "router: intelligent policy needs a RouteFactory");
      }
      if (created_routes_ >= options_.max_routes) {
        CountRejected("route-limit");
        return common::Status::ResourceExhausted(
            "router: route limit reached (" +
            std::to_string(options_.max_routes) +
            " auto-created feature spaces)");
      }
      // The factory runs with mu_ held: concurrent first sights of the same
      // space build exactly one model, at the cost of serializing creations
      // (see RouteFactory's header note about keeping factories cheap).
      QFCARD_ASSIGN_OR_RETURN(std::shared_ptr<ServingEstimator> serving,
                              options_.factory(resolution.fss, q));
      if (serving == nullptr) {
        return common::Status::Internal("router: factory returned null");
      }
      ++created_routes_;
      routes_.emplace(resolution.fss,
                      Route{serving, FeatureSpaceSignature(q)});
      ExportRouteCount();
      obs::IncrementCounter("serve.route.created");
      resolution.serving = std::move(serving);
      resolution.created = true;
      return resolution;
    }
    case RoutePolicy::kForced: {
      if (default_route_ == nullptr) {
        CountRejected("no-default");
        return common::Status::FailedPrecondition(
            "router: forced policy needs a default route (SetDefaultRoute)");
      }
      resolution.route_id = 0;  // AQO's common feature space
      resolution.serving = default_route_;
      return resolution;
    }
    case RoutePolicy::kControlled: {
      CountRejected("unknown-shape");
      return common::Status::FailedPrecondition(
          "router: unknown feature space " + FormatFss(resolution.fss) +
          " rejected under the controlled policy");
    }
  }
  return common::Status::Internal("router: unreachable policy");
}

std::shared_ptr<ServingEstimator> ModelRouter::FindRoute(uint64_t fss) const {
  common::MutexLock lock(&mu_);
  if (fss == 0) return default_route_;
  const auto it = routes_.find(fss);
  return it == routes_.end() ? nullptr : it->second.serving;
}

std::string ModelRouter::RouteLabel(uint64_t fss) const {
  common::MutexLock lock(&mu_);
  const auto it = routes_.find(fss);
  return it == routes_.end() ? std::string() : it->second.label;
}

std::vector<uint64_t> ModelRouter::RouteIds() const {
  common::MutexLock lock(&mu_);
  std::vector<uint64_t> ids;
  ids.reserve(routes_.size());
  for (const auto& [fss, route] : routes_) ids.push_back(fss);
  return ids;
}

size_t ModelRouter::NumRoutes() const {
  common::MutexLock lock(&mu_);
  return routes_.size();
}

}  // namespace qfcard::serve
