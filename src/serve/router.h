#ifndef QFCARD_SERVE_ROUTER_H_
#define QFCARD_SERVE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "estimators/request.h"
#include "query/query.h"
#include "serve/fss.h"
#include "serve/serving_estimator.h"

namespace qfcard::serve {

/// Admission policy for query shapes the router has not seen before,
/// modeled on AQO's preprocessing modes (SNIPPETS.md, `preprocessing.c`).
enum class RoutePolicy {
  /// Every new feature space gets its own route: the factory builds a model
  /// on first sight and the hash becomes its route id.
  kIntelligent,
  /// Unknown shapes are served by the default route (AQO's "common feature
  /// space with hash 0") and never memorized as routes of their own.
  kForced,
  /// Unknown shapes are rejected; the route table is exactly what the
  /// operator pre-registered via AddRoute.
  kControlled,
};

const char* RoutePolicyToString(RoutePolicy policy);
common::StatusOr<RoutePolicy> ParseRoutePolicy(std::string_view name);

/// Builds the ServingEstimator for a newly admitted feature space under the
/// intelligent policy. `fss` is the new route's id and `first` the query
/// that opened it (its shape, not its literals, is what defines the space).
/// Called with the router lock held: creations are serialized, so keep
/// factories cheap (serve a statistics-based model immediately and hot-swap
/// a trained one in later — the pattern examples/qfcard_server.cpp demos).
using RouteFactory =
    std::function<common::StatusOr<std::shared_ptr<ServingEstimator>>(
        uint64_t fss, const query::Query& first)>;

struct ModelRouterOptions {
  RoutePolicy policy = RoutePolicy::kIntelligent;
  /// Required under kIntelligent; unused otherwise.
  RouteFactory factory;
  /// Admission bound on auto-created routes (pre-registered routes don't
  /// count against it): one model per feature space must not let an
  /// adversarial workload allocate unbounded models.
  size_t max_routes = 256;
};

/// Maps feature-space hashes to hot-swappable per-space models — the
/// dispatch half of the estimation server (docs/serving.md). Thread-safe;
/// the route table is mu_-guarded, and resolved routes are shared_ptrs, so
/// serving continues on a route even while the table changes.
///
/// Exports serve.routes (gauge), serve.route.created and
/// serve.route.rejected{reason=...} (counters).
class ModelRouter {
 public:
  explicit ModelRouter(ModelRouterOptions options);

  /// Pre-registers a route (controlled-mode setup, or seeding known spaces
  /// under any policy). Fails with FailedPrecondition on a duplicate id.
  common::Status AddRoute(uint64_t fss,
                          std::shared_ptr<ServingEstimator> serving,
                          std::string label = "");

  /// Installs the route unknown shapes fall back to under kForced (route id
  /// 0, AQO's common feature space).
  void SetDefaultRoute(std::shared_ptr<ServingEstimator> serving);

  struct Resolution {
    /// Feature-space hash of the query (or the caller's hint).
    uint64_t fss = 0;
    /// Route that will serve it: == fss normally, 0 for the forced-mode
    /// default route.
    uint64_t route_id = 0;
    std::shared_ptr<ServingEstimator> serving;
    /// True when this resolution created the route (intelligent first
    /// sight).
    bool created = false;
  };

  /// Routes one query: computes FeatureSpaceHash(q) (or takes `route_hint`
  /// when nonzero), then applies the admission policy to a miss. Rejections
  /// come back as FailedPrecondition (unknown shape under kControlled, or
  /// options.allow_route_creation = false) or ResourceExhausted (max_routes
  /// hit under kIntelligent).
  common::StatusOr<Resolution> Resolve(const query::Query& q,
                                       const est::EstimateOptions& options = {},
                                       uint64_t route_hint = 0);

  /// The route's model, or nullptr when `fss` is unknown. The forced-mode
  /// default route is id 0.
  std::shared_ptr<ServingEstimator> FindRoute(uint64_t fss) const;

  /// Human-readable label recorded at creation ("" for unlabeled routes).
  std::string RouteLabel(uint64_t fss) const;

  /// Registered route ids, ascending (excludes the default route).
  std::vector<uint64_t> RouteIds() const;

  size_t NumRoutes() const;
  RoutePolicy policy() const { return options_.policy; }

 private:
  struct Route {
    std::shared_ptr<ServingEstimator> serving;
    std::string label;
  };

  void ExportRouteCount() const QFCARD_REQUIRES(mu_);

  const ModelRouterOptions options_;

  mutable common::Mutex mu_;
  std::map<uint64_t, Route> routes_ QFCARD_GUARDED_BY(mu_);
  std::shared_ptr<ServingEstimator> default_route_ QFCARD_GUARDED_BY(mu_);
  size_t created_routes_ QFCARD_GUARDED_BY(mu_) = 0;
};

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_ROUTER_H_
