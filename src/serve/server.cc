#include "serve/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfcard::serve {

namespace {

/// Upper bound on a dispatcher's sleep when no batch has a pending
/// deadline: long enough to stay cheap, short enough that a lost wakeup
/// (impossible by design, cheap insurance anyway) cannot stall a request
/// noticeably.
constexpr double kIdleWaitSeconds = 0.1;

void CountServerRejected(const char* reason) {
  obs::IncrementCounter("serve.route.rejected",
                        std::string("reason=") + reason);
}

}  // namespace

EstimationServer::EstimationServer(ModelRouter* router,
                                   EstimationServerOptions options)
    : router_(router), opts_([&options] {
        // Clamp degenerate knobs: the server is infrastructure and must stay
        // constructible with whatever an operator wires in.
        options.max_batch = std::max<size_t>(1, options.max_batch);
        options.max_pending = std::max<size_t>(1, options.max_pending);
        options.flush_deadline_seconds =
            std::max(0.0, options.flush_deadline_seconds);
        options.num_workers = std::max(0, options.num_workers);
        return options;
      }()) {}

EstimationServer::~EstimationServer() { Stop(); }

void EstimationServer::Start() {
  common::MutexLock lifecycle(&lifecycle_mu_);
  {
    common::MutexLock lock(&mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  // Arm tail sampling: keep the span trees of slow/errored requests out of
  // the ring's eviction path (docs/observability.md).
  if (obs::TraceEnabled() && opts_.trace_tail_threshold_seconds > 0.0) {
    obs::TailSamplingOptions tail;
    tail.enabled = true;
    tail.latency_threshold_seconds = opts_.trace_tail_threshold_seconds;
    obs::TraceBuffer::Global().SetTailSampling(tail);
  }
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void EstimationServer::Stop() {
  common::MutexLock lifecycle(&lifecycle_mu_);
  {
    common::MutexLock lock(&mu_);
    if (!running_) return;
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    common::MutexLock lock(&mu_);
    // Drain whatever is still queued (everything, when num_workers == 0):
    // blocked clients get real responses from a stopping server, not errors.
    while (FlushOneBatch(/*drain=*/true)) {
    }
    running_ = false;
    stop_ = false;
  }
}

bool EstimationServer::running() const {
  common::MutexLock lock(&mu_);
  return running_ && !stop_;
}

common::StatusOr<est::EstimateResponse> EstimationServer::Estimate(
    const est::EstimateRequest& request) {
  Slot slot;
  QFCARD_RETURN_IF_ERROR(Enqueue(request, &slot));
  return AwaitSlot(&slot);
}

std::vector<common::StatusOr<est::EstimateResponse>>
EstimationServer::EstimateMany(
    const std::vector<est::EstimateRequest>& requests) {
  // All submissions go in before any wait, so concurrent-looking traffic
  // from one client thread still coalesces into shared micro-batches.
  std::vector<Slot> slots(requests.size());
  std::vector<common::Status> admitted(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    admitted[i] = Enqueue(requests[i], &slots[i]);
  }
  std::vector<common::StatusOr<est::EstimateResponse>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!admitted[i].ok()) {
      results.emplace_back(admitted[i]);
    } else {
      results.emplace_back(AwaitSlot(&slots[i]));
    }
  }
  return results;
}

size_t EstimationServer::PendingRequests() const {
  common::MutexLock lock(&mu_);
  return pending_total_;
}

uint64_t EstimationServer::BatchesFlushed() const {
  common::MutexLock lock(&mu_);
  return batches_;
}

common::Status EstimationServer::Enqueue(const est::EstimateRequest& request,
                                         Slot* slot) {
  // Mint the request's trace: the root span id is reserved now so every
  // span of the request — on this thread or a worker — can attach to it,
  // and the root itself (serve.request) is recorded at completion with the
  // request's full latency (tail sampling evaluates that duration).
  const obs::Clock::time_point submit_start = obs::Now();
  const uint64_t trace_id = obs::MintTraceId();
  const obs::TraceContext root_ctx{trace_id, trace_id};
  obs::TraceSpan span("serve.submit", root_ctx);
  uint64_t trace_route = 0;
  // Requests rejected before queueing never reach a worker, so the root
  // span closes here — errored, which tail sampling keeps.
  auto reject = [&](common::Status status) {
    span.MarkError();
    span.End();
    obs::RecordTraceRoot("serve.request", trace_id, submit_start, obs::Now(),
                         trace_route, /*error=*/true);
    return status;
  };
  {
    common::MutexLock lock(&mu_);
    if (!running_ || stop_) {
      CountServerRejected("not-running");
      return reject(common::Status::FailedPrecondition(
          "estimation server is not running"));
    }
  }
  // Routing runs outside mu_: the router has its own lock, and an
  // intelligent-policy first sight may build a model.
  common::StatusOr<ModelRouter::Resolution> resolution_or =
      router_->Resolve(request.query, request.options, request.route_hint);
  if (!resolution_or.ok()) return reject(resolution_or.status());
  ModelRouter::Resolution resolution = std::move(resolution_or).value();
  trace_route = resolution.route_id;
  span.SetRoute(resolution.route_id);

  common::MutexLock lock(&mu_);
  if (!running_ || stop_) {
    CountServerRejected("not-running");
    return reject(common::Status::FailedPrecondition(
        "estimation server is stopping"));
  }
  if (pending_total_ >= opts_.max_pending) {
    CountServerRejected("queue-full");
    return reject(common::Status::ResourceExhausted(
        "estimation server queue is full (" +
        std::to_string(opts_.max_pending) + " pending requests)"));
  }
  RouteQueue& queue = queues_[resolution.route_id];
  queue.serving = std::move(resolution.serving);
  const obs::Clock::time_point now = obs::Now();
  if (queue.pending.empty()) queue.oldest = now;
  queue.pending.push_back(PendingRequest{request.query, now, slot, root_ctx});
  ++pending_total_;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GaugeNamed("serve.route.queue_depth")
        ->Set(static_cast<int64_t>(pending_total_));
    obs::IncrementCounter("serve.route.requests",
                          "route=" + FormatFss(resolution.route_id));
  }
  if (queue.pending.size() >= opts_.max_batch) {
    // The batch is full: every dispatcher should look for work.
    work_cv_.NotifyAll();
  } else {
    // Wake one dispatcher so it can re-arm its sleep to this request's
    // flush deadline.
    work_cv_.NotifyOne();
  }
  return common::Status::Ok();
}

common::StatusOr<est::EstimateResponse> EstimationServer::AwaitSlot(
    Slot* slot) {
  common::MutexLock lock(&mu_);
  while (!slot->done) done_cv_.Wait(&mu_);
  if (!slot->status.ok()) return slot->status;
  return slot->response;
}

void EstimationServer::WorkerLoop() {
  mu_.Lock();
  while (true) {
    if (FlushOneBatch(/*drain=*/stop_)) continue;
    if (stop_ && pending_total_ == 0) break;
    // Sleep until the earliest pending flush deadline (or idle-long when
    // nothing is queued); any enqueue or Stop notifies.
    double wait = kIdleWaitSeconds;
    const obs::Clock::time_point now = obs::Now();
    for (const auto& [route_id, queue] : queues_) {
      if (queue.pending.empty()) continue;
      const double age = obs::SecondsBetween(queue.oldest, now);
      wait = std::min(wait,
                      std::max(0.0, opts_.flush_deadline_seconds - age));
    }
    work_cv_.WaitFor(&mu_, wait);
  }
  mu_.Unlock();
}

bool EstimationServer::FlushOneBatch(bool drain) {
  const obs::Clock::time_point now = obs::Now();
  RouteQueue* due = nullptr;
  uint64_t due_route = 0;
  for (auto& [route_id, queue] : queues_) {
    if (queue.pending.empty()) continue;
    const bool ready =
        drain || queue.pending.size() >= opts_.max_batch ||
        obs::SecondsBetween(queue.oldest, now) >= opts_.flush_deadline_seconds;
    if (!ready) continue;
    // Fairness: of the due routes, flush the one that has waited longest.
    if (due == nullptr || queue.oldest < due->oldest) {
      due = &queue;
      due_route = route_id;
    }
  }
  if (due == nullptr) return false;

  std::vector<PendingRequest> batch = std::move(due->pending);
  due->pending.clear();
  const std::shared_ptr<ServingEstimator> serving = due->serving;
  pending_total_ -= batch.size();
  ++batches_;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GaugeNamed("serve.route.queue_depth")
        ->Set(static_cast<int64_t>(pending_total_));
  }

  // Execute outside the lock: enqueues and other flushes proceed while this
  // micro-batch featurizes and predicts.
  mu_.Unlock();
  const std::string route_label = "route=" + FormatFss(due_route);
  const obs::Clock::time_point exec_start = obs::Now();
  double exec_seconds = 0.0;
  double featurize_seconds = 0.0;
  double predict_seconds = 0.0;
  common::StatusOr<std::vector<est::EstimateResponse>> responses_or =
      [&]() -> common::StatusOr<std::vector<est::EstimateResponse>> {
    // Re-attach to the first member's trace across the thread boundary;
    // every other member joins as a follow-from link, and each member gets
    // a serve.queue_wait span (admission -> execution) under its own root.
    obs::TraceSpan span("serve.batch", batch.front().ctx);
    span.SetRoute(due_route);
    for (const PendingRequest& p : batch) {
      obs::RecordSpan("serve.queue_wait", p.ctx, p.enqueued, exec_start,
                      due_route);
      span.AddLink(p.ctx.trace_id);
    }
    obs::ScopedTimer exec_timer("serve.route.exec_seconds", route_label);
    // Stage capture: the backend's featurize/predict blocks report their
    // seconds here, giving every member its attribution split.
    obs::StageCapture capture;
    std::vector<est::EstimateRequest> requests(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      requests[i].query = std::move(batch[i].query);
    }
    common::StatusOr<std::vector<est::EstimateResponse>> result =
        serving->EstimateRequests(requests);
    if (!result.ok()) span.MarkError();
    exec_seconds = exec_timer.Seconds();
    featurize_seconds = capture.seconds(obs::Stage::kFeaturize);
    predict_seconds = capture.seconds(obs::Stage::kPredict);
    return result;
  }();
  obs::IncrementCounter("serve.route.batches", route_label);

  // Stamp provenance and per-request latency (queue wait + execution)
  // before publishing the slots.
  const obs::Clock::time_point completed = obs::Now();
  if (responses_or.ok()) {
    std::vector<est::EstimateResponse>& responses = responses_or.value();
    for (size_t i = 0; i < batch.size(); ++i) {
      responses[i].route_id = due_route;
      responses[i].latency_seconds =
          obs::SecondsBetween(batch[i].enqueued, completed);
      responses[i].trace_id = batch[i].ctx.trace_id;
      responses[i].stages.queue_wait_seconds =
          obs::SecondsBetween(batch[i].enqueued, exec_start);
      responses[i].stages.batch_exec_seconds = exec_seconds;
      responses[i].stages.featurize_seconds = featurize_seconds;
      responses[i].stages.predict_seconds = predict_seconds;
      obs::ObserveLatency("serve.route.latency_seconds",
                          responses[i].latency_seconds, route_label);
      const est::StageBreakdown& stages = responses[i].stages;
      obs::ObserveLatency("serve.request.stage_seconds",
                          stages.queue_wait_seconds, "stage=queue_wait");
      obs::ObserveLatency("serve.request.stage_seconds",
                          stages.batch_exec_seconds, "stage=batch_exec");
      obs::ObserveLatency("serve.request.stage_seconds",
                          stages.featurize_seconds, "stage=featurize");
      obs::ObserveLatency("serve.request.stage_seconds",
                          stages.predict_seconds, "stage=predict");
    }
  }
  // Close out every member's trace root with its full latency — the
  // duration the tail-sampling keep-policy evaluates. Recorded after the
  // children, so a kept root protects a tree that is already in the ring.
  for (const PendingRequest& p : batch) {
    obs::RecordTraceRoot("serve.request", p.ctx.trace_id, p.enqueued,
                         completed, due_route, !responses_or.ok());
  }
  if (obs::MetricsEnabled()) {
    const obs::TraceBuffer& buffer = obs::TraceBuffer::Global();
    obs::MetricsRegistry::Global()
        .GaugeNamed("serve.trace.sampled")
        ->Set(static_cast<int64_t>(buffer.TailSampledTraces()));
    obs::MetricsRegistry::Global()
        .GaugeNamed("serve.trace.dropped")
        ->Set(static_cast<int64_t>(buffer.TailDroppedSpans()));
  }

  mu_.Lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (responses_or.ok()) {
      batch[i].slot->response = responses_or.value()[i];
    } else {
      batch[i].slot->status = responses_or.status();
    }
    batch[i].slot->done = true;
  }
  done_cv_.NotifyAll();
  return true;
}

}  // namespace qfcard::serve
