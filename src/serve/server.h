#ifndef QFCARD_SERVE_SERVER_H_
#define QFCARD_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "estimators/request.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "serve/router.h"

namespace qfcard::serve {

struct EstimationServerOptions {
  /// A route's pending micro-batch is flushed as soon as it holds this many
  /// requests...
  size_t max_batch = 64;
  /// ...or as soon as its oldest request has waited this long, whichever
  /// comes first. The deadline bounds tail latency at low QPS; the size
  /// bound amortizes featurization + model dispatch at high QPS (the
  /// paper's Table 7 cost).
  double flush_deadline_seconds = 0.001;
  /// Admission control: total requests queued across all routes. Beyond it
  /// new submissions are rejected with ResourceExhausted instead of growing
  /// the queue without bound.
  size_t max_pending = 4096;
  /// Dispatcher threads executing flushed batches. 0 is a test hook: nothing
  /// flushes until Stop() drains synchronously.
  int num_workers = 2;
  /// When QFCARD_TRACE is on, Start() arms the global TraceBuffer's
  /// tail-sampling keep-policy with this latency threshold: any request
  /// whose full latency (its serve.request root span) meets it — or that
  /// errored — has its whole span tree protected from ring eviction
  /// (docs/observability.md). <= 0 leaves tail sampling alone.
  double trace_tail_threshold_seconds = 0.010;
};

/// Long-lived estimation front end (docs/serving.md): many client threads
/// submit EstimateRequests concurrently; the server routes each to its
/// feature-space model via the ModelRouter and coalesces requests that hit
/// the same route — across client connections — into one
/// ServingEstimator::EstimateRequests call through a bounded micro-batching
/// queue (flush on size or deadline).
///
/// Because every estimator's batch results are byte-identical to the serial
/// per-query path (docs/batch_api.md), how the server groups concurrent
/// requests into batches is unobservable in the estimates: a query answered
/// through the server returns bit-for-bit what a direct EstimateBatch on the
/// route's model returns (pinned by tests/server_test.cc at 1/2/8 client
/// threads).
///
/// Thread-safety: Estimate/EstimateMany are safe from any thread and block
/// until their responses are ready. Start/Stop must be externally serialized
/// with each other (one owner); the destructor calls Stop(). Route models
/// are hot-swappable under traffic (ServingEstimator's contract) — swapping
/// never tears an in-flight batch.
///
/// Exports per-route serve.route.* metrics: requests/batches (counters,
/// route=<fss> labels), latency_seconds/exec_seconds (histograms),
/// queue_depth (gauge), plus the router's rejected{reason=...} counters,
/// per-request serve.request.stage_seconds{stage=...} attribution
/// histograms, and the serve.trace.sampled/dropped tail-sampling gauges.
///
/// Tracing (docs/observability.md): each admitted request mints a
/// TraceContext whose root span (serve.request) is recorded when the
/// request completes, spanning its full latency. serve.submit and
/// serve.queue_wait parent under the root on the client side; the worker
/// re-attaches via TraceSpan("serve.batch", ctx) so the batch execution —
/// and the estimate.featurize/estimate.predict spans inside it — joins the
/// first member's trace, with every other member recorded as a follow-from
/// link. The result: one causally connected tree per request, across the
/// client->worker thread boundary.
class EstimationServer {
 public:
  /// `router` is not owned and must outlive the server.
  explicit EstimationServer(ModelRouter* router,
                            EstimationServerOptions options = {});
  ~EstimationServer();

  EstimationServer(const EstimationServer&) = delete;
  EstimationServer& operator=(const EstimationServer&) = delete;

  /// Spawns the dispatcher workers. Idempotent.
  void Start();

  /// Stops accepting new requests, drains every pending micro-batch (blocked
  /// clients get their responses, not errors), and joins the workers.
  /// Idempotent; safe without a prior Start().
  void Stop();

  /// Submits one request and blocks until its micro-batch is flushed and
  /// computed. Routing rejections (unknown shape under the controlled
  /// policy, route limit), queue-full admission rejections
  /// (ResourceExhausted), and not-running errors come back without queuing.
  common::StatusOr<est::EstimateResponse> Estimate(
      const est::EstimateRequest& request);

  /// Submits all requests before waiting on any, so they can share
  /// micro-batches; returns one result per request in input order.
  std::vector<common::StatusOr<est::EstimateResponse>> EstimateMany(
      const std::vector<est::EstimateRequest>& requests);

  /// Requests currently queued (admission-control view).
  size_t PendingRequests() const;

  /// Micro-batches flushed so far.
  uint64_t BatchesFlushed() const;

  bool running() const;

  const ModelRouter& router() const { return *router_; }

 private:
  /// One blocked client's result slot. Lives on the client's stack; written
  /// by the flushing worker and read by the owner, both under mu_ (the
  /// fields carry no annotations because slots are locals, but every access
  /// after enqueue happens with mu_ held).
  struct Slot {
    est::EstimateResponse response;
    common::Status status;
    bool done = false;
  };

  struct PendingRequest {
    query::Query query;
    obs::Clock::time_point enqueued;
    Slot* slot = nullptr;
    /// Trace identity minted at admission ({trace_id, trace_id}: children
    /// recorded by the worker parent under the request's root span).
    /// Invalid when tracing is off.
    obs::TraceContext ctx;
  };

  /// Per-feature-space micro-batch accumulator.
  struct RouteQueue {
    std::shared_ptr<ServingEstimator> serving;
    std::vector<PendingRequest> pending;
    obs::Clock::time_point oldest;  ///< enqueue time of pending.front()
  };

  /// Resolves, admits, and enqueues without waiting. On success the slot
  /// will eventually be completed by a worker (or the Stop() drain).
  common::Status Enqueue(const est::EstimateRequest& request, Slot* slot);

  /// Blocks until *slot is done and returns its result.
  common::StatusOr<est::EstimateResponse> AwaitSlot(Slot* slot);

  void WorkerLoop();

  /// Flushes one due micro-batch if any, returning true when work was done.
  /// `drain` ignores size/deadline and flushes whatever is pending.
  bool FlushOneBatch(bool drain) QFCARD_REQUIRES(mu_);

  ModelRouter* const router_;
  const EstimationServerOptions opts_;

  mutable common::Mutex mu_;
  common::CondVar work_cv_;  ///< wakes dispatchers (new work, stop)
  common::CondVar done_cv_;  ///< wakes blocked clients (slots completed)
  std::map<uint64_t, RouteQueue> queues_ QFCARD_GUARDED_BY(mu_);
  size_t pending_total_ QFCARD_GUARDED_BY(mu_) = 0;
  uint64_t batches_ QFCARD_GUARDED_BY(mu_) = 0;
  bool running_ QFCARD_GUARDED_BY(mu_) = false;
  bool stop_ QFCARD_GUARDED_BY(mu_) = false;

  /// Worker lifecycle, touched only under lifecycle_mu_ (which workers never
  /// take, so Stop can join while holding it). Lock order: lifecycle_mu_
  /// before mu_.
  common::Mutex lifecycle_mu_;
  std::vector<std::thread> workers_ QFCARD_GUARDED_BY(lifecycle_mu_);
};

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_SERVER_H_
