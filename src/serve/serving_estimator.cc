#include "serve/serving_estimator.h"

#include <utility>

#include "obs/metrics.h"

namespace qfcard::serve {

namespace {

void ExportVersionGauge(uint64_t version) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry::Global()
      .GaugeNamed("serve.active_version")
      ->Set(static_cast<int64_t>(version));
}

}  // namespace

ServingEstimator::ServingEstimator(
    std::shared_ptr<const est::CardinalityEstimator> initial, uint64_t version)
    : active_(std::move(initial)), version_(version) {
  {
    common::MutexLock lock(&mu_);
    swaps_ = 1;
  }
  obs::IncrementCounter("serve.swaps");
  ExportVersionGauge(version);
}

common::StatusOr<double> ServingEstimator::EstimateCard(
    const query::Query& q) const {
  // Acquire-load pins one fully-published model for the whole call.
  const std::shared_ptr<const est::CardinalityEstimator> model =
      active_.load(std::memory_order_acquire);
  return model->EstimateCard(q);
}

common::StatusOr<std::vector<double>> ServingEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) const {
  const std::shared_ptr<const est::CardinalityEstimator> model =
      active_.load(std::memory_order_acquire);
  return model->EstimateBatch(queries);
}

common::Status ServingEstimator::Train(
    const std::vector<query::Query>& queries, const std::vector<double>& cards,
    double valid_fraction, uint64_t seed) {
  (void)queries;
  (void)cards;
  (void)valid_fraction;
  (void)seed;
  return common::Status::FailedPrecondition(
      "serving estimator: the active model is immutable; train a candidate "
      "and Swap it in");
}

std::string ServingEstimator::name() const {
  return "serving:" + active_.load(std::memory_order_acquire)->name();
}

size_t ServingEstimator::SizeBytes() const {
  return active_.load(std::memory_order_acquire)->SizeBytes();
}

void ServingEstimator::Swap(
    std::shared_ptr<const est::CardinalityEstimator> next, uint64_t version) {
  // version_ first: a reader pairing the new model with the old version
  // label is harmless (the label is observability-only), the reverse order
  // would briefly label the old model with the new version on the gauge.
  version_.store(version, std::memory_order_relaxed);
  active_.store(std::move(next), std::memory_order_release);
  {
    common::MutexLock lock(&mu_);
    ++swaps_;
  }
  obs::IncrementCounter("serve.swaps");
  ExportVersionGauge(version);
}

std::shared_ptr<const est::CardinalityEstimator> ServingEstimator::Active()
    const {
  return active_.load(std::memory_order_acquire);
}

uint64_t ServingEstimator::ActiveVersion() const {
  return version_.load(std::memory_order_relaxed);
}

uint64_t ServingEstimator::SwapCount() const {
  common::MutexLock lock(&mu_);
  return swaps_;
}

}  // namespace qfcard::serve
