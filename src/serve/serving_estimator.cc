#include "serve/serving_estimator.h"

#include <utility>

#include "obs/metrics.h"

namespace qfcard::serve {

namespace {

void ExportVersionGauge(uint64_t version) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry::Global()
      .GaugeNamed("serve.active_version")
      ->Set(static_cast<int64_t>(version));
}

}  // namespace

ServingEstimator::ServingEstimator(
    std::shared_ptr<const est::CardinalityEstimator> initial, uint64_t version)
    : active_(std::move(initial)), version_(version) {
  {
    common::MutexLock lock(&mu_);
    swaps_ = 1;
  }
  obs::IncrementCounter("serve.swaps");
  ExportVersionGauge(version);
}

common::StatusOr<double> ServingEstimator::EstimateCard(
    const query::Query& q) const {
  // Acquire-load pins one fully-published model for the whole call.
  const std::shared_ptr<const est::CardinalityEstimator> model =
      active_.load(std::memory_order_acquire);
  return model->EstimateCard(q);
}

common::StatusOr<est::EstimateResponse> ServingEstimator::Estimate(
    const est::EstimateRequest& request) const {
  obs::ScopedTimer timer;
  // Version label read before the model pin: after a concurrent Swap the
  // response may pair the new model with the old label (harmless,
  // observability-only) but never the reverse — mirroring the gauge's
  // ordering contract (docs/serving.md).
  const uint64_t version = version_.load(std::memory_order_relaxed);
  const std::shared_ptr<const est::CardinalityEstimator> model =
      active_.load(std::memory_order_acquire);
  // Delegate to the model's own request path so provenance it stamps (the
  // adaptive front's tier/tier_reason, docs/adaptive.md) survives; the
  // default implementation answers from EstimateCard, so estimates are
  // byte-identical either way.
  QFCARD_ASSIGN_OR_RETURN(est::EstimateResponse response,
                          model->Estimate(request));
  response.model_version = version;
  response.latency_seconds = timer.Seconds();
  return response;
}

common::StatusOr<std::vector<est::EstimateResponse>>
ServingEstimator::EstimateRequests(
    const std::vector<est::EstimateRequest>& requests) const {
  obs::ScopedTimer timer;
  const uint64_t version = version_.load(std::memory_order_relaxed);
  // One acquire-load pins one fully-published model for the whole batch; a
  // concurrent Swap can never tear the batch across two models.
  const std::shared_ptr<const est::CardinalityEstimator> model =
      active_.load(std::memory_order_acquire);
  // Delegate to the model's request path (not EstimateBatch directly) so
  // inner-stamped provenance — the adaptive front's tier/tier_reason —
  // reaches the client. The default implementation forwards the extracted
  // queries to EstimateBatch, so estimates are byte-identical either way.
  QFCARD_ASSIGN_OR_RETURN(std::vector<est::EstimateResponse> responses,
                          model->EstimateRequests(requests));
  const double elapsed = timer.Seconds();
  for (est::EstimateResponse& response : responses) {
    response.model_version = version;
    response.latency_seconds = elapsed;
  }
  return responses;
}

common::StatusOr<std::vector<double>> ServingEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) const {
  // Legacy entry point: forwards through the request API so both speak one
  // code path (docs/batch_api.md deprecation note).
  std::vector<est::EstimateRequest> requests(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }
  QFCARD_ASSIGN_OR_RETURN(const std::vector<est::EstimateResponse> responses,
                          EstimateRequests(requests));
  std::vector<double> out;
  out.reserve(responses.size());
  for (const est::EstimateResponse& response : responses) {
    out.push_back(response.estimate);
  }
  return out;
}

common::Status ServingEstimator::Train(
    const std::vector<query::Query>& queries, const std::vector<double>& cards,
    double valid_fraction, uint64_t seed) {
  (void)queries;
  (void)cards;
  (void)valid_fraction;
  (void)seed;
  return common::Status::FailedPrecondition(
      "serving estimator: the active model is immutable; train a candidate "
      "and Swap it in");
}

std::string ServingEstimator::name() const {
  return "serving:" + active_.load(std::memory_order_acquire)->name();
}

size_t ServingEstimator::SizeBytes() const {
  return active_.load(std::memory_order_acquire)->SizeBytes();
}

void ServingEstimator::Swap(
    std::shared_ptr<const est::CardinalityEstimator> next, uint64_t version) {
  // version_ first: a reader pairing the new model with the old version
  // label is harmless (the label is observability-only), the reverse order
  // would briefly label the old model with the new version on the gauge.
  version_.store(version, std::memory_order_relaxed);
  active_.store(std::move(next), std::memory_order_release);
  {
    common::MutexLock lock(&mu_);
    ++swaps_;
  }
  obs::IncrementCounter("serve.swaps");
  ExportVersionGauge(version);
}

std::shared_ptr<const est::CardinalityEstimator> ServingEstimator::Active()
    const {
  return active_.load(std::memory_order_acquire);
}

uint64_t ServingEstimator::ActiveVersion() const {
  return version_.load(std::memory_order_relaxed);
}

uint64_t ServingEstimator::SwapCount() const {
  common::MutexLock lock(&mu_);
  return swaps_;
}

}  // namespace qfcard::serve
