#ifndef QFCARD_SERVE_SERVING_ESTIMATOR_H_
#define QFCARD_SERVE_SERVING_ESTIMATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "estimators/estimator.h"

namespace qfcard::serve {

/// CardinalityEstimator front that hot-swaps the model it serves while
/// concurrent EstimateBatch traffic runs.
///
/// Memory-ordering contract (docs/serving.md): the active model is published
/// through one std::atomic<std::shared_ptr<const CardinalityEstimator>>.
/// Swap stores with release ordering after the replacement model is fully
/// constructed; every estimate loads with acquire ordering and keeps its
/// shared_ptr pinned for the whole call. A request therefore runs entirely
/// against one fully-built immutable model — swaps can never tear an
/// in-flight batch — and a model unpinned by a swap is destroyed when its
/// last in-flight request finishes. Models must be const-thread-safe (the
/// repo-wide estimator contract).
///
/// Control-plane state (swap count) is mu_-guarded per the static-analysis
/// policy; the data plane never takes mu_. Exports serve.swaps (counter) and
/// serve.active_version (gauge) via obs::MetricsRegistry.
class ServingEstimator : public est::CardinalityEstimator {
 public:
  /// Starts serving `initial` as `version`. The initial publication counts
  /// as the first swap (serve.swaps starts at 1).
  ServingEstimator(std::shared_ptr<const est::CardinalityEstimator> initial,
                   uint64_t version);

  common::StatusOr<double> EstimateCard(const query::Query& q) const override;

  /// Request API (docs/batch_api.md): pins the active model once for the
  /// whole call and stamps each response with the served model version.
  common::StatusOr<est::EstimateResponse> Estimate(
      const est::EstimateRequest& request) const override;
  common::StatusOr<std::vector<est::EstimateResponse>> EstimateRequests(
      const std::vector<est::EstimateRequest>& requests) const override;

  /// Deprecated entry point: forwards to EstimateRequests and strips the
  /// responses down to the bare estimates (see docs/batch_api.md). New
  /// callers should use EstimateRequests and keep the provenance fields.
  common::StatusOr<std::vector<double>> EstimateBatch(
      const std::vector<query::Query>& queries) const override;

  /// The active model is immutable: train a candidate offline and Swap it
  /// in (see serve::Retrainer). Always returns FailedPrecondition.
  common::Status Train(const std::vector<query::Query>& queries,
                       const std::vector<double>& cards, double valid_fraction,
                       uint64_t seed) override;

  std::string name() const override;
  size_t SizeBytes() const override;

  /// Atomically replaces the served model. `next` must be fully trained and
  /// const-thread-safe; `version` is exported through the active-version
  /// gauge and ActiveVersion().
  void Swap(std::shared_ptr<const est::CardinalityEstimator> next,
            uint64_t version);

  /// Pins and returns the currently served model.
  std::shared_ptr<const est::CardinalityEstimator> Active() const;

  /// Version label of the served model (store version, or any caller-chosen
  /// monotonic id).
  uint64_t ActiveVersion() const;

  /// Total publications, including the initial one.
  uint64_t SwapCount() const;

 private:
  std::atomic<std::shared_ptr<const est::CardinalityEstimator>> active_;
  std::atomic<uint64_t> version_;

  mutable common::Mutex mu_;
  uint64_t swaps_ QFCARD_GUARDED_BY(mu_) = 0;
};

}  // namespace qfcard::serve

#endif  // QFCARD_SERVE_SERVING_ESTIMATOR_H_
