#include "storage/catalog.h"

#include "common/str_util.h"

namespace qfcard::storage {

common::Status Catalog::AddTable(Table table) {
  for (const auto& existing : tables_) {
    if (existing->name() == table.name()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "catalog already has a table named '%s'", table.name().c_str()));
    }
  }
  QFCARD_RETURN_IF_ERROR(table.Validate());
  tables_.push_back(std::make_unique<Table>(std::move(table)));
  return common::Status::Ok();
}

common::StatusOr<const Table*> Catalog::GetTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return static_cast<const Table*>(t.get());
  }
  return common::Status::NotFound(
      common::StrFormat("no table '%s' in catalog", name.c_str()));
}

common::StatusOr<int> Catalog::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i]->name() == name) return static_cast<int>(i);
  }
  return common::Status::NotFound(
      common::StrFormat("no table '%s' in catalog", name.c_str()));
}

}  // namespace qfcard::storage
