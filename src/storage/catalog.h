#ifndef QFCARD_STORAGE_CATALOG_H_
#define QFCARD_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace qfcard::storage {

/// Owns the tables of a database instance and resolves names.
class Catalog {
 public:
  Catalog() = default;

  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Adds a table; name must be unique.
  common::Status AddTable(Table table);

  /// Returns the table named `name`, or an error.
  common::StatusOr<const Table*> GetTable(const std::string& name) const;

  /// Returns the index of table `name`, or an error. Indices are stable and
  /// dense; join encodings (Section 2.1.2) use them as bit positions.
  common::StatusOr<int> TableIndex(const std::string& name) const;

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int idx) const { return *tables_[static_cast<size_t>(idx)]; }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace qfcard::storage

#endif  // QFCARD_STORAGE_CATALOG_H_
