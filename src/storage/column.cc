#include "storage/column.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/mutex.h"
#include "common/str_util.h"

namespace qfcard::storage {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kFloat64:
      return "FLOAT64";
    case ColumnType::kDictString:
      return "DICT_STRING";
  }
  return "UNKNOWN";
}

Dictionary Dictionary::FromValues(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Dictionary dict;
  dict.sorted_values_ = std::move(values);
  dict.code_of_.reserve(dict.sorted_values_.size());
  for (size_t i = 0; i < dict.sorted_values_.size(); ++i) {
    dict.code_of_.emplace(dict.sorted_values_[i], static_cast<int64_t>(i));
  }
  return dict;
}

common::StatusOr<int64_t> Dictionary::Code(const std::string& value) const {
  const auto it = code_of_.find(value);
  if (it == code_of_.end()) {
    return common::Status::NotFound(
        common::StrFormat("value '%s' not in dictionary", value.c_str()));
  }
  return it->second;
}

int64_t Dictionary::LowerBoundCode(const std::string& value) const {
  const auto it =
      std::lower_bound(sorted_values_.begin(), sorted_values_.end(), value);
  return static_cast<int64_t>(it - sorted_values_.begin());
}

PrefixRange Dictionary::PrefixCodeRange(const std::string& prefix) const {
  PrefixRange range;
  range.lo = LowerBoundCode(prefix);
  // Smallest string greater than every prefix extension: increment the last
  // incrementable byte and truncate.
  std::string succ = prefix;
  int i = static_cast<int>(succ.size()) - 1;
  for (; i >= 0; --i) {
    if (static_cast<unsigned char>(succ[static_cast<size_t>(i)]) < 0xFF) {
      succ[static_cast<size_t>(i)] =
          static_cast<char>(succ[static_cast<size_t>(i)] + 1);
      succ.resize(static_cast<size_t>(i) + 1);
      break;
    }
  }
  if (i >= 0) {
    range.bounded = true;
    range.hi = LowerBoundCode(succ);
  }
  return range;
}

const std::string& Dictionary::Value(int64_t code) const {
  return sorted_values_[static_cast<size_t>(code)];
}

void Column::AppendBatch(const std::vector<double>& values) {
  data_.insert(data_.end(), values.begin(), values.end());
  stats_dirty_.store(true, std::memory_order_release);
}

const ColumnStats& Column::GetStats() const {
  // stats_mu_ (process-wide, see column.h) makes the lazy recompute safe
  // when estimators are built or queried from the batch API's thread pool.
  common::MutexLock lock(&stats_mu_);
  if (!stats_dirty_.load(std::memory_order_acquire)) return stats_;
  stats_ = ColumnStats{};
  stats_.rows = size();
  if (!data_.empty()) {
    double lo = data_[0];
    double hi = data_[0];
    for (const double v : data_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    stats_.min = lo;
    stats_.max = hi;
    // qfcard-lint: ok(unordered-container): used only for its size (distinct count);
    // never iterated, so hash order cannot reach any output.
    std::unordered_set<double> distinct(data_.begin(), data_.end());
    stats_.distinct = static_cast<int64_t>(distinct.size());
  }
  stats_dirty_.store(false, std::memory_order_release);
  return stats_;
}

}  // namespace qfcard::storage
