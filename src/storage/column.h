#ifndef QFCARD_STORAGE_COLUMN_H_
#define QFCARD_STORAGE_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace qfcard::storage {

/// Logical type of a column. String columns are dictionary-encoded: values
/// are stored as int64 codes into an attached Dictionary, which keeps every
/// downstream component (predicates, featurization, histograms) purely
/// numeric, as in the paper's string-predicate discussion (Section 6).
enum class ColumnType {
  kInt64,
  kFloat64,
  kDictString,
};

const char* ColumnTypeToString(ColumnType type);

/// The dense code interval [lo, hi) matching a string prefix. When
/// `bounded` is false the prefix has no lexicographic successor (empty, or
/// every byte is 0xFF) and the interval is [lo, size).
struct PrefixRange {
  int64_t lo = 0;
  int64_t hi = 0;  ///< meaningful only when `bounded`
  bool bounded = false;
};

/// Sorted string dictionary. Codes are dense [0, size) and respect
/// lexicographic order, so range predicates on codes correspond to
/// lexicographic ranges on the strings (required by the Section 6 extension).
class Dictionary {
 public:
  /// Builds a dictionary from (not necessarily unique or sorted) values.
  static Dictionary FromValues(std::vector<std::string> values);

  /// Returns the code of `value`, or an error if absent.
  common::StatusOr<int64_t> Code(const std::string& value) const;

  /// Returns the code whose entry is the smallest value >= `value`
  /// (i.e. lower bound); returns size() if all entries are smaller.
  int64_t LowerBoundCode(const std::string& value) const;

  /// Returns the code interval of strings starting with `prefix`: lo is
  /// LowerBoundCode(prefix) and, when the prefix has a lexicographic
  /// successor (last incrementable byte bumped, then truncated), hi is
  /// LowerBoundCode(successor). Prefix LIKE binding (query/normalize) and
  /// the string workload generator share this so `name LIKE 'ab%'` and a
  /// generated prefix clause mean the same code range.
  PrefixRange PrefixCodeRange(const std::string& prefix) const;

  /// Returns the string for `code`; code must be in [0, size).
  const std::string& Value(int64_t code) const;

  int64_t size() const { return static_cast<int64_t>(sorted_values_.size()); }

 private:
  std::vector<std::string> sorted_values_;
  // qfcard-lint: ok(unordered-container): lookup-only (Code); never iterated, so its
  // order cannot reach any output.
  std::unordered_map<std::string, int64_t> code_of_;
};

/// Basic per-column statistics used by featurizers and the Postgres-style
/// estimator. `min`/`max` define the attribute domain in the sense of the
/// paper (Section 3: literals normalize against min(A)/max(A)).
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  int64_t distinct = 0;  ///< exact number of distinct values
  int64_t rows = 0;
};

/// A typed, append-only column of values stored as doubles (int64 and
/// dictionary codes are stored losslessly for |v| < 2^53, far above any
/// domain used here).
class Column {
 public:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  // The stats cache (atomic dirty flag) is not copyable; copies and moves
  // carry the data and start with a dirty cache — stats are derived state
  // and recompute lazily on first GetStats.
  Column(const Column& other)
      : name_(other.name_),
        type_(other.type_),
        data_(other.data_),
        dict_(other.dict_),
        has_dict_(other.has_dict_) {}
  Column(Column&& other) noexcept
      : name_(std::move(other.name_)),
        type_(other.type_),
        data_(std::move(other.data_)),
        dict_(std::move(other.dict_)),
        has_dict_(other.has_dict_) {}
  Column& operator=(const Column& other) {
    if (this == &other) return *this;
    name_ = other.name_;
    type_ = other.type_;
    data_ = other.data_;
    dict_ = other.dict_;
    has_dict_ = other.has_dict_;
    stats_dirty_.store(true, std::memory_order_release);
    return *this;
  }
  Column& operator=(Column&& other) noexcept {
    name_ = std::move(other.name_);
    type_ = other.type_;
    data_ = std::move(other.data_);
    dict_ = std::move(other.dict_);
    has_dict_ = other.has_dict_;
    stats_dirty_.store(true, std::memory_order_release);
    return *this;
  }

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }

  /// True for types whose domain is integral (kInt64 and kDictString codes).
  /// Determines the paper's open-range adjustment: for integral attributes
  /// A < 5 equals A <= 4 (Section 3.1).
  bool integral() const { return type_ != ColumnType::kFloat64; }

  void Reserve(size_t n) { data_.reserve(n); }
  void Append(double v) {
    data_.push_back(v);
    stats_dirty_.store(true, std::memory_order_release);
  }
  void AppendBatch(const std::vector<double>& values);

  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  double Get(int64_t row) const { return data_[static_cast<size_t>(row)]; }
  const std::vector<double>& data() const { return data_; }

  /// Attaches the dictionary for a kDictString column.
  void SetDictionary(Dictionary dict) { dict_ = std::move(dict); has_dict_ = true; }
  bool has_dictionary() const { return has_dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Returns (computing and caching on first use) the column statistics.
  /// Safe to call concurrently; appending while readers hold the returned
  /// reference is not.
  const ColumnStats& GetStats() const QFCARD_EXCLUDES(stats_mu_);

 private:
  // Plain data, deliberately outside stats_mu_: a Column is built by one
  // thread (AddTable / CSV load) and is read-only once shared with the
  // batch pool; only the stats cache below mutates after that point.
  // clang-format off
  std::string name_;          // qfcard-lint: ok(guarded-by): set before sharing
  ColumnType type_;           // qfcard-lint: ok(guarded-by): set before sharing
  std::vector<double> data_;  // qfcard-lint: ok(guarded-by): set before sharing
  Dictionary dict_;           // qfcard-lint: ok(guarded-by): set before sharing
  bool has_dict_ = false;     // qfcard-lint: ok(guarded-by): set before sharing
  // clang-format on

  // Lazily recomputed stats cache, shared across the batch API's pool
  // threads. One process-wide mutex (not per-column) keeps Column cheap to
  // copy; stats are computed once per column at construction-time call
  // sites, so contention is nil. The dirty flag is atomic so Append (the
  // single-threaded load path) needn't take the lock.
  inline static common::Mutex stats_mu_;
  mutable ColumnStats stats_ QFCARD_GUARDED_BY(stats_mu_);
  mutable std::atomic<bool> stats_dirty_{true};
};

}  // namespace qfcard::storage

#endif  // QFCARD_STORAGE_COLUMN_H_
