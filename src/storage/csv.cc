#include "storage/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace qfcard::storage {

namespace {

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  std::strtod(s.c_str(), &end);
  return errno == 0 && end == s.c_str() + s.size();
}

}  // namespace

common::Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return common::Status::Internal(
        common::StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << table.column(c).name();
  }
  out << '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      const Column& col = table.column(c);
      const double v = col.Get(r);
      if (col.has_dictionary()) {
        out << col.dictionary().Value(static_cast<int64_t>(v));
      } else if (col.type() == ColumnType::kInt64) {
        out << static_cast<long long>(v);
      } else {
        out << v;
      }
    }
    out << '\n';
  }
  if (!out.good()) {
    return common::Status::Internal(
        common::StrFormat("write error on '%s'", path.c_str()));
  }
  return common::Status::Ok();
}

common::StatusOr<Table> ReadCsv(const std::string& path,
                                const std::string& table_name) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::NotFound(
        common::StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return common::Status::InvalidArgument(
        common::StrFormat("'%s' is empty", path.c_str()));
  }
  const std::vector<std::string> header = common::Split(line, ',');
  const size_t num_cols = header.size();
  std::vector<std::vector<std::string>> cells(num_cols);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = common::Split(line, ',');
    if (fields.size() != num_cols) {
      return common::Status::InvalidArgument(common::StrFormat(
          "'%s': row has %zu fields, header has %zu", path.c_str(),
          fields.size(), num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) cells[c].push_back(fields[c]);
  }

  Table table(table_name);
  for (size_t c = 0; c < num_cols; ++c) {
    bool all_int = true;
    bool all_double = true;
    for (const std::string& s : cells[c]) {
      all_int = all_int && LooksLikeInt(s);
      all_double = all_double && LooksLikeDouble(s);
    }
    if (all_int) {
      Column col(header[c], ColumnType::kInt64);
      col.Reserve(cells[c].size());
      for (const std::string& s : cells[c]) col.Append(std::strtod(s.c_str(), nullptr));
      QFCARD_RETURN_IF_ERROR(table.AddColumn(std::move(col)));
    } else if (all_double) {
      Column col(header[c], ColumnType::kFloat64);
      col.Reserve(cells[c].size());
      for (const std::string& s : cells[c]) col.Append(std::strtod(s.c_str(), nullptr));
      QFCARD_RETURN_IF_ERROR(table.AddColumn(std::move(col)));
    } else {
      Dictionary dict = Dictionary::FromValues(cells[c]);
      Column col(header[c], ColumnType::kDictString);
      col.Reserve(cells[c].size());
      for (const std::string& s : cells[c]) {
        QFCARD_ASSIGN_OR_RETURN(const int64_t code, dict.Code(s));
        col.Append(static_cast<double>(code));
      }
      col.SetDictionary(std::move(dict));
      QFCARD_RETURN_IF_ERROR(table.AddColumn(std::move(col)));
    }
  }
  QFCARD_RETURN_IF_ERROR(table.Validate());
  return table;
}

}  // namespace qfcard::storage
