#ifndef QFCARD_STORAGE_CSV_H_
#define QFCARD_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace qfcard::storage {

/// Writes `table` as a CSV file with a header row. Dictionary columns are
/// written as their string values.
common::Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV file with a header row into a table named `table_name`.
/// Column types are inferred per column: all-integer -> kInt64, all-numeric
/// -> kFloat64, otherwise kDictString (dictionary-encoded).
common::StatusOr<Table> ReadCsv(const std::string& path,
                                const std::string& table_name);

}  // namespace qfcard::storage

#endif  // QFCARD_STORAGE_CSV_H_
