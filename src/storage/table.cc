#include "storage/table.h"

#include "common/str_util.h"

namespace qfcard::storage {

common::Status Table::AddColumn(Column column) {
  for (const Column& existing : columns_) {
    if (existing.name() == column.name()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "table '%s' already has a column named '%s'", name_.c_str(),
          column.name().c_str()));
    }
  }
  columns_.push_back(std::move(column));
  return common::Status::Ok();
}

common::StatusOr<int> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return common::Status::NotFound(common::StrFormat(
      "no column '%s' in table '%s'", name.c_str(), name_.c_str()));
}

common::Status Table::Validate() const {
  if (columns_.empty()) return common::Status::Ok();
  const int64_t rows = columns_[0].size();
  for (const Column& col : columns_) {
    if (col.size() != rows) {
      return common::Status::FailedPrecondition(common::StrFormat(
          "column '%s' has %lld rows, expected %lld", col.name().c_str(),
          static_cast<long long>(col.size()), static_cast<long long>(rows)));
    }
  }
  return common::Status::Ok();
}

}  // namespace qfcard::storage
