#ifndef QFCARD_STORAGE_TABLE_H_
#define QFCARD_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace qfcard::storage {

/// A named collection of equal-length columns. Tables are built once by a
/// generator or loader and treated as immutable afterwards (the paper assumes
/// fixed data; data drift is modeled by rebuilding, Section 5.5.2).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  // Movable, not copyable (columns can be large).
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }

  /// Adds a column; all columns must end up with equal length. Returns an
  /// error if a column of that name already exists.
  common::Status AddColumn(Column column);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Column& column(int idx) const { return columns_[static_cast<size_t>(idx)]; }
  Column& mutable_column(int idx) { return columns_[static_cast<size_t>(idx)]; }

  /// Returns the index of the column named `name`, or an error.
  common::StatusOr<int> ColumnIndex(const std::string& name) const;

  /// Verifies all columns have the same length.
  common::Status Validate() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace qfcard::storage

#endif  // QFCARD_STORAGE_TABLE_H_
