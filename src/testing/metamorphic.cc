#include "testing/metamorphic.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/str_util.h"
#include "estimators/true_card.h"
#include "query/executor.h"
#include "query/join_executor.h"

namespace qfcard::testing {

namespace {

bool IsRangeOp(query::CmpOp op) {
  return op == query::CmpOp::kLt || op == query::CmpOp::kLe ||
         op == query::CmpOp::kGt || op == query::CmpOp::kGe;
}

bool IsPureRangeClause(const query::ConjunctiveClause& clause) {
  for (const query::SimplePredicate& p : clause.preds) {
    if (!IsRangeOp(p.op)) return false;
  }
  return !clause.preds.empty();
}

bool IsInList(const query::CompoundPredicate& cp) {
  if (cp.disjuncts.empty()) return false;
  for (const query::ConjunctiveClause& clause : cp.disjuncts) {
    if (clause.preds.size() != 1 ||
        clause.preds[0].op != query::CmpOp::kEq) {
      return false;
    }
  }
  return true;
}

common::Status Violation(const char* invariant, double base, double other) {
  return common::Status::FailedPrecondition(common::StrFormat(
      "%s violated: base estimate %.17g vs transformed %.17g", invariant,
      base, other));
}

// a <= b up to relative slack.
bool LeqWithTol(double a, double b, double tol) {
  return a <= b + tol * std::max({std::fabs(a), std::fabs(b), 1.0});
}

bool EqWithTol(double a, double b, double tol) {
  return LeqWithTol(a, b, tol) && LeqWithTol(b, a, tol);
}

}  // namespace

query::Query PermuteQuery(const query::Query& q, common::Rng& rng) {
  query::Query out = q;
  rng.Shuffle(out.predicates);
  for (query::CompoundPredicate& cp : out.predicates) {
    rng.Shuffle(cp.disjuncts);
    for (query::ConjunctiveClause& clause : cp.disjuncts) {
      rng.Shuffle(clause.preds);
    }
  }
  rng.Shuffle(out.joins);
  rng.Shuffle(out.group_by);
  return out;
}

common::Status CheckWideningMonotone(const est::CardinalityEstimator& est,
                                     const query::Query& q, common::Rng& rng,
                                     const MetamorphicOptions& opts) {
  // Collect (compound, disjunct, pred) sites inside pure range clauses.
  struct Site {
    size_t cp, d, p;
  };
  std::vector<Site> sites;
  for (size_t c = 0; c < q.predicates.size(); ++c) {
    for (size_t d = 0; d < q.predicates[c].disjuncts.size(); ++d) {
      const query::ConjunctiveClause& clause = q.predicates[c].disjuncts[d];
      if (!IsPureRangeClause(clause)) continue;
      for (size_t p = 0; p < clause.preds.size(); ++p) {
        sites.push_back({c, d, p});
      }
    }
  }
  if (sites.empty()) return common::Status::Ok();  // vacuous
  const Site site = sites[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(sites.size()) - 1))];

  query::Query widened = q;
  query::SimplePredicate& pred =
      widened.predicates[site.cp].disjuncts[site.d].preds[site.p];
  const double delta = (std::fabs(pred.value) + 1.0) * rng.Uniform(0.1, 1.0);
  if (pred.op == query::CmpOp::kGt || pred.op == query::CmpOp::kGe) {
    pred.value -= delta;  // lower bound moves down
  } else {
    pred.value += delta;  // upper bound moves up
  }

  QFCARD_ASSIGN_OR_RETURN(const double base, est.EstimateCard(q));
  QFCARD_ASSIGN_OR_RETURN(const double wide, est.EstimateCard(widened));
  if (!LeqWithTol(base, wide, opts.rel_tol)) {
    return Violation("widening-monotone", base, wide);
  }
  return common::Status::Ok();
}

common::Status CheckConjunctMonotone(const est::CardinalityEstimator& est,
                                     const storage::Catalog& catalog,
                                     const query::Query& q, common::Rng& rng,
                                     const MetamorphicOptions& opts) {
  // Attributes (table slot, column) not yet predicated.
  std::vector<query::ColumnRef> free_attrs;
  for (size_t t = 0; t < q.tables.size(); ++t) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* table,
                            catalog.GetTable(q.tables[t].name));
    for (int c = 0; c < table->num_columns(); ++c) {
      const query::ColumnRef ref{static_cast<int>(t), c};
      bool taken = false;
      for (const query::CompoundPredicate& cp : q.predicates) {
        if (cp.col == ref) {
          taken = true;
          break;
        }
      }
      if (!taken) free_attrs.push_back(ref);
    }
  }
  if (free_attrs.empty()) return common::Status::Ok();  // vacuous
  const query::ColumnRef ref = free_attrs[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(free_attrs.size()) - 1))];

  QFCARD_ASSIGN_OR_RETURN(
      const storage::Table* table,
      catalog.GetTable(q.tables[static_cast<size_t>(ref.table)].name));
  const storage::ColumnStats& stats = table->column(ref.column).GetStats();
  const double cut =
      stats.min + (stats.max - stats.min) * rng.Uniform(0.25, 0.75);

  query::Query narrowed = q;
  query::CompoundPredicate cp;
  cp.col = ref;
  query::ConjunctiveClause clause;
  clause.preds.push_back(query::SimplePredicate{
      ref, rng.Bernoulli(0.5) ? query::CmpOp::kGe : query::CmpOp::kLe, cut});
  cp.disjuncts.push_back(std::move(clause));
  narrowed.predicates.push_back(std::move(cp));

  QFCARD_ASSIGN_OR_RETURN(const double base, est.EstimateCard(q));
  QFCARD_ASSIGN_OR_RETURN(const double narrow, est.EstimateCard(narrowed));
  if (!LeqWithTol(narrow, base, opts.rel_tol)) {
    return Violation("conjunct-monotone", base, narrow);
  }
  return common::Status::Ok();
}

common::Status CheckInListMonotone(const est::CardinalityEstimator& est,
                                   const query::Query& q, common::Rng& rng,
                                   const MetamorphicOptions& opts) {
  std::vector<size_t> in_lists;
  for (size_t c = 0; c < q.predicates.size(); ++c) {
    if (IsInList(q.predicates[c])) in_lists.push_back(c);
  }
  if (in_lists.empty()) return common::Status::Ok();  // vacuous
  const size_t ci = in_lists[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(in_lists.size()) - 1))];

  query::Query superset = q;
  query::CompoundPredicate& cp = superset.predicates[ci];
  double max_value = cp.disjuncts[0].preds[0].value;
  for (const query::ConjunctiveClause& clause : cp.disjuncts) {
    max_value = std::max(max_value, clause.preds[0].value);
  }
  query::ConjunctiveClause extra;
  extra.preds.push_back(query::SimplePredicate{
      cp.col, query::CmpOp::kEq,
      max_value + static_cast<double>(rng.UniformInt(1, 100))});
  cp.disjuncts.push_back(std::move(extra));

  QFCARD_ASSIGN_OR_RETURN(const double base, est.EstimateCard(q));
  QFCARD_ASSIGN_OR_RETURN(const double super, est.EstimateCard(superset));
  if (!LeqWithTol(base, super, opts.rel_tol)) {
    return Violation("in-list-monotone", base, super);
  }
  return common::Status::Ok();
}

common::Status CheckPermutationInvariance(const est::CardinalityEstimator& est,
                                          const query::Query& q,
                                          common::Rng& rng,
                                          const MetamorphicOptions& opts) {
  const query::Query permuted = PermuteQuery(q, rng);
  QFCARD_ASSIGN_OR_RETURN(const double base, est.EstimateCard(q));
  QFCARD_ASSIGN_OR_RETURN(const double perm, est.EstimateCard(permuted));
  if (!EqWithTol(base, perm, opts.rel_tol)) {
    return Violation("permutation-invariance", base, perm);
  }
  return common::Status::Ok();
}

common::Status CheckFeaturizationPermutationInvariance(
    const featurize::Featurizer& featurizer, const query::Query& q,
    common::Rng& rng) {
  const query::Query permuted = PermuteQuery(q, rng);
  const size_t dim = static_cast<size_t>(featurizer.dim());
  std::vector<float> base(dim, 0.0f);
  std::vector<float> perm(dim, 0.0f);
  const common::Status s_base = featurizer.FeaturizeInto(q, base.data());
  const common::Status s_perm = featurizer.FeaturizeInto(permuted, perm.data());
  if (s_base.ok() != s_perm.ok()) {
    return common::Status::FailedPrecondition(
        "featurization-permutation violated: " + featurizer.name() +
        " accepted only one of two equivalent queries (" +
        s_base.ToString() + " vs " + s_perm.ToString() + ")");
  }
  if (!s_base.ok()) return common::Status::Ok();  // consistently unsupported
  if (std::memcmp(base.data(), perm.data(), dim * sizeof(float)) != 0) {
    return common::Status::FailedPrecondition(
        "featurization-permutation violated: " + featurizer.name() +
        " produced different vectors for permuted predicates");
  }
  return common::Status::Ok();
}

common::Status CheckTrueCardExact(const storage::Catalog& catalog,
                                  const query::Query& q) {
  const est::TrueCardEstimator oracle(&catalog);
  QFCARD_ASSIGN_OR_RETURN(const double estimate, oracle.EstimateCard(q));
  int64_t count = 0;
  if (q.tables.size() == 1 && q.joins.empty()) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* table,
                            catalog.GetTable(q.tables[0].name));
    QFCARD_ASSIGN_OR_RETURN(count, query::Executor::Count(*table, q));
  } else {
    QFCARD_ASSIGN_OR_RETURN(count, query::JoinExecutor::Count(catalog, q));
  }
  if (estimate != static_cast<double>(count)) {
    return Violation("true-card-exact", static_cast<double>(count), estimate);
  }
  return common::Status::Ok();
}

}  // namespace qfcard::testing
