#ifndef QFCARD_TESTING_METAMORPHIC_H_
#define QFCARD_TESTING_METAMORPHIC_H_

#include "common/random.h"
#include "common/status.h"
#include "estimators/estimator.h"
#include "featurize/featurizer.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace qfcard::testing {

/// Metamorphic invariants: estimator-level properties that hold without any
/// ground-truth oracle, by comparing an estimate against the estimate of a
/// transformed query. Every check is vacuous (returns OK) when the
/// transformation does not apply to `q`; a violated invariant returns
/// kFailedPrecondition with both estimates in the message; estimator errors
/// propagate unchanged.
///
/// The monotonicity checks only apply transformations that are sound for
/// set-semantics counts AND for the independence/union formulas of the
/// statistics-based estimators (postgres, true): widening touches pure range
/// clauses only, a new conjunct is a fresh attribute's compound (independence
/// multiplies by a selectivity <= 1), and an IN-list superset adds a disjunct
/// (the s1 + s2 - s1*s2 fold is monotone in each term). Trained ML models
/// are intentionally out of scope — nothing forces a learned function to be
/// monotone.
struct MetamorphicOptions {
  /// Relative slack for estimate comparisons. Covers floating-point
  /// reassociation when a transformation reorders an estimator's internal
  /// products; semantic violations are orders of magnitude larger.
  double rel_tol = 1e-9;
};

/// Widening a pure range clause (only <, <=, >, >= predicates) never
/// decreases the estimate. Picks a random eligible predicate and relaxes its
/// literal.
common::Status CheckWideningMonotone(const est::CardinalityEstimator& est,
                                     const query::Query& q, common::Rng& rng,
                                     const MetamorphicOptions& opts = {});

/// Adding a conjunct — a compound predicate on a previously unpredicated
/// attribute — never increases the estimate. Uses `catalog` to pick the
/// attribute and a half-domain range for it.
common::Status CheckConjunctMonotone(const est::CardinalityEstimator& est,
                                     const storage::Catalog& catalog,
                                     const query::Query& q, common::Rng& rng,
                                     const MetamorphicOptions& opts = {});

/// Growing an IN-list (a compound whose disjuncts are single equalities)
/// by one more value never decreases the estimate.
common::Status CheckInListMonotone(const est::CardinalityEstimator& est,
                                   const query::Query& q, common::Rng& rng,
                                   const MetamorphicOptions& opts = {});

/// Permuting the order of compound predicates, of disjuncts inside each
/// compound, of predicates inside each clause, of join predicates, and of
/// GROUP BY columns leaves the estimate unchanged (up to rel_tol for
/// reassociated float folds).
common::Status CheckPermutationInvariance(const est::CardinalityEstimator& est,
                                          const query::Query& q,
                                          common::Rng& rng,
                                          const MetamorphicOptions& opts = {});

/// The same permutations leave the featurization byte-identical (featurizers
/// write per-attribute blocks, so order must not matter). A featurizer that
/// accepts the original query but rejects the permuted one (or vice versa)
/// is also a violation.
common::Status CheckFeaturizationPermutationInvariance(
    const featurize::Featurizer& featurizer, const query::Query& q,
    common::Rng& rng);

/// The true-cardinality estimator is exact: its estimate equals the
/// executor's count, unclamped.
common::Status CheckTrueCardExact(const storage::Catalog& catalog,
                                  const query::Query& q);

/// Returns `q` with all the orders permuted as described above. Exposed so
/// the fuzzer can reuse one permutation across estimate and featurization
/// checks, and for the shrink reproducer.
query::Query PermuteQuery(const query::Query& q, common::Rng& rng);

}  // namespace qfcard::testing

#endif  // QFCARD_TESTING_METAMORPHIC_H_
