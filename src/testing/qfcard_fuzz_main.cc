// qfcard_fuzz: differential & metamorphic fuzzer CLI (src/testing/).
//
//   qfcard_fuzz [--seed=N] [--rounds=N] [--round=N] [--queries=N]
//               [--max-rows=N] [--artifact=PATH]
//
// Exits 0 when every check passes, 1 on violations (after shrinking each
// failing query to a minimal reproducer), 2 on usage errors. The summary —
// including replay lines — goes to stdout; when a violation occurs and
// --artifact (or $QFCARD_FUZZ_ARTIFACT) names a file, the same text is
// written there so CI can upload it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "adapt/adapt_fuzz.h"
#include "serve/bundle_fuzz.h"
#include "testing/query_fuzzer.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  qfcard::serve::RegisterLoaderFuzzRound();
  qfcard::adapt::RegisterAdaptiveFuzzRound();
  qfcard::testing::FuzzOptions options;
  std::string artifact;
  if (const char* env = std::getenv("QFCARD_FUZZ_ARTIFACT")) artifact = env;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--rounds", &value)) {
      options.rounds = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--round", &value)) {
      options.replay_round = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      options.queries_per_round = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-rows", &value)) {
      options.max_rows = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--artifact", &value)) {
      artifact = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\n"
                   "usage: qfcard_fuzz [--seed=N] [--rounds=N] [--round=N] "
                   "[--queries=N] [--max-rows=N] [--artifact=PATH]\n",
                   argv[i]);
      return 2;
    }
  }
  if (options.replay_round >= 0 && options.replay_round >= options.rounds) {
    // Replaying round R requires the loop to reach R.
    options.rounds = options.replay_round + 1;
  }

  const qfcard::testing::FuzzReport report =
      qfcard::testing::RunFuzzer(options);
  const std::string summary = report.Summary();
  std::fputs(summary.c_str(), stdout);

  if (!report.ok() && !artifact.empty()) {
    std::ofstream out(artifact);
    if (out) {
      out << summary;
      std::fprintf(stdout, "reproducer written to %s\n", artifact.c_str());
    } else {
      std::fprintf(stderr, "could not write artifact %s\n", artifact.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
