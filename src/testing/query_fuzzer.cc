#include "testing/query_fuzzer.h"

#include <functional>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "estimators/postgres.h"
#include "estimators/registry.h"
#include "estimators/sampling.h"
#include "estimators/true_card.h"
#include "featurize/extensions.h"
#include "featurize/feature_schema.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/join_executor.h"
#include "query/normalize.h"
#include "storage/catalog.h"
#include "workload/labeler.h"
#include "testing/metamorphic.h"
#include "testing/reference_eval.h"
#include "testing/shrink.h"
#include "workload/families.h"
#include "workload/forest.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace qfcard::testing {

namespace {

using est::CardinalityEstimator;

/// One scenario's state plus the running report. All randomness derives from
/// MixSeed(seed, round), so any round replays in isolation.
class Fuzzer {
 public:
  explicit Fuzzer(const FuzzOptions& options) : opts_(options) {}

  FuzzReport Run() {
    for (int r = 0; r < opts_.rounds; ++r) {
      if (opts_.replay_round >= 0 && r != opts_.replay_round) continue;
      if (static_cast<int>(report_.failures.size()) >= opts_.max_failures) {
        break;
      }
      ++report_.rounds;
      const bool join_round =
          opts_.join_round_every > 0 &&
          (r + 1) % opts_.join_round_every == 0;
      const bool loader_round =
          opts_.loader_round_every > 0 &&
          (r + 1) % opts_.loader_round_every == 0;
      const bool adaptive_round =
          opts_.adaptive_round_every > 0 &&
          (r + 1) % opts_.adaptive_round_every == 0;
      const bool family_round =
          opts_.family_round_every > 0 &&
          (r + 1) % opts_.family_round_every == 0;
      if (join_round) {
        ImdbRound(r);
      } else if (loader_round) {
        LoaderRound(r);
      } else if (adaptive_round) {
        AdaptiveRound(r);
      } else if (family_round) {
        FamilyRound(r);
      } else {
        ForestRound(r);
      }
    }
    return std::move(report_);
  }

 private:
  // ---- failure plumbing ----------------------------------------------------

  void RecordFailure(const std::string& check, const std::string& detail,
                     int round, const query::Query& q,
                     const storage::Catalog& catalog,
                     const FailurePredicate& still_fails) {
    obs::IncrementCounter("fuzz.failures", "check=" + check);
    const query::Query minimal = ShrinkQuery(q, still_fails);
    report_.failures.push_back(FuzzFailure{
        check, detail, round,
        DescribeReproducer(minimal, catalog, opts_.seed, round)});
  }

  void RecordPlainFailure(const std::string& check, const std::string& detail,
                          int round) {
    obs::IncrementCounter("fuzz.failures", "check=" + check);
    report_.failures.push_back(FuzzFailure{
        check, detail, round,
        common::StrFormat("replay: qfcard_fuzz --seed=%llu --round=%d "
                          "--rounds=1\n",
                          static_cast<unsigned long long>(opts_.seed),
                          round)});
  }

  bool Full() const {
    return static_cast<int>(report_.failures.size()) >= opts_.max_failures;
  }

  // ---- per-query checks ----------------------------------------------------

  // Differential: engine count vs naive reference count. `count_engine` and
  // `count_reference` wrap whichever executor pair applies.
  using CountFn =
      std::function<common::StatusOr<int64_t>(const query::Query&)>;

  void CheckExecutorDifferential(const query::Query& q,
                                 const storage::Catalog& catalog, int round,
                                 const CountFn& engine, const CountFn& ref) {
    ++report_.checks;
    const auto disagree = [&](const query::Query& cand) {
      const common::StatusOr<int64_t> e = engine(cand);
      const common::StatusOr<int64_t> r = ref(cand);
      if (e.ok() != r.ok()) return true;
      return e.ok() && e.value() != r.value();
    };
    if (!disagree(q)) return;
    const common::StatusOr<int64_t> e = engine(q);
    const common::StatusOr<int64_t> r = ref(q);
    std::ostringstream detail;
    detail << "engine=" << (e.ok() ? std::to_string(e.value())
                                   : e.status().ToString())
           << " reference=" << (r.ok() ? std::to_string(r.value())
                                       : r.status().ToString());
    RecordFailure("executor-vs-reference", detail.str(), round, q, catalog,
                  disagree);
  }

  // Parser round trip: ToSql must be printable, Parse(ToSql(q)) must be
  // structurally identical to q (all generated literals are integral, so no
  // formatting precision is lost), and ToSql must be a fixed point.
  void CheckParserRoundTrip(const query::Query& q,
                            const storage::Catalog& catalog, int round) {
    ++report_.checks;
    const auto broken = [&](const query::Query& cand)
        -> common::StatusOr<std::string> {  // error text, or "" when fine
      const common::StatusOr<std::string> sql = query::QueryToSql(cand, catalog);
      if (!sql.ok()) return "ToSql failed: " + sql.status().ToString();
      const common::StatusOr<query::Query> back =
          query::ParseQuery(sql.value(), catalog);
      if (!back.ok()) {
        return "reparse of \"" + sql.value() +
               "\" failed: " + back.status().ToString();
      }
      if (!(back.value() == cand)) {
        return "Parse(ToSql(q)) != q for \"" + sql.value() + "\"";
      }
      const common::StatusOr<std::string> sql2 =
          query::QueryToSql(back.value(), catalog);
      if (!sql2.ok() || sql2.value() != sql.value()) {
        return "ToSql not a fixed point: \"" + sql.value() + "\"";
      }
      return std::string();
    };
    const common::StatusOr<std::string> verdict = broken(q);
    const std::string detail = verdict.ok() ? verdict.value()
                                            : verdict.status().ToString();
    if (detail.empty()) return;
    RecordFailure("parser-roundtrip", detail, round, q, catalog,
                  [&](const query::Query& cand) {
                    const auto v = broken(cand);
                    return !v.ok() || !v.value().empty();
                  });
  }

  // Metamorphic invariants against one estimator. `tag` names the estimator
  // in failure reports; `qseed` makes every check's random choices
  // reproducible during shrinking.
  void CheckMetamorphic(const CardinalityEstimator& estimator,
                        const std::string& tag, const query::Query& q,
                        const storage::Catalog& catalog, uint64_t qseed,
                        int round) {
    struct NamedCheck {
      const char* name;
      std::function<common::Status(const query::Query&, common::Rng&)> run;
    };
    const NamedCheck checks[] = {
        {"metamorphic-widening",
         [&](const query::Query& cand, common::Rng& rng) {
           return CheckWideningMonotone(estimator, cand, rng);
         }},
        {"metamorphic-conjunct",
         [&](const query::Query& cand, common::Rng& rng) {
           return CheckConjunctMonotone(estimator, catalog, cand, rng);
         }},
        {"metamorphic-in-list",
         [&](const query::Query& cand, common::Rng& rng) {
           return CheckInListMonotone(estimator, cand, rng);
         }},
        {"metamorphic-permutation",
         [&](const query::Query& cand, common::Rng& rng) {
           return CheckPermutationInvariance(estimator, cand, rng);
         }},
    };
    uint64_t stream = 0;
    for (const NamedCheck& check : checks) {
      if (Full()) return;
      ++report_.checks;
      const uint64_t check_seed = common::MixSeed(qseed, ++stream);
      const auto failed = [&](const query::Query& cand) {
        common::Rng rng(check_seed);
        const common::Status s = check.run(cand, rng);
        return !s.ok() &&
               s.code() == common::StatusCode::kFailedPrecondition;
      };
      common::Rng rng(check_seed);
      const common::Status status = check.run(q, rng);
      if (status.ok()) continue;
      RecordFailure(std::string(check.name) + ":" + tag, status.ToString(),
                    round, q, catalog, failed);
    }
  }

  void CheckFeaturizers(
      const std::vector<const featurize::Featurizer*>& featurizers,
      const query::Query& q, const storage::Catalog& catalog, uint64_t qseed,
      int round) {
    uint64_t stream = 100;
    for (const featurize::Featurizer* f : featurizers) {
      if (Full()) return;
      ++report_.checks;
      const uint64_t check_seed = common::MixSeed(qseed, ++stream);
      const auto failed = [&](const query::Query& cand) {
        common::Rng rng(check_seed);
        return !CheckFeaturizationPermutationInvariance(*f, cand, rng).ok();
      };
      common::Rng rng(check_seed);
      const common::Status status =
          CheckFeaturizationPermutationInvariance(*f, q, rng);
      if (status.ok()) continue;
      RecordFailure("metamorphic-featurization:" + f->name(),
                    status.ToString(), round, q, catalog, failed);
    }
  }

  void CheckTrueCard(const query::Query& q, const storage::Catalog& catalog,
                     int round) {
    ++report_.checks;
    const common::Status status = CheckTrueCardExact(catalog, q);
    if (status.ok()) return;
    RecordFailure("true-card-exact", status.ToString(), round, q, catalog,
                  [&](const query::Query& cand) {
                    return !CheckTrueCardExact(catalog, cand).ok();
                  });
  }

  // ---- batch parity --------------------------------------------------------

  // EstimateBatch must be byte-identical to the serial EstimateCard loop at
  // every pool size. `make` builds a fresh estimator per run so per-query
  // random streams (sampling) restart identically.
  void CheckBatchParity(
      const std::function<std::unique_ptr<CardinalityEstimator>()>& make,
      const std::string& tag, const std::vector<query::Query>& queries,
      int round) {
    ++report_.checks;
    const int restore = common::ThreadPoolSizeFromEnv();

    // Probe pass: keep only queries this estimator can answer, so an
    // expected per-query error does not abort the whole comparison.
    std::vector<query::Query> answerable;
    {
      const std::unique_ptr<CardinalityEstimator> probe = make();
      for (const query::Query& q : queries) {
        if (probe->EstimateCard(q).ok()) answerable.push_back(q);
      }
    }
    if (answerable.empty()) {
      common::SetGlobalThreads(restore);
      return;
    }

    common::SetGlobalThreads(1);
    std::vector<double> serial;
    serial.reserve(answerable.size());
    {
      const std::unique_ptr<CardinalityEstimator> ref = make();
      for (const query::Query& q : answerable) {
        const common::StatusOr<double> v = ref->EstimateCard(q);
        if (!v.ok()) {
          common::SetGlobalThreads(restore);
          RecordPlainFailure("batch-parity:" + tag,
                             "serial re-run failed after probe succeeded: " +
                                 v.status().ToString(),
                             round);
          return;
        }
        serial.push_back(v.value());
      }
    }

    for (const int threads : opts_.parity_threads) {
      common::SetGlobalThreads(threads);
      const std::unique_ptr<CardinalityEstimator> estimator = make();
      const common::StatusOr<std::vector<double>> batch =
          estimator->EstimateBatch(answerable);
      if (!batch.ok()) {
        RecordPlainFailure(
            "batch-parity:" + tag,
            common::StrFormat("EstimateBatch failed at %d threads: %s",
                              threads, batch.status().ToString().c_str()),
            round);
        break;
      }
      if (batch.value() != serial) {
        size_t bad = 0;
        while (bad < serial.size() &&
               batch.value()[bad] == serial[bad]) {
          ++bad;
        }
        RecordPlainFailure(
            "batch-parity:" + tag,
            common::StrFormat(
                "batch at %d threads diverges from serial at query %zu: "
                "%.17g vs %.17g",
                threads, bad, batch.value()[bad], serial[bad]),
            round);
        break;
      }
    }
    common::SetGlobalThreads(restore);
  }

  // ---- scenarios -----------------------------------------------------------

  void ForestRound(int round) {
    common::Rng rng(common::MixSeed(opts_.seed, static_cast<uint64_t>(round)));

    workload::ForestOptions fo;
    fo.num_rows = rng.UniformInt(150, opts_.max_rows);
    fo.num_attributes = static_cast<int>(rng.UniformInt(2, 6));
    fo.seed = rng.Next();
    storage::Catalog catalog;
    QFCARD_CHECK_OK(catalog.AddTable(workload::MakeForestTable(fo)));
    const storage::Table& table = catalog.table(0);

    workload::PredicateGenOptions go;
    go.min_attrs = rng.Bernoulli(0.2) ? 0 : 1;
    go.max_attrs = fo.num_attributes;
    go.max_not_equals = static_cast<int>(rng.UniformInt(0, 4));
    go.max_disjuncts = static_cast<int>(rng.UniformInt(1, 3));
    go.in_list_prob = 0.3;
    go.max_in_list = 6;
    if (rng.Bernoulli(0.25)) go.max_group_by_attrs = 2;
    const std::vector<query::Query> queries = workload::GeneratePredicateWorkload(
        table, opts_.queries_per_round, go, rng);

    est::PostgresOptions po;
    po.histogram_buckets = static_cast<int>(rng.UniformInt(4, 32));
    po.mcv_entries = static_cast<int>(rng.UniformInt(0, 12));
    common::StatusOr<est::PostgresStyleEstimator> postgres =
        est::PostgresStyleEstimator::Build(&catalog, po);
    if (!postgres.ok()) {
      RecordPlainFailure("postgres-build", postgres.status().ToString(),
                         round);
      return;
    }
    const est::TrueCardEstimator oracle(&catalog);

    featurize::ConjunctionOptions co;
    co.max_partitions = static_cast<int>(rng.UniformInt(2, 24));
    const std::unique_ptr<featurize::Featurizer> conj =
        featurize::MakeFeaturizer(featurize::QftKind::kConjunctive,
                                  featurize::FeatureSchema::FromTable(table),
                                  co);
    const std::unique_ptr<featurize::Featurizer> complex =
        featurize::MakeFeaturizer(featurize::QftKind::kComplex,
                                  featurize::FeatureSchema::FromTable(table),
                                  co);

    const CountFn engine = [&](const query::Query& cand) {
      return query::Executor::Count(table, cand);
    };
    const CountFn reference = [&](const query::Query& cand) {
      return ReferenceCount(table, cand);
    };

    for (const query::Query& q : queries) {
      if (Full()) return;
      ++report_.queries;
      const uint64_t qseed = rng.Next();
      if (opts_.check_executor) {
        CheckExecutorDifferential(q, catalog, round, engine, reference);
      }
      if (opts_.check_parser) CheckParserRoundTrip(q, catalog, round);
      if (opts_.check_metamorphic) {
        CheckMetamorphic(postgres.value(), "postgres", q, catalog, qseed,
                         round);
        CheckMetamorphic(oracle, "true", q, catalog, qseed, round);
        CheckFeaturizers({conj.get(), complex.get()}, q, catalog, qseed,
                         round);
        CheckTrueCard(q, catalog, round);
      }
    }

    if (opts_.check_batch_parity && !Full()) {
      const uint64_t sampling_seed = rng.Next();
      CheckBatchParity(
          [&]() -> std::unique_ptr<CardinalityEstimator> {
            return std::make_unique<est::SamplingEstimator>(&catalog, 0.05,
                                                            sampling_seed);
          },
          "sampling", queries, round);
      CheckBatchParity(
          [&]() -> std::unique_ptr<CardinalityEstimator> {
            return std::make_unique<est::TrueCardEstimator>(&catalog);
          },
          "true", queries, round);
      CheckBatchParity(
          [&]() -> std::unique_ptr<CardinalityEstimator> {
            auto built = est::PostgresStyleEstimator::Build(&catalog, po);
            QFCARD_CHECK_OK(built.status());
            return std::make_unique<est::PostgresStyleEstimator>(
                std::move(built).value());
          },
          "postgres", queries, round);
    }
  }

  // Loader fuzzing lives in serve/bundle_fuzz.cc: serve/ is above testing/
  // in the layer order (tools/layers.json), so the fuzzer cannot include it
  // — the round registers itself through SetLoaderRound instead. When no
  // loader round is registered (a binary that links the fuzzer but not
  // serve/), the round falls back to the forest differential so round
  // numbering — and every later round's RNG stream — is unchanged.
  void LoaderRound(int round) {
    const FuzzRoundFn& fn = GetLoaderRound();
    if (!fn) {
      ForestRound(round);
      return;
    }
    FuzzRoundContext ctx;
    ctx.options = &opts_;
    ctx.round = round;
    ctx.record_failure = [this, round](const std::string& check,
                                       const std::string& detail) {
      RecordPlainFailure(check, detail, round);
    };
    ctx.count_check = [this] { ++report_.checks; };
    ctx.count_query = [this] { ++report_.queries; };
    ctx.full = [this] { return Full(); };
    fn(ctx);
  }

  // The adapt/ online-adaptation round uses the same extension slot shape
  // as the loader round (adapt/ is above testing/ in the layer order, so it
  // registers itself through SetAdaptiveRound); unregistered, it falls back
  // to the forest differential to keep round numbering stable.
  void AdaptiveRound(int round) {
    const FuzzRoundFn& fn = GetAdaptiveRound();
    if (!fn) {
      ForestRound(round);
      return;
    }
    FuzzRoundContext ctx;
    ctx.options = &opts_;
    ctx.round = round;
    ctx.record_failure = [this, round](const std::string& check,
                                       const std::string& detail) {
      RecordPlainFailure(check, detail, round);
    };
    ctx.count_check = [this] { ++report_.checks; };
    ctx.count_query = [this] { ++report_.queries; };
    ctx.full = [this] { return Full(); };
    fn(ctx);
  }

  // Family rounds cross-check the registered workload families — the same
  // generators the benchmark matrix (eval/matrix.h) sweeps. Each round
  // builds one family at tiny sizes and runs every labeled query through
  // the executor-vs-reference differential, the parser round trip, and a
  // label-consistency check (the stored cardinality must equal a fresh
  // engine count — a regression here means parallel labeling drifted).
  void FamilyRound(int round) {
    common::Rng rng(common::MixSeed(opts_.seed, static_cast<uint64_t>(round)));
    const std::vector<workload::WorkloadFamily>& families =
        workload::RegisteredFamilies();
    const workload::WorkloadFamily& family =
        families[static_cast<size_t>(round) % families.size()];

    // Sized to match a forest round's query budget (queries_per_round) so
    // swapping round types keeps the smoke test's total-coverage floor.
    workload::FamilySizes sizes;
    sizes.rows = rng.UniformInt(200, opts_.max_rows);
    sizes.train = (opts_.queries_per_round * 5) / 8;
    sizes.test = (opts_.queries_per_round * 3) / 8;
    auto inst_or = family.build(sizes, rng.Next());
    if (!inst_or.ok()) {
      RecordPlainFailure("family-build:" + family.name,
                         inst_or.status().ToString(), round);
      return;
    }
    const workload::FamilyInstance inst = std::move(inst_or).value();
    const storage::Table& table =
        *inst.catalog.GetTable(inst.primary_table).value();

    const CountFn engine = [&](const query::Query& cand) {
      if (cand.tables.size() > 1) {
        return query::JoinExecutor::Count(inst.catalog, cand);
      }
      return query::Executor::Count(table, cand);
    };
    const CountFn reference = [&](const query::Query& cand) {
      if (cand.tables.size() > 1) {
        return ReferenceJoinCount(inst.catalog, cand);
      }
      return ReferenceCount(table, cand);
    };

    // The naive reference join enumerates nested loops, so join queries are
    // budgeted like ImdbRound: at most join_queries_per_round, joins kept
    // narrow.
    int join_budget = opts_.join_queries_per_round;
    std::vector<workload::LabeledQuery> labeled = inst.train;
    labeled.insert(labeled.end(), inst.test.begin(), inst.test.end());
    for (const workload::LabeledQuery& lq : labeled) {
      if (Full()) return;
      const query::Query& q = lq.query;
      if (q.tables.size() > 3) continue;
      const bool is_join = q.tables.size() > 1;
      if (is_join && join_budget-- <= 0) break;
      ++report_.queries;
      if (opts_.check_executor) {
        CheckExecutorDifferential(q, inst.catalog, round, engine, reference);
        ++report_.checks;
        const common::StatusOr<int64_t> fresh = engine(q);
        if (!fresh.ok() ||
            static_cast<double>(fresh.value()) != lq.card) {
          RecordPlainFailure(
              "family-label-consistency:" + family.name,
              common::StrFormat(
                  "stored card %.0f vs fresh engine count %s", lq.card,
                  fresh.ok() ? std::to_string(fresh.value()).c_str()
                             : fresh.status().ToString().c_str()),
              round);
        }
      }
      if (opts_.check_parser) CheckParserRoundTrip(q, inst.catalog, round);
    }
  }

  void ImdbRound(int round) {
    common::Rng rng(common::MixSeed(opts_.seed, static_cast<uint64_t>(round)));

    workload::ImdbOptions io;
    io.num_titles = rng.UniformInt(60, 140);
    io.fanout_scale = 0.5;
    io.seed = rng.Next();
    const workload::ImdbDatabase db = workload::MakeImdbDatabase(io);

    workload::JobLightOptions jo;
    jo.count = opts_.join_queries_per_round;
    jo.min_tables = 2;
    // The naive reference enumerates nested loops; keep joins narrow.
    jo.max_tables = 3;
    const std::vector<query::Query> queries =
        workload::MakeJobLightWorkload(db, jo, rng);

    common::StatusOr<est::PostgresStyleEstimator> postgres =
        est::PostgresStyleEstimator::Build(&db.catalog, {});
    if (!postgres.ok()) {
      RecordPlainFailure("postgres-build", postgres.status().ToString(),
                         round);
      return;
    }
    const est::TrueCardEstimator oracle(&db.catalog);

    const CountFn engine = [&](const query::Query& cand) {
      return query::JoinExecutor::Count(db.catalog, cand);
    };
    const CountFn reference = [&](const query::Query& cand) {
      return ReferenceJoinCount(db.catalog, cand);
    };

    for (const query::Query& q : queries) {
      if (Full()) return;
      ++report_.queries;
      const uint64_t qseed = rng.Next();
      if (opts_.check_executor) {
        CheckExecutorDifferential(q, db.catalog, round, engine, reference);
      }
      if (opts_.check_parser) CheckParserRoundTrip(q, db.catalog, round);
      if (opts_.check_metamorphic) {
        CheckMetamorphic(postgres.value(), "postgres", q, db.catalog, qseed,
                         round);
        CheckMetamorphic(oracle, "true", q, db.catalog, qseed, round);
        CheckTrueCard(q, db.catalog, round);
      }
    }

    if (opts_.check_batch_parity && !Full()) {
      CheckBatchParity(
          [&]() -> std::unique_ptr<CardinalityEstimator> {
            return std::make_unique<est::TrueCardEstimator>(&db.catalog);
          },
          "true", queries, round);
      CheckBatchParity(
          [&]() -> std::unique_ptr<CardinalityEstimator> {
            auto built = est::PostgresStyleEstimator::Build(&db.catalog, {});
            QFCARD_CHECK_OK(built.status());
            return std::make_unique<est::PostgresStyleEstimator>(
                std::move(built).value());
          },
          "postgres", queries, round);
    }
  }

  const FuzzOptions opts_;
  FuzzReport report_;
};

}  // namespace

namespace {

FuzzRoundFn& LoaderRoundSlot() {
  static FuzzRoundFn* slot = new FuzzRoundFn();  // leaked: outlives static dtors
  return *slot;
}

}  // namespace

void SetLoaderRound(FuzzRoundFn fn) { LoaderRoundSlot() = std::move(fn); }

const FuzzRoundFn& GetLoaderRound() { return LoaderRoundSlot(); }

namespace {

FuzzRoundFn& AdaptiveRoundSlot() {
  static FuzzRoundFn* slot = new FuzzRoundFn();  // leaked: outlives static dtors
  return *slot;
}

}  // namespace

void SetAdaptiveRound(FuzzRoundFn fn) { AdaptiveRoundSlot() = std::move(fn); }

const FuzzRoundFn& GetAdaptiveRound() { return AdaptiveRoundSlot(); }

std::string FuzzReport::Summary() const {
  std::ostringstream out;
  out << "fuzz: " << rounds << " rounds, " << queries << " queries, "
      << checks << " checks, " << failures.size() << " failure(s)\n";
  for (const FuzzFailure& f : failures) {
    out << "[" << f.check << "] round " << f.round << ": " << f.detail
        << "\n" << f.reproducer;
  }
  return out.str();
}

FuzzReport RunFuzzer(const FuzzOptions& options) {
  Fuzzer fuzzer(options);
  return fuzzer.Run();
}

}  // namespace qfcard::testing
