#ifndef QFCARD_TESTING_QUERY_FUZZER_H_
#define QFCARD_TESTING_QUERY_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace qfcard::testing {

/// Deterministic, seed-driven differential fuzzer. Every round builds a
/// fresh random scenario — a synthetic forest-like table or the IMDb-like
/// join schema, both via the workload:: generators — generates a batch of
/// random mixed-predicate queries (ranges, not-equals, IN-lists,
/// disjunctions, GROUP BY, key/foreign-key joins), and cross-checks, per
/// query:
///
///   parser-roundtrip        Parse(ToSql(q)) is structurally identical to q,
///                           and ToSql is a fixed point.
///   executor-vs-reference   query::Executor / query::JoinExecutor against
///                           the naive scan oracles of reference_eval.h.
///   true-card-exact         TrueCardEstimator returns the executor's count.
///   metamorphic-*           the invariant catalog of metamorphic.h against
///                           the statistics-based estimators (postgres,
///                           true) and the QFT featurizers.
///
/// and per round:
///
///   batch-parity            EstimateBatch at every configured pool size is
///                           byte-identical to the serial EstimateCard loop,
///                           including the sampling estimator's per-query
///                           random streams.
///   loader-*                (loader rounds) serve/ bundle round-trips are
///                           prediction-identical, and corrupted or
///                           truncated saved models fail with clean Status
///                           errors instead of crashing the loaders.
///
/// Rounds derive their RNG as MixSeed(seed, round), so any failing round
/// replays in isolation with --seed/--round. Failures are delta-debugged to
/// a minimal reproducer (shrink.h) before being reported.
struct FuzzOptions {
  uint64_t seed = 20260806;
  int rounds = 44;
  int queries_per_round = 64;  ///< single-table queries per forest round
  int join_queries_per_round = 8;
  /// Every join_round_every-th round fuzzes the IMDb-like join schema
  /// (naive join enumeration is exponential, so these rounds are smaller).
  int join_round_every = 5;
  /// Every loader_round_every-th round (join rounds take precedence) fuzzes
  /// the serve/ model loaders instead: train each saveable model family,
  /// round-trip it through the bundle container, then bit-flip and truncate
  /// the saved bytes — every container mutation must be rejected by the
  /// checksum, and damaged payloads fed straight to the parsers must come
  /// back as clean Status errors, never crashes.
  int loader_round_every = 9;
  /// Every adaptive_round_every-th round (join/loader rounds take
  /// precedence) fuzzes the online-adaptation front (src/adapt/): queries
  /// are executed once without and once with the execution-feedback hook
  /// publishing into a live adapt::AdaptiveEstimator — the truths must be
  /// identical (adaptation may never change what the executor computes) —
  /// and two identically-fed fronts must produce byte-identical estimates
  /// (learner determinism). Registered via adapt::RegisterAdaptiveFuzzRound
  /// (src/adapt/adapt_fuzz.h); falls back to a forest round when absent.
  int adaptive_round_every = 11;
  /// Every family_round_every-th round (join/loader/adaptive rounds take
  /// precedence)
  /// builds a registered workload family (workload/families.h) at tiny sizes
  /// — the generator paths behind the benchmark matrix (prefix-LIKE ranges,
  /// IN-heavy, Zipf skew, GROUP BY, correlated joins, drift splits) — and
  /// feeds every train/test query through the executor-vs-reference
  /// differential and the parser round trip. Families rotate by round index,
  /// so a default-length run covers all of them.
  int family_round_every = 7;
  int64_t max_rows = 600;  ///< rows per generated table
  bool check_parser = true;
  bool check_executor = true;
  bool check_metamorphic = true;
  bool check_batch_parity = true;
  std::vector<int> parity_threads = {1, 2, 8};
  /// When >= 0, runs only this round (reproducer replay).
  int replay_round = -1;
  /// Stop after this many failures (each failure triggers shrinking).
  int max_failures = 10;
};

struct FuzzFailure {
  std::string check;   ///< e.g. "executor-vs-reference"
  std::string detail;  ///< violation message from the failing check
  int round = 0;
  std::string reproducer;  ///< minimized SQL/structure + replay line
};

struct FuzzReport {
  int rounds = 0;
  int queries = 0;  ///< queries that went through the per-query checks
  int checks = 0;   ///< individual comparisons performed
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// Human-readable multi-line summary (always ends with a newline).
  std::string Summary() const;
};

FuzzReport RunFuzzer(const FuzzOptions& options);

/// Extension hook for rounds implemented above testing/ in the layer order
/// (tools/layers.json): the serve/ loader round lives in
/// serve/bundle_fuzz.cc and registers itself here instead of the fuzzer
/// including serve/ headers (which would be an upward edge). The callback
/// runs one full round, reporting through this context; the fuzzer owns
/// all bookkeeping so registered rounds shrink/replay like built-in ones.
struct FuzzRoundContext {
  const FuzzOptions* options = nullptr;
  int round = 0;
  /// Records one failure with the standard replay line for `round`.
  std::function<void(const std::string& check, const std::string& detail)>
      record_failure;
  /// Counts one comparison toward FuzzReport::checks.
  std::function<void()> count_check;
  /// Counts one fuzzed query toward FuzzReport::queries — call it once per
  /// query that went through the round's per-query checks, so extension
  /// rounds contribute to the smoke test's query budget like built-in ones.
  std::function<void()> count_query;
  /// True when the failure budget is exhausted; rounds should return early.
  std::function<bool()> full;
};

using FuzzRoundFn = std::function<void(const FuzzRoundContext&)>;

/// Installs (or, with an empty function, removes) the loader-round
/// implementation. When none is registered, loader rounds run the forest
/// differential round instead so round numbering — and therefore every
/// other round's RNG stream — is unchanged. Entry points that want loader
/// coverage call serve::RegisterLoaderFuzzRound() before RunFuzzer; see
/// src/serve/bundle_fuzz.h. Not thread-safe against a concurrent RunFuzzer.
void SetLoaderRound(FuzzRoundFn fn);

/// The currently registered loader round (empty when none).
const FuzzRoundFn& GetLoaderRound();

/// Same extension slot for the adapt/ online-adaptation round: the round
/// lives in src/adapt/adapt_fuzz.cc (adapt/ is above testing/ in the layer
/// order) and asserts that running the execution-feedback loop never
/// changes executor truth and that identically-fed learners are
/// byte-deterministic. Entry points call adapt::RegisterAdaptiveFuzzRound()
/// before RunFuzzer; unregistered adaptive rounds run forest rounds so the
/// RNG stream of other rounds is unchanged.
void SetAdaptiveRound(FuzzRoundFn fn);

/// The currently registered adaptive round (empty when none).
const FuzzRoundFn& GetAdaptiveRound();

}  // namespace qfcard::testing

#endif  // QFCARD_TESTING_QUERY_FUZZER_H_
