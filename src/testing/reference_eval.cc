#include "testing/reference_eval.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/str_util.h"

namespace qfcard::testing {

namespace {

// Independent re-statement of the comparison semantics (deliberately not
// query::EvalCmp, so a bug there cannot cancel out in the differential
// check).
bool RefCmp(query::CmpOp op, double value, double literal) {
  switch (op) {
    case query::CmpOp::kEq:
      return value == literal;
    case query::CmpOp::kNe:
      return value != literal;
    case query::CmpOp::kLt:
      return value < literal;
    case query::CmpOp::kLe:
      return value <= literal;
    case query::CmpOp::kGt:
      return value > literal;
    case query::CmpOp::kGe:
      return value >= literal;
  }
  return false;
}

// `SELECT ... WHERE col IN ()` semantics: a compound with no disjuncts
// matches nothing, a clause with no predicates matches everything.
bool RefCompoundHolds(const query::CompoundPredicate& cp, double value) {
  for (const query::ConjunctiveClause& clause : cp.disjuncts) {
    bool clause_ok = true;
    for (const query::SimplePredicate& p : clause.preds) {
      if (!RefCmp(p.op, value, p.value)) {
        clause_ok = false;
        break;
      }
    }
    if (clause_ok) return true;
  }
  return false;
}

common::Status CheckColumnRefs(const storage::Table& table,
                               const query::Query& q) {
  const auto check = [&](const query::ColumnRef& ref) -> common::Status {
    if (ref.table != 0) {
      return common::Status::InvalidArgument(
          "ReferenceCount handles single-table queries");
    }
    if (ref.column < 0 || ref.column >= table.num_columns()) {
      return common::Status::OutOfRange("reference: column out of range");
    }
    return common::Status::Ok();
  };
  for (const query::CompoundPredicate& cp : q.predicates) {
    QFCARD_RETURN_IF_ERROR(check(cp.col));
  }
  for (const query::ColumnRef& g : q.group_by) {
    QFCARD_RETURN_IF_ERROR(check(g));
  }
  return common::Status::Ok();
}

}  // namespace

common::StatusOr<int64_t> ReferenceCount(const storage::Table& table,
                                         const query::Query& q) {
  if (q.tables.size() != 1 || !q.joins.empty()) {
    return common::Status::InvalidArgument(
        "ReferenceCount handles single-table queries; use ReferenceJoinCount");
  }
  QFCARD_RETURN_IF_ERROR(CheckColumnRefs(table, q));
  int64_t count = 0;
  std::set<std::vector<double>> groups;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    bool ok = true;
    for (const query::CompoundPredicate& cp : q.predicates) {
      if (!RefCompoundHolds(cp, table.column(cp.col.column).Get(r))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (q.group_by.empty()) {
      ++count;
    } else {
      std::vector<double> key;
      key.reserve(q.group_by.size());
      for (const query::ColumnRef& g : q.group_by) {
        key.push_back(table.column(g.column).Get(r));
      }
      groups.insert(std::move(key));
    }
  }
  return q.group_by.empty() ? count : static_cast<int64_t>(groups.size());
}

common::StatusOr<int64_t> ReferenceJoinCount(const storage::Catalog& catalog,
                                             const query::Query& q) {
  if (q.tables.empty()) {
    return common::Status::InvalidArgument("reference: query has no tables");
  }
  std::vector<const storage::Table*> tables;
  for (const query::TableRef& ref : q.tables) {
    QFCARD_ASSIGN_OR_RETURN(const storage::Table* t,
                            catalog.GetTable(ref.name));
    tables.push_back(t);
  }
  const int n = static_cast<int>(q.tables.size());
  const auto check = [&](const query::ColumnRef& ref) -> common::Status {
    if (ref.table < 0 || ref.table >= n) {
      return common::Status::OutOfRange("reference: table index out of range");
    }
    if (ref.column < 0 ||
        ref.column >= tables[static_cast<size_t>(ref.table)]->num_columns()) {
      return common::Status::OutOfRange("reference: column out of range");
    }
    return common::Status::Ok();
  };
  for (const query::CompoundPredicate& cp : q.predicates) {
    QFCARD_RETURN_IF_ERROR(check(cp.col));
  }
  for (const query::JoinPredicate& j : q.joins) {
    QFCARD_RETURN_IF_ERROR(check(j.left));
    QFCARD_RETURN_IF_ERROR(check(j.right));
  }
  for (const query::ColumnRef& g : q.group_by) {
    QFCARD_RETURN_IF_ERROR(check(g));
  }
  // Every table after the first must reach an earlier one through a join so
  // the nested loops prune instead of building a cross product.
  for (int t = 1; t < n; ++t) {
    bool connected = false;
    for (const query::JoinPredicate& j : q.joins) {
      const int a = j.left.table;
      const int b = j.right.table;
      if ((a == t && b < t) || (b == t && a < t)) {
        connected = true;
        break;
      }
    }
    if (!connected) {
      return common::Status::InvalidArgument(common::StrFormat(
          "reference: table %d joins no earlier table", t));
    }
  }

  const auto value_of = [&](const query::ColumnRef& ref,
                            const std::vector<int64_t>& rows) {
    return tables[static_cast<size_t>(ref.table)]
        ->column(ref.column)
        .Get(rows[static_cast<size_t>(ref.table)]);
  };

  int64_t count = 0;
  std::set<std::vector<double>> groups;
  std::vector<int64_t> rows(static_cast<size_t>(n), -1);

  // Left-deep nested loops over q.tables; each predicate is applied at the
  // depth where its last referenced table becomes bound.
  const auto recurse = [&](auto&& self, int depth) -> void {
    if (depth == n) {
      if (q.group_by.empty()) {
        ++count;
      } else {
        std::vector<double> key;
        key.reserve(q.group_by.size());
        for (const query::ColumnRef& g : q.group_by) {
          key.push_back(value_of(g, rows));
        }
        groups.insert(std::move(key));
      }
      return;
    }
    const storage::Table& table = *tables[static_cast<size_t>(depth)];
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      rows[static_cast<size_t>(depth)] = r;
      bool ok = true;
      for (const query::JoinPredicate& j : q.joins) {
        const int last = std::max(j.left.table, j.right.table);
        if (last != depth) continue;
        if (value_of(j.left, rows) != value_of(j.right, rows)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const query::CompoundPredicate& cp : q.predicates) {
          if (cp.col.table != depth) continue;
          if (!RefCompoundHolds(cp, value_of(cp.col, rows))) {
            ok = false;
            break;
          }
        }
      }
      if (ok) self(self, depth + 1);
    }
    rows[static_cast<size_t>(depth)] = -1;
  };
  recurse(recurse, 0);
  return q.group_by.empty() ? count : static_cast<int64_t>(groups.size());
}

}  // namespace qfcard::testing
