#ifndef QFCARD_TESTING_REFERENCE_EVAL_H_
#define QFCARD_TESTING_REFERENCE_EVAL_H_

#include <cstdint>

#include "common/status.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace qfcard::testing {

/// Independent ground-truth oracles for differential testing. These are
/// deliberately the dumbest possible implementations — a full row scan with
/// no predicate reordering, no short-circuiting across attributes, and a
/// tuple-keyed (not hash-keyed) GROUP BY — so that they share as little code
/// and as few failure modes as possible with query::Executor and
/// query::JoinExecutor. Performance is irrelevant; the fuzzer only runs them
/// on tiny generated tables.

/// count(*) of the single-table query `q` over `table` by scanning every row
/// and evaluating every compound predicate on it. With GROUP BY, counts
/// distinct grouping-key tuples among qualifying rows via an ordered set of
/// exact value tuples (the executor sorts-and-uniques; same result, disjoint
/// code path).
common::StatusOr<int64_t> ReferenceCount(const storage::Table& table,
                                         const query::Query& q);

/// count(*) of the (possibly joined) query `q` against `catalog` by
/// left-deep nested-loop enumeration in `q.tables` order, applying each join
/// or compound predicate as soon as every table it references is bound.
/// Each table after the first must join with at least one earlier table
/// (the same contract as JoinExecutor::Count). Exponential in the worst
/// case; intended for catalogs with at most a few hundred rows per table.
common::StatusOr<int64_t> ReferenceJoinCount(const storage::Catalog& catalog,
                                             const query::Query& q);

}  // namespace qfcard::testing

#endif  // QFCARD_TESTING_REFERENCE_EVAL_H_
