#include "testing/shrink.h"

#include <sstream>

#include "common/str_util.h"
#include "obs/metrics.h"

namespace qfcard::testing {

namespace {

// Tries removing one element of `vec` at a time (left to right), keeping
// each removal that still reproduces. `make_candidate` builds the candidate
// query after `vec` is mutated in place on a copy. Returns true if anything
// was removed.
template <typename T, typename Rebuild>
bool TryRemoveEach(std::vector<T>& vec, size_t keep_at_least,
                   const Rebuild& rebuild_and_test) {
  bool changed = false;
  for (size_t i = 0; i < vec.size() && vec.size() > keep_at_least;) {
    std::vector<T> shorter = vec;
    shorter.erase(shorter.begin() + static_cast<long>(i));
    if (rebuild_and_test(shorter)) {
      vec = std::move(shorter);
      changed = true;
      // stay at index i: the next element shifted into it
    } else {
      ++i;
    }
  }
  return changed;
}

bool TableReferenced(const query::Query& q, int t) {
  for (const query::CompoundPredicate& cp : q.predicates) {
    if (cp.col.table == t) return true;
  }
  for (const query::JoinPredicate& j : q.joins) {
    if (j.left.table == t || j.right.table == t) return true;
  }
  for (const query::ColumnRef& g : q.group_by) {
    if (g.table == t) return true;
  }
  return false;
}

}  // namespace

query::Query ShrinkQuery(const query::Query& q,
                         const FailurePredicate& still_fails_inner) {
  // Telemetry wrapper: every candidate evaluation (the expensive part of
  // shrinking — each one re-runs the differential check) bumps
  // fuzz.shrink_candidates, so failure telemetry shows how hard the
  // shrinker worked even when the reproducer ends up tiny.
  const FailurePredicate still_fails = [&](const query::Query& cand) {
    obs::IncrementCounter("fuzz.shrink_candidates");
    return still_fails_inner(cand);
  };
  query::Query cur = q;
  if (!still_fails(cur)) return cur;  // caller contract violated; don't loop

  bool changed = true;
  while (changed) {
    changed = false;

    changed |= TryRemoveEach(
        cur.group_by, 0, [&](const std::vector<query::ColumnRef>& shorter) {
          query::Query cand = cur;
          cand.group_by = shorter;
          return still_fails(cand);
        });

    changed |= TryRemoveEach(
        cur.predicates, 0,
        [&](const std::vector<query::CompoundPredicate>& shorter) {
          query::Query cand = cur;
          cand.predicates = shorter;
          return still_fails(cand);
        });

    for (size_t c = 0; c < cur.predicates.size(); ++c) {
      changed |= TryRemoveEach(
          cur.predicates[c].disjuncts, 1,
          [&](const std::vector<query::ConjunctiveClause>& shorter) {
            query::Query cand = cur;
            cand.predicates[c].disjuncts = shorter;
            return still_fails(cand);
          });
      for (size_t d = 0; d < cur.predicates[c].disjuncts.size(); ++d) {
        changed |= TryRemoveEach(
            cur.predicates[c].disjuncts[d].preds, 1,
            [&](const std::vector<query::SimplePredicate>& shorter) {
              query::Query cand = cur;
              cand.predicates[c].disjuncts[d].preds = shorter;
              return still_fails(cand);
            });
      }
    }

    changed |= TryRemoveEach(
        cur.joins, 0, [&](const std::vector<query::JoinPredicate>& shorter) {
          query::Query cand = cur;
          cand.joins = shorter;
          return still_fails(cand);
        });

    // Trailing tables that nothing references can go (removing the last
    // table leaves every other ColumnRef index valid).
    while (cur.tables.size() > 1 &&
           !TableReferenced(cur, static_cast<int>(cur.tables.size()) - 1)) {
      query::Query cand = cur;
      cand.tables.pop_back();
      if (!still_fails(cand)) break;
      cur = std::move(cand);
      changed = true;
    }
  }
  return cur;
}

std::string DescribeReproducer(const query::Query& q,
                               const storage::Catalog& catalog,
                               uint64_t seed, int iteration) {
  std::ostringstream out;
  const common::StatusOr<std::string> sql = query::QueryToSql(q, catalog);
  if (sql.ok()) {
    out << "sql: " << sql.value() << "\n";
  } else {
    // Not expressible as SQL (e.g. an empty IN list); dump the structure.
    out << "query (not expressible as SQL: " << sql.status().ToString()
        << "):\n  tables:";
    for (const query::TableRef& t : q.tables) out << " " << t.name;
    out << "\n  joins:";
    for (const query::JoinPredicate& j : q.joins) {
      out << " " << j.left.table << "." << j.left.column << "="
          << j.right.table << "." << j.right.column;
    }
    out << "\n  predicates:";
    for (const query::CompoundPredicate& cp : q.predicates) {
      out << " {" << cp.col.table << "." << cp.col.column << ":";
      for (size_t d = 0; d < cp.disjuncts.size(); ++d) {
        if (d > 0) out << " OR";
        out << " [";
        const query::ConjunctiveClause& clause = cp.disjuncts[d];
        for (size_t p = 0; p < clause.preds.size(); ++p) {
          if (p > 0) out << " AND ";
          out << query::CmpOpToString(clause.preds[p].op) << " "
              << clause.preds[p].value;
        }
        out << "]";
      }
      out << "}";
    }
    out << "\n";
  }
  out << "replay: qfcard_fuzz --seed=" << seed << " --round=" << iteration
      << " --rounds=1\n";
  return out.str();
}

}  // namespace qfcard::testing
