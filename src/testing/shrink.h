#ifndef QFCARD_TESTING_SHRINK_H_
#define QFCARD_TESTING_SHRINK_H_

#include <functional>
#include <string>

#include "query/query.h"
#include "storage/catalog.h"

namespace qfcard::testing {

/// Returns true when a candidate query still reproduces the failure under
/// investigation. Implementations must return false for queries they cannot
/// evaluate (invalid shape, estimator error of a different kind), so the
/// minimizer never "improves" a reproducer into a different bug.
using FailurePredicate = std::function<bool(const query::Query&)>;

/// Delta-debugs `q` down to a (locally) minimal query that still satisfies
/// `still_fails`. Greedily tries, until a fixed point: dropping GROUP BY
/// columns, dropping whole compound predicates, dropping disjuncts (keeping
/// at least one), dropping simple predicates inside clauses (keeping at
/// least one), and dropping trailing tables that no join, predicate, or
/// grouping references (together with their joins). `q` itself must satisfy
/// `still_fails`; the result always does.
///
/// The number of predicate evaluations is O(components^2) in the worst case
/// — fine for generated queries with tens of components.
query::Query ShrinkQuery(const query::Query& q,
                         const FailurePredicate& still_fails);

/// Renders a shrunken reproducer for humans: the SQL text (or a structural
/// dump when the query is not expressible as SQL, e.g. an empty IN list)
/// plus the seed line needed to replay it.
std::string DescribeReproducer(const query::Query& q,
                               const storage::Catalog& catalog,
                               uint64_t seed, int iteration);

}  // namespace qfcard::testing

#endif  // QFCARD_TESTING_SHRINK_H_
